//! Junction-tree construction for probabilistic inference: enumerate tree
//! decompositions of a Markov-network primal graph and pick the one with the
//! smallest total state space `Σ_bags ∏_{v ∈ bag} |dom(v)|`.
//!
//! Plain treewidth is the classic proxy, but when variables have different
//! domain sizes the real inference cost is the per-bag product of domain
//! cardinalities — a split-monotone bag cost the ranked enumerator can
//! optimize directly (via a weighted-width-style cost on log-domains), or
//! that the application can evaluate exactly on each candidate.
//!
//! Run with `cargo run --example bayesian_inference`.

use ranked_triangulations::prelude::*;
use ranked_triangulations::workloads::structured;

/// Exact junction-tree state space: Σ over bags of ∏ of domain sizes.
fn state_space(bags: &[VertexSet], domains: &[u32]) -> f64 {
    bags.iter()
        .map(|bag| {
            bag.iter()
                .map(|v| domains[v as usize] as f64)
                .product::<f64>()
        })
        .sum()
}

fn main() {
    // A 4x4 grid Markov random field (like the paper's "Grids" instances)
    // with heterogeneous domain sizes: border pixels are binary, interior
    // pixels have 5 states.
    let rows = 4u32;
    let cols = 4u32;
    let g = structured::grid(rows, cols);
    let domains: Vec<u32> = (0..g.n())
        .map(|v| {
            let (r, c) = (v / cols, v % cols);
            if r == 0 || c == 0 || r == rows - 1 || c == cols - 1 {
                2
            } else {
                5
            }
        })
        .collect();
    println!("grid MRF: {} variables, {} potentials", g.n(), g.m());

    let pre = Preprocessed::new(&g);
    println!(
        "initialization: {} minimal separators, {} PMCs",
        pre.minimal_separators().len(),
        pre.pmcs().len()
    );

    // Guide the ranked enumeration with a weighted width whose vertex
    // weights are log-domain sizes (so the max-bag weight approximates the
    // log of the biggest bag's state space)…
    let weights: Vec<f64> = domains.iter().map(|&d| (d as f64).ln()).collect();
    let guide = WeightedWidth::new(weights);

    // …and evaluate the exact state space on each candidate, keeping the
    // best seen within an any-time budget of 40 candidates.
    let run = Enumerate::with(&pre)
        .cost(&guide)
        .max_results(40)
        .run()
        .expect("a session on shared preprocessing cannot be misconfigured");
    let mut best: Option<(f64, RankedTriangulation)> = None;
    for t in run.results {
        let cost = state_space(&t.bags, &domains);
        if best.as_ref().is_none_or(|(c, _)| cost < *c) {
            println!(
                "new best junction tree: width = {}, state space = {cost:.0}",
                t.width()
            );
            best = Some((cost, t));
        }
    }
    let (cost, t) = best.expect("the grid has minimal triangulations");

    // Compare with the plain width-optimal choice.
    let width_optimal = min_triangulation(&pre, &Width).expect("width optimum exists");
    let width_optimal_cost = state_space(&width_optimal.bags, &domains);
    println!(
        "\nwidth-optimal junction tree:   width = {}, state space = {width_optimal_cost:.0}",
        width_optimal.width()
    );
    println!(
        "domain-aware junction tree:    width = {}, state space = {cost:.0}",
        t.width()
    );
    assert!(
        cost <= width_optimal_cost,
        "ranked exploration never does worse"
    );

    // Materialize the junction tree itself (a clique tree of the chosen
    // triangulation) for the inference engine.
    let junction_tree = clique_tree(&t.triangulation).expect("triangulations are chordal");
    println!(
        "junction tree: {} cliques, {} edges, valid for the MRF: {}",
        junction_tree.num_bags(),
        junction_tree.tree_edges().len(),
        junction_tree.is_valid(&g)
    );
}
