//! Join-query optimization: pick a generalized hypertree decomposition for a
//! cyclic join query by enumerating proper tree decompositions of its
//! Gaifman graph and scoring them with an application-specific cost.
//!
//! This mirrors the motivation in the paper's introduction (Kalinsky et al.,
//! "Flexible Caching in Trie Joins"): decompositions with the same width can
//! differ by orders of magnitude at execution time because of the shape of
//! their adhesions, so the application enumerates many candidates and scores
//! them with its own cost model.
//!
//! Run with `cargo run --example join_query_optimization`.

use ranked_triangulations::prelude::*;
use ranked_triangulations::workloads::queries;

/// A toy execution-cost model: the estimated cost of a bag is the product of
/// the estimated sizes of the relations covering it (smaller cover ⇒ fewer
/// joins), and the query cost is dominated by the most expensive bag plus a
/// penalty for wide adhesions (bad for caching).
fn execution_cost(g: &Graph, hypergraph: &Hypergraph, decomposition: &TreeDecomposition) -> f64 {
    let _ = g;
    let bag_cost: f64 = decomposition
        .bags()
        .iter()
        .map(|bag| {
            let cover = hypergraph.cover_number(bag).unwrap_or(bag.len()) as f64;
            // Each covering relation contributes a factor ~ 100 tuples.
            100f64.powf(cover)
        })
        .fold(0.0, f64::max);
    let adhesion_penalty: f64 = decomposition
        .adhesions()
        .iter()
        .map(|a| (a.len() as f64).powi(2))
        .sum();
    bag_cost + 50.0 * adhesion_penalty
}

fn main() {
    // A TPC-H-like join with four lineitem copies: region ⋈ nation ⋈
    // customer ⋈ orders ⋈ part ⋈ supplier ⋈ partsupp ⋈ lineitem^4.
    let query = queries::tpch_like_query(4);
    let hypergraph = query.hypergraph();
    let g = query.primal_graph();
    println!(
        "query: {} atoms over {} variables; Gaifman graph has {} edges",
        query.num_atoms(),
        query.variables,
        g.m()
    );

    // Rank candidate decompositions by the generalized-hypertree-width-style
    // cover cost (the library-provided split-monotone cost)…
    let pre = Preprocessed::new(&g);
    let cover_cost = CoverWidth::new(hypergraph.clone());

    // …and let the application re-score each candidate with its own cost
    // model, stopping after a fixed exploration budget: at most two clique
    // trees per triangulation, at most 25 candidates overall.
    let exploration = Enumerate::with(&pre)
        .cost(&cover_cost)
        .proper_decompositions(Some(2))
        .max_results(25)
        .run_decompositions()
        .expect("a cover-cost session on shared preprocessing cannot fail");
    println!(
        "explored {} candidates in {:.2?} (stop: {})",
        exploration.results.len(),
        exploration.stats.total,
        exploration.stop_reason
    );
    let mut best: Option<(f64, RankedDecomposition)> = None;
    let mut inspected = 0usize;
    for candidate in exploration.results {
        inspected += 1;
        let score = execution_cost(&g, &hypergraph, &candidate.decomposition);
        println!(
            "candidate #{inspected}: cover-width cost = {}, bags = {}, execution score = {score:.0}",
            candidate.cost,
            candidate.decomposition.num_bags()
        );
        if best.as_ref().is_none_or(|(s, _)| score < *s) {
            best = Some((score, candidate));
        }
    }

    let (score, winner) = best.expect("at least one decomposition exists");
    println!("\nchosen plan (execution score {score:.0}):");
    for (i, bag) in winner.decomposition.bags().iter().enumerate() {
        let cover = hypergraph.cover_number(bag).unwrap_or(0);
        println!(
            "  bag {i}: {:?} (covered by {cover} relations)",
            bag.to_vec()
        );
    }
    println!("tree edges: {:?}", winner.decomposition.tree_edges());
    assert!(winner.decomposition.is_valid(&g));
}
