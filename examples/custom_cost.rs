//! Implementing a custom split-monotone bag cost.
//!
//! The paper's central abstraction is the *split-monotone bag cost*: any
//! cost that (a) depends only on the set of bags and (b) never gets worse
//! when a subtree of the decomposition is replaced by a cheaper subtree.
//! This example implements a cost from the caching-aware join-processing
//! motivation of the introduction: the dominant term is the size of the
//! largest bag (as in width), but bags containing a designated set of
//! "hot" vertices — say, attributes with highly skewed value distributions —
//! are charged double, because they cache poorly.
//!
//! Run with `cargo run --example custom_cost`.

use ranked_triangulations::prelude::*;
use ranked_triangulations::workloads::structured;

/// Width with a penalty for bags containing hot vertices.
///
/// The cost of a bag is `|bag| - 1`, doubled if the bag contains any hot
/// vertex; the cost of a decomposition is the maximum bag cost. The maximum
/// of per-bag scores is split monotone for the same reason width is: a
/// cheaper subtree can only lower (or keep) the maximum.
struct SkewAwareWidth {
    hot: VertexSet,
}

impl BagCost for SkewAwareWidth {
    fn name(&self) -> String {
        "skew-aware-width".into()
    }

    fn cost_of_bags(&self, _g: &Graph, _scope: &VertexSet, bags: &[VertexSet]) -> CostValue {
        let worst = bags
            .iter()
            .map(|bag| {
                let base = bag.len().saturating_sub(1) as f64;
                if bag.intersects(&self.hot) {
                    base * 2.0
                } else {
                    base
                }
            })
            .fold(0.0f64, f64::max);
        CostValue::finite(worst)
    }
}

fn main() {
    // A 4x4 grid; the two central vertices are "hot".
    let g = structured::grid(4, 4);
    let hot = VertexSet::from_slice(g.n(), &[5, 10]);
    println!("grid with hot vertices {:?}", hot.to_vec());

    let pre = Preprocessed::new(&g);
    let skew_cost = SkewAwareWidth { hot: hot.clone() };

    // Plain width optimum vs the skew-aware optimum.
    let by_width = min_triangulation(&pre, &Width).expect("grid has triangulations");
    let by_skew = min_triangulation(&pre, &skew_cost).expect("grid has triangulations");
    let hot_bag_width = |t: &Triangulation| {
        t.bags
            .iter()
            .filter(|b| b.intersects(&hot))
            .map(|b| b.len() - 1)
            .max()
            .unwrap_or(0)
    };
    println!(
        "width-optimal:      width = {}, largest hot bag = {}",
        by_width.width(),
        hot_bag_width(&by_width)
    );
    println!(
        "skew-aware optimal: width = {}, largest hot bag = {}",
        by_skew.width(),
        hot_bag_width(&by_skew)
    );
    assert!(hot_bag_width(&by_skew) <= hot_bag_width(&by_width));

    // Ranked enumeration under the custom cost, diversified so the top
    // results differ structurally.
    println!("\ntop-5 diverse results under the custom cost:");
    let run = Enumerate::with(&pre)
        .cost(&skew_cost)
        .diverse(SimilarityMeasure::FillJaccard, 0.6)
        .max_results(5)
        .run()
        .expect("the diversity threshold is within [0, 1]");
    for (i, t) in run.results.iter().enumerate() {
        println!(
            "  #{i}: cost = {}, width = {}, fill-in = {}",
            t.cost,
            t.width(),
            t.fill_in(&g)
        );
    }
    println!(
        "({} near-duplicates were filtered out along the way)",
        run.stats.diversity_rejected
    );
}
