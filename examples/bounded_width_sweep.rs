//! Bounded-width enumeration (`MinTriangB` / Theorem 4.5): enumerate every
//! minimal triangulation of width at most `b` without assuming anything
//! about the number of minimal separators, and sweep `b` upward until
//! results appear.
//!
//! This is the regime the paper targets for graphs that violate the poly-MS
//! assumption: a constant width bound keeps both the initialization and the
//! delay polynomial.
//!
//! Run with `cargo run --example bounded_width_sweep`.

use ranked_triangulations::prelude::*;
use ranked_triangulations::workloads::random;

fn main() {
    // A random partial 4-tree: treewidth at most 4 by construction, but the
    // exact treewidth is unknown a priori.
    let g = random::random_partial_k_tree(28, 4, 0.75, 2024);
    println!("input: {} vertices, {} edges", g.n(), g.m());

    // Sweep the width bound upward. For each bound, the bounded
    // preprocessing only enumerates separators of size ≤ b and PMCs of size
    // ≤ b + 1, so small bounds are cheap even on hostile graphs. The result
    // count is capped so the example stays fast on dense inputs; the stop
    // reason tells us whether the cap was hit.
    let cap = 500;
    for bound in 1..=5usize {
        let run = Enumerate::on(&g)
            .width_bound(bound)
            .cost(&FillIn)
            .max_results(cap)
            .run()
            .expect("a width-bounded sweep session cannot be misconfigured");
        match run.best() {
            None => println!("width ≤ {bound}: no minimal triangulation"),
            Some(first) => {
                let suffix = if run.stop_reason == StopReason::MaxResults {
                    "+"
                } else {
                    ""
                };
                println!(
                    "width ≤ {bound}: {}{suffix} minimal triangulations, best fill-in = {}",
                    run.results.len(),
                    first.fill_in(&g)
                );
                // The treewidth of the graph is the first bound that admits
                // any triangulation; report it and stop once we have also
                // seen the next level (which always contains strictly more
                // triangulations or at least as many).
                if bound >= 4 {
                    break;
                }
            }
        }
    }

    // The same sweep can drive an application-side decision: find the
    // smallest width that admits a triangulation with zero "expensive"
    // fill edges among a protected vertex set.
    let protected: Vec<Vertex> = (0..6).collect();
    let protected_cost = WeightedFillIn::new(
        1.0,
        protected
            .iter()
            .flat_map(|&u| protected.iter().map(move |&v| ((u, v), 1000.0)))
            .filter(|((u, v), _)| u < v)
            .collect::<Vec<_>>(),
    );
    for bound in 3..=5usize {
        let run = Enumerate::on(&g)
            .width_bound(bound)
            .cost(&protected_cost)
            .max_results(1)
            .run()
            .expect("a width-bounded optimum session cannot be misconfigured");
        if let Some(best) = run.best() {
            println!(
                "width ≤ {bound}: cheapest protected-fill triangulation costs {} (width {})",
                best.cost,
                best.width()
            );
        }
    }
}
