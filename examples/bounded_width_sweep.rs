//! Bounded-width enumeration (`MinTriangB` / Theorem 4.5): enumerate every
//! minimal triangulation of width at most `b` without assuming anything
//! about the number of minimal separators, and sweep `b` upward until
//! results appear.
//!
//! This is the regime the paper targets for graphs that violate the poly-MS
//! assumption: a constant width bound keeps both the initialization and the
//! delay polynomial.
//!
//! Run with `cargo run --example bounded_width_sweep`.

use ranked_triangulations::prelude::*;
use ranked_triangulations::workloads::random;

fn main() {
    // A random partial 4-tree: treewidth at most 4 by construction, but the
    // exact treewidth is unknown a priori.
    let g = random::random_partial_k_tree(28, 4, 0.75, 2024);
    println!("input: {} vertices, {} edges", g.n(), g.m());

    // Sweep the width bound upward. For each bound, the bounded
    // preprocessing only enumerates separators of size ≤ b and PMCs of size
    // ≤ b + 1, so small bounds are cheap even on hostile graphs.
    for bound in 1..=5usize {
        let pre = Preprocessed::new_bounded(&g, bound);
        let mut enumerator = RankedEnumerator::new(&pre, &FillIn);
        match enumerator.next() {
            None => println!("width ≤ {bound}: no minimal triangulation"),
            Some(first) => {
                // Count how many width-≤ b minimal triangulations exist (cap
                // the count so the example stays fast on dense inputs).
                let cap = 500;
                let more = enumerator.take(cap - 1).count();
                let total = more + 1;
                let suffix = if total == cap { "+" } else { "" };
                println!(
                    "width ≤ {bound}: {total}{suffix} minimal triangulations, best fill-in = {}",
                    first.fill_in(&g)
                );
                // The treewidth of the graph is the first bound that admits
                // any triangulation; report it and stop once we have also
                // seen the next level (which always contains strictly more
                // triangulations or at least as many).
                if bound >= 4 {
                    break;
                }
            }
        }
    }

    // The same sweep can drive an application-side decision: find the
    // smallest width that admits a triangulation with zero "expensive"
    // fill edges among a protected vertex set.
    let protected: Vec<Vertex> = (0..6).collect();
    let protected_cost = WeightedFillIn::new(
        1.0,
        protected
            .iter()
            .flat_map(|&u| protected.iter().map(move |&v| ((u, v), 1000.0)))
            .filter(|((u, v), _)| u < v)
            .collect::<Vec<_>>(),
    );
    for bound in 3..=5usize {
        let pre = Preprocessed::new_bounded(&g, bound);
        if let Some(best) = min_triangulation(&pre, &protected_cost) {
            println!(
                "width ≤ {bound}: cheapest protected-fill triangulation costs {} (width {})",
                best.cost,
                best.width()
            );
        }
    }
}
