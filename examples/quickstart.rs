//! Quickstart: ranked enumeration of minimal triangulations and proper tree
//! decompositions on the paper's running example.
//!
//! Run with `cargo run --example quickstart`.

use ranked_triangulations::prelude::*;

fn main() {
    // The running example of the paper (Figure 1(a)): vertices
    // u=0, v=1, v'=2, w1=3, w2=4, w3=5.
    let g = ranked_triangulations::graph::paper_example_graph();
    println!("input graph: {} vertices, {} edges", g.n(), g.m());

    // One-time initialization shared by every enumeration on this graph:
    // minimal separators, potential maximal cliques, full blocks.
    let pre = Preprocessed::new(&g);
    println!(
        "initialization: {} minimal separators, {} potential maximal cliques, {} full blocks",
        pre.minimal_separators().len(),
        pre.pmcs().len(),
        pre.full_blocks().len()
    );

    // 1. The single best triangulation under a few different costs.
    for cost in [&Width as &dyn BagCost, &FillIn, &WidthThenFill, &ExpBagSum] {
        let best = min_triangulation(&pre, cost).expect("the graph has a minimal triangulation");
        println!(
            "optimal by {:<16}  width = {}  fill-in = {}  cost = {}",
            cost.name(),
            best.width(),
            best.fill_in(&g),
            best.cost
        );
    }

    // 2. Ranked enumeration: every minimal triangulation, cheapest first.
    println!("\nall minimal triangulations by increasing fill-in:");
    for (i, t) in RankedEnumerator::new(&pre, &FillIn).enumerate() {
        println!(
            "  #{i}: fill-in = {}, width = {}, bags = {:?}",
            t.fill_in(&g),
            t.width(),
            t.bags
        );
    }

    // 3. Proper tree decompositions (clique trees of the triangulations),
    //    ranked by width; stop after the first three.
    println!("\ntop-3 proper tree decompositions by width:");
    for (i, d) in top_k_proper_decompositions(&g, &Width, 3)
        .iter()
        .enumerate()
    {
        println!(
            "  #{i}: width = {}, {} bags, valid = {}",
            d.decomposition.width(),
            d.decomposition.num_bags(),
            d.decomposition.is_valid(&g)
        );
    }

    // 4. Any-time usage: take results until a quality target is met.
    let target_width = 2;
    let winner = RankedEnumerator::new(&pre, &Width)
        .find(|t| t.width() <= target_width)
        .expect("a width-2 triangulation exists");
    println!(
        "\nfirst triangulation of width ≤ {target_width}: fill-in = {}",
        winner.fill_in(&g)
    );
}
