//! Quickstart: ranked enumeration of minimal triangulations and proper tree
//! decompositions on the paper's running example, through the [`Enumerate`]
//! builder/session API.
//!
//! Run with `cargo run --example quickstart`.

use ranked_triangulations::prelude::*;
use std::time::Duration;

fn main() -> Result<(), EnumerationError> {
    // The running example of the paper (Figure 1(a)): vertices
    // u=0, v=1, v'=2, w1=3, w2=4, w3=5.
    let g = ranked_triangulations::graph::paper_example_graph();
    println!("input graph: {} vertices, {} edges", g.n(), g.m());

    // 1. One call: preprocessing + ranked enumeration + statistics. The
    //    default cost is width; `.cost(..)` swaps in any split-monotone
    //    bag cost.
    let run = Enumerate::on(&g).cost(&FillIn).run()?;
    println!(
        "initialization: {} minimal separators, {} potential maximal cliques, \
         {} full blocks ({:.2} ms)",
        run.stats.minimal_separators,
        run.stats.pmcs,
        run.stats.full_blocks,
        run.stats.preprocessing.as_secs_f64() * 1000.0
    );
    println!("\nall minimal triangulations by increasing fill-in:");
    for (i, t) in run.results.iter().enumerate() {
        println!(
            "  #{i}: fill-in = {}, width = {}, bags = {:?}",
            t.fill_in(&g),
            t.width(),
            t.bags
        );
    }

    // 2. Reuse one preprocessing across several costs with
    //    `Enumerate::with`, asking each session for just the optimum.
    let pre = Preprocessed::new(&g);
    for cost in [
        &Width as &(dyn BagCost + Sync),
        &FillIn,
        &WidthThenFill,
        &ExpBagSum,
    ] {
        let best = Enumerate::with(&pre).cost(cost).max_results(1).run()?;
        let t = best.best().expect("the graph has a minimal triangulation");
        println!(
            "optimal by {:<16}  width = {}  fill-in = {}  cost = {}",
            best.stats.cost,
            t.width(),
            t.fill_in(&g),
            t.cost
        );
    }

    // 3. Proper tree decompositions (clique trees of the triangulations),
    //    ranked by width; stop after the first three.
    println!("\ntop-3 proper tree decompositions by width:");
    let decs = Enumerate::with(&pre)
        .cost(&Width)
        .proper_decompositions(Some(1))
        .max_results(3)
        .run_decompositions()?;
    for (i, d) in decs.results.iter().enumerate() {
        println!(
            "  #{i}: width = {}, {} bags, valid = {}",
            d.decomposition.width(),
            d.decomposition.num_bags(),
            d.decomposition.is_valid(&g)
        );
    }

    // 4. Budgets make any session any-time safe: this one is capped by a
    //    wall-clock deadline and a node budget, and reports why it stopped.
    let budgeted = Enumerate::with(&pre)
        .cost(&Width)
        .deadline(Duration::from_secs(1))
        .node_budget(50)
        .run()?;
    println!(
        "\nbudgeted session: {} results, stop reason: {}, avg delay: {:?}",
        budgeted.results.len(),
        budgeted.stop_reason,
        budgeted.stats.average_delay().unwrap_or_default()
    );

    Ok(())
}
