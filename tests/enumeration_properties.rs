//! Property tests for the paper's algorithms: `MinTriang`, `RankedTriang`,
//! the bounded-width variants, the proper-tree-decomposition enumeration and
//! the CKK-style baseline.
//!
//! The key invariants:
//!
//! * soundness — every emitted graph is a minimal triangulation;
//! * optimality — the first ranked result attains the brute-force optimum;
//! * completeness — the ranked enumeration, the baseline and (on very small
//!   graphs) an exhaustive search over fill-edge subsets all produce the
//!   same set of triangulations;
//! * order — costs are non-decreasing along the ranked enumeration;
//! * disjointness — the Lawler–Murty partitions never emit duplicates.

mod common;

use common::{all_minimal_triangulations_exhaustive, arbitrary_graph, fill_key};
use mtr_chordal::is_minimal_triangulation;
use mtr_core::cost::{BagCost, CostValue, ExpBagSum, FillIn, WeightedWidth, Width, WidthThenFill};
use mtr_core::{
    CkkEnumerator, Diversified, DiversityFilter, Enumerate, ParallelRankedEnumerator, Preprocessed,
    RankedEnumerator, SimilarityMeasure, StopReason,
};
use mtr_graph::Graph;
use proptest::prelude::*;
use std::collections::HashSet;
use std::time::Duration;

fn ranked_fill_sets(g: &Graph, cost: &dyn BagCost) -> (Vec<CostValue>, HashSet<Vec<(u32, u32)>>) {
    let pre = Preprocessed::new(g);
    let mut enumerator = RankedEnumerator::new(&pre, cost);
    let mut costs = Vec::new();
    let mut fills = HashSet::new();
    for r in enumerator.by_ref() {
        costs.push(r.cost);
        fills.insert(fill_key(g, &r.triangulation));
    }
    assert_eq!(
        enumerator.duplicates_skipped(),
        0,
        "Lawler–Murty partitions overlapped"
    );
    (costs, fills)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Soundness + order + completeness against the CKK-style baseline.
    #[test]
    fn ranked_enumeration_is_sound_complete_and_ordered(g in arbitrary_graph(3, 8)) {
        let pre = Preprocessed::new(&g);
        let results: Vec<_> = RankedEnumerator::new(&pre, &FillIn).collect();
        // Soundness and order.
        for r in &results {
            prop_assert!(is_minimal_triangulation(&g, &r.triangulation));
            prop_assert_eq!(r.cost, CostValue::from_usize(r.fill_in(&g)));
        }
        for w in results.windows(2) {
            prop_assert!(w[0].cost <= w[1].cost);
        }
        // No duplicates.
        let ranked_fills: HashSet<_> = results.iter().map(|r| fill_key(&g, &r.triangulation)).collect();
        prop_assert_eq!(ranked_fills.len(), results.len());
        // Completeness against the independent baseline implementation.
        let baseline_fills: HashSet<_> = CkkEnumerator::new(&g)
            .map(|r| fill_key(&g, &r.triangulation))
            .collect();
        prop_assert_eq!(ranked_fills, baseline_fills);
    }

    /// On very small graphs, both enumerators match the exhaustive search
    /// over every subset of non-edges.
    #[test]
    fn enumeration_matches_exhaustive_search(g in arbitrary_graph(3, 6)) {
        let exhaustive: HashSet<_> = all_minimal_triangulations_exhaustive(&g)
            .iter()
            .map(|h| fill_key(&g, h))
            .collect();
        let (_, ranked) = ranked_fill_sets(&g, &FillIn);
        prop_assert_eq!(&ranked, &exhaustive);
        let ckk: HashSet<_> = CkkEnumerator::new(&g)
            .map(|r| fill_key(&g, &r.triangulation))
            .collect();
        prop_assert_eq!(&ckk, &exhaustive);
    }

    /// The first result of the ranked enumeration attains the minimum cost
    /// over all minimal triangulations, for several cost functions.
    #[test]
    fn first_result_is_optimal(g in arbitrary_graph(3, 7)) {
        let pre = Preprocessed::new(&g);
        let weights: Vec<f64> = (0..g.n()).map(|v| 1.0 + (v % 3) as f64).collect();
        let weighted = WeightedWidth::new(weights);
        let costs: Vec<&dyn BagCost> = vec![&Width, &FillIn, &WidthThenFill, &ExpBagSum, &weighted];
        for cost in costs {
            let results: Vec<_> = RankedEnumerator::new(&pre, cost).collect();
            prop_assert!(!results.is_empty());
            let best = results.iter().map(|r| r.cost).min().unwrap();
            prop_assert_eq!(results[0].cost, best, "cost {}", cost.name());
            // And it agrees with a direct MinTriang call.
            let direct = mtr_core::min_triangulation(&pre, cost).unwrap();
            prop_assert_eq!(direct.cost, best, "MinTriang vs enumeration for {}", cost.name());
        }
    }

    /// Bounded-width enumeration returns exactly the width-≤ b subset of the
    /// full enumeration.
    #[test]
    fn bounded_width_enumeration_is_a_filter(g in arbitrary_graph(3, 7), bound in 1usize..5) {
        let pre_full = Preprocessed::new(&g);
        let full: Vec<_> = RankedEnumerator::new(&pre_full, &FillIn).collect();
        let expected: HashSet<_> = full
            .iter()
            .filter(|r| r.width() <= bound)
            .map(|r| fill_key(&g, &r.triangulation))
            .collect();
        let pre_bounded = Preprocessed::new_bounded(&g, bound);
        let bounded: HashSet<_> = RankedEnumerator::new(&pre_bounded, &FillIn)
            .map(|r| fill_key(&g, &r.triangulation))
            .collect();
        prop_assert_eq!(bounded, expected);
    }

    /// Proper tree decompositions: each emitted decomposition is valid for
    /// the input graph, is a clique tree of its triangulation, and costs are
    /// non-decreasing.
    #[test]
    fn proper_decompositions_are_valid(g in arbitrary_graph(3, 7)) {
        let pre = Preprocessed::new(&g);
        let results: Vec<_> =
            mtr_core::ProperDecompositionEnumerator::new(&pre, &Width, Some(3)).take(30).collect();
        prop_assert!(!results.is_empty());
        for d in &results {
            prop_assert!(d.decomposition.is_valid(&g));
            prop_assert!(d.decomposition.is_clique_tree_of(&d.triangulation));
        }
        for w in results.windows(2) {
            prop_assert!(w[0].cost <= w[1].cost);
        }
    }

    /// Budget semantics: a `.max_results(k)` session returns exactly the
    /// first `min(k, total)` results of the unbudgeted ranked stream, with
    /// the matching `StopReason`.
    #[test]
    fn max_results_sessions_are_ranked_prefixes(g in arbitrary_graph(3, 7), k in 0usize..8) {
        let pre = Preprocessed::new(&g);
        let full: Vec<_> = RankedEnumerator::new(&pre, &FillIn).collect();
        let run = Enumerate::with(&pre).cost(&FillIn).max_results(k).run().unwrap();
        let expected = k.min(full.len());
        prop_assert_eq!(run.results.len(), expected);
        for (b, f) in run.results.iter().zip(&full) {
            prop_assert_eq!(b.cost, f.cost);
            prop_assert_eq!(fill_key(&g, &b.triangulation), fill_key(&g, &f.triangulation));
        }
        if k <= full.len() {
            prop_assert_eq!(run.stop_reason, StopReason::MaxResults);
        } else {
            prop_assert_eq!(run.stop_reason, StopReason::Exhausted);
        }
    }

    /// Budget semantics: deadline sessions return a prefix of the ranked
    /// stream. A generous deadline exhausts the stream; a zero deadline
    /// stops before the first result with `DeadlineExceeded`.
    #[test]
    fn deadline_sessions_are_ranked_prefixes(g in arbitrary_graph(3, 7)) {
        let pre = Preprocessed::new(&g);
        let full: Vec<_> = RankedEnumerator::new(&pre, &FillIn).collect();
        let generous = Enumerate::with(&pre)
            .cost(&FillIn)
            .deadline(Duration::from_secs(3600))
            .run()
            .unwrap();
        prop_assert_eq!(generous.results.len(), full.len());
        prop_assert_eq!(generous.stop_reason, StopReason::Exhausted);
        let zero = Enumerate::with(&pre)
            .cost(&FillIn)
            .deadline(Duration::ZERO)
            .run()
            .unwrap();
        prop_assert!(zero.results.is_empty());
        prop_assert_eq!(zero.stop_reason, StopReason::DeadlineExceeded);
    }

    /// Budget semantics: a `.node_budget(n)` session returns a prefix of the
    /// unbudgeted stream and reports whether the budget was the binding
    /// constraint.
    #[test]
    fn node_budget_sessions_are_ranked_prefixes(g in arbitrary_graph(3, 7), nodes in 0usize..25) {
        let pre = Preprocessed::new(&g);
        let full: Vec<_> = RankedEnumerator::new(&pre, &FillIn).collect();
        let run = Enumerate::with(&pre).cost(&FillIn).node_budget(nodes).run().unwrap();
        prop_assert!(run.results.len() <= full.len());
        for (b, f) in run.results.iter().zip(&full) {
            prop_assert_eq!(b.cost, f.cost);
            prop_assert_eq!(fill_key(&g, &b.triangulation), fill_key(&g, &f.triangulation));
        }
        match run.stop_reason {
            StopReason::Exhausted => {
                prop_assert_eq!(run.results.len(), full.len());
                // Exhaustion is only reachable while the budget still holds.
                prop_assert!(run.stats.nodes_explored < nodes);
            }
            StopReason::NodeBudgetExhausted => {
                prop_assert!(run.stats.nodes_explored >= nodes);
            }
            other => prop_assert!(false, "unexpected stop reason {other:?}"),
        }
    }

    /// Shim equivalence: every builder configuration yields the same results
    /// as the hand-wired enumerator it replaces.
    #[test]
    fn builder_matches_direct_enumerators(g in arbitrary_graph(3, 7)) {
        let pre = Preprocessed::new(&g);

        // Sequential ranked enumeration.
        let direct: Vec<_> = RankedEnumerator::new(&pre, &FillIn).collect();
        let built = Enumerate::with(&pre).cost(&FillIn).run().unwrap();
        prop_assert_eq!(built.results.len(), direct.len());
        for (b, d) in built.results.iter().zip(&direct) {
            prop_assert_eq!(b.cost, d.cost);
            prop_assert_eq!(fill_key(&g, &b.triangulation), fill_key(&g, &d.triangulation));
        }
        prop_assert_eq!(built.stop_reason, StopReason::Exhausted);
        prop_assert_eq!(built.stats.duplicates_skipped, 0);

        // Parallel variant: identical cost sequence, identical result set
        // (tie order among equal costs may differ).
        let direct_par: Vec<_> = ParallelRankedEnumerator::new(&pre, &FillIn, 3).collect();
        let built_par = Enumerate::with(&pre).cost(&FillIn).threads(3).run().unwrap();
        let direct_costs: Vec<_> = direct_par.iter().map(|r| r.cost).collect();
        let built_costs: Vec<_> = built_par.results.iter().map(|r| r.cost).collect();
        prop_assert_eq!(direct_costs, built_costs);
        let mut direct_fills: Vec<_> = direct_par.iter().map(|r| fill_key(&g, &r.triangulation)).collect();
        let mut built_fills: Vec<_> = built_par.results.iter().map(|r| fill_key(&g, &r.triangulation)).collect();
        direct_fills.sort();
        built_fills.sort();
        prop_assert_eq!(direct_fills, built_fills);

        // Width-bounded preprocessing.
        let bound = 2usize;
        let pre_bounded = Preprocessed::new_bounded(&g, bound);
        let direct_bounded: Vec<_> = RankedEnumerator::new(&pre_bounded, &FillIn).collect();
        let built_bounded = Enumerate::on(&g).width_bound(bound).cost(&FillIn).run().unwrap();
        prop_assert_eq!(built_bounded.results.len(), direct_bounded.len());
        for (b, d) in built_bounded.results.iter().zip(&direct_bounded) {
            prop_assert_eq!(b.cost, d.cost);
            prop_assert_eq!(fill_key(&g, &b.triangulation), fill_key(&g, &d.triangulation));
        }

        // Diversity filtering.
        let filter = DiversityFilter::new(&g, SimilarityMeasure::FillJaccard, 0.5);
        let direct_diverse: Vec<_> =
            Diversified::new(RankedEnumerator::new(&pre, &FillIn), filter).collect();
        let built_diverse = Enumerate::with(&pre)
            .cost(&FillIn)
            .diverse(SimilarityMeasure::FillJaccard, 0.5)
            .run()
            .unwrap();
        prop_assert_eq!(built_diverse.results.len(), direct_diverse.len());
        for (b, d) in built_diverse.results.iter().zip(&direct_diverse) {
            prop_assert_eq!(b.cost, d.cost);
            prop_assert_eq!(fill_key(&g, &b.triangulation), fill_key(&g, &d.triangulation));
        }

        // Proper tree decompositions.
        let direct_decs: Vec<_> =
            mtr_core::ProperDecompositionEnumerator::new(&pre, &Width, Some(2)).take(10).collect();
        let built_decs = Enumerate::with(&pre)
            .cost(&Width)
            .proper_decompositions(Some(2))
            .max_results(10)
            .run_decompositions()
            .unwrap();
        prop_assert_eq!(built_decs.results.len(), direct_decs.len());
        for (b, d) in built_decs.results.iter().zip(&direct_decs) {
            prop_assert_eq!(b.cost, d.cost);
            prop_assert_eq!(b.decomposition.bags(), d.decomposition.bags());
        }
    }

    /// The number of minimal triangulations equals the number of maximal
    /// independent sets of the separator crossing graph (Parra–Scheffler).
    #[test]
    fn count_matches_separator_graph_mis(g in arbitrary_graph(3, 7)) {
        use mtr_separators::{minimal_separators, SeparatorGraph};
        let seps = minimal_separators(&g);
        prop_assume!(seps.len() <= 18);
        let sg = SeparatorGraph::build(&g, seps.clone());
        // Brute-force count of maximal independent sets.
        let k = seps.len() as u32;
        let mut mis_count = 0usize;
        for mask in 0u32..(1u32 << k) {
            let set = mtr_graph::VertexSet::from_iter(k, (0..k).filter(|&i| (mask >> i) & 1 == 1));
            if sg.is_maximal_independent(&set) {
                mis_count += 1;
            }
        }
        let (_, ranked) = ranked_fill_sets(&g, &FillIn);
        prop_assert_eq!(ranked.len(), mis_count);
    }
}

/// Deterministic regression cases with known counts: cycles have
/// Catalan-number many minimal triangulations.
#[test]
fn cycle_triangulation_counts_are_catalan() {
    // A triangulation of the n-cycle is a triangulation of the n-gon, so the
    // count is the Catalan number C(n-2): 2, 5, 14, 42, 132 for n = 4..8.
    let catalan = [2usize, 5, 14, 42, 132];
    for n in 4..=8u32 {
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let c = Graph::from_edges(n, &edges);
        let pre = Preprocessed::new(&c);
        let count = RankedEnumerator::new(&pre, &FillIn).count();
        assert_eq!(count, catalan[(n - 4) as usize], "C{n}");
        let ckk_count = CkkEnumerator::new(&c).count();
        assert_eq!(ckk_count, count, "baseline disagrees on C{n}");
    }
}

/// The paper's Table-2-style quality claim on a fixed graph: every prefix of
/// the ranked enumeration is optimal, whereas the unranked baseline
/// interleaves qualities.
#[test]
fn ranked_prefix_quality_dominates_baseline() {
    // Two 5-cycles sharing a chord structure — enough triangulations to make
    // the ordering meaningful.
    let g = Graph::from_edges(
        8,
        &[
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 0),
            (3, 5),
            (5, 6),
            (6, 7),
            (7, 4),
        ],
    );
    let pre = Preprocessed::new(&g);
    let ranked: Vec<_> = RankedEnumerator::new(&pre, &Width).collect();
    let baseline: Vec<_> = CkkEnumerator::new(&g).collect();
    assert_eq!(ranked.len(), baseline.len());
    let optimal = ranked[0].width();
    // Every prefix of the ranked output only contains optimal results until
    // the optimal ones are exhausted.
    let optimal_count = ranked.iter().filter(|r| r.width() == optimal).count();
    for (i, r) in ranked.iter().enumerate() {
        if i < optimal_count {
            assert_eq!(r.width(), optimal);
        }
    }
    // The baseline produces the same multiset of widths overall.
    let mut ranked_widths: Vec<usize> = ranked.iter().map(|r| r.width()).collect();
    let mut baseline_widths: Vec<usize> = baseline.iter().map(|r| r.width).collect();
    ranked_widths.sort_unstable();
    baseline_widths.sort_unstable();
    assert_eq!(ranked_widths, baseline_widths);
}
