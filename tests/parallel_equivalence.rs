//! Parallel execution must be invisible in the output: for both engines
//! (the direct Lawler–Murty enumerator and the factorized per-atom engine
//! under `ReductionLevel::Full`) and both atom-combine modes (additive
//! fill-like costs and max width-like costs), running with worker threads
//! must yield result-for-result the same ranked stream as the sequential
//! run — same cost sequence, same triangulation set, no duplicates.
//!
//! Budgets must compose with parallelism: a deadline or node budget with
//! `threads > 1` still yields a valid prefix of the ranked stream and a
//! correct typed [`StopReason`]. And `.threads(t)` must never be silently
//! ignored: [`EnumerationStats::effective_threads`] reports the resolved
//! width on every path, including every reduction fallback.

mod common;

use common::{arbitrary_graph, fill_key};
use mtr_core::cost::{CostValue, ExpBagSum, FillIn, Width};
use mtr_core::{BagCost, Enumerate, EnumerationRun, EnumerationStats, StopReason};
use mtr_graph::Graph;
use mtr_reduce::{EnumerateReduceExt, ReductionLevel};
use mtr_workloads::decomposable::{glued_grids, gnp_with_bridges};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::time::Duration;

fn run(
    g: &Graph,
    cost: &(dyn BagCost + Sync),
    threads: usize,
    level: ReductionLevel,
    k: Option<usize>,
) -> EnumerationRun {
    let mut session = Enumerate::on(g).cost(cost).threads(threads);
    if let Some(k) = k {
        session = session.max_results(k);
    }
    session
        .reduce(level)
        .run()
        .expect("session cannot fail on a plain graph")
}

fn costs(run: &EnumerationRun) -> Vec<CostValue> {
    run.results.iter().map(|r| r.cost).collect()
}

fn fill_set(g: &Graph, run: &EnumerationRun) -> BTreeSet<Vec<(u32, u32)>> {
    let set: BTreeSet<_> = run
        .results
        .iter()
        .map(|r| fill_key(g, &r.triangulation))
        .collect();
    assert_eq!(set.len(), run.results.len(), "no duplicates allowed");
    set
}

/// `threads`-way run must equal the sequential run result-for-result.
fn assert_parallel_equivalent(
    g: &Graph,
    cost: &(dyn BagCost + Sync),
    level: ReductionLevel,
    threads: usize,
) {
    let sequential = run(g, cost, 1, level, None);
    let parallel = run(g, cost, threads, level, None);
    assert_eq!(
        costs(&sequential),
        costs(&parallel),
        "cost sequence diverged at threads={threads}, level={level}, cost={}",
        cost.name()
    );
    assert_eq!(fill_set(g, &sequential), fill_set(g, &parallel));
    assert_eq!(sequential.stats.duplicates_skipped, 0);
    assert_eq!(parallel.stats.duplicates_skipped, 0);
    assert_eq!(sequential.stats.effective_threads, 1);
    assert_eq!(parallel.stats.effective_threads, threads);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Direct engine: pool-parallel expansion ≡ sequential, for an additive
    /// and a max-combining cost.
    #[test]
    fn direct_engine_parallel_matches_sequential(g in arbitrary_graph(3, 8)) {
        for threads in [2usize, 4] {
            assert_parallel_equivalent(&g, &FillIn, ReductionLevel::Off, threads);
            assert_parallel_equivalent(&g, &Width, ReductionLevel::Off, threads);
        }
    }

    /// Factorized engine under full reduction: per-atom parallel streams ≡
    /// sequential merge ≡ the direct engine, for both combine modes
    /// (additive fill-in, max width).
    #[test]
    fn factorized_engine_parallel_matches_sequential(g in arbitrary_graph(3, 8)) {
        for threads in [2usize, 4] {
            assert_parallel_equivalent(&g, &FillIn, ReductionLevel::Full, threads);
            assert_parallel_equivalent(&g, &Width, ReductionLevel::Full, threads);
        }
        // Cross-engine: the reduced parallel stream matches the direct
        // sequential stream too.
        let direct = run(&g, &FillIn, 1, ReductionLevel::Off, None);
        let reduced_parallel = run(&g, &FillIn, 4, ReductionLevel::Full, None);
        prop_assert_eq!(costs(&direct), costs(&reduced_parallel));
        prop_assert_eq!(fill_set(&g, &direct), fill_set(&g, &reduced_parallel));
    }
}

#[test]
fn decomposable_corpus_parallel_matches_sequential() {
    let corpus: Vec<(&str, Graph)> = vec![
        ("glued_grids3x3", glued_grids(3, 3, 2)),
        ("gnp_bridges2x8", gnp_with_bridges(2, 8, 0.3, 11)),
    ];
    for (name, g) in corpus {
        for cost in [&FillIn as &(dyn BagCost + Sync), &Width] {
            let sequential = run(&g, cost, 1, ReductionLevel::Full, Some(15));
            let parallel = run(&g, cost, 4, ReductionLevel::Full, Some(15));
            assert_eq!(costs(&sequential), costs(&parallel), "{name}");
            assert_eq!(fill_set(&g, &sequential), fill_set(&g, &parallel));
            assert!(parallel.stats.atoms >= 2, "{name} must decompose");
            assert_eq!(parallel.stats.effective_threads, 4);
        }
    }
}

/// A budgeted parallel run must be a valid ranked prefix with the right
/// stop reason — for both engines.
#[test]
fn budgets_compose_with_threads() {
    let g = glued_grids(3, 3, 2);
    for level in [ReductionLevel::Off, ReductionLevel::Full] {
        let full = run(&g, &FillIn, 2, level, Some(12));
        // Node budget: stops early with the typed reason, and the emitted
        // results are a prefix of the unbudgeted stream.
        let budgeted = Enumerate::on(&g)
            .cost(&FillIn)
            .threads(2)
            .node_budget(3)
            .max_results(12)
            .reduce(level)
            .run()
            .unwrap();
        assert_eq!(budgeted.stop_reason, StopReason::NodeBudgetExhausted);
        assert!(budgeted.results.len() < full.results.len());
        for (b, f) in budgeted.results.iter().zip(&full.results) {
            assert_eq!(b.cost, f.cost, "budgeted results are a ranked prefix");
        }
        for w in budgeted.results.windows(2) {
            assert!(w[0].cost <= w[1].cost);
        }
        assert_eq!(budgeted.stats.effective_threads, 2);
        // Node accounting counts demanded work only, so the budget stops
        // at exactly the same result as the sequential run — speculative
        // prefetch (which varies with host width) must not leak into it.
        let budgeted_seq = Enumerate::on(&g)
            .cost(&FillIn)
            .node_budget(3)
            .max_results(12)
            .reduce(level)
            .run()
            .unwrap();
        assert_eq!(budgeted_seq.stop_reason, StopReason::NodeBudgetExhausted);
        assert_eq!(costs(&budgeted_seq), costs(&budgeted));
        assert_eq!(
            budgeted_seq.stats.nodes_explored,
            budgeted.stats.nodes_explored
        );

        // Zero deadline: aborts during (parallel) preprocessing with the
        // typed reason and an empty, still-valid prefix.
        let expired = Enumerate::on(&g)
            .cost(&FillIn)
            .threads(2)
            .deadline(Duration::ZERO)
            .reduce(level)
            .run()
            .unwrap();
        assert_eq!(expired.stop_reason, StopReason::DeadlineExceeded);
        assert!(expired.results.is_empty());
        assert!(!expired.stats.preprocessing_complete);
        assert_eq!(expired.stats.effective_threads, 2);

        // A generous deadline changes nothing.
        let generous = Enumerate::on(&g)
            .cost(&FillIn)
            .threads(2)
            .deadline(Duration::from_secs(3600))
            .max_results(12)
            .reduce(level)
            .run()
            .unwrap();
        assert_eq!(costs(&full), costs(&generous));
    }
}

/// `.threads(t)` is never silently ignored: every fallback of the
/// reduction layer reports the thread count it actually ran with.
#[test]
fn threads_are_never_silently_ignored() {
    let stats_of = |stats: &EnumerationStats| (stats.effective_threads, stats.atoms);
    let g = glued_grids(3, 3, 2);
    // Factorized engine (≥ 2 atoms).
    let factorized = run(&g, &FillIn, 2, ReductionLevel::Full, Some(5));
    assert_eq!(stats_of(&factorized.stats).0, 2);
    assert!(stats_of(&factorized.stats).1 >= 2);
    // Non-factorizing cost: falls back to the direct engine, threads intact.
    let fallback = run(&g, &ExpBagSum, 2, ReductionLevel::Full, Some(5));
    assert_eq!(stats_of(&fallback.stats), (2, 0));
    // Reduction off: direct engine, threads intact.
    let off = run(&g, &FillIn, 2, ReductionLevel::Off, Some(5));
    assert_eq!(stats_of(&off.stats), (2, 0));
    // Single atom: direct engine, threads intact.
    let c6 = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
    let single = run(&c6, &FillIn, 2, ReductionLevel::Full, Some(5));
    assert_eq!(stats_of(&single.stats), (2, 1));
    // Auto-detection resolves to the hardware width on every path.
    let auto = run(&g, &FillIn, 0, ReductionLevel::Full, Some(5));
    let detected = std::thread::available_parallelism().map_or(1, |n| n.get());
    assert_eq!(auto.stats.effective_threads, detected);
}
