//! Symmetry-aware search-space collapse must be invisible in full mode and
//! sound in modulo mode.
//!
//! Full mode (the default): orbit-canonical sharing of constrained
//! re-optimizations replays exact costs across automorphism-equivalent
//! subproblems, but the emitted stream must be *bit-for-bit* identical to a
//! `SymmetryPolicy::Off` run — same cost sequence, same fill sets, same tie
//! order — for both engines (direct and factorized), both cost families
//! (additive fill-like, max width-like), and both thread counts.
//!
//! Modulo mode: the stream is quotiented to one representative per
//! automorphism orbit of minimal triangulations. The representatives must
//! be pairwise orbit-inequivalent, orbit-complete (every baseline result is
//! an automorphism image of some emitted representative), and each
//! representative must be cheapest in its orbit (equivalently: it is the
//! first member of its orbit the baseline stream would have emitted).

mod common;

use common::{arbitrary_graph, fill_key};
use mtr_core::cost::{CostValue, FillIn, Width};
use mtr_core::{BagCost, CancelFlag, Enumerate, EnumerationRun, StopReason, SymmetryPolicy};
use mtr_graph::{Graph, Vertex};
use mtr_reduce::{EnumerateReduceExt, ReductionLevel};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

fn run(
    g: &Graph,
    cost: &(dyn BagCost + Sync),
    threads: usize,
    level: ReductionLevel,
    symmetry: SymmetryPolicy,
    k: Option<usize>,
) -> EnumerationRun {
    let mut session = Enumerate::on(g)
        .cost(cost)
        .threads(threads)
        .symmetry(symmetry);
    if let Some(k) = k {
        session = session.max_results(k);
    }
    session
        .reduce(level)
        .run()
        .expect("session cannot fail on a plain graph")
}

fn costs(run: &EnumerationRun) -> Vec<CostValue> {
    run.results.iter().map(|r| r.cost).collect()
}

/// The full ranked sequence, in emission order, identified by fill set.
fn fill_sequence(g: &Graph, run: &EnumerationRun) -> Vec<Vec<(u32, u32)>> {
    run.results
        .iter()
        .map(|r| fill_key(g, &r.triangulation))
        .collect()
}

/// Canonical representative (lexicographic minimum) of the orbit of a fill
/// set under the generators of the discovered automorphism group — two
/// fill sets are automorphism-equivalent iff their canonical forms agree.
/// BFS over generator images; test graphs are small enough that no orbit
/// comes near the safety cap.
fn canonical_fill(generators: &[Vec<Vertex>], fill: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let mut start = fill.to_vec();
    start.sort_unstable();
    let mut best = start.clone();
    let mut seen: HashSet<Vec<(u32, u32)>> = HashSet::new();
    seen.insert(start.clone());
    let mut frontier = vec![start];
    while let Some(cur) = frontier.pop() {
        for sigma in generators {
            let mut img: Vec<(u32, u32)> = cur
                .iter()
                .map(|&(u, v)| {
                    let (a, b) = (sigma[u as usize], sigma[v as usize]);
                    (a.min(b), a.max(b))
                })
                .collect();
            img.sort_unstable();
            if !seen.contains(&img) {
                assert!(seen.len() < 100_000, "orbit closure blew the test cap");
                if img < best {
                    best = img.clone();
                }
                seen.insert(img.clone());
                frontier.push(img);
            }
        }
    }
    best
}

/// Shared ≡ off, result-for-result (order included — sharing must be
/// tie-safe, not just set-equal).
fn assert_sharing_invisible(
    g: &Graph,
    cost: &(dyn BagCost + Sync),
    level: ReductionLevel,
    threads: usize,
) {
    let shared = run(g, cost, threads, level, SymmetryPolicy::Full, None);
    let plain = run(g, cost, threads, level, SymmetryPolicy::Off, None);
    assert_eq!(
        costs(&plain),
        costs(&shared),
        "cost sequence diverged at threads={threads}, level={level}, cost={}",
        cost.name()
    );
    assert_eq!(
        fill_sequence(g, &plain),
        fill_sequence(g, &shared),
        "emission order diverged at threads={threads}, level={level}, cost={}",
        cost.name()
    );
    assert_eq!(
        plain.stats.subproblems_replayed, 0,
        "symmetry off must not replay"
    );
    assert_eq!(plain.stats.orbits_merged, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Direct engine: orbit sharing on ≡ off for an additive and a
    /// max-combining cost, sequentially and in parallel.
    #[test]
    fn direct_engine_sharing_is_invisible(g in arbitrary_graph(3, 8)) {
        for threads in [1usize, 4] {
            assert_sharing_invisible(&g, &FillIn, ReductionLevel::Off, threads);
            assert_sharing_invisible(&g, &Width, ReductionLevel::Off, threads);
        }
    }

    /// Factorized engine under full reduction: each per-atom stream probes
    /// its own automorphisms, and the merged stream is still bit-for-bit
    /// identical.
    #[test]
    fn factorized_engine_sharing_is_invisible(g in arbitrary_graph(3, 8)) {
        for threads in [1usize, 4] {
            assert_sharing_invisible(&g, &FillIn, ReductionLevel::Full, threads);
            assert_sharing_invisible(&g, &Width, ReductionLevel::Full, threads);
        }
    }

    /// Modulo mode is a sound quotient of the baseline stream: the
    /// representatives are pairwise orbit-inequivalent, every baseline
    /// result maps into some emitted representative (orbit-completeness),
    /// and each representative is the cheapest member of its orbit.
    #[test]
    fn modulo_symmetry_quotients_soundly(g in arbitrary_graph(3, 7)) {
        let baseline = run(&g, &FillIn, 1, ReductionLevel::Off, SymmetryPolicy::Off, None);
        let quotient = run(
            &g,
            &FillIn,
            1,
            ReductionLevel::Off,
            SymmetryPolicy::ModuloSymmetry,
            None,
        );
        let aut = g.automorphisms();
        let gens = aut.generators();
        let rep_keys: Vec<Vec<(u32, u32)>> = fill_sequence(&g, &quotient)
            .iter()
            .map(|f| canonical_fill(gens, f))
            .collect();
        let distinct: HashSet<&Vec<(u32, u32)>> = rep_keys.iter().collect();
        prop_assert_eq!(
            distinct.len(),
            rep_keys.len(),
            "representatives must be pairwise orbit-inequivalent"
        );
        // Cheapest cost per orbit across the full stream.
        let mut orbit_min: HashMap<Vec<(u32, u32)>, CostValue> = HashMap::new();
        for r in &baseline.results {
            let key = canonical_fill(gens, &fill_key(&g, &r.triangulation));
            let entry = orbit_min.entry(key).or_insert(r.cost);
            if r.cost < *entry {
                *entry = r.cost;
            }
        }
        prop_assert_eq!(
            rep_keys.iter().collect::<HashSet<_>>(),
            orbit_min.keys().collect::<HashSet<_>>(),
            "every baseline orbit must be represented exactly once"
        );
        for (rep, key) in quotient.results.iter().zip(&rep_keys) {
            prop_assert_eq!(
                rep.cost, orbit_min[key],
                "each representative must be cheapest in its orbit"
            );
        }
        // The quotient stream stays ranked.
        for pair in quotient.results.windows(2) {
            prop_assert!(pair[0].cost <= pair[1].cost);
        }
    }

    /// A `max_results` prefix of the shared stream is exactly the same
    /// prefix of the baseline stream, and a pre-raised cancel flag stops a
    /// symmetric run before any result, in every mode.
    #[test]
    fn budgets_and_cancel_compose_with_symmetry(g in arbitrary_graph(3, 8)) {
        for level in [ReductionLevel::Off, ReductionLevel::Full] {
            let plain = run(&g, &FillIn, 1, level, SymmetryPolicy::Off, None);
            let k = (plain.results.len() / 2).max(1);
            let shared = run(&g, &FillIn, 1, level, SymmetryPolicy::Full, Some(k));
            let prefix: Vec<_> = fill_sequence(&g, &plain)
                .into_iter()
                .take(shared.results.len())
                .collect();
            prop_assert_eq!(fill_sequence(&g, &shared), prefix);
        }
        for symmetry in [SymmetryPolicy::Full, SymmetryPolicy::ModuloSymmetry] {
            let flag = CancelFlag::new();
            flag.cancel();
            let cancelled = Enumerate::on(&g)
                .cost(&FillIn)
                .symmetry(symmetry)
                .cancel_flag(flag)
                .run()
                .expect("cancellation is not an error");
            prop_assert_eq!(cancelled.stop_reason, StopReason::Cancelled);
            prop_assert!(cancelled.results.is_empty());
        }
    }
}

/// The machinery actually fires on a symmetric corpus — and the stats
/// surface it. C6 quotients 14 → 3; the 3×3 grid replays shared orbits
/// under top-k demand and explores strictly fewer partitions for it.
#[test]
fn symmetry_fires_on_symmetric_corpus() {
    let c6 = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
    let baseline = run(
        &c6,
        &FillIn,
        1,
        ReductionLevel::Off,
        SymmetryPolicy::Off,
        None,
    );
    assert_eq!(baseline.results.len(), 14);
    let quotient = run(
        &c6,
        &FillIn,
        1,
        ReductionLevel::Off,
        SymmetryPolicy::ModuloSymmetry,
        None,
    );
    assert_eq!(quotient.results.len(), 3, "C6 has 3 orbit classes");
    assert_eq!(quotient.stats.symmetry_group_order, 12);
    assert!(quotient.stats.orbits_merged > 0);

    let grid3x3 = Graph::from_edges(
        9,
        &[
            (0, 1),
            (1, 2),
            (3, 4),
            (4, 5),
            (6, 7),
            (7, 8),
            (0, 3),
            (3, 6),
            (1, 4),
            (4, 7),
            (2, 5),
            (5, 8),
        ],
    );
    // Pruning off isolates the sharing effect: the incumbent defers most
    // children before the sharing lookup would see them, so replays are a
    // property of the unpruned frontier.
    let top10 = |symmetry: SymmetryPolicy| {
        Enumerate::on(&grid3x3)
            .cost(&FillIn)
            .symmetry(symmetry)
            .pruning(mtr_core::PruningPolicy::Off)
            .max_results(10)
            .run()
            .expect("grid sessions cannot fail")
    };
    let shared = top10(SymmetryPolicy::Full);
    let plain = top10(SymmetryPolicy::Off);
    assert_eq!(costs(&plain), costs(&shared));
    assert_eq!(
        fill_sequence(&grid3x3, &plain),
        fill_sequence(&grid3x3, &shared)
    );
    assert_eq!(shared.stats.symmetry_group_order, 8);
    assert!(
        shared.stats.subproblems_replayed > 0,
        "grid cousins must hit shared orbits"
    );
    assert!(
        shared.stats.nodes_explored < plain.stats.nodes_explored,
        "replayed partitions left in the queue at stop are re-optimizations never paid ({} vs {})",
        shared.stats.nodes_explored,
        plain.stats.nodes_explored
    );
}
