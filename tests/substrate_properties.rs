//! Property tests for the substrate crates: minimal separators, the
//! crossing relation, potential maximal cliques, and the chordal machinery.
//!
//! These are the cross-validation tests DESIGN.md commits to: every fast
//! algorithm is checked against a brute-force reference on random graphs.

mod common;

use common::arbitrary_graph;
use mtr_chordal::{
    clique_tree, is_chordal, is_minimal_triangulation, lb_triang, maximal_cliques_chordal, mcs_m,
};
use mtr_graph::{Graph, VertexSet};
use mtr_pmc::{potential_maximal_cliques, potential_maximal_cliques_bruteforce};
use mtr_separators::{crosses, minimal_separators, minimal_separators_bruteforce, SeparatorGraph};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The Berry–Bordat–Cogis enumeration agrees with brute force.
    #[test]
    fn minimal_separators_match_bruteforce(g in arbitrary_graph(3, 9)) {
        prop_assert_eq!(minimal_separators(&g), minimal_separators_bruteforce(&g));
    }

    /// Crossing is symmetric (Kloks et al. / Parra–Scheffler).
    #[test]
    fn crossing_is_symmetric(g in arbitrary_graph(3, 9)) {
        let seps = minimal_separators(&g);
        for s in &seps {
            for t in &seps {
                prop_assert_eq!(crosses(&g, s, t), crosses(&g, t, s));
            }
        }
    }

    /// The incremental PMC enumeration agrees with brute force.
    #[test]
    fn pmcs_match_bruteforce(g in arbitrary_graph(3, 9)) {
        let fast = potential_maximal_cliques(&g);
        let brute = potential_maximal_cliques_bruteforce(&g);
        prop_assert_eq!(fast.pmcs, brute);
    }

    /// The bounded PMC enumeration finds every PMC within the size bound.
    #[test]
    fn bounded_pmcs_are_a_size_filter(g in arbitrary_graph(3, 8), bound in 1usize..6) {
        let bounded = mtr_pmc::potential_maximal_cliques_bounded(&g, bound);
        let brute: Vec<VertexSet> = potential_maximal_cliques_bruteforce(&g)
            .into_iter()
            .filter(|p| p.len() <= bound)
            .collect();
        prop_assert_eq!(bounded.pmcs, brute);
    }

    /// LB-Triang produces a minimal triangulation for any ordering (we test
    /// the identity and the reversed ordering).
    #[test]
    fn lb_triang_is_minimal(g in arbitrary_graph(2, 10)) {
        let forward: Vec<u32> = (0..g.n()).collect();
        let backward: Vec<u32> = (0..g.n()).rev().collect();
        for order in [forward, backward] {
            let h = lb_triang(&g, &order);
            prop_assert!(is_minimal_triangulation(&g, &h));
        }
    }

    /// MCS-M produces a minimal triangulation and a PEO of it.
    #[test]
    fn mcs_m_is_minimal(g in arbitrary_graph(2, 10)) {
        let r = mcs_m(&g);
        prop_assert!(is_minimal_triangulation(&g, &r.triangulation));
        prop_assert!(mtr_chordal::is_perfect_elimination_ordering(
            &r.triangulation,
            &r.elimination_order
        ));
    }

    /// Clique trees of minimal triangulations are valid tree decompositions
    /// of the original graph whose bags are the triangulation's cliques.
    #[test]
    fn clique_trees_are_valid_decompositions(g in arbitrary_graph(2, 10)) {
        let h = lb_triang(&g, &(0..g.n()).collect::<Vec<_>>());
        let t = clique_tree(&h).expect("triangulations are chordal");
        prop_assert!(t.is_valid(&g));
        prop_assert!(t.is_clique_tree_of(&h));
        let cliques = maximal_cliques_chordal(&h).unwrap();
        prop_assert_eq!(t.num_bags(), cliques.len());
        // Width/fill of the decomposition match the triangulation.
        prop_assert_eq!(t.fill_in(&g), h.m() - g.m());
    }

    /// Parra–Scheffler: saturating a maximal set of pairwise-parallel minimal
    /// separators yields a minimal triangulation whose separators are exactly
    /// that set.
    #[test]
    fn parra_scheffler_saturation(g in arbitrary_graph(3, 9)) {
        let seps = minimal_separators(&g);
        let sg = SeparatorGraph::build(&g, seps);
        let k = sg.len() as u32;
        let mis = sg.greedy_maximal_independent(&VertexSet::empty(k));
        prop_assert!(sg.is_maximal_independent(&mis));
        let mut h = g.clone();
        for i in mis.iter() {
            h.saturate(&sg.separators()[i as usize]);
        }
        prop_assert!(is_minimal_triangulation(&g, &h));
        // MinSep(H) equals the saturated set.
        let mut expected: Vec<VertexSet> = mis
            .iter()
            .map(|i| sg.separators()[i as usize].clone())
            .collect();
        expected.sort();
        let mut actual = minimal_separators(&h);
        actual.sort();
        prop_assert_eq!(actual, expected);
    }

    /// Chordality of `G ∪ K_bags` for any valid tree decomposition built by
    /// the library (here: the trivial one and the clique tree of LB-Triang).
    #[test]
    fn saturated_decompositions_are_chordal(g in arbitrary_graph(2, 9)) {
        let trivial = mtr_chordal::TreeDecomposition::trivial(&g);
        prop_assert!(is_chordal(&trivial.saturated_graph(&g)));
    }
}

/// Non-proptest regression cases: graphs that exercised bugs during
/// development or that have known exact counts.
#[test]
fn known_counts() {
    // Number of minimal separators of C_n is n(n-3)/2.
    for n in 4..9u32 {
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let c = Graph::from_edges(n, &edges);
        assert_eq!(
            minimal_separators(&c).len(),
            (n * (n - 3) / 2) as usize,
            "C{n}"
        );
    }
    // The Petersen graph: every minimal separator has ≥ 3 vertices, and the
    // graph is vertex-transitive with 3-connectivity.
    let petersen = {
        let mut g = Graph::new(10);
        for i in 0..5u32 {
            g.add_edge(i, (i + 1) % 5);
            g.add_edge(5 + i, 5 + (i + 2) % 5);
            g.add_edge(i, 5 + i);
        }
        g
    };
    let seps = minimal_separators(&petersen);
    assert!(!seps.is_empty());
    assert!(seps.iter().all(|s| s.len() >= 3));
    // And the Petersen graph has a non-trivial PMC set.
    assert!(!potential_maximal_cliques(&petersen).pmcs.is_empty());
}
