//! Incumbent-bounded pruning must be invisible in the output: for both
//! engines (the direct Lawler–Murty enumerator and the factorized per-atom
//! engine under `ReductionLevel::Full`), both atom-combine modes (additive
//! fill-like costs and max width-like costs), and both thread counts, the
//! default pruned run must yield result-for-result the same ranked stream
//! — same cost sequence, same fill sets, in the same order — as a run with
//! `PruningPolicy::Off`. Pruning changes the work performed, never the
//! results.
//!
//! Budgets must compose: a `max_results` prefix of the pruned stream equals
//! the same prefix of the unpruned stream, and pruning-off runs must report
//! zero `nodes_pruned` and no incumbent.

mod common;

use common::{arbitrary_graph, fill_key};
use mtr_core::cost::{CostValue, FillIn, Width};
use mtr_core::{BagCost, Enumerate, EnumerationRun, PruningPolicy};
use mtr_graph::Graph;
use mtr_reduce::{EnumerateReduceExt, ReductionLevel};
use mtr_workloads::decomposable::glued_grids;
use proptest::prelude::*;

fn run(
    g: &Graph,
    cost: &(dyn BagCost + Sync),
    threads: usize,
    level: ReductionLevel,
    pruning: PruningPolicy,
    k: Option<usize>,
) -> EnumerationRun {
    let mut session = Enumerate::on(g)
        .cost(cost)
        .threads(threads)
        .pruning(pruning);
    if let Some(k) = k {
        session = session.max_results(k);
    }
    session
        .reduce(level)
        .run()
        .expect("session cannot fail on a plain graph")
}

fn costs(run: &EnumerationRun) -> Vec<CostValue> {
    run.results.iter().map(|r| r.cost).collect()
}

/// The full ranked sequence, in emission order, identified by fill set.
fn fill_sequence(g: &Graph, run: &EnumerationRun) -> Vec<Vec<(u32, u32)>> {
    run.results
        .iter()
        .map(|r| fill_key(g, &r.triangulation))
        .collect()
}

/// Pruned ≡ unpruned, result-for-result (order included — pruning must be
/// tie-safe, not just set-equal).
fn assert_pruning_invisible(
    g: &Graph,
    cost: &(dyn BagCost + Sync),
    level: ReductionLevel,
    threads: usize,
) {
    let pruned = run(g, cost, threads, level, PruningPolicy::Incumbent, None);
    let plain = run(g, cost, threads, level, PruningPolicy::Off, None);
    assert_eq!(
        costs(&plain),
        costs(&pruned),
        "cost sequence diverged at threads={threads}, level={level}, cost={}",
        cost.name()
    );
    assert_eq!(
        fill_sequence(g, &plain),
        fill_sequence(g, &pruned),
        "emission order diverged at threads={threads}, level={level}, cost={}",
        cost.name()
    );
    assert_eq!(plain.stats.nodes_pruned, 0, "pruning off must not defer");
    assert_eq!(plain.stats.incumbent_cost, None);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Direct engine: pruning on ≡ off for an additive and a max-combining
    /// cost, sequentially and in parallel.
    #[test]
    fn direct_engine_pruning_is_invisible(g in arbitrary_graph(3, 8)) {
        for threads in [1usize, 4] {
            assert_pruning_invisible(&g, &FillIn, ReductionLevel::Off, threads);
            assert_pruning_invisible(&g, &Width, ReductionLevel::Off, threads);
        }
    }

    /// Factorized engine under full reduction: pruning applies to both the
    /// per-atom streams and the product-space merge, and is still
    /// invisible in the results.
    #[test]
    fn factorized_engine_pruning_is_invisible(g in arbitrary_graph(3, 8)) {
        for threads in [1usize, 4] {
            assert_pruning_invisible(&g, &FillIn, ReductionLevel::Full, threads);
            assert_pruning_invisible(&g, &Width, ReductionLevel::Full, threads);
        }
    }

    /// A `max_results` prefix of the pruned stream is exactly the same
    /// prefix of the unpruned stream — the incumbent tightening during a
    /// budgeted run must not cut results the budget would have admitted.
    #[test]
    fn budget_prefix_composes_with_pruning(g in arbitrary_graph(3, 8)) {
        for level in [ReductionLevel::Off, ReductionLevel::Full] {
            let plain = run(&g, &FillIn, 1, level, PruningPolicy::Off, None);
            let k = (plain.results.len() / 2).max(1);
            let pruned = run(&g, &FillIn, 1, level, PruningPolicy::Incumbent, Some(k));
            let prefix: Vec<_> = fill_sequence(&g, &plain)
                .into_iter()
                .take(pruned.results.len())
                .collect();
            prop_assert_eq!(fill_sequence(&g, &pruned), prefix);
        }
    }
}

/// Pruning actually fires on instances where the ranked frontier is not
/// flat — and still emits the identical stream. The single 3×3 grid
/// exercises the direct engine (it has one atom); the glued grids exercise
/// the factorized merge and the per-atom streams.
#[test]
fn pruning_fires_on_grid_corpus() {
    let grid3x3 = Graph::from_edges(
        9,
        &[
            (0, 1),
            (1, 2),
            (3, 4),
            (4, 5),
            (6, 7),
            (7, 8),
            (0, 3),
            (3, 6),
            (1, 4),
            (4, 7),
            (2, 5),
            (5, 8),
        ],
    );
    for (name, g, level) in [
        ("grid3x3", &grid3x3, ReductionLevel::Off),
        ("glued_grids", &glued_grids(3, 3, 2), ReductionLevel::Full),
    ] {
        let pruned = run(g, &FillIn, 1, level, PruningPolicy::Incumbent, Some(10));
        let plain = run(g, &FillIn, 1, level, PruningPolicy::Off, Some(10));
        assert_eq!(costs(&plain), costs(&pruned), "{name}");
        assert_eq!(fill_sequence(g, &plain), fill_sequence(g, &pruned));
        assert!(
            pruned.stats.nodes_pruned > 0,
            "pruning should defer work on {name} at level={level}"
        );
        assert!(
            pruned.stats.nodes_explored <= plain.stats.nodes_explored,
            "pruning must never explore more than the plain run"
        );
        assert!(pruned.stats.incumbent_cost.is_some());
    }
}
