//! Correctness of the content-addressed atom cache: enumeration through a
//! cache-enabled reduced session — cold (empty store), warm (seeded by a
//! previous session), under LRU pressure, or against an on-disk store —
//! must stay equivalent to the direct engine: identical ranked cost
//! sequences and identical triangulation sets (triangulations compare as
//! fill-edge sets of the original graph, which quotients out the canonical
//! relabeling the cache enumerates under).
//!
//! Also covered here: canonical-form invariance under random relabeling
//! (the property the whole cache keying rests on) and rejection of
//! version-mismatched on-disk cache files.

mod common;

use common::{arbitrary_graph, fill_key};
use mtr_cache::{AtomStore, DiskBackend, DiskError, FORMAT_VERSION};
use mtr_core::cost::{CostValue, FillIn, Width};
use mtr_core::{BagCost, CachePolicy, Enumerate, EnumerationRun};
use mtr_graph::{Graph, Vertex};
use mtr_reduce::{EnumerateReduceExt, ReductionLevel};
use mtr_workloads::decomposable::{
    evolving_sequence, glued_grids, gnp_with_bridges, star_of_cliques,
};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

fn run_direct(g: &Graph, cost: &(dyn BagCost + Sync), k: Option<usize>) -> EnumerationRun {
    let mut session = Enumerate::on(g).cost(cost);
    if let Some(k) = k {
        session = session.max_results(k);
    }
    session.run().expect("direct session cannot fail")
}

fn run_cached(
    g: &Graph,
    cost: &(dyn BagCost + Sync),
    k: Option<usize>,
    threads: usize,
    store: Arc<AtomStore>,
) -> EnumerationRun {
    let mut session = Enumerate::on(g).cost(cost).threads(threads);
    if let Some(k) = k {
        session = session.max_results(k);
    }
    session
        .reduce(ReductionLevel::Full)
        .store(store)
        .run()
        .expect("cached session cannot fail")
}

fn costs(run: &EnumerationRun) -> Vec<CostValue> {
    run.results.iter().map(|r| r.cost).collect()
}

fn fill_multiset(g: &Graph, run: &EnumerationRun) -> BTreeSet<Vec<(Vertex, Vertex)>> {
    let set: BTreeSet<_> = run
        .results
        .iter()
        .map(|r| fill_key(g, &r.triangulation))
        .collect();
    assert_eq!(
        set.len(),
        run.results.len(),
        "enumeration must not emit duplicates"
    );
    set
}

/// The full equivalence check: direct ≡ cold ≡ warm on one store, at the
/// given thread count, full streams.
fn assert_cache_equivalent(g: &Graph, cost: &(dyn BagCost + Sync), threads: usize) {
    let direct = run_direct(g, cost, None);
    let store = AtomStore::in_memory(1 << 22);
    let cold = run_cached(g, cost, None, threads, store.clone());
    let warm = run_cached(g, cost, None, threads, store);
    let name = cost.name();
    assert_eq!(
        costs(&direct),
        costs(&cold),
        "cold cost sequence mismatch under {name} at {threads} threads"
    );
    assert_eq!(
        costs(&cold),
        costs(&warm),
        "warm cost sequence mismatch under {name} at {threads} threads"
    );
    assert_eq!(fill_multiset(g, &direct), fill_multiset(g, &cold));
    assert_eq!(fill_multiset(g, &cold), fill_multiset(g, &warm));
    // A warm session never misses what the cold one published.
    assert_eq!(warm.stats.atom_cache_misses, 0, "warm run missed ({name})");
}

/// Deterministic pseudo-random permutation of `0..n`.
fn permutation(n: u32, seed: u64) -> Vec<Vertex> {
    let mut order: Vec<Vertex> = (0..n).collect();
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    for i in (1..n as usize).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let j = (state % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mtr_cache_eq_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

// ---------------------------------------------------------------------------
// Property tests
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Both combine modes (fill-in = Additive, width = Max), sequential:
    /// warm ≡ cold ≡ direct on random graphs.
    #[test]
    fn cached_streams_match_direct_sequential(g in arbitrary_graph(4, 9)) {
        assert_cache_equivalent(&g, &FillIn, 1);
        assert_cache_equivalent(&g, &Width, 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The same equivalence with the worker pool active (threads = 4):
    /// seeding, lazy replay, prefetch publication, and the merge must all
    /// stay invisible in the output.
    #[test]
    fn cached_streams_match_direct_threaded(g in arbitrary_graph(4, 8)) {
        assert_cache_equivalent(&g, &FillIn, 4);
        assert_cache_equivalent(&g, &Width, 4);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Canonical forms are invariant under relabeling: the property the
    /// cache keying rests on.
    #[test]
    fn canonical_key_invariant_under_relabeling(
        g in arbitrary_graph(2, 10),
        seed in 1u32..10_000,
    ) {
        let base = g.canonical_form();
        let order = permutation(g.n(), seed as u64);
        let relabeled = g.relabeled(&order);
        let form = relabeled.canonical_form();
        prop_assert_eq!(base.key, form.key);
        // The recorded order really reconstructs one canonical graph: both
        // sides relabeled by their own canonical order are equal.
        prop_assert_eq!(
            g.relabeled(&base.order),
            relabeled.relabeled(&form.order)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A store too small to hold everything (forcing LRU eviction mid-run
    /// and between runs) affects performance only, never results.
    #[test]
    fn lru_pressure_keeps_streams_correct(g in arbitrary_graph(5, 9)) {
        let direct = run_direct(&g, &FillIn, None);
        let tiny = AtomStore::in_memory(256);
        let cold = run_cached(&g, &FillIn, None, 1, tiny.clone());
        let warm = run_cached(&g, &FillIn, None, 1, tiny.clone());
        prop_assert_eq!(costs(&direct), costs(&cold));
        prop_assert_eq!(costs(&cold), costs(&warm));
        prop_assert_eq!(fill_multiset(&g, &direct), fill_multiset(&g, &warm));
        prop_assert!(tiny.stats().bytes <= 256);
    }
}

// ---------------------------------------------------------------------------
// Corpus checks
// ---------------------------------------------------------------------------

/// The decomposable corpus: first-25 cost-sequence equivalence for both
/// costs at threads 1 and 4, against one shared store (so later runs may
/// hit prefixes published by earlier ones — exactly the production
/// pattern). Fill sets are compared on *full* streams only (see the
/// property tests): under a top-K budget, equal-cost plateaus are cut at
/// an arbitrary tie order, which the canonical relabeling may permute.
#[test]
fn corpus_first_25_equivalence() {
    let instances: Vec<(&str, Graph)> = vec![
        ("glued_grids3x3", glued_grids(3, 3, 2)),
        ("star_of_cliques3x3", star_of_cliques(3, 3, 2)),
        ("gnp_bridges2x8", gnp_with_bridges(2, 8, 0.3, 800)),
    ];
    const K: usize = 25;
    let store = AtomStore::in_memory(1 << 22);
    for (name, g) in &instances {
        for cost in [&FillIn as &(dyn BagCost + Sync), &Width] {
            let direct = run_direct(g, cost, Some(K));
            for threads in [1, 4] {
                let cached = run_cached(g, cost, Some(K), threads, store.clone());
                assert_eq!(
                    costs(&direct),
                    costs(&cached),
                    "{name} under {} at {threads} threads",
                    cost.name()
                );
            }
        }
    }
}

/// The evolving-sequence workload: enumerate every snapshot against one
/// store; every step after the base must hit the cache (it shares all but
/// one atom with its predecessor) while staying equivalent to direct.
#[test]
fn evolving_sequence_reuses_across_sessions() {
    let steps = evolving_sequence(3, 8, 0.3, 3, 900);
    let store = AtomStore::in_memory(1 << 22);
    let mut total_hits = 0usize;
    for (i, g) in steps.iter().enumerate() {
        let direct = run_direct(g, &FillIn, Some(10));
        let cached = run_cached(g, &FillIn, Some(10), 1, store.clone());
        assert_eq!(costs(&direct), costs(&cached), "snapshot {i}");
        if i > 0 {
            assert!(
                cached.stats.atom_cache_hits > 0,
                "snapshot {i} shares atoms with snapshot {}",
                i - 1
            );
        }
        total_hits += cached.stats.atom_cache_hits;
    }
    assert!(total_hits >= steps.len() - 1);
}

/// Budgeted warm sessions produce exact prefixes of the unbudgeted cold
/// stream (budget semantics are cache-oblivious).
#[test]
fn warm_budgets_are_prefixes() {
    let g = glued_grids(3, 3, 2);
    let store = AtomStore::in_memory(1 << 22);
    let full = run_cached(&g, &FillIn, None, 1, store.clone());
    for k in [1, 3, 7] {
        let capped = run_cached(&g, &FillIn, Some(k), 1, store.clone());
        assert_eq!(capped.results.len(), k.min(full.results.len()));
        for (a, b) in capped.results.iter().zip(&full.results) {
            assert_eq!(a.cost, b.cost);
        }
    }
}

// ---------------------------------------------------------------------------
// On-disk persistence
// ---------------------------------------------------------------------------

/// Round trip through `CachePolicy::Dir`: a second "process" (fresh
/// session, same directory) serves its atoms from disk and matches.
#[test]
fn disk_store_round_trips_across_sessions() {
    let dir = tmpdir("roundtrip");
    let g = gnp_with_bridges(2, 8, 0.3, 801);
    let direct = run_direct(&g, &FillIn, Some(15));
    let run_dir = |g: &Graph| {
        Enumerate::on(g)
            .cost(&FillIn)
            .max_results(15)
            .cache(CachePolicy::Dir(dir.clone()))
            .reduce(ReductionLevel::Full)
            .run()
            .expect("dir-cached session cannot fail")
    };
    let cold = run_dir(&g);
    assert!(cold.stats.atom_cache_misses > 0, "first run is cold");
    // A fresh store over the same directory: warm from disk alone.
    let warm = run_dir(&g);
    assert!(warm.stats.atom_cache_hits > 0, "second run loads from disk");
    assert_eq!(warm.stats.atom_cache_misses, 0);
    assert_eq!(costs(&direct), costs(&cold));
    assert_eq!(costs(&cold), costs(&warm));
    assert_eq!(fill_multiset(&g, &direct), fill_multiset(&g, &warm));
    std::fs::remove_dir_all(&dir).ok();
}

/// Files written by a different format version are rejected (typed error
/// at the backend layer, clean miss at the session layer).
#[test]
fn disk_version_mismatch_is_rejected() {
    let dir = tmpdir("version");
    // Denser blobs: this instance has two non-chordal (i.e. cache-keyed)
    // atoms, so the cold run persists files this test can poison.
    let g = gnp_with_bridges(2, 10, 0.4, 802);
    let run_dir = |g: &Graph| {
        Enumerate::on(g)
            .cost(&FillIn)
            .max_results(10)
            .cache(CachePolicy::Dir(dir.clone()))
            .reduce(ReductionLevel::Full)
            .run()
            .expect("dir-cached session cannot fail")
    };
    let cold = run_dir(&g);
    assert!(cold.stats.cache_bytes > 0);
    // Corrupt every cache file's version header.
    let mut files = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 7).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        files += 1;
    }
    assert!(files > 0, "the cold run persisted at least one atom");
    // The backend reports the typed error…
    let backend = DiskBackend::open(&dir).unwrap();
    let key = mtr_cache::AtomKey {
        graph: mtr_graph::CanonicalKey::from_words([0, 0]),
        cost_id: "fill-in".into(),
        width_bound: None,
    };
    assert!(backend.load(&key).ok().flatten().is_none());
    // …and a session over the poisoned directory treats every file as a
    // miss: zero hits, correct results, and it re-publishes good files.
    let repaired = run_dir(&g);
    assert_eq!(repaired.stats.atom_cache_hits, 0, "stale files never hit");
    assert_eq!(costs(&cold), costs(&repaired));
    let warm = run_dir(&g);
    assert!(
        warm.stats.atom_cache_hits > 0,
        "re-published files hit again"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The version-mismatch error is distinguishable at the backend API (the
/// property the repair path above relies on).
#[test]
fn disk_backend_reports_version_mismatch_error() {
    let dir = tmpdir("typed");
    let backend = DiskBackend::open(&dir).unwrap();
    let key = mtr_cache::AtomKey {
        graph: mtr_graph::CanonicalKey::from_words([11, 22]),
        cost_id: "width".into(),
        width_bound: None,
    };
    backend
        .store(
            &key,
            &mtr_cache::CachedPrefix {
                entries: vec![mtr_cache::CacheEntry {
                    cost: 1.0,
                    fill: vec![(0, 1)],
                }],
                complete: true,
            },
        )
        .unwrap();
    let path = backend.path_of(&key);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        backend.load(&key),
        Err(DiskError::VersionMismatch { .. })
    ));
    std::fs::remove_dir_all(&dir).ok();
}
