//! End-to-end integration tests spanning the workload generators, the
//! experiment harness and the enumeration stack — the paths the benchmark
//! binaries exercise, at smoke scale so they run in CI time.

mod common;

use common::arbitrary_graph;
use mtr_chordal::{is_minimal_triangulation, treewidth_upper_bound};
use mtr_core::cost::{FillIn, Width};
use mtr_core::{min_triangulation, CkkEnumerator, Enumerate, Preprocessed};
use mtr_graph::io;
use mtr_workloads::experiment::{
    classify_graph, compare_on_graph, random_minsep_study, run_ckk, run_ranked, tractability_study,
    CostKind, TractabilityBudget, TractabilityStatus,
};
use mtr_workloads::{all_datasets, DatasetScale};
use proptest::prelude::*;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The measurement harness agrees with the enumerators it wraps on
    /// arbitrary small graphs: same result count, and the recorded quality
    /// extrema match a direct ranked run.
    #[test]
    fn harness_runs_agree_with_direct_enumeration(g in arbitrary_graph(3, 7)) {
        let budget = Duration::from_secs(5);
        let ranked = run_ranked(&g, CostKind::Fill, budget).expect("small graphs initialize");
        prop_assert!(ranked.exhausted, "5s must exhaust a ≤7-vertex graph");
        let pre = Preprocessed::new(&g);
        let direct = Enumerate::with(&pre).cost(&FillIn).run().unwrap().results;
        prop_assert_eq!(ranked.count(), direct.len());
        prop_assert_eq!(ranked.min_fill(), direct.iter().map(|r| r.fill_in(&g)).min());
        prop_assert_eq!(ranked.min_width(), direct.iter().map(|r| r.width()).min());
        // The fill-ranked stream reports its optimum in the first sample.
        if let (Some(first), Some(best)) = (ranked.samples.first(), ranked.min_fill()) {
            prop_assert_eq!(first.fill, best);
        }
        // The unranked baseline sees the same number of triangulations.
        let ckk = run_ckk(&g, budget);
        prop_assert!(ckk.exhausted);
        prop_assert_eq!(ckk.count(), direct.len());
    }
}

#[test]
fn smoke_datasets_flow_through_the_whole_pipeline() {
    let datasets = all_datasets(DatasetScale::Smoke);
    let budget = TractabilityBudget {
        minsep_time: Duration::from_secs(1),
        minsep_limit: 50_000,
        pmc_time: Duration::from_secs(3),
    };
    let mut enumerated_somewhere = false;
    for dataset in &datasets {
        for inst in &dataset.instances {
            let (status, seps, pmcs, _, _) = classify_graph(&inst.graph, &budget);
            if status != TractabilityStatus::Terminated {
                continue;
            }
            let seps = seps.unwrap();
            let pmcs = pmcs.unwrap();
            assert!(pmcs >= 1, "{} should have at least one PMC", inst.name);
            // Exact optimum respects the heuristic upper bound and the
            // enumeration agrees with the baseline on the first few results.
            let pre = Preprocessed::new(&inst.graph);
            assert_eq!(pre.minimal_separators().len(), seps);
            assert_eq!(pre.pmcs().len(), pmcs);
            let best = min_triangulation(&pre, &Width).expect("graph has a triangulation");
            let ub = treewidth_upper_bound(&inst.graph);
            assert!(
                best.width() <= ub.width,
                "{}: exact width {} exceeds heuristic bound {}",
                inst.name,
                best.width(),
                ub.width
            );
            assert!(is_minimal_triangulation(&inst.graph, &best.graph));
            // First three ranked results are sound and ordered.
            let ranked = Enumerate::with(&pre)
                .cost(&FillIn)
                .max_results(3)
                .run()
                .unwrap()
                .results;
            assert!(!ranked.is_empty());
            for w in ranked.windows(2) {
                assert!(w[0].cost <= w[1].cost);
            }
            // Baseline produces the same optimum width eventually (bounded pull).
            let ckk_best_width = CkkEnumerator::new(&inst.graph)
                .take(50)
                .map(|r| r.width)
                .min()
                .unwrap();
            assert!(ckk_best_width >= best.width());
            enumerated_somewhere = true;
        }
    }
    assert!(
        enumerated_somewhere,
        "no smoke instance was tractable — budgets too small"
    );
}

#[test]
fn comparison_harness_smoke() {
    let datasets = all_datasets(DatasetScale::Smoke);
    // Pick the TPC-H family: tiny graphs, instant enumeration.
    let tpch = datasets
        .iter()
        .find(|d| d.name == "tpch-like")
        .expect("tpch-like family exists");
    for inst in &tpch.instances {
        let cmp = compare_on_graph(&inst.name, &inst.graph, Duration::from_secs(2));
        let rw = cmp.ranked_width.expect("tiny graphs initialize instantly");
        let rf = cmp.ranked_fill.expect("tiny graphs initialize instantly");
        assert!(
            rw.exhausted,
            "{}: budget should be enough to finish",
            inst.name
        );
        assert_eq!(rw.count(), cmp.ckk.count(), "{}", inst.name);
        assert_eq!(rf.count(), cmp.ckk.count(), "{}", inst.name);
        // The ranked stream's first sample attains the best width.
        if let (Some(first), Some(best)) = (rw.samples.first(), rw.min_width()) {
            assert_eq!(first.width, best);
        }
    }
}

#[test]
fn random_minsep_study_shape_is_unimodal_in_expectation() {
    // The separator count at p=0.05 and p=0.95 should be well below the
    // count around p=0.25 for n=20 (the paper's Figure 7 phenomenon).
    let rows = random_minsep_study(
        &[20],
        &[0.05, 0.25, 0.95],
        3,
        1_000_000,
        Duration::from_secs(10),
    );
    let avg = |p: f64| {
        let pts: Vec<usize> = rows
            .iter()
            .filter(|r| (r.p - p).abs() < 1e-9)
            .filter_map(|r| r.num_minseps)
            .collect();
        pts.iter().sum::<usize>() as f64 / pts.len().max(1) as f64
    };
    let sparse = avg(0.05);
    let middle = avg(0.25);
    let dense = avg(0.95);
    assert!(
        middle > sparse,
        "middle {middle} should exceed sparse {sparse}"
    );
    assert!(
        middle > dense,
        "middle {middle} should exceed dense {dense}"
    );
}

#[test]
fn tractability_study_runs_over_families() {
    let datasets = all_datasets(DatasetScale::Smoke);
    let budget = TractabilityBudget {
        minsep_time: Duration::from_millis(500),
        minsep_limit: 20_000,
        pmc_time: Duration::from_secs(1),
    };
    let rows = tractability_study(&datasets, &budget);
    assert_eq!(rows.len(), datasets.iter().map(|d| d.len()).sum::<usize>());
    // At least the query graphs must terminate even at these tiny budgets.
    assert!(rows
        .iter()
        .filter(|r| r.dataset == "tpch-like")
        .all(|r| r.status == TractabilityStatus::Terminated));
}

#[test]
fn cost_kind_round_trip() {
    assert_eq!(CostKind::Width.label(), "width");
    assert_eq!(CostKind::Fill.label(), "fill");
    assert_eq!(CostKind::Width.cost().name(), "width");
    assert_eq!(CostKind::Fill.cost().name(), "fill-in");
}

#[test]
fn generated_graphs_round_trip_through_pace_format() {
    for dataset in all_datasets(DatasetScale::Smoke) {
        for inst in &dataset.instances {
            let text = io::write_pace(&inst.graph);
            let parsed = io::parse_pace(&text).expect("generated graphs serialize cleanly");
            assert_eq!(parsed, inst.graph, "round-trip failed for {}", inst.name);
        }
    }
}

#[test]
fn clique_trees_of_enumerated_results_serialize_to_td() {
    use mtr_chordal::{clique_tree, parse_td, write_td};
    let g = mtr_workloads::structured::grid(3, 3);
    let pre = Preprocessed::new(&g);
    let run = Enumerate::with(&pre)
        .cost(&Width)
        .max_results(5)
        .run()
        .unwrap();
    for result in &run.results {
        let tree = clique_tree(&result.triangulation).expect("chordal");
        let text = write_td(&tree, g.n());
        let (parsed, n) = parse_td(&text).expect("own output parses");
        assert_eq!(n, g.n());
        assert!(parsed.is_valid(&g));
        assert_eq!(parsed.width(), result.width());
    }
}
