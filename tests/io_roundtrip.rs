//! Round-trip property tests for the three graph serialization formats:
//! `parse(write(g)) == g` for PACE `.gr`, DIMACS `.col`, and plain edge
//! lists, on arbitrary graphs (including disconnected ones and graphs with
//! isolated trailing vertices, which only survive thanks to the headers).

mod common;

use common::arbitrary_graph;
use mtr_graph::io::{
    parse_dimacs, parse_edge_list, parse_pace, write_dimacs, write_edge_list, write_pace,
};
use mtr_graph::Graph;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pace_roundtrip(g in arbitrary_graph(1, 24)) {
        let written = write_pace(&g);
        let parsed = parse_pace(&written).expect("own output must parse");
        prop_assert_eq!(parsed, g);
    }

    #[test]
    fn dimacs_roundtrip(g in arbitrary_graph(1, 24)) {
        let written = write_dimacs(&g);
        let parsed = parse_dimacs(&written).expect("own output must parse");
        prop_assert_eq!(parsed, g);
    }

    #[test]
    fn edge_list_roundtrip(g in arbitrary_graph(1, 24)) {
        let written = write_edge_list(&g);
        let parsed = parse_edge_list(&written).expect("own output must parse");
        prop_assert_eq!(parsed, g);
    }

    /// Cross-format: PACE and DIMACS encode the same graph.
    #[test]
    fn pace_and_dimacs_agree(g in arbitrary_graph(1, 16)) {
        let via_pace = parse_pace(&write_pace(&g)).unwrap();
        let via_dimacs = parse_dimacs(&write_dimacs(&g)).unwrap();
        prop_assert_eq!(via_pace, via_dimacs);
    }
}

#[test]
fn empty_and_isolated_graphs_roundtrip() {
    for g in [Graph::new(0), Graph::new(5)] {
        assert_eq!(parse_pace(&write_pace(&g)).unwrap(), g);
        assert_eq!(parse_dimacs(&write_dimacs(&g)).unwrap(), g);
        assert_eq!(parse_edge_list(&write_edge_list(&g)).unwrap(), g);
    }
}
