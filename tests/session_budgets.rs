//! Integration tests for the `Enumerate` session budgets on realistic
//! `mtr-workloads` instances: deadline-budgeted sessions must terminate
//! early with the right [`StopReason`] and hand back a valid, correctly
//! ranked prefix of the result stream.

use ranked_triangulations::prelude::*;
use ranked_triangulations::workloads::{random, structured};
use std::time::Duration;

/// The acceptance scenario: a large instance (the Mycielski-5 CSP graph of
/// the paper's Figure 9 case study — far too many minimal triangulations to
/// exhaust) under a wall-clock deadline. The session must stop with
/// [`StopReason::DeadlineExceeded`] and the partial results must be sound
/// and ranked. Preprocessing is paid outside the deadline so the test is
/// immune to slow machines: the whole budget is available for results.
#[test]
fn deadline_terminates_early_with_valid_partial_results() {
    let g = structured::mycielski(5);
    let pre = Preprocessed::new(&g);
    let deadline = Duration::from_secs(2);
    let run = Enumerate::with(&pre)
        .cost(&FillIn)
        .deadline(deadline)
        .run()
        .expect("a deadline-only session cannot be misconfigured");

    assert_eq!(run.stop_reason, StopReason::DeadlineExceeded);
    assert!(run.stats.preprocessing_complete);
    assert!(
        !run.results.is_empty(),
        "a 2s deadline leaves time for at least one result"
    );
    // The deadline is checked between results, so the overshoot is bounded
    // by one result delay (generously bounded here for slow machines).
    assert!(run.stats.total >= deadline);
    assert!(run.stats.total < deadline + Duration::from_secs(60));
    // Partial results are valid minimal triangulations, ranked by cost.
    for r in &run.results {
        assert!(is_minimal_triangulation(&g, &r.triangulation));
    }
    for w in run.results.windows(2) {
        assert!(w[0].cost <= w[1].cost);
    }
    assert_eq!(run.stats.results, run.results.len());
    assert_eq!(run.stats.delays.len(), run.results.len());
    assert_eq!(run.stats.duplicates_skipped, 0);
}

/// The same scenario with preprocessing inside the deadline
/// (`Enumerate::on`): the session still stops with `DeadlineExceeded`, and
/// whatever prefix it produced is sound — on a fast machine some results,
/// on a slow one possibly none (or an aborted initialization).
#[test]
fn deadline_covers_in_session_preprocessing() {
    let g = structured::mycielski(5);
    let deadline = Duration::from_secs(3);
    let run = Enumerate::on(&g)
        .cost(&FillIn)
        .deadline(deadline)
        .run()
        .expect("a deadline-only session cannot be misconfigured");
    assert_eq!(run.stop_reason, StopReason::DeadlineExceeded);
    for r in &run.results {
        assert!(is_minimal_triangulation(&g, &r.triangulation));
    }
    for w in run.results.windows(2) {
        assert!(w[0].cost <= w[1].cost);
    }
}

/// A deadline too small for the initialization itself: the session reports
/// the aborted preprocessing instead of hanging or panicking.
#[test]
fn deadline_can_abort_preprocessing() {
    // Dense-ish G(n, p) with an expensive PMC enumeration.
    let g = random::gnp_connected(30, 0.15, 5);
    let run = Enumerate::on(&g)
        .cost(&Width)
        .deadline(Duration::from_millis(1))
        .run()
        .expect("a deadline-only session cannot be misconfigured");
    assert_eq!(run.stop_reason, StopReason::DeadlineExceeded);
    assert!(!run.stats.preprocessing_complete);
    assert!(run.results.is_empty());
}

/// Budgets compose: whichever budget trips first determines the reason, and
/// the results are a prefix of the unbudgeted stream in every case.
#[test]
fn composed_budgets_report_the_binding_constraint() {
    let g = structured::grid(3, 3);
    let pre = Preprocessed::new(&g);
    let full = Enumerate::with(&pre)
        .cost(&FillIn)
        .run()
        .expect("session is well-configured");
    assert_eq!(full.stop_reason, StopReason::Exhausted);

    let capped = Enumerate::with(&pre)
        .cost(&FillIn)
        .max_results(4)
        .deadline(Duration::from_secs(3600))
        .node_budget(1_000_000)
        .run()
        .expect("session is well-configured");
    assert_eq!(capped.stop_reason, StopReason::MaxResults);
    assert_eq!(capped.results.len(), 4);
    for (c, f) in capped.results.iter().zip(&full.results) {
        assert_eq!(c.cost, f.cost);
    }

    let node_bound = Enumerate::with(&pre)
        .cost(&FillIn)
        .max_results(usize::MAX)
        .node_budget(2)
        .run()
        .expect("session is well-configured");
    assert_eq!(node_bound.stop_reason, StopReason::NodeBudgetExhausted);
    assert!(node_bound.results.len() <= full.results.len());
    for (b, f) in node_bound.results.iter().zip(&full.results) {
        assert_eq!(b.cost, f.cost);
    }
}

/// Cooperative cancellation: raising the [`CancelFlag`] mid-stream stops
/// the session with [`StopReason::Cancelled`], and the partial results are
/// a valid ranked prefix of the unbudgeted stream — the daemon's contract
/// for client disconnects.
#[test]
fn cancelled_session_returns_valid_partial_results() {
    let g = structured::grid(3, 3);
    let pre = Preprocessed::new(&g);
    let full = Enumerate::with(&pre)
        .cost(&FillIn)
        .run()
        .expect("session is well-configured");
    assert_eq!(full.stop_reason, StopReason::Exhausted);
    assert!(full.results.len() > 4, "grid(3,3) has many triangulations");

    let flag = CancelFlag::new();
    let cancel_after = 3;
    let mut seen = Vec::new();
    let trigger = flag.clone();
    let report = Enumerate::with(&pre)
        .cost(&FillIn)
        .cancel_flag(flag)
        .drive(|r| {
            seen.push(r);
            if seen.len() == cancel_after {
                // Raised from inside the stream, observed at the next
                // demand boundary — exactly the disconnect pattern.
                trigger.cancel();
            }
            std::ops::ControlFlow::Continue(())
        })
        .expect("session is well-configured");

    assert_eq!(report.stop_reason, StopReason::Cancelled);
    assert_eq!(seen.len(), cancel_after);
    for r in &seen {
        assert!(is_minimal_triangulation(&g, &r.triangulation));
    }
    // The cancelled prefix matches the unbudgeted stream rank-for-rank.
    for (c, f) in seen.iter().zip(&full.results) {
        assert_eq!(c.cost, f.cost);
    }

    // A flag raised before the run starts yields an empty Cancelled run.
    let pre_raised = CancelFlag::new();
    pre_raised.cancel();
    let run = Enumerate::with(&pre)
        .cost(&FillIn)
        .cancel_flag(pre_raised)
        .run()
        .expect("session is well-configured");
    assert_eq!(run.stop_reason, StopReason::Cancelled);
    assert!(run.results.is_empty());
}

/// Cancellation reaches the parallel engine's demand boundary too.
#[test]
fn cancelled_parallel_session_stops() {
    let g = structured::mycielski(5);
    let flag = CancelFlag::new();
    let trigger = flag.clone();
    let mut seen = 0usize;
    let report = Enumerate::on(&g)
        .cost(&FillIn)
        .threads(2)
        .cancel_flag(flag)
        .drive(|_| {
            seen += 1;
            if seen == 2 {
                trigger.cancel();
            }
            std::ops::ControlFlow::Continue(())
        })
        .expect("session is well-configured");
    assert_eq!(report.stop_reason, StopReason::Cancelled);
    assert!(seen >= 2);
}

/// The deadline applies to proper-tree-decomposition sessions too.
#[test]
fn decomposition_sessions_respect_deadlines() {
    let g = structured::mycielski(4);
    let run = Enumerate::on(&g)
        .cost(&Width)
        .proper_decompositions(Some(2))
        .deadline(Duration::from_millis(1500))
        .run_decompositions()
        .expect("session is well-configured");
    assert!(matches!(
        run.stop_reason,
        StopReason::DeadlineExceeded | StopReason::Exhausted
    ));
    for d in &run.results {
        assert!(d.decomposition.is_valid(&g));
    }
    for w in run.results.windows(2) {
        assert!(w[0].cost <= w[1].cost);
    }
}
