//! Property tests for the cost-function layer: the semantics the ranked
//! enumeration relies on (Section 3 and Lemma 6.2 of the paper), checked
//! empirically over random graphs and over the full set of their minimal
//! triangulations.

mod common;

use common::arbitrary_graph;
use mtr_core::cost::{
    BagCost, Constrained, Constraints, CostValue, FillIn, WeightedFillIn, WeightedWidth, Width,
    WidthThenFill,
};
use mtr_core::{all_triangulations_ranked, Enumerate, Preprocessed};
use mtr_graph::Graph;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Evaluating a cost on the bags of an enumerated triangulation agrees
    /// with the direct definition of that cost on the triangulation graph:
    /// width = largest clique - 1, fill = |E(H)| - |E(G)|, and the weighted
    /// variants with unit weights coincide with bag size / plain fill.
    #[test]
    fn classic_costs_agree_with_direct_definitions(g in arbitrary_graph(3, 7)) {
        let scope = g.vertex_set();
        let unit_vertex_weights = WeightedWidth::new(vec![1.0; g.n() as usize]);
        let unit_edge_costs = WeightedFillIn::new(1.0, Vec::new());
        for t in all_triangulations_ranked(&g, &FillIn) {
            let width = Width.cost_of_bags(&g, &scope, &t.bags);
            prop_assert_eq!(width, CostValue::from_usize(t.width()));
            let fill = FillIn.cost_of_bags(&g, &scope, &t.bags);
            prop_assert_eq!(fill, CostValue::from_usize(t.fill_in(&g)));
            // Unit vertex weights: bag weight = bag size, so the cost is
            // width + 1 (no "-1" in the weighted definition).
            let ww = unit_vertex_weights.cost_of_bags(&g, &scope, &t.bags);
            prop_assert_eq!(ww, CostValue::from_usize(t.width() + 1));
            // Unit edge costs: weighted fill equals plain fill.
            let wf = unit_edge_costs.cost_of_bags(&g, &scope, &t.bags);
            prop_assert_eq!(wf, fill);
        }
    }

    /// `WidthThenFill` realizes the lexicographic (width, fill) order over
    /// the minimal triangulations of a graph.
    #[test]
    fn width_then_fill_is_lexicographic(g in arbitrary_graph(3, 7)) {
        let scope = g.vertex_set();
        let all = all_triangulations_ranked(&g, &FillIn);
        for a in &all {
            for b in &all {
                let ca = WidthThenFill.cost_of_bags(&g, &scope, &a.bags);
                let cb = WidthThenFill.cost_of_bags(&g, &scope, &b.bags);
                let lex_a = (a.width(), a.fill_in(&g));
                let lex_b = (b.width(), b.fill_in(&g));
                if lex_a < lex_b {
                    prop_assert!(ca < cb, "lexicographic order not respected: {lex_a:?} vs {lex_b:?}");
                }
                if lex_a == lex_b {
                    prop_assert_eq!(ca, cb);
                }
            }
        }
    }

    /// Lemma 6.2 semantics: the compiled cost κ[I, X] equals the inner cost
    /// on triangulations satisfying the constraints and ∞ on the others, and
    /// the constrained enumeration returns exactly the satisfying subset in
    /// the same relative order.
    #[test]
    fn constrained_cost_partitions_the_space(g in arbitrary_graph(4, 7)) {
        let pre = Preprocessed::new(&g);
        let all = all_triangulations_ranked(&g, &FillIn);
        prop_assume!(!all.is_empty());
        // Pick the first result's first separator as the include constraint
        // and its second (if any) as the exclude constraint.
        let seps = &all[0].minimal_separators;
        prop_assume!(!seps.is_empty());
        let include = vec![seps[0].clone()];
        let exclude = if seps.len() > 1 { vec![seps[1].clone()] } else { Vec::new() };
        let constraints = Constraints::new(include, exclude);
        let constrained = Constrained::new(&FillIn, &constraints);
        let scope = g.vertex_set();
        // Point-wise semantics.
        for t in &all {
            let value = constrained.cost_of_bags(&g, &scope, &t.bags);
            if constraints.satisfied_by_graph(&t.triangulation) {
                prop_assert_eq!(value, CostValue::from_usize(t.fill_in(&g)));
            } else {
                prop_assert!(value.is_infinite());
            }
        }
        // Enumerating with the compiled cost yields exactly the satisfying
        // triangulations (the infinite-cost ones are suppressed by the
        // enumerator), in non-decreasing fill order.
        let constrained_results = Enumerate::with(&pre).cost(&constrained).run().unwrap().results;
        let expected: Vec<_> = all
            .iter()
            .filter(|t| constraints.satisfied_by_graph(&t.triangulation))
            .collect();
        prop_assert_eq!(constrained_results.len(), expected.len());
        for w in constrained_results.windows(2) {
            prop_assert!(w[0].cost <= w[1].cost);
        }
        for r in &constrained_results {
            prop_assert!(constraints.satisfied_by_graph(&r.triangulation));
        }
    }

    /// Optimizing one cost never beats the dedicated optimum of another
    /// cost: min-width over the fill-ranked stream is ≥ the width optimum,
    /// and vice versa (a cross-consistency check between `MinTriang` runs).
    #[test]
    fn cross_cost_optima_are_consistent(g in arbitrary_graph(3, 8)) {
        let pre = Preprocessed::new(&g);
        let best_width = mtr_core::min_triangulation(&pre, &Width).unwrap();
        let best_fill = mtr_core::min_triangulation(&pre, &FillIn).unwrap();
        prop_assert!(best_width.width() <= best_fill.width());
        prop_assert!(best_fill.fill_in(&g) <= best_width.fill_in(&g));
        // And the lexicographic optimum has the optimal width with the
        // smallest fill among width-optimal triangulations.
        let lex = mtr_core::min_triangulation(&pre, &WidthThenFill).unwrap();
        prop_assert_eq!(lex.width(), best_width.width());
        let min_fill_at_best_width = all_triangulations_ranked(&g, &FillIn)
            .into_iter()
            .filter(|t| t.width() == best_width.width())
            .map(|t| t.fill_in(&g))
            .min()
            .unwrap();
        prop_assert_eq!(lex.fill_in(&g), min_fill_at_best_width);
    }
}

/// A regression case pinning the exact costs of the paper's two
/// triangulations under every shipped cost function.
#[test]
fn paper_example_costs_are_pinned() {
    let g = mtr_graph::paper_example_graph();
    let all = all_triangulations_ranked(&g, &FillIn);
    assert_eq!(all.len(), 2);
    let (h2, h1) = (&all[0], &all[1]); // fill 1 first, fill 3 second
    let scope = g.vertex_set();
    let table: Vec<(&dyn BagCost, f64, f64)> = vec![
        (&Width, 2.0, 3.0),
        (&FillIn, 1.0, 3.0),
        (&WidthThenFill, 15.0, 24.0), // 7*2+1 and 7*3+3
    ];
    for (cost, expected_h2, expected_h1) in table {
        assert_eq!(
            cost.cost_of_bags(&g, &scope, &h2.bags),
            CostValue::finite(expected_h2),
            "{} on H2",
            cost.name()
        );
        assert_eq!(
            cost.cost_of_bags(&g, &scope, &h1.bags),
            CostValue::finite(expected_h1),
            "{} on H1",
            cost.name()
        );
    }
}

/// The `Graph`-level helpers the costs rely on stay consistent on random
/// inputs generated by the workload crate (a cross-crate smoke check).
#[test]
fn workload_graphs_have_consistent_edge_counts() {
    for seed in 0..5 {
        let g = mtr_workloads::random::gnp_connected(25, 0.15, seed);
        let m_from_edges = g.edges().count();
        assert_eq!(m_from_edges, g.m());
        let degree_sum: usize = g.vertices().map(|v| g.degree(v)).sum();
        assert_eq!(degree_sum, 2 * g.m());
        let missing = g.missing_edges_in(&g.vertex_set());
        assert_eq!(missing + g.m(), 25 * 24 / 2);
    }
}

/// Sanity on an adversarial shape: a graph that is one big clique minus a
/// perfect matching (dense, many separators of size n-2).
#[test]
fn clique_minus_matching() {
    let n = 8u32;
    let mut g = Graph::complete(n);
    for i in 0..n / 2 {
        g.remove_edge(2 * i, 2 * i + 1);
    }
    let pre = Preprocessed::new(&g);
    let results = Enumerate::with(&pre).cost(&FillIn).run().unwrap().results;
    // Each minimal triangulation adds chords for a subset of the "missing"
    // matching edges; there are 2^(n/2) - ... at least one and all are
    // minimal triangulations of fill ≤ n/2.
    assert!(!results.is_empty());
    for r in &results {
        assert!(mtr_chordal::is_minimal_triangulation(&g, &r.triangulation));
        assert!(r.fill_in(&g) <= (n / 2) as usize);
    }
    // Order is by fill.
    for w in results.windows(2) {
        assert!(w[0].cost <= w[1].cost);
    }
}
