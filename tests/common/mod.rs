//! Shared helpers for the integration/property test suites.

use mtr_graph::Graph;
use proptest::prelude::*;

/// Proptest strategy: a random graph with `n ∈ [min_n, max_n]` vertices where
/// each possible edge is present independently (roughly) with probability ~¼
/// to ~¾, chosen per case.
pub fn arbitrary_graph(min_n: u32, max_n: u32) -> impl Strategy<Value = Graph> {
    (min_n..=max_n)
        .prop_flat_map(|n| {
            let pairs = (n * (n - 1) / 2) as usize;
            (
                Just(n),
                prop::collection::vec(0u8..4, pairs),
                1u8..4, // density threshold: keep an edge when bit < threshold
            )
        })
        .prop_map(|(n, bits, threshold)| {
            let mut g = Graph::new(n);
            let mut idx = 0usize;
            for u in 0..n {
                for v in (u + 1)..n {
                    if bits[idx] < threshold {
                        g.add_edge(u, v);
                    }
                    idx += 1;
                }
            }
            g
        })
}

#[allow(dead_code)] // used by a subset of the test binaries that include this module
/// The canonical identity of a triangulation of `g`: its sorted fill set.
pub fn fill_key(g: &Graph, h: &Graph) -> Vec<(u32, u32)> {
    let mut fill = g.fill_edges_of(h);
    fill.sort_unstable();
    fill
}

#[allow(dead_code)] // used by a subset of the test binaries that include this module
/// Exhaustive enumeration of the minimal triangulations of a *small* graph
/// by trying every subset of the non-edges. Exponential — only for graphs
/// with at most ~14 non-edges.
pub fn all_minimal_triangulations_exhaustive(g: &Graph) -> Vec<Graph> {
    let non_edges: Vec<(u32, u32)> = (0..g.n())
        .flat_map(|u| ((u + 1)..g.n()).map(move |v| (u, v)))
        .filter(|&(u, v)| !g.has_edge(u, v))
        .collect();
    assert!(
        non_edges.len() <= 16,
        "exhaustive enumeration limited to 16 non-edges, got {}",
        non_edges.len()
    );
    let mut triangulations: Vec<Graph> = Vec::new();
    for mask in 0u32..(1u32 << non_edges.len()) {
        let mut h = g.clone();
        for (i, &(u, v)) in non_edges.iter().enumerate() {
            if (mask >> i) & 1 == 1 {
                h.add_edge(u, v);
            }
        }
        if mtr_chordal::is_chordal(&h) {
            triangulations.push(h);
        }
    }
    // Keep only the minimal ones (no other triangulation's fill set is a
    // strict subset).
    let minimal: Vec<Graph> = triangulations
        .iter()
        .filter(|h| {
            !triangulations
                .iter()
                .any(|h2| h2.m() < h.m() && h2.edges().all(|(u, v)| h.has_edge(u, v)))
        })
        .cloned()
        .collect();
    minimal
}
