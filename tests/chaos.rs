//! Chaos suite: fault injection against every hardened layer.
//!
//! The `mtr-fault` failpoints let these tests inject panics, I/O errors,
//! and transient failures at the exact seams the robustness work
//! hardened, and pin the invariants that must survive them:
//!
//! * A **panicking in-flight session** (a worker-pool task blowing up
//!   mid-request) fails that one request with a typed `internal-error`
//!   frame — concurrent clients stream bit-for-bit the direct engine's
//!   results and a fresh connection succeeds immediately after.
//! * **Disk faults never change results**: with `cache.disk.read` /
//!   `cache.disk.write` erroring probabilistically, cached sessions
//!   still return exactly the fault-free stream (failed writes are
//!   skipped publishes, failed reads are typed misses).
//! * **Torn files are quarantined and re-fetched**: a truncated cache
//!   file trips the payload checksum, moves aside as `.corrupt`, reads
//!   as a miss, and the slot heals on the next publish.
//! * **Retry converges**: a client with `RetryPolicy` rides out
//!   transient daemon-side faults and ends with the exact stream.
//!
//! The failpoint registry is process-global, so every test that arms it
//! holds [`FAULT_LOCK`] — the suite lives in its own test binary
//! precisely so arming a failpoint cannot race another suite's
//! fault-free sessions.

mod common;

use common::arbitrary_graph;
use proptest::prelude::*;
use ranked_triangulations::cache::{DiskBackend, DiskError};
use ranked_triangulations::fault::{self, Outcome};
use ranked_triangulations::prelude::*;
use ranked_triangulations::serve::{
    enumerate_with_retry, serve_ephemeral, Client, ClientError, EnumerateRequest, RetryPolicy,
    ServerConfig,
};
use ranked_triangulations::workloads::decomposable;
use std::collections::BTreeSet;
use std::ops::ControlFlow;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

/// Serializes every fault-arming test: the registry is process-global,
/// and an armed point would otherwise leak into a concurrent test's
/// supposedly fault-free run. The guard clears the registry on both
/// acquisition and drop, so a panicking test cannot strand an armed
/// failpoint for the next one.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

struct FaultGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for FaultGuard {
    fn drop(&mut self) {
        fault::clear_all();
    }
}

fn fault_guard() -> FaultGuard {
    let guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    fault::clear_all();
    FaultGuard(guard)
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mtr_chaos_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn request_for(g: &Graph, cache: bool, threads: usize) -> EnumerateRequest {
    EnumerateRequest {
        tenant: "chaos".into(),
        n: g.n(),
        edges: g.edges().collect(),
        cost: "fill".into(),
        width_bound: None,
        max_results: None,
        deadline_ms: None,
        node_budget: None,
        threads,
        cache,
        binary: false,
    }
}

/// A stream as `(cost bits, fill)` pairs in emission order.
type Stream = Vec<(u64, Vec<(u32, u32)>)>;

/// The reference stream: the direct sequential engine, no faults armed.
fn direct_stream(g: &Graph) -> Stream {
    let mut out = Vec::new();
    Enumerate::on(g)
        .cost(&FillIn)
        .drive(|r| {
            out.push((r.cost.value().to_bits(), g.fill_edges_of(&r.triangulation)));
            ControlFlow::Continue(())
        })
        .expect("well-configured session");
    out
}

/// Order-insensitive identity of a full stream (cached runs may reorder
/// cost-tie plateaus).
fn fill_set(stream: &Stream) -> BTreeSet<Vec<(u32, u32)>> {
    let set: BTreeSet<_> = stream
        .iter()
        .map(|(_, fill)| {
            let mut fill = fill.clone();
            fill.sort_unstable();
            fill
        })
        .collect();
    assert_eq!(set.len(), stream.len(), "no duplicate triangulations");
    set
}

// ---------------------------------------------------------------------------
// Daemon: panic isolation
// ---------------------------------------------------------------------------

/// The acceptance scenario: a worker-pool task panics mid-request while
/// concurrent clients stream. The faulted request gets a typed
/// `internal-error` frame, every concurrent stream is bit-for-bit the
/// direct engine's, and a fresh connection succeeds — the daemon never
/// notices beyond the one failed session.
#[test]
fn panicking_session_spares_concurrent_clients() {
    let _guard = fault_guard();
    let handle = serve_ephemeral(ServerConfig {
        workers: 4,
        allow_remote_shutdown: false,
        ..ServerConfig::default()
    })
    .expect("bind daemon");
    let addr = handle.local_addr().expect("tcp daemon").to_string();

    let g = decomposable::gnp_with_bridges(2, 6, 0.35, 42);
    let reference = direct_stream(&g);

    // Only multi-threaded sessions run pool tasks, so arming the
    // failpoint faults exactly the `threads: 2` request below while the
    // single-threaded concurrent clients run fault-free.
    fault::configure("pool.task", Outcome::Panic);

    let healthy: Vec<_> = (0..3)
        .map(|_| {
            let addr = addr.clone();
            let g = g.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect_tcp(&addr).expect("connect");
                let mut out: Stream = Vec::new();
                let done = client
                    .enumerate_streaming(&request_for(&g, false, 1), |r| {
                        out.push((r.cost.to_bits(), r.fill));
                    })
                    .expect("healthy stream");
                (out, done.stop_reason)
            })
        })
        .collect();

    let mut faulted = Client::connect_tcp(&addr).expect("connect");
    let err = faulted
        .enumerate(&request_for(&g, false, 2))
        .expect_err("the panicking session must fail");
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, "internal-error"),
        other => panic!("expected a typed internal-error frame, got: {other}"),
    }
    assert!(
        fault::trips("pool.task") > 0,
        "the failpoint must have fired"
    );

    for t in healthy {
        let (stream, stop) = t.join().expect("client thread");
        assert_eq!(stop, "exhausted");
        assert_eq!(
            stream, reference,
            "concurrent streams must be bit-for-bit the direct engine's"
        );
    }

    // The failed request's connection stays usable...
    fault::clear_all();
    let (retry, done) = faulted
        .enumerate(&request_for(&g, false, 2))
        .expect("the connection survives its failed session");
    assert_eq!(done.stop_reason, "exhausted");
    assert_eq!(
        fill_set(
            &retry
                .iter()
                .map(|r| (r.cost.to_bits(), r.fill.clone()))
                .collect()
        ),
        fill_set(&reference)
    );

    // ...and so does a fresh one.
    let mut fresh = Client::connect_tcp(&addr).expect("fresh connect");
    let (stream, done) = fresh
        .enumerate(&request_for(&g, false, 1))
        .expect("fresh connection succeeds");
    assert_eq!(done.stop_reason, "exhausted");
    let stream: Stream = stream
        .into_iter()
        .map(|r| (r.cost.to_bits(), r.fill))
        .collect();
    assert_eq!(stream, reference);

    handle.shutdown();
}

/// The `serve.session.run` failpoint surfaces as a typed frame and the
/// same connection serves the next request — per-request containment,
/// not per-connection.
#[test]
fn injected_session_fault_is_a_typed_frame() {
    let _guard = fault_guard();
    let handle = serve_ephemeral(ServerConfig {
        workers: 1,
        allow_remote_shutdown: false,
        ..ServerConfig::default()
    })
    .expect("bind daemon");
    let addr = handle.local_addr().expect("tcp daemon").to_string();
    let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
    let reference = direct_stream(&g);

    for outcome in [Outcome::Error, Outcome::Panic] {
        fault::configure("serve.session.run", outcome);
        let mut client = Client::connect_tcp(&addr).expect("connect");
        let err = client
            .enumerate(&request_for(&g, false, 1))
            .expect_err("armed failpoint must fail the request");
        match err {
            ClientError::Server { code, message } => {
                assert_eq!(code, "internal-error");
                assert!(
                    message.contains("serve.session.run"),
                    "the frame names the failpoint: {message}"
                );
            }
            other => panic!("expected a typed internal-error frame, got: {other}"),
        }
        fault::clear("serve.session.run");
        // Same connection, next request: healthy.
        let (stream, done) = client
            .enumerate(&request_for(&g, false, 1))
            .expect("connection survives the fault");
        assert_eq!(done.stop_reason, "exhausted");
        let stream: Stream = stream
            .into_iter()
            .map(|r| (r.cost.to_bits(), r.fill))
            .collect();
        assert_eq!(stream, reference);
    }

    handle.shutdown();
}

/// A client retry policy converges through transient daemon-side faults
/// (`fail:2` = the first two attempts fail, the third succeeds) and the
/// final stream is exactly the direct engine's.
#[test]
fn retry_converges_after_transient_faults() {
    let _guard = fault_guard();
    let handle = serve_ephemeral(ServerConfig {
        workers: 2,
        allow_remote_shutdown: false,
        ..ServerConfig::default()
    })
    .expect("bind daemon");
    let addr = handle.local_addr().expect("tcp daemon").to_string();
    let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)]);
    let reference = direct_stream(&g);

    fault::configure("serve.session.run", Outcome::FailFirstK(2));
    let policy = RetryPolicy {
        retries: 3,
        backoff_ms: 1,
        seed: 7,
    };
    let (results, done) = enumerate_with_retry(
        || Client::connect_tcp(&addr),
        &request_for(&g, false, 1),
        &policy,
    )
    .expect("retry must converge once the transient fault clears");
    assert_eq!(done.stop_reason, "exhausted");
    assert_eq!(
        fault::trips("serve.session.run"),
        2,
        "exactly the first two attempts were faulted"
    );
    let stream: Stream = results
        .into_iter()
        .map(|r| (r.cost.to_bits(), r.fill))
        .collect();
    assert_eq!(stream, reference);

    // Zero-retry clients see the fault as-is: no silent retries.
    fault::configure("serve.session.run", Outcome::FailFirstK(1));
    let err = enumerate_with_retry(
        || Client::connect_tcp(&addr),
        &request_for(&g, false, 1),
        &RetryPolicy::default(),
    )
    .expect_err("no retries requested");
    assert!(matches!(err, ClientError::Server { ref code, .. } if code == "internal-error"));

    handle.shutdown();
}

/// The daemon-side watchdog cancels a runaway session at the cap; the
/// stream ends with a clean `cancelled` done frame (anytime semantics —
/// results already streamed are kept) and the daemon serves on.
#[test]
fn watchdog_cancels_runaway_sessions() {
    let handle = serve_ephemeral(ServerConfig {
        workers: 1,
        max_session_ms: Some(50),
        allow_remote_shutdown: false,
        ..ServerConfig::default()
    })
    .expect("bind daemon");
    let addr = handle.local_addr().expect("tcp daemon").to_string();

    // Far too large to exhaust within the cap.
    let big = ranked_triangulations::workloads::structured::mycielski(5);
    let mut client = Client::connect_tcp(&addr).expect("connect");
    let (_, done) = client
        .enumerate(&request_for(&big, false, 1))
        .expect("a watchdog cancel is a clean stop, not an error");
    assert_eq!(done.stop_reason, "cancelled");

    // The single worker is free again immediately.
    let small = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
    let (_, done) = client
        .enumerate(&request_for(&small, false, 1))
        .expect("daemon serves on after a watchdog cancel");
    assert_eq!(done.stop_reason, "exhausted");

    handle.shutdown();
}

// ---------------------------------------------------------------------------
// Disk cache: crash safety
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Probabilistic read/write faults on the disk tier never change
    /// enumeration results: cold with failing writes, rerun with failing
    /// reads, and a fault-free healing run all produce the fault-free
    /// stream (failed writes are skipped publishes, failed reads typed
    /// misses).
    #[test]
    fn disk_faults_never_change_results(
        g in arbitrary_graph(4, 7),
        seed in 1u64..u64::MAX,
    ) {
        let _guard = fault_guard();
        let dir = tmpdir(&format!("prop_{seed}"));
        let reference = {
            let run = Enumerate::on(&g)
                .cost(&FillIn)
                .reduce(ReductionLevel::Full)
                .run()
                .expect("fault-free reduced session");
            run.results
        };
        let run_cached = |g: &Graph| {
            Enumerate::on(g)
                .cost(&FillIn)
                .cache(CachePolicy::Dir(dir.clone()))
                .reduce(ReductionLevel::Full)
                .run()
                .expect("cached sessions absorb disk faults")
                .results
        };

        fault::set_seed(seed);
        fault::configure_with("cache.disk.write", Outcome::Error, 50);
        fault::configure_with("cache.disk.read", Outcome::Error, 50);
        let faulted_cold = run_cached(&g);
        let faulted_warm = run_cached(&g);
        fault::clear_all();
        let healed = run_cached(&g);

        for (label, stream) in [
            ("cold+faults", &faulted_cold),
            ("warm+faults", &faulted_warm),
            ("healed", &healed),
        ] {
            prop_assert_eq!(
                stream.len(), reference.len(),
                "{}: result count differs", label
            );
            for (s, r) in stream.iter().zip(&reference) {
                prop_assert_eq!(
                    s.cost.value().to_bits(), r.cost.value().to_bits(),
                    "{}: cost sequence differs", label
                );
            }
            let key = |list: &[RankedTriangulation]| -> BTreeSet<Vec<(u32, u32)>> {
                list.iter()
                    .map(|r| {
                        let mut fill = g.fill_edges_of(&r.triangulation);
                        fill.sort_unstable();
                        fill
                    })
                    .collect()
            };
            prop_assert_eq!(key(stream), key(&reference), "{}: fill sets differ", label);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Torn (truncated) cache files trip the payload checksum, quarantine as
/// `.corrupt`, read as typed misses, and the slots heal on republish —
/// results never change.
#[test]
fn torn_files_are_quarantined_and_refetched() {
    let dir = tmpdir("torn");
    let g = decomposable::gnp_with_bridges(2, 10, 0.4, 802);
    let run_dir = |g: &Graph| {
        Enumerate::on(g)
            .cost(&FillIn)
            .max_results(10)
            .cache(CachePolicy::Dir(dir.clone()))
            .reduce(ReductionLevel::Full)
            .run()
            .expect("dir-cached session cannot fail")
    };
    let cold = run_dir(&g);
    assert!(cold.stats.cache_bytes > 0);

    // Tear every persisted file: keep the headers, drop the tails.
    let mut torn = 0;
    for entry in std::fs::read_dir(&dir).expect("cache dir") {
        let path = entry.expect("dir entry").path();
        let bytes = std::fs::read(&path).expect("read cache file");
        std::fs::write(&path, &bytes[..bytes.len() * 2 / 3]).expect("tear file");
        torn += 1;
    }
    assert!(torn > 0, "the cold run persisted at least one atom");

    let repaired = run_dir(&g);
    assert_eq!(repaired.stats.atom_cache_hits, 0, "torn files never hit");
    let costs = |run: &EnumerationRun| -> Vec<u64> {
        run.results
            .iter()
            .map(|r| r.cost.value().to_bits())
            .collect()
    };
    assert_eq!(costs(&cold), costs(&repaired), "results survive the tears");

    // Every torn file moved aside as `.corrupt` (nothing deleted
    // silently), and the repaired run re-published good files that hit.
    let mut corrupt = 0;
    for entry in std::fs::read_dir(&dir).expect("cache dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "corrupt") {
            corrupt += 1;
        }
    }
    assert_eq!(corrupt, torn, "each torn file is quarantined exactly once");
    let warm = run_dir(&g);
    assert!(warm.stats.atom_cache_hits > 0, "re-published files hit");
    std::fs::remove_dir_all(&dir).ok();
}

/// An I/O-level read fault (disk flake, not corruption) is surfaced
/// without quarantining: the file is intact and serves again once the
/// fault clears.
#[test]
fn io_read_faults_do_not_quarantine() {
    let _guard = fault_guard();
    let dir = tmpdir("io_read");
    let backend = DiskBackend::open(&dir).expect("open backend");
    let key = ranked_triangulations::cache::AtomKey {
        graph: ranked_triangulations::graph::CanonicalKey::from_words([3, 14]),
        cost_id: "fill-in".into(),
        width_bound: None,
    };
    backend
        .store(
            &key,
            &ranked_triangulations::cache::CachedPrefix {
                entries: vec![ranked_triangulations::cache::CacheEntry {
                    cost: 2.0,
                    fill: vec![(0, 2)],
                }],
                complete: true,
            },
        )
        .expect("store");
    let path = backend.path_of(&key);

    fault::configure("cache.disk.read", Outcome::Error);
    assert!(
        matches!(backend.load(&key), Err(DiskError::Io(_))),
        "the injected fault is a typed I/O error"
    );
    assert!(path.exists(), "an I/O error must not quarantine the file");
    fault::clear_all();
    let loaded = backend.load(&key).expect("load").expect("hit");
    assert_eq!(loaded.entries.len(), 1, "the file served untouched");
}

/// A write fault surfaces as a typed error and leaves no temp files: the
/// write-to-temp/rename discipline means a failed publish is invisible.
#[test]
fn write_faults_surface_and_leave_no_temp_files() {
    let _guard = fault_guard();
    let dir = tmpdir("io_write");
    let backend = DiskBackend::open(&dir).expect("open backend");
    let key = ranked_triangulations::cache::AtomKey {
        graph: ranked_triangulations::graph::CanonicalKey::from_words([2, 71]),
        cost_id: "width".into(),
        width_bound: None,
    };
    let prefix = ranked_triangulations::cache::CachedPrefix {
        entries: vec![ranked_triangulations::cache::CacheEntry {
            cost: 1.0,
            fill: vec![(1, 3)],
        }],
        complete: false,
    };

    fault::configure("cache.disk.write", Outcome::Error);
    assert!(backend.store(&key, &prefix).is_err(), "the fault surfaces");
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .expect("cache dir")
        .map(|e| e.expect("dir entry").path())
        .collect();
    assert!(
        leftovers.is_empty(),
        "a failed write leaves nothing behind: {leftovers:?}"
    );
    assert!(
        backend.load(&key).expect("load").is_none(),
        "the slot reads as a clean miss"
    );

    fault::clear_all();
    backend.store(&key, &prefix).expect("healed write");
    assert!(backend.load(&key).expect("load").is_some(), "slot heals");
    std::fs::remove_dir_all(&dir).ok();
}
