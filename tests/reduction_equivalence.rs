//! Correctness of the `mtr-reduce` factorized enumeration: on any input,
//! enumeration through the reduction layer must yield the same multiset of
//! fill-edge sets and the same ranked cost sequence as the direct engine.
//!
//! Two layers of evidence:
//!
//! * property tests over small random graphs (every level, fill and width
//!   costs, full enumeration);
//! * corpus checks on the benchmark instances (paper graph, grid, Mycielski,
//!   random graphs, glued/decomposable instances) comparing the first
//!   K = 25 ranked results, as required by the acceptance criteria.

mod common;

use common::{arbitrary_graph, fill_key};
use mtr_core::cost::{CostValue, FillIn, Width};
use mtr_core::{BagCost, Enumerate, EnumerationRun};
use mtr_graph::{paper_example_graph, Graph};
use mtr_reduce::{EnumerateReduceExt, ReductionLevel};
use mtr_workloads::decomposable::{glued_grids, gnp_with_bridges, star_of_cliques};
use mtr_workloads::random::gnp_connected;
use mtr_workloads::structured::{grid, mycielski};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn run_direct(g: &Graph, cost: &(dyn BagCost + Sync), k: Option<usize>) -> EnumerationRun {
    let mut session = Enumerate::on(g).cost(cost);
    if let Some(k) = k {
        session = session.max_results(k);
    }
    session.run().expect("direct session cannot fail")
}

fn run_reduced(
    g: &Graph,
    cost: &(dyn BagCost + Sync),
    k: Option<usize>,
    level: ReductionLevel,
) -> EnumerationRun {
    let mut session = Enumerate::on(g).cost(cost);
    if let Some(k) = k {
        session = session.max_results(k);
    }
    session
        .reduce(level)
        .run()
        .expect("reduced session cannot fail")
}

fn costs(run: &EnumerationRun) -> Vec<CostValue> {
    run.results.iter().map(|r| r.cost).collect()
}

fn fill_multiset(g: &Graph, run: &EnumerationRun) -> BTreeSet<Vec<(u32, u32)>> {
    let set: BTreeSet<_> = run
        .results
        .iter()
        .map(|r| fill_key(g, &r.triangulation))
        .collect();
    assert_eq!(
        set.len(),
        run.results.len(),
        "enumeration must not emit duplicates"
    );
    set
}

/// The full-stream check used by the property tests: identical cost
/// sequences and identical triangulation sets, plus sound per-result data.
fn assert_equivalent(g: &Graph, cost: &(dyn BagCost + Sync), level: ReductionLevel) {
    let direct = run_direct(g, cost, None);
    let reduced = run_reduced(g, cost, None, level);
    assert_eq!(
        costs(&direct),
        costs(&reduced),
        "cost sequence mismatch at level {level} under {}",
        cost.name()
    );
    assert_eq!(
        fill_multiset(g, &direct),
        fill_multiset(g, &reduced),
        "triangulation set mismatch at level {level} under {}",
        cost.name()
    );
    for r in &reduced.results {
        assert!(
            mtr_chordal::is_minimal_triangulation(g, &r.triangulation),
            "reduced result is not a minimal triangulation"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// `ReductionLevel::Full` is exactly equivalent to direct enumeration on
    /// random graphs, for both a fill-like and a width-like cost.
    #[test]
    fn full_reduction_is_equivalent_on_random_graphs(g in arbitrary_graph(3, 8)) {
        assert_equivalent(&g, &FillIn, ReductionLevel::Full);
        assert_equivalent(&g, &Width, ReductionLevel::Full);
    }

    /// Component splitting alone is also exact (random graphs at these
    /// densities are frequently disconnected).
    #[test]
    fn component_reduction_is_equivalent_on_random_graphs(g in arbitrary_graph(3, 8)) {
        assert_equivalent(&g, &FillIn, ReductionLevel::Components);
    }

    /// Budget prefixes agree too: the first k results of a reduced session
    /// have the same costs as the first k of the direct stream.
    #[test]
    fn reduced_budget_prefix_matches(g in arbitrary_graph(3, 7), k in 1usize..6) {
        let direct = run_direct(&g, &FillIn, Some(k));
        let reduced = run_reduced(&g, &FillIn, Some(k), ReductionLevel::Full);
        prop_assert_eq!(costs(&direct), costs(&reduced));
    }
}

/// The corpus check of the acceptance criteria: identical cost sequences
/// for the first K = 25 results, fill and width ("treewidth") costs.
fn assert_corpus_equivalent(g: &Graph) {
    const K: usize = 25;
    for cost in [&FillIn as &(dyn BagCost + Sync), &Width] {
        let direct = run_direct(g, cost, Some(K));
        let reduced = run_reduced(g, cost, Some(K), ReductionLevel::Full);
        assert_eq!(
            costs(&direct),
            costs(&reduced),
            "first-{K} cost sequence mismatch under {}",
            cost.name()
        );
    }
}

#[test]
fn corpus_paper_graph() {
    assert_corpus_equivalent(&paper_example_graph());
}

#[test]
fn corpus_grid4x4() {
    assert_corpus_equivalent(&grid(4, 4));
}

#[test]
fn corpus_myciel4() {
    assert_corpus_equivalent(&mycielski(4));
}

#[test]
fn corpus_gnp20() {
    assert_corpus_equivalent(&gnp_connected(20, 0.20, 7));
}

#[test]
fn corpus_gnp25() {
    assert_corpus_equivalent(&gnp_connected(25, 0.15, 8));
}

#[test]
fn corpus_glued_grids() {
    let g = glued_grids(3, 3, 2);
    assert_corpus_equivalent(&g);
    // And the decomposition must actually trigger on this instance.
    let run = run_reduced(&g, &FillIn, Some(5), ReductionLevel::Full);
    assert!(run.stats.atoms >= 2, "glued grids must decompose");
}

#[test]
fn corpus_star_of_cliques() {
    let g = star_of_cliques(3, 3, 2);
    assert_corpus_equivalent(&g);
    let run = run_reduced(&g, &Width, None, ReductionLevel::Full);
    assert_eq!(run.results.len(), 1, "chordal graph: single triangulation");
    assert!(run.stats.atoms >= 3);
}

#[test]
fn corpus_gnp_with_bridges() {
    let g = gnp_with_bridges(2, 8, 0.3, 42);
    assert_corpus_equivalent(&g);
    let run = run_reduced(&g, &FillIn, Some(5), ReductionLevel::Full);
    assert!(run.stats.atoms >= 2, "bridged blobs must decompose");
}
