//! Observability must be invisible: turning the `mtr-obs` level up to
//! full tracing must not change a single emitted result — same costs
//! (bit-for-bit), same fill edges, same tie order, same stop reason —
//! for both engines (direct Lawler–Murty and the factorized per-atom
//! engine under `ReductionLevel::Full`) and for sequential and parallel
//! execution. Instrumentation reads the stream; it never steers it.
//!
//! And the registry must agree with the per-run statistics: after a
//! reset, the `core.session.results` counter equals the summed
//! [`EnumerationStats::results`] across every driven session, and the
//! per-result delay histogram saw exactly that many samples.

mod common;

use common::{arbitrary_graph, fill_key};
use mtr_core::cost::{FillIn, Width};
use mtr_core::{BagCost, Enumerate, EnumerationRun};
use mtr_graph::Graph;
use mtr_reduce::{EnumerateReduceExt, ReductionLevel};
use proptest::prelude::*;
use ranked_triangulations::obs;
use std::sync::{Mutex, MutexGuard};

/// The obs level, registry, and span ring are process-global; every test
/// that mutates them holds this lock so assertions see only their own
/// traffic.
fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn run(
    g: &Graph,
    cost: &(dyn BagCost + Sync),
    threads: usize,
    level: ReductionLevel,
) -> Fingerprint {
    let run = Enumerate::on(g)
        .cost(cost)
        .threads(threads)
        .reduce(level)
        .run()
        .expect("session cannot fail on a plain graph");
    fingerprint(g, &run)
}

/// Everything observable about a run's output: the exact emission order
/// of (cost bits, fill edges), the stop reason, and the headline stats.
type Fingerprint = (Vec<(u64, Vec<(u32, u32)>)>, String, usize, usize);

fn fingerprint(g: &Graph, run: &EnumerationRun) -> Fingerprint {
    let stream = run
        .results
        .iter()
        .map(|r| (r.cost.value().to_bits(), fill_key(g, &r.triangulation)))
        .collect();
    (
        stream,
        run.stop_reason.to_string(),
        run.stats.results,
        run.stats.duplicates_skipped,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Full tracing ≡ no instrumentation, for both engines × both costs
    /// × sequential and 4-way parallel execution.
    #[test]
    fn tracing_changes_no_result(g in arbitrary_graph(3, 8)) {
        let _guard = obs_lock();
        for level in [ReductionLevel::Off, ReductionLevel::Full] {
            for threads in [1usize, 4] {
                for cost in [&FillIn as &(dyn BagCost + Sync), &Width] {
                    obs::set_level(obs::Level::Off);
                    let silent = run(&g, cost, threads, level);
                    obs::set_level(obs::Level::Trace);
                    let traced = run(&g, cost, threads, level);
                    obs::set_level(obs::Level::Off);
                    prop_assert_eq!(
                        &silent, &traced,
                        "tracing changed the output at threads={}, level={}, cost={}",
                        threads, level, cost.name()
                    );
                }
            }
        }
    }
}

/// After a reset, the registry's `core.session.results` counter equals
/// the summed `EnumerationStats.results` over every driven session, and
/// the per-result delay histogram recorded exactly one sample per
/// result — for the direct engine, the factorized engine, and parallel
/// runs alike.
#[test]
fn registry_counters_reconcile_with_session_stats() {
    let _guard = obs_lock();
    obs::set_level(obs::Level::Metrics);
    obs::reset();

    let two_c4 = Graph::from_edges(
        7,
        &[
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 0),
            (0, 4),
            (4, 5),
            (5, 6),
            (6, 0),
        ],
    );
    let paper = mtr_graph::paper_example_graph();

    let mut expected = 0usize;
    for (g, level) in [
        (&paper, ReductionLevel::Off),
        (&paper, ReductionLevel::Full),
        (&two_c4, ReductionLevel::Off),
        (&two_c4, ReductionLevel::Full),
    ] {
        for threads in [1usize, 4] {
            let run = Enumerate::on(g)
                .cost(&FillIn)
                .threads(threads)
                .reduce(level)
                .run()
                .expect("plain session");
            assert!(run.stats.results > 0, "fixture must emit something");
            expected += run.stats.results;
        }
    }

    let counted = obs::counter_value("core.session.results")
        .expect("the session layer must register its results counter");
    assert_eq!(
        counted as usize, expected,
        "registry total must equal the summed per-run stats"
    );

    // The delay histogram is recorded next to the counter: one sample
    // per emitted result, never more, never fewer.
    let delays = obs::snapshot()
        .into_iter()
        .find(|m| m.name == "core.session.delay_ns")
        .expect("delay histogram must be registered");
    match delays.value {
        obs::MetricValue::Histogram(h) => assert_eq!(h.count as usize, expected),
        other => panic!("core.session.delay_ns must be a histogram, got {other:?}"),
    }

    obs::set_level(obs::Level::Off);
}

/// With the level at `Off` (the default), running sessions leaves no
/// trace at all: counters stay frozen and the span ring stays empty.
#[test]
fn disabled_level_records_nothing() {
    let _guard = obs_lock();
    obs::set_level(obs::Level::Off);
    obs::reset();

    let g = mtr_graph::paper_example_graph();
    let run = Enumerate::on(&g)
        .cost(&FillIn)
        .run()
        .expect("plain session");
    assert_eq!(run.results.len(), 2);

    assert_eq!(obs::counter_value("core.session.results"), Some(0));
    assert!(
        obs::recent_spans().is_empty(),
        "no spans may be recorded at Level::Off"
    );
}

/// Spans really are captured when tracing: a traced session leaves its
/// `session.preprocess` and `session.emit` spans in the ring, with the
/// emit span carrying the result count.
#[test]
fn traced_session_leaves_its_spans_in_the_ring() {
    let _guard = obs_lock();
    obs::set_level(obs::Level::Trace);
    obs::reset();

    let g = mtr_graph::paper_example_graph();
    Enumerate::on(&g)
        .cost(&FillIn)
        .run()
        .expect("plain session");
    obs::set_level(obs::Level::Off);

    let spans = obs::recent_spans();
    assert!(
        spans.iter().any(|s| s.name == "session.preprocess"),
        "missing preprocess span; got {:?}",
        spans.iter().map(|s| s.name.as_str()).collect::<Vec<_>>()
    );
    let emit = spans
        .iter()
        .find(|s| s.name == "session.emit")
        .expect("missing emit span");
    assert!(
        emit.attrs
            .iter()
            .any(|(k, v)| k.as_str() == "results" && v.as_str() == "2"),
        "emit span must carry the result count; attrs: {:?}",
        emit.attrs
    );
}
