//! Served ≡ direct: the `mtr-serve` daemon must be a transparent
//! transport around the enumeration engines.
//!
//! * For **direct** (cache-off) requests the streamed prefix is
//!   bit-for-bit the `Enumerate::on` output — same costs, same fill
//!   edges, same tie order — because the daemon runs the very same
//!   sequential engine.
//! * For **cached** requests sharing the daemon's one [`AtomStore`],
//!   equality follows the cache-equivalence semantics (see
//!   `tests/cache_equivalence.rs`): identical cost sequences, and on
//!   full streams identical triangulation sets (tie plateaus may be
//!   ordered differently).
//! * Disconnects cancel the session without hurting the daemon, and a
//!   graceful shutdown drains every in-flight stream completely — no
//!   lost, truncated, or duplicated results.

mod common;

use common::arbitrary_graph;
use proptest::prelude::*;
use ranked_triangulations::prelude::*;
use ranked_triangulations::serve::{
    serve_ephemeral, Client, ClientError, EnumerateRequest, ServerConfig, ServerHandle, TenantQuota,
};
use ranked_triangulations::workloads::decomposable;
use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::ops::ControlFlow;
use std::sync::OnceLock;

/// One daemon shared by the proptest cases (starting a daemon per case
/// would dominate the runtime). The handle lives for the whole test
/// process; the OS reaps the threads at exit.
fn shared_daemon() -> &'static ServerHandle {
    static DAEMON: OnceLock<ServerHandle> = OnceLock::new();
    DAEMON.get_or_init(|| {
        serve_ephemeral(ServerConfig {
            workers: 4,
            allow_remote_shutdown: false,
            ..ServerConfig::default()
        })
        .expect("bind ephemeral daemon")
    })
}

fn request_for(g: &Graph, cost: &str, cache: bool, max_results: Option<usize>) -> EnumerateRequest {
    EnumerateRequest {
        tenant: "test".into(),
        n: g.n(),
        edges: g.edges().collect(),
        cost: cost.into(),
        width_bound: None,
        max_results,
        deadline_ms: None,
        node_budget: None,
        threads: 1,
        cache,
        binary: false,
    }
}

/// A stream as `(cost, fill)` pairs in emission order.
type Stream = Vec<(f64, Vec<(u32, u32)>)>;

/// The reference stream: the direct sequential engine.
fn direct_stream(g: &Graph, cost: &str, max_results: Option<usize>) -> Stream {
    let mut session = Enumerate::on(g).cost_named(cost).expect("known cost");
    if let Some(k) = max_results {
        session = session.max_results(k);
    }
    let mut out = Vec::new();
    session
        .drive(|r| {
            out.push((r.cost.value(), g.fill_edges_of(&r.triangulation)));
            ControlFlow::Continue(())
        })
        .expect("well-configured session");
    out
}

fn served_stream(addr: &str, req: &EnumerateRequest) -> (Stream, String, String) {
    let mut client = Client::connect_tcp(addr).expect("connect");
    let (results, done) = client.enumerate(req).expect("served request");
    (
        results.into_iter().map(|r| (r.cost, r.fill)).collect(),
        done.stop_reason,
        done.queue,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Direct requests: the streamed prefix equals `Enumerate::on`
    /// bit-for-bit — cost bits, fill edges, and tie order included.
    #[test]
    fn served_direct_equals_enumerate_on(g in arbitrary_graph(4, 8)) {
        let addr = shared_daemon()
            .local_addr()
            .expect("tcp daemon")
            .to_string();
        for cost in ["fill", "width"] {
            for top in [Some(4), None] {
                let reference = direct_stream(&g, cost, top);
                let (served, _, queue) =
                    served_stream(&addr, &request_for(&g, cost, false, top));
                prop_assert_eq!(&queue, "cold", "direct requests never probe warm");
                prop_assert_eq!(served.len(), reference.len());
                for (s, r) in served.iter().zip(&reference) {
                    prop_assert_eq!(s.0.to_bits(), r.0.to_bits(), "cost must match bit-for-bit");
                    prop_assert_eq!(&s.1, &r.1, "fill edges and tie order must match");
                }
            }
        }
    }

    /// Binary framing carries the identical stream.
    #[test]
    fn binary_framing_is_transparent(g in arbitrary_graph(4, 7)) {
        let addr = shared_daemon()
            .local_addr()
            .expect("tcp daemon")
            .to_string();
        let reference = direct_stream(&g, "fill", Some(6));
        let mut req = request_for(&g, "fill", false, Some(6));
        req.binary = true;
        let (served, _, _) = served_stream(&addr, &req);
        prop_assert_eq!(served.len(), reference.len());
        for (s, r) in served.iter().zip(&reference) {
            prop_assert_eq!(s.0.to_bits(), r.0.to_bits());
            prop_assert_eq!(&s.1, &r.1);
        }
    }
}

/// The canonical fill-set key of a full stream (order-insensitive), used
/// for cached comparisons where tie plateaus may reorder.
fn fill_set(stream: &[(f64, Vec<(u32, u32)>)]) -> BTreeSet<Vec<(u32, u32)>> {
    let set: BTreeSet<Vec<(u32, u32)>> = stream
        .iter()
        .map(|(_, fill)| {
            let mut fill = fill.clone();
            fill.sort_unstable();
            fill
        })
        .collect();
    assert_eq!(set.len(), stream.len(), "no duplicate triangulations");
    set
}

/// Acceptance scenario: ≥4 concurrent clients multiplexed onto one
/// shared store. Every full cached stream must carry exactly the direct
/// engine's triangulation set and cost sequence, and repeats of the same
/// graph must eventually classify warm.
#[test]
fn concurrent_clients_share_one_store() {
    let handle = serve_ephemeral(ServerConfig {
        workers: 4,
        allow_remote_shutdown: false,
        ..ServerConfig::default()
    })
    .expect("bind daemon");
    let addr = handle.local_addr().expect("tcp daemon").to_string();

    // Multi-atom instance (the cache only engages on factorizable
    // graphs); full unbudgeted streams so set-equality is sound.
    let g = decomposable::gnp_with_bridges(2, 6, 0.35, 42);
    let reference = direct_stream(&g, "fill", None);
    let reference_costs: Vec<u64> = reference.iter().map(|(c, _)| c.to_bits()).collect();
    let reference_set = fill_set(&reference);

    // Warm the store once, then fan out concurrent clients.
    let (first, stop, queue) = served_stream(&addr, &request_for(&g, "fill", true, None));
    assert_eq!(stop, "exhausted");
    assert_eq!(queue, "cold", "nothing cached before the first request");
    assert_eq!(fill_set(&first), reference_set);

    let threads: Vec<_> = (0..4)
        .map(|i| {
            let addr = addr.clone();
            let g = g.clone();
            std::thread::spawn(move || {
                let mut req = request_for(&g, "fill", true, None);
                req.tenant = format!("tenant-{i}");
                served_stream(&addr, &req)
            })
        })
        .collect();
    for t in threads {
        let (stream, stop, queue) = t.join().expect("client thread");
        assert_eq!(stop, "exhausted");
        assert_eq!(queue, "warm", "repeat of a cached graph must admit warm");
        let costs: Vec<u64> = stream.iter().map(|(c, _)| c.to_bits()).collect();
        assert_eq!(costs, reference_costs, "cost sequence must match direct");
        assert_eq!(fill_set(&stream), reference_set);
    }

    let stats = handle.store().stats();
    assert!(
        stats.hits > 0,
        "concurrent repeats must hit the shared store"
    );
    handle.shutdown();
}

/// A client that vanishes mid-stream must cancel its session (the daemon
/// stays healthy and drains instantly afterwards).
#[test]
fn disconnect_mid_stream_cancels_the_session() {
    let handle = serve_ephemeral(ServerConfig {
        workers: 1,
        allow_remote_shutdown: false,
        ..ServerConfig::default()
    })
    .expect("bind daemon");
    let addr = handle.local_addr().expect("tcp daemon").to_string();

    // A stream far too long to exhaust: Mycielski-5, unbudgeted.
    let g = ranked_triangulations::workloads::structured::mycielski(5);
    {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream
            .write_all(ranked_triangulations::serve::protocol::hello_frame().as_bytes())
            .expect("send hello");
        let req = request_for(&g, "fill", false, None);
        stream
            .write_all(ranked_triangulations::serve::protocol::enumerate_frame(&req).as_bytes())
            .expect("send request");
        let mut reader = BufReader::new(stream);
        // Read hello-ack, accepted, and a couple of results, then vanish.
        for _ in 0..4 {
            let mut line = String::new();
            reader.read_line(&mut line).expect("read frame");
            assert!(!line.is_empty(), "daemon closed early");
        }
        // Dropping the stream here is the mid-stream disconnect.
    }

    // The single worker must be free again: a fresh request completes.
    let small = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
    let reference = direct_stream(&small, "fill", None);
    let (served, stop, _) = served_stream(&addr, &request_for(&small, "fill", false, None));
    assert_eq!(stop, "exhausted");
    assert_eq!(served.len(), reference.len());

    // And shutdown drains immediately — it would hang here if the
    // cancelled session were still running.
    handle.shutdown();
}

/// Graceful shutdown drains in-flight sessions: every stream admitted
/// before the signal is delivered completely — identical to the direct
/// engine, with its done frame — despite the daemon refusing new work.
#[test]
fn graceful_shutdown_drains_in_flight_sessions() {
    let handle = serve_ephemeral(ServerConfig {
        workers: 2,
        allow_remote_shutdown: false,
        ..ServerConfig::default()
    })
    .expect("bind daemon");
    let addr = handle.local_addr().expect("tcp daemon").to_string();

    let g = decomposable::gnp_with_bridges(2, 6, 0.3, 17);
    let reference = direct_stream(&g, "fill", None);

    let (tx, rx) = std::sync::mpsc::channel();
    let clients: Vec<_> = (0..3)
        .map(|i| {
            let addr = addr.clone();
            let g = g.clone();
            let tx = tx.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect_tcp(&addr).expect("connect");
                let mut req = request_for(&g, "fill", false, None);
                req.tenant = format!("drain-{i}");
                let mut results = Vec::new();
                let mut signalled = false;
                let done = client
                    .enumerate_streaming(&req, |r| {
                        if !signalled {
                            // First result seen → the session is admitted
                            // and running; safe to signal shutdown.
                            tx.send(()).expect("signal");
                            signalled = true;
                        }
                        results.push((r.cost, r.fill));
                    })
                    .expect("stream survives the shutdown");
                (results, done)
            })
        })
        .collect();
    drop(tx);

    // Wait until every client is mid-stream, then drain.
    for _ in 0..3 {
        rx.recv().expect("all clients admitted");
    }
    handle.shutdown();

    for t in clients {
        let (results, done) = t.join().expect("client thread");
        assert_eq!(done.stop_reason, "exhausted", "no stream may be truncated");
        assert_eq!(
            results.len(),
            reference.len(),
            "no lost or duplicated results"
        );
        for (s, r) in results.iter().zip(&reference) {
            assert_eq!(s.0.to_bits(), r.0.to_bits());
            assert_eq!(&s.1, &r.1);
        }
    }
}

/// Live introspection: after serving traffic, the daemon answers a
/// `metrics` frame with per-tenant request counts, the shared store's
/// hit/miss totals, warm/cold classification counters, and a non-empty
/// first-result latency histogram — all from the same connection a
/// client streams results over.
#[test]
fn metrics_frame_reports_live_introspection() {
    let handle = serve_ephemeral(ServerConfig {
        workers: 2,
        allow_remote_shutdown: false,
        ..ServerConfig::default()
    })
    .expect("bind daemon");
    let addr = handle.local_addr().expect("tcp daemon").to_string();

    // Traffic: tenant `obs-a` sends the same cached request twice (cold
    // then warm), tenant `obs-b` one direct request.
    let g = decomposable::gnp_with_bridges(2, 6, 0.35, 42);
    let mut cached = request_for(&g, "fill", true, None);
    cached.tenant = "obs-a".into();
    let (_, _, first_queue) = served_stream(&addr, &cached);
    assert_eq!(first_queue, "cold");
    let (_, _, repeat_queue) = served_stream(&addr, &cached);
    assert_eq!(repeat_queue, "warm");
    let small = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
    let mut direct = request_for(&small, "fill", false, Some(2));
    direct.tenant = "obs-b".into();
    served_stream(&addr, &direct);

    let mut client = Client::connect_tcp(&addr).expect("connect");
    let doc = client.metrics().expect("metrics frame");

    // Per-tenant request counts are exact: the tenant table is this
    // daemon's own.
    let tenant = |name: &str| {
        doc.get("tenants")
            .and_then(|t| t.get(name))
            .and_then(|v| v.as_u64())
    };
    assert_eq!(tenant("obs-a"), Some(2), "got: {}", doc.render());
    assert_eq!(tenant("obs-b"), Some(1), "got: {}", doc.render());

    // The shared store saw the warm repeat.
    let store = |field: &str| {
        doc.get("store")
            .and_then(|s| s.get(field))
            .and_then(|v| v.as_u64())
    };
    assert!(store("hits").expect("store.hits") > 0);
    assert!(store("misses").expect("store.misses") > 0);

    // Registry counters and histograms (process-global, so other tests
    // in this binary may have added to them — lower bounds only).
    let metric = |name: &str| doc.get("metrics").and_then(|m| m.get(name));
    let counter = |name: &str| metric(name).and_then(|v| v.as_u64());
    assert!(counter("serve.warm").expect("serve.warm") >= 1);
    assert!(counter("serve.cold").expect("serve.cold") >= 2);
    assert!(counter("serve.requests").expect("serve.requests") >= 3);

    let first_result = metric("serve.first_result_ns").expect("first-result histogram");
    assert!(
        first_result
            .get("count")
            .and_then(|v| v.as_u64())
            .expect("count")
            >= 3,
        "every streamed request records a first-result latency"
    );
    let buckets = first_result
        .get("buckets")
        .and_then(|b| b.as_arr())
        .expect("buckets array");
    assert!(!buckets.is_empty(), "latency histogram must have samples");
    for pair in buckets {
        let pair = pair.as_arr().expect("bucket pair");
        assert_eq!(pair.len(), 2, "buckets are [le, count] pairs");
    }

    handle.shutdown();
}

/// Version handshake: a mismatched hello is refused with a typed error,
/// exactly like a version-skewed cache file reads as a miss.
#[test]
fn version_mismatch_is_rejected() {
    let handle = serve_ephemeral(ServerConfig {
        workers: 1,
        allow_remote_shutdown: false,
        ..ServerConfig::default()
    })
    .expect("bind daemon");
    let addr = handle.local_addr().expect("tcp daemon").to_string();

    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .write_all(b"{\"frame\": \"hello\", \"magic\": \"MTRW\", \"version\": 999}\n")
        .expect("send hello");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read reply");
    assert!(line.contains("\"error\""), "got: {line}");
    assert!(line.contains("version-mismatch"), "got: {line}");
    // The daemon closes the connection afterwards.
    let mut rest = String::new();
    reader.read_line(&mut rest).expect("read eof");
    assert!(rest.is_empty());
    handle.shutdown();
}

/// Hostile input must not kill the daemon: a deeply nested JSON bomb
/// (which would overflow the parser's stack without a depth limit) and
/// an over-long line (which would grow `inbuf` without bound) both get a
/// typed error and a close, and the daemon keeps serving afterwards.
#[test]
fn hostile_frames_are_refused_and_the_daemon_survives() {
    let handle = serve_ephemeral(ServerConfig {
        workers: 1,
        allow_remote_shutdown: false,
        ..ServerConfig::default()
    })
    .expect("bind daemon");
    let addr = handle.local_addr().expect("tcp daemon").to_string();

    let refused_with = |payload: &[u8], code: &str| {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream.write_all(payload).expect("send hostile payload");
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).expect("read error frame");
        assert!(line.contains("\"error\""), "got: {line}");
        assert!(line.contains(code), "expected {code}, got: {line}");
        // The daemon closes the connection afterwards.
        let mut rest = String::new();
        reader.read_line(&mut rest).expect("read eof");
        assert!(rest.is_empty());
    };

    // 100k nested arrays in one line, sent before any handshake.
    let mut bomb = vec![b'['; 100_000];
    bomb.push(b'\n');
    refused_with(&bomb, "bad-json");

    // A line exactly at the daemon's input cap with no newline can never
    // complete. (Exactly at, so the daemon consumes every byte and its
    // close is a clean FIN — a longer payload risks an RST discarding
    // the error frame before the client reads it.)
    let cap = ranked_triangulations::serve::server::MAX_INBUF;
    refused_with(&vec![b'x'; cap], "frame-too-large");

    // The daemon is still healthy: a normal session completes.
    let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
    let reference = direct_stream(&g, "fill", None);
    let (served, stop, _) = served_stream(&addr, &request_for(&g, "fill", false, None));
    assert_eq!(stop, "exhausted");
    assert_eq!(served.len(), reference.len());
    handle.shutdown();
}

/// Graph-size quotas: a request whose `n` exceeds the cap is refused at
/// admission, before any graph is materialized, and the connection
/// stays usable.
#[test]
fn graph_size_quota_is_enforced() {
    let handle = serve_ephemeral(ServerConfig {
        workers: 1,
        quota: TenantQuota {
            max_vertices: Some(8),
            max_edges: Some(4),
            ..TenantQuota::default()
        },
        allow_remote_shutdown: false,
        ..ServerConfig::default()
    })
    .expect("bind daemon");
    let addr = handle.local_addr().expect("tcp daemon").to_string();

    let mut client = Client::connect_tcp(&addr).expect("connect");
    let big = Graph::from_edges(16, &[(0, 1)]);
    match client.enumerate(&request_for(&big, "fill", false, None)) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "quota-exceeded"),
        other => panic!("expected a vertex-cap refusal, got {other:?}"),
    }
    let dense = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
    match client.enumerate(&request_for(&dense, "fill", false, None)) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "quota-exceeded"),
        other => panic!("expected an edge-cap refusal, got {other:?}"),
    }
    // Within the caps, the same connection still serves.
    let small = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
    let (results, done) = client
        .enumerate(&request_for(&small, "fill", false, None))
        .expect("request within quota");
    assert_eq!(done.stop_reason, "exhausted");
    assert_eq!(results.len(), direct_stream(&small, "fill", None).len());
    handle.shutdown();
}

/// Per-tenant quotas: a tenant at its concurrency cap is refused with a
/// `quota-exceeded` error frame and the connection stays usable.
#[test]
fn tenant_quota_is_enforced() {
    let handle = serve_ephemeral(ServerConfig {
        workers: 1,
        quota: TenantQuota {
            max_concurrent_sessions: 0,
            ..TenantQuota::default()
        },
        allow_remote_shutdown: false,
        ..ServerConfig::default()
    })
    .expect("bind daemon");
    let addr = handle.local_addr().expect("tcp daemon").to_string();

    let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
    let mut client = Client::connect_tcp(&addr).expect("connect");
    match client.enumerate(&request_for(&g, "fill", false, None)) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "quota-exceeded"),
        other => panic!("expected a quota refusal, got {other:?}"),
    }
    handle.shutdown();
}

/// Budget clamping: the daemon caps `max_results` at the configured
/// quota even when the client asks for an unbounded stream.
#[test]
fn quota_caps_clamp_requested_budgets() {
    let handle = serve_ephemeral(ServerConfig {
        workers: 1,
        quota: TenantQuota {
            max_results_cap: Some(2),
            ..TenantQuota::default()
        },
        allow_remote_shutdown: false,
        ..ServerConfig::default()
    })
    .expect("bind daemon");
    let addr = handle.local_addr().expect("tcp daemon").to_string();

    let g = ranked_triangulations::workloads::structured::grid(3, 3);
    let reference = direct_stream(&g, "fill", Some(2));
    let (served, stop, _) = served_stream(&addr, &request_for(&g, "fill", false, None));
    assert_eq!(stop, "max-results");
    assert_eq!(served.len(), 2);
    for (s, r) in served.iter().zip(&reference) {
        assert_eq!(s.0.to_bits(), r.0.to_bits());
        assert_eq!(&s.1, &r.1);
    }
    handle.shutdown();
}

/// A client that vanishes *during admission* — request sent, connection
/// dropped before the accepted frame — must not strand a phantom
/// in-flight session: the admission worker observes the cancel, the
/// daemon keeps serving, and a graceful shutdown drains instantly.
#[test]
fn disconnect_during_admission_leaves_no_phantom_session() {
    let handle = serve_ephemeral(ServerConfig {
        workers: 1,
        allow_remote_shutdown: false,
        ..ServerConfig::default()
    })
    .expect("bind daemon");
    let addr = handle.local_addr().expect("tcp daemon").to_string();

    let g = decomposable::gnp_with_bridges(2, 6, 0.3, 99);
    let req = request_for(&g, "fill", false, None);
    for _ in 0..8 {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream
            .write_all(ranked_triangulations::serve::protocol::hello_frame().as_bytes())
            .expect("send hello");
        let mut reply = String::new();
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        reader.read_line(&mut reply).expect("hello ack");
        stream
            .write_all(ranked_triangulations::serve::protocol::enumerate_frame(&req).as_bytes())
            .expect("send request");
        // Drop without reading the accepted frame: the request may still
        // be sitting in the admission queue when the disconnect lands.
        drop(reader);
        drop(stream);
    }

    // The daemon is healthy and the worker free: a fresh request
    // completes in full.
    let reference = direct_stream(&g, "fill", None);
    let (served, stop, _) = served_stream(&addr, &request_for(&g, "fill", false, None));
    assert_eq!(stop, "exhausted");
    assert_eq!(served.len(), reference.len());

    // Shutdown would hang on any phantom in-flight session.
    handle.shutdown();
}

/// A request racing the shutdown signal has exactly two sane outcomes —
/// refused with `shutting-down`, or admitted and drained to a complete
/// stream. Never a hang, never a truncated stream.
#[test]
fn shutdown_while_request_pending_refuses_or_drains() {
    let g = decomposable::gnp_with_bridges(2, 6, 0.3, 7);
    let reference = direct_stream(&g, "fill", None);
    // The race window is sub-millisecond; iterate a few daemons with the
    // shutdown signal landing at staggered delays to land on both sides.
    for delay_us in [0u64, 50, 200, 800] {
        let handle = serve_ephemeral(ServerConfig {
            workers: 1,
            allow_remote_shutdown: false,
            ..ServerConfig::default()
        })
        .expect("bind daemon");
        let addr = handle.local_addr().expect("tcp daemon").to_string();

        let mut client = Client::connect_tcp(&addr).expect("connect");
        let shutdown = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_micros(delay_us));
            handle.shutdown();
        });
        match client.enumerate(&request_for(&g, "fill", false, None)) {
            Ok((results, done)) => {
                // Admitted before the signal: the drain must deliver the
                // complete stream.
                assert_eq!(done.stop_reason, "exhausted", "no truncated streams");
                assert_eq!(results.len(), reference.len());
            }
            Err(ClientError::Server { code, .. }) => {
                assert_eq!(code, "shutting-down", "the only valid refusal");
            }
            Err(ClientError::Io(_)) => {
                // The listener may already be gone mid-handshake or the
                // socket closed while the request was in flight — a
                // transport-level close is a fair outcome of losing the
                // race, as long as the shutdown itself completes.
            }
            Err(other) => panic!("unexpected failure mode: {other}"),
        }
        shutdown.join().expect("shutdown completes — no hang");
    }
}
