//! Reading and writing tree decompositions in the PACE `.td` format.
//!
//! The PACE challenge exchange format for tree decompositions is:
//!
//! ```text
//! c optional comment lines
//! s td <#bags> <max-bag-size> <#vertices>
//! b <bag-id> <vertex> <vertex> …        (bag ids and vertices are 1-based)
//! <bag-id> <bag-id>                     (one line per tree edge)
//! ```
//!
//! Writing lets downstream treewidth tooling consume the decompositions this
//! library enumerates; parsing lets users validate third-party solutions
//! with [`TreeDecomposition::check_valid`].

use crate::treedec::TreeDecomposition;
use mtr_graph::{Vertex, VertexSet};
use std::fmt::Write as _;

/// Serializes a tree decomposition in PACE `.td` format.
///
/// `n` is the number of vertices of the decomposed graph (the format records
/// it in the header even though it is implied by the bags).
pub fn write_td(td: &TreeDecomposition, n: u32) -> String {
    let mut out = String::new();
    let max_bag = td.bags().iter().map(|b| b.len()).max().unwrap_or(0);
    let _ = writeln!(out, "s td {} {} {}", td.num_bags(), max_bag, n);
    for (i, bag) in td.bags().iter().enumerate() {
        let members: Vec<String> = bag.iter().map(|v| (v + 1).to_string()).collect();
        let _ = writeln!(out, "b {} {}", i + 1, members.join(" "));
    }
    for &(a, b) in td.tree_edges() {
        let _ = writeln!(out, "{} {}", a + 1, b + 1);
    }
    out
}

/// Errors produced while parsing a `.td` file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TdParseError {
    /// The `s td …` header is missing or malformed.
    BadHeader(String),
    /// A bag or edge line could not be parsed.
    BadLine {
        /// 1-based line number.
        line_number: usize,
        /// The offending line.
        line: String,
    },
    /// A bag id or vertex id is out of the declared range.
    OutOfRange {
        /// 1-based line number.
        line_number: usize,
        /// The out-of-range value as written.
        value: usize,
    },
}

impl std::fmt::Display for TdParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TdParseError::BadHeader(l) => write!(f, "malformed or missing .td header: {l:?}"),
            TdParseError::BadLine { line_number, line } => {
                write!(f, "malformed .td line {line_number}: {line:?}")
            }
            TdParseError::OutOfRange { line_number, value } => {
                write!(f, "value {value} on line {line_number} is out of range")
            }
        }
    }
}

impl std::error::Error for TdParseError {}

/// Parses a PACE `.td` file. Returns the decomposition and the declared
/// number of graph vertices.
pub fn parse_td(input: &str) -> Result<(TreeDecomposition, u32), TdParseError> {
    let mut header: Option<(usize, u32)> = None; // (#bags, n)
    let mut bags: Vec<VertexSet> = Vec::new();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for (idx, raw) in input.lines().enumerate() {
        let line_number = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("s td") {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() != 3 {
                return Err(TdParseError::BadHeader(line.to_string()));
            }
            let num_bags: usize = parts[0]
                .parse()
                .map_err(|_| TdParseError::BadHeader(line.to_string()))?;
            let n: u32 = parts[2]
                .parse()
                .map_err(|_| TdParseError::BadHeader(line.to_string()))?;
            bags = vec![VertexSet::empty(n); num_bags];
            header = Some((num_bags, n));
            continue;
        }
        let (num_bags, n) = header
            .ok_or_else(|| TdParseError::BadHeader("content before the s td header".into()))?;
        if let Some(rest) = line.strip_prefix("b ") {
            let mut parts = rest.split_whitespace();
            let bag_id: usize =
                parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| TdParseError::BadLine {
                        line_number,
                        line: line.to_string(),
                    })?;
            if bag_id == 0 || bag_id > num_bags {
                return Err(TdParseError::OutOfRange {
                    line_number,
                    value: bag_id,
                });
            }
            for token in parts {
                let v: usize = token.parse().map_err(|_| TdParseError::BadLine {
                    line_number,
                    line: line.to_string(),
                })?;
                if v == 0 || v > n as usize {
                    return Err(TdParseError::OutOfRange {
                        line_number,
                        value: v,
                    });
                }
                bags[bag_id - 1].insert((v - 1) as Vertex);
            }
        } else {
            let mut parts = line.split_whitespace();
            let (a, b) = match (parts.next(), parts.next()) {
                (Some(a), Some(b)) => (
                    a.parse::<usize>().map_err(|_| TdParseError::BadLine {
                        line_number,
                        line: line.to_string(),
                    })?,
                    b.parse::<usize>().map_err(|_| TdParseError::BadLine {
                        line_number,
                        line: line.to_string(),
                    })?,
                ),
                _ => {
                    return Err(TdParseError::BadLine {
                        line_number,
                        line: line.to_string(),
                    })
                }
            };
            if a == 0 || a > num_bags || b == 0 || b > num_bags {
                return Err(TdParseError::OutOfRange {
                    line_number,
                    value: a.max(b),
                });
            }
            edges.push((a - 1, b - 1));
        }
    }
    let (_, n) = header.ok_or_else(|| TdParseError::BadHeader("no header found".into()))?;
    Ok((TreeDecomposition::new(bags, edges), n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cliquetree::clique_tree;
    use mtr_graph::paper_example_graph;

    #[test]
    fn roundtrip_clique_tree() {
        let g = paper_example_graph();
        let mut h = g.clone();
        h.add_edge(0, 1);
        let td = clique_tree(&h).unwrap();
        let text = write_td(&td, g.n());
        let (parsed, n) = parse_td(&text).unwrap();
        assert_eq!(n, g.n());
        assert_eq!(parsed.num_bags(), td.num_bags());
        assert!(parsed.is_valid(&g));
        assert_eq!(parsed.width(), td.width());
    }

    #[test]
    fn parse_reference_example() {
        let input = "c example\ns td 2 3 4\nb 1 1 2 3\nb 2 3 4\n1 2\n";
        let (td, n) = parse_td(input).unwrap();
        assert_eq!(n, 4);
        assert_eq!(td.num_bags(), 2);
        assert_eq!(td.width(), 2);
        assert_eq!(td.tree_edges(), &[(0, 1)]);
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(parse_td(""), Err(TdParseError::BadHeader(_))));
        assert!(matches!(
            parse_td("b 1 1\n"),
            Err(TdParseError::BadHeader(_))
        ));
        assert!(matches!(
            parse_td("s td 1 1 2\nb 5 1\n"),
            Err(TdParseError::OutOfRange { .. })
        ));
        assert!(matches!(
            parse_td("s td 2 1 2\nb 1 1\nb 2 2\n1 x\n"),
            Err(TdParseError::BadLine { .. })
        ));
        assert!(matches!(
            parse_td("s td 1 1 2\nb 1 9\n"),
            Err(TdParseError::OutOfRange { .. })
        ));
    }

    #[test]
    fn header_width_field_is_max_bag_size() {
        let g = paper_example_graph();
        let td = crate::treedec::TreeDecomposition::trivial(&g);
        let text = write_td(&td, g.n());
        assert!(text.starts_with("s td 1 6 6"));
    }
}
