//! Verification predicates for triangulations.
//!
//! These checks are used throughout the test suites and by the experiment
//! harness to validate enumeration output: a graph `H` is a *triangulation*
//! of `G` when it is a chordal supergraph of `G` on the same vertices, and
//! it is *minimal* when no proper subset of its fill edges already yields a
//! chordal supergraph — equivalently (Rose–Tarjan–Lueker), when removing any
//! single fill edge breaks chordality.

use crate::mcs::is_chordal;
use mtr_graph::{Graph, Vertex};

/// `true` iff `h` is a triangulation of `g`: same vertex count, `E(g) ⊆ E(h)`,
/// and `h` is chordal.
pub fn is_triangulation(g: &Graph, h: &Graph) -> bool {
    if g.n() != h.n() {
        return false;
    }
    if g.edges().any(|(u, v)| !h.has_edge(u, v)) {
        return false;
    }
    is_chordal(h)
}

/// `true` iff `h` is a *minimal* triangulation of `g`.
///
/// Uses the single-edge criterion: `h` is minimal iff it is a triangulation
/// and for every fill edge `e`, the graph `h − e` is not chordal.
pub fn is_minimal_triangulation(g: &Graph, h: &Graph) -> bool {
    if !is_triangulation(g, h) {
        return false;
    }
    let fill = g.fill_edges_of(h);
    let mut work = h.clone();
    for &(u, v) in &fill {
        work.remove_edge(u, v);
        let still_chordal = is_chordal(&work);
        work.add_edge(u, v);
        if still_chordal {
            return false;
        }
    }
    true
}

/// The fill edges of the triangulation `h` of `g` (edges of `h` absent from `g`).
pub fn fill_edges(g: &Graph, h: &Graph) -> Vec<(Vertex, Vertex)> {
    g.fill_edges_of(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtr_graph::paper_example_graph;

    #[test]
    fn chordal_graph_is_its_own_minimal_triangulation() {
        let path = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert!(is_triangulation(&path, &path));
        assert!(is_minimal_triangulation(&path, &path));
    }

    #[test]
    fn paper_triangulations_are_minimal() {
        let g = paper_example_graph();
        let mut h1 = g.clone();
        h1.add_edge(3, 4);
        h1.add_edge(3, 5);
        h1.add_edge(4, 5);
        assert!(is_minimal_triangulation(&g, &h1));
        let mut h2 = g.clone();
        h2.add_edge(0, 1);
        assert!(is_minimal_triangulation(&g, &h2));
    }

    #[test]
    fn non_minimal_triangulation_detected() {
        let g = paper_example_graph();
        // Adding both {u,v} and the {w1,w2,w3} saturation is chordal but not minimal.
        let mut h = g.clone();
        h.add_edge(0, 1);
        h.add_edge(3, 4);
        h.add_edge(3, 5);
        h.add_edge(4, 5);
        assert!(is_triangulation(&g, &h));
        assert!(!is_minimal_triangulation(&g, &h));
    }

    #[test]
    fn non_chordal_supergraph_is_not_a_triangulation() {
        let c4 = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(!is_triangulation(&c4, &c4));
        assert!(!is_minimal_triangulation(&c4, &c4));
    }

    #[test]
    fn missing_base_edge_is_not_a_triangulation() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let h = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        assert!(!is_triangulation(&g, &h));
    }

    #[test]
    fn complete_graph_is_minimal_only_when_needed() {
        // For C4, the complete graph K4 adds two fill edges but one suffices:
        // K4 is a triangulation yet not minimal.
        let c4 = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let k4 = Graph::complete(4);
        assert!(is_triangulation(&c4, &k4));
        assert!(!is_minimal_triangulation(&c4, &k4));
        let mut one_diag = c4.clone();
        one_diag.add_edge(0, 2);
        assert!(is_minimal_triangulation(&c4, &one_diag));
    }

    #[test]
    fn fill_edges_reported() {
        let g = paper_example_graph();
        let mut h = g.clone();
        h.add_edge(0, 1);
        assert_eq!(fill_edges(&g, &h), vec![(0, 1)]);
    }
}
