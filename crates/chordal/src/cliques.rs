//! Maximal cliques of chordal graphs.
//!
//! A chordal graph on `n` vertices has fewer than `n` maximal cliques
//! (Theorem 2.2 of the paper, originally Rose 1970) and they can be read off
//! any perfect elimination ordering: each vertex `v` contributes the
//! candidate clique `{v} ∪ {later-eliminated neighbors of v}`, and the
//! maximal cliques are the inclusion-maximal candidates.

use crate::mcs::perfect_elimination_ordering;
use mtr_graph::{Graph, Vertex, VertexSet};

/// Returns the maximal cliques of a chordal graph, or `None` if `g` is not
/// chordal.
///
/// The cliques are returned in a deterministic order (sorted by the
/// arbitrary-but-total order on [`VertexSet`]).
pub fn maximal_cliques_chordal(g: &Graph) -> Option<Vec<VertexSet>> {
    let peo = perfect_elimination_ordering(g)?;
    Some(maximal_cliques_from_peo(g, &peo))
}

/// Returns the maximal cliques of a chordal graph given one of its perfect
/// elimination orderings.
///
/// The caller is responsible for `peo` actually being a PEO of `g`; this is
/// debug-asserted.
pub fn maximal_cliques_from_peo(g: &Graph, peo: &[Vertex]) -> Vec<VertexSet> {
    debug_assert!(crate::mcs::is_perfect_elimination_ordering(g, peo));
    let n = g.n() as usize;
    let mut position = vec![usize::MAX; n];
    for (i, &v) in peo.iter().enumerate() {
        position[v as usize] = i;
    }
    let mut candidates: Vec<VertexSet> = Vec::with_capacity(n);
    for &v in peo {
        let mut c = VertexSet::singleton(g.n(), v);
        for u in g.neighbors(v).iter() {
            if position[u as usize] > position[v as usize] {
                c.insert(u);
            }
        }
        candidates.push(c);
    }
    // Keep only inclusion-maximal candidates. A chordal graph has at most n
    // maximal cliques, so the quadratic filter is cheap.
    candidates.sort_by_key(|c| std::cmp::Reverse(c.len()));
    let mut maximal: Vec<VertexSet> = Vec::new();
    for c in candidates {
        if !maximal.iter().any(|m| c.is_subset_of(m)) {
            maximal.push(c);
        }
    }
    maximal.sort();
    maximal
}

/// Brute-force maximal clique enumeration (Bron–Kerbosch with pivoting) for
/// *arbitrary* graphs. Used as a reference in tests and for the small
/// clique-graph constructions; exponential in the worst case.
pub fn maximal_cliques_bruteforce(g: &Graph) -> Vec<VertexSet> {
    fn bron_kerbosch(
        g: &Graph,
        r: &mut VertexSet,
        mut p: VertexSet,
        mut x: VertexSet,
        out: &mut Vec<VertexSet>,
    ) {
        if p.is_empty() && x.is_empty() {
            out.push(r.clone());
            return;
        }
        // Pivot on the vertex of P ∪ X with the most neighbors in P.
        let pivot = p
            .union(&x)
            .iter()
            .max_by_key(|&u| g.neighbors(u).intersection_len(&p))
            .expect("P ∪ X is non-empty here");
        let candidates = p.difference(g.neighbors(pivot));
        for v in candidates.iter() {
            r.insert(v);
            bron_kerbosch(
                g,
                r,
                p.intersection(g.neighbors(v)),
                x.intersection(g.neighbors(v)),
                out,
            );
            r.remove(v);
            p.remove(v);
            x.insert(v);
        }
    }
    if g.n() == 0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut r = VertexSet::empty(g.n());
    bron_kerbosch(
        g,
        &mut r,
        VertexSet::full(g.n()),
        VertexSet::empty(g.n()),
        &mut out,
    );
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtr_graph::paper_example_graph;

    #[test]
    fn cliques_of_a_path() {
        let path = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let cliques = maximal_cliques_chordal(&path).unwrap();
        assert_eq!(cliques.len(), 3);
        assert!(cliques.iter().all(|c| c.len() == 2));
    }

    #[test]
    fn cliques_of_complete_graph() {
        let g = Graph::complete(5);
        let cliques = maximal_cliques_chordal(&g).unwrap();
        assert_eq!(cliques.len(), 1);
        assert_eq!(cliques[0].len(), 5);
    }

    #[test]
    fn non_chordal_returns_none() {
        let c4 = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(maximal_cliques_chordal(&c4).is_none());
    }

    #[test]
    fn cliques_of_paper_triangulations() {
        // H1 = G with {w1,w2,w3} saturated: maximal cliques
        // {u,w1,w2,w3}, {v,w1,w2,w3}, {v,v'}.
        let mut h1 = paper_example_graph();
        h1.add_edge(3, 4);
        h1.add_edge(3, 5);
        h1.add_edge(4, 5);
        let cliques = maximal_cliques_chordal(&h1).unwrap();
        assert_eq!(cliques.len(), 3);
        let expected: Vec<VertexSet> = vec![
            VertexSet::from_slice(6, &[0, 3, 4, 5]),
            VertexSet::from_slice(6, &[1, 3, 4, 5]),
            VertexSet::from_slice(6, &[1, 2]),
        ];
        for e in &expected {
            assert!(cliques.contains(e), "missing clique {e:?}");
        }
        // H2 = G + {u,v}: maximal cliques {u,v,w1}, {u,v,w2}, {u,v,w3}, {v,v'}.
        let mut h2 = paper_example_graph();
        h2.add_edge(0, 1);
        let cliques2 = maximal_cliques_chordal(&h2).unwrap();
        assert_eq!(cliques2.len(), 4);
    }

    #[test]
    fn chordal_cliques_match_bruteforce() {
        // A chordal graph: two triangles sharing an edge plus a pendant.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let fast = maximal_cliques_chordal(&g).unwrap();
        let brute = maximal_cliques_bruteforce(&g);
        assert_eq!(fast, brute);
    }

    #[test]
    fn bruteforce_on_cycle() {
        let c5 = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let cliques = maximal_cliques_bruteforce(&c5);
        assert_eq!(cliques.len(), 5);
        assert!(cliques.iter().all(|c| c.len() == 2));
    }

    #[test]
    fn bruteforce_edge_cases() {
        assert!(maximal_cliques_bruteforce(&Graph::new(0)).is_empty());
        let isolated = Graph::new(3);
        let cliques = maximal_cliques_bruteforce(&isolated);
        assert_eq!(cliques.len(), 3);
        assert!(cliques.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn chordal_clique_count_bound() {
        // |MaxClq(G)| < |V(G)| for chordal graphs with at least one edge
        // (Theorem 2.2(2)); for edgeless graphs it equals |V|.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)]);
        let cliques = maximal_cliques_chordal(&g).unwrap();
        assert!(cliques.len() < 6);
    }
}
