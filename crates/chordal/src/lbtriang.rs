//! LB-Triang: minimal triangulation from an arbitrary vertex ordering
//! (Berry, Bordat, Heggernes, Simonet, Villanger 2006).
//!
//! The paper's baseline (`CKK`) uses LB-Triang as its black-box minimal
//! triangulator because it tends to produce triangulations of low width and
//! fill. LB-Triang processes the vertices in a caller-supplied order and
//! makes each vertex *LB-simplicial* in turn: for the current graph `H` and
//! vertex `v`, every set `N_H(C)` for a component `C` of `H \ N_H[v]` is a
//! minimal separator contained in `N_H(v)`, and saturating all of them keeps
//! `H` a (sub)graph of some minimal triangulation. After all vertices are
//! processed, `H` is a minimal triangulation of the input graph.

use mtr_graph::{Graph, Vertex};

/// Computes a minimal triangulation of `g` by running LB-Triang on the given
/// vertex ordering.
///
/// # Panics
/// Panics if `order` is not a permutation of the vertices of `g`.
pub fn lb_triang(g: &Graph, order: &[Vertex]) -> Graph {
    let n = g.n() as usize;
    assert_eq!(order.len(), n, "ordering must cover all vertices");
    let mut seen = vec![false; n];
    for &v in order {
        assert!(
            !std::mem::replace(&mut seen[v as usize], true),
            "vertex {v} appears twice in the ordering"
        );
    }
    let mut h = g.clone();
    for &v in order {
        // Components of H \ N[v]; their H-neighborhoods are the minimal
        // separators included in N_H(v). Saturate each of them.
        let closed = h.closed_neighbors(v);
        let comps = h.components_excluding(&closed);
        for c in comps {
            let sep = h.neighborhood_of_set(&c);
            h.saturate(&sep);
        }
    }
    h
}

/// LB-Triang with the identity ordering `0, 1, …, n-1`.
pub fn lb_triang_identity(g: &Graph) -> Graph {
    let order: Vec<Vertex> = (0..g.n()).collect();
    lb_triang(g, &order)
}

/// LB-Triang with a minimum-degree-first ordering (a common quality
/// heuristic: low-degree vertices are made LB-simplicial early).
pub fn lb_triang_min_degree(g: &Graph) -> Graph {
    let mut order: Vec<Vertex> = (0..g.n()).collect();
    order.sort_by_key(|&v| (g.degree(v), v));
    lb_triang(g, &order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcs::is_chordal;
    use crate::verify::is_minimal_triangulation;
    use mtr_graph::paper_example_graph;

    #[test]
    fn chordal_graph_is_unchanged() {
        let path = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let h = lb_triang_identity(&path);
        assert_eq!(h, path);
        let complete = Graph::complete(5);
        assert_eq!(lb_triang_identity(&complete), complete);
    }

    #[test]
    fn cycle_triangulation_is_minimal() {
        let c6 = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let h = lb_triang_identity(&c6);
        assert!(is_chordal(&h));
        assert!(is_minimal_triangulation(&c6, &h));
        // Any minimal triangulation of C6 adds exactly 3 fill edges.
        assert_eq!(h.m(), c6.m() + 3);
    }

    #[test]
    fn paper_graph_triangulations() {
        let g = paper_example_graph();
        for order in [
            vec![0, 1, 2, 3, 4, 5],
            vec![5, 4, 3, 2, 1, 0],
            vec![2, 0, 1, 3, 4, 5],
            vec![3, 4, 5, 0, 1, 2],
        ] {
            let h = lb_triang(&g, &order);
            assert!(
                is_chordal(&h),
                "order {order:?} produced a non-chordal graph"
            );
            assert!(
                is_minimal_triangulation(&g, &h),
                "order {order:?} produced a non-minimal triangulation"
            );
            // The paper's graph has exactly two minimal triangulations:
            // either add {u,v} (1 fill edge) or saturate {w1,w2,w3} (3 fill edges).
            assert!(h.m() == g.m() + 1 || h.m() == g.m() + 3);
        }
    }

    #[test]
    fn different_orderings_can_reach_both_paper_triangulations() {
        let g = paper_example_graph();
        let mut fills = std::collections::HashSet::new();
        for order in [
            vec![0, 1, 2, 3, 4, 5],
            vec![3, 4, 5, 2, 1, 0],
            vec![2, 1, 0, 5, 4, 3],
            vec![5, 0, 1, 2, 3, 4],
        ] {
            fills.insert(lb_triang(&g, &order).m() - g.m());
        }
        // Both the fill-1 and the fill-3 triangulation should be reachable.
        assert!(
            fills.contains(&1),
            "fill-1 triangulation never produced: {fills:?}"
        );
        assert!(
            fills.contains(&3),
            "fill-3 triangulation never produced: {fills:?}"
        );
    }

    #[test]
    fn min_degree_ordering_on_grid() {
        // 3x3 grid graph.
        let mut edges = Vec::new();
        let idx = |r: u32, c: u32| r * 3 + c;
        for r in 0..3 {
            for c in 0..3 {
                if c + 1 < 3 {
                    edges.push((idx(r, c), idx(r, c + 1)));
                }
                if r + 1 < 3 {
                    edges.push((idx(r, c), idx(r + 1, c)));
                }
            }
        }
        let g = Graph::from_edges(9, &edges);
        let h = lb_triang_min_degree(&g);
        assert!(is_chordal(&h));
        assert!(is_minimal_triangulation(&g, &h));
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn duplicate_ordering_rejected() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        lb_triang(&g, &[0, 0, 1]);
    }
}
