//! Elimination orderings, greedy triangulation heuristics, and treewidth
//! bounds.
//!
//! The ranked enumeration machinery is exact but pays an initialization
//! cost; practical pipelines (and the paper's experimental setup) also need
//! cheap heuristics: the *elimination game* turns any vertex ordering into a
//! triangulation, greedy orderings (min-degree, min-fill) give good widths
//! fast, and degeneracy / MMD+ style lower bounds certify how far a
//! heuristic can be from optimal. These are also the standard way to seed
//! width bounds for `MinTriangB`.

use crate::treedec::TreeDecomposition;
use mtr_graph::{Graph, Vertex, VertexSet};

/// The result of playing the elimination game on an ordering.
#[derive(Clone, Debug)]
pub struct EliminationResult {
    /// The triangulation `G ∪ fill` (chordal, but not necessarily minimal).
    pub triangulation: Graph,
    /// The ordering that was eliminated (first element first).
    pub ordering: Vec<Vertex>,
    /// The width of the ordering: the largest number of higher neighbors a
    /// vertex had at its elimination time.
    pub width: usize,
    /// The number of fill edges added.
    pub fill: usize,
}

impl EliminationResult {
    /// The tree decomposition induced by the elimination ordering: one bag
    /// per vertex (the vertex plus its not-yet-eliminated neighbors at
    /// elimination time), connected along the elimination order.
    pub fn tree_decomposition(&self, g: &Graph) -> TreeDecomposition {
        let n = g.n();
        if n == 0 {
            return TreeDecomposition::new(Vec::new(), Vec::new());
        }
        let mut position = vec![usize::MAX; n as usize];
        for (i, &v) in self.ordering.iter().enumerate() {
            position[v as usize] = i;
        }
        let mut bags: Vec<VertexSet> = Vec::with_capacity(n as usize);
        for (i, &v) in self.ordering.iter().enumerate() {
            let mut bag = VertexSet::singleton(n, v);
            for u in self.triangulation.neighbors(v).iter() {
                if position[u as usize] > i {
                    bag.insert(u);
                }
            }
            bags.push(bag);
        }
        // Connect bag i to the bag of its earliest-eliminated higher
        // neighbor (its "parent" in the elimination tree); the last bag has
        // no parent. Vertices whose bag is a singleton in another component
        // attach to the final bag to keep one tree.
        let mut edges = Vec::new();
        for (i, &v) in self.ordering.iter().enumerate() {
            if i + 1 == self.ordering.len() {
                break;
            }
            let parent = self
                .triangulation
                .neighbors(v)
                .iter()
                .filter(|&u| position[u as usize] > i)
                .min_by_key(|&u| position[u as usize]);
            match parent {
                Some(p) => edges.push((i, position[p as usize])),
                None => edges.push((i, self.ordering.len() - 1)),
            }
        }
        TreeDecomposition::new(bags, edges)
    }
}

/// Plays the elimination game: eliminate the vertices in the given order,
/// saturating the current (remaining) neighborhood of each vertex as it is
/// removed. The result is always a triangulation of `g` whose width equals
/// the width of the ordering.
pub fn elimination_game(g: &Graph, ordering: &[Vertex]) -> EliminationResult {
    let n = g.n();
    assert_eq!(
        ordering.len(),
        n as usize,
        "ordering must cover all vertices"
    );
    let mut h = g.clone();
    let mut remaining = VertexSet::full(n);
    let mut width = 0usize;
    for &v in ordering {
        assert!(remaining.contains(v), "vertex {v} eliminated twice");
        let nbrs = h.neighbors(v).intersection(&remaining);
        width = width.max(nbrs.len());
        h.saturate(&nbrs);
        remaining.remove(v);
    }
    let fill = h.m() - g.m();
    EliminationResult {
        triangulation: h,
        ordering: ordering.to_vec(),
        width,
        fill,
    }
}

/// Greedy min-degree ordering: repeatedly eliminate a vertex of minimum
/// degree in the current (partially saturated) graph.
pub fn min_degree_ordering(g: &Graph) -> Vec<Vertex> {
    greedy_ordering(g, |h, remaining, v| {
        h.neighbors(v).intersection_len(remaining)
    })
}

/// Greedy min-fill ordering: repeatedly eliminate a vertex whose elimination
/// adds the fewest fill edges.
pub fn min_fill_ordering(g: &Graph) -> Vec<Vertex> {
    greedy_ordering(g, |h, remaining, v| {
        let nbrs = h.neighbors(v).intersection(remaining);
        h.missing_edges_in(&nbrs)
    })
}

fn greedy_ordering(g: &Graph, score: impl Fn(&Graph, &VertexSet, Vertex) -> usize) -> Vec<Vertex> {
    let n = g.n();
    let mut h = g.clone();
    let mut remaining = VertexSet::full(n);
    let mut order = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let v = remaining
            .iter()
            .min_by_key(|&v| (score(&h, &remaining, v), v))
            .expect("remaining is non-empty");
        let nbrs = h.neighbors(v).intersection(&remaining);
        h.saturate(&nbrs);
        remaining.remove(v);
        order.push(v);
    }
    order
}

/// Upper bound on the treewidth from the better of the min-degree and
/// min-fill elimination heuristics (returns the full elimination result of
/// the winner so callers get the ordering and triangulation too).
pub fn treewidth_upper_bound(g: &Graph) -> EliminationResult {
    let by_degree = elimination_game(g, &min_degree_ordering(g));
    let by_fill = elimination_game(g, &min_fill_ordering(g));
    if by_fill.width < by_degree.width {
        by_fill
    } else {
        by_degree
    }
}

/// The degeneracy of the graph (a classic treewidth lower bound): the
/// largest minimum degree over all subgraphs, computed by repeatedly
/// removing a minimum-degree vertex.
pub fn degeneracy(g: &Graph) -> usize {
    let mut remaining = g.vertex_set();
    let mut best = 0usize;
    while !remaining.is_empty() {
        let v = remaining
            .iter()
            .min_by_key(|&v| g.neighbors(v).intersection_len(&remaining))
            .expect("remaining is non-empty");
        best = best.max(g.neighbors(v).intersection_len(&remaining));
        remaining.remove(v);
    }
    best
}

/// The MMD+ (minor-min-degree) treewidth lower bound: repeatedly contract a
/// minimum-degree vertex into its lowest-degree neighbor, tracking the
/// largest minimum degree encountered. At least as strong as [`degeneracy`].
pub fn mmd_plus_lower_bound(g: &Graph) -> usize {
    let mut h = g.clone();
    let mut remaining = h.vertex_set();
    let mut best = 0usize;
    while remaining.len() > 1 {
        let v = remaining
            .iter()
            .min_by_key(|&v| h.neighbors(v).intersection_len(&remaining))
            .expect("at least two vertices remain");
        let deg = h.neighbors(v).intersection_len(&remaining);
        best = best.max(deg);
        // Contract v into its minimum-degree remaining neighbor (or simply
        // remove it when isolated).
        let target = h
            .neighbors(v)
            .intersection(&remaining)
            .iter()
            .min_by_key(|&u| h.neighbors(u).intersection_len(&remaining));
        if let Some(u) = target {
            let nbrs: Vec<Vertex> = h
                .neighbors(v)
                .intersection(&remaining)
                .iter()
                .filter(|&w| w != u)
                .collect();
            for w in nbrs {
                h.add_edge(u, w);
            }
        }
        remaining.remove(v);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcs::is_chordal;
    use crate::verify::is_triangulation;
    use mtr_graph::paper_example_graph;

    fn grid3() -> Graph {
        let idx = |r: u32, c: u32| r * 3 + c;
        let mut edges = Vec::new();
        for r in 0..3 {
            for c in 0..3 {
                if c + 1 < 3 {
                    edges.push((idx(r, c), idx(r, c + 1)));
                }
                if r + 1 < 3 {
                    edges.push((idx(r, c), idx(r + 1, c)));
                }
            }
        }
        Graph::from_edges(9, &edges)
    }

    #[test]
    fn elimination_game_produces_a_triangulation() {
        let g = paper_example_graph();
        let order: Vec<Vertex> = (0..6).collect();
        let r = elimination_game(&g, &order);
        assert!(is_triangulation(&g, &r.triangulation));
        assert!(is_chordal(&r.triangulation));
        assert_eq!(r.fill, r.triangulation.m() - g.m());
        // The induced tree decomposition is valid and has the same width.
        let td = r.tree_decomposition(&g);
        assert!(td.is_valid(&g));
        assert_eq!(td.width(), r.width);
    }

    #[test]
    fn elimination_game_on_chordal_graph_with_peo_adds_nothing() {
        let path = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let r = elimination_game(&path, &[0, 1, 2, 3, 4]);
        assert_eq!(r.fill, 0);
        assert_eq!(r.width, 1);
    }

    #[test]
    fn greedy_orderings_are_permutations() {
        let g = grid3();
        for order in [min_degree_ordering(&g), min_fill_ordering(&g)] {
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..9).collect::<Vec<_>>());
        }
    }

    #[test]
    fn heuristics_find_the_grid_treewidth() {
        // The 3x3 grid has treewidth 3; min-fill finds it.
        let g = grid3();
        let ub = treewidth_upper_bound(&g);
        assert!(ub.width >= 3);
        assert!(ub.width <= 4);
        assert!(is_triangulation(&g, &ub.triangulation));
        let lb = mmd_plus_lower_bound(&g);
        assert!(lb >= 2);
        assert!(lb <= ub.width);
    }

    #[test]
    fn bounds_bracket_known_treewidths() {
        // (graph, exact treewidth)
        let cases: Vec<(Graph, usize)> = vec![
            (Graph::complete(5), 4),
            (
                Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]),
                2,
            ),
            (paper_example_graph(), 2),
            (grid3(), 3),
            (Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]), 1),
        ];
        for (g, tw) in cases {
            let ub = treewidth_upper_bound(&g).width;
            let lb = degeneracy(&g).min(mmd_plus_lower_bound(&g));
            let mmd = mmd_plus_lower_bound(&g);
            assert!(
                lb <= tw,
                "degeneracy-style bound exceeded the treewidth of {g:?}"
            );
            assert!(mmd <= tw, "MMD+ exceeded the treewidth of {g:?}");
            assert!(ub >= tw, "upper bound below the treewidth of {g:?}");
        }
    }

    #[test]
    fn degeneracy_of_regular_structures() {
        assert_eq!(degeneracy(&Graph::complete(6)), 5);
        assert_eq!(
            degeneracy(&Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])),
            1
        );
        assert_eq!(degeneracy(&grid3()), 2);
        assert_eq!(degeneracy(&Graph::new(3)), 0);
    }

    #[test]
    fn disconnected_and_trivial_inputs() {
        let g = Graph::new(4);
        let r = elimination_game(&g, &[3, 1, 0, 2]);
        assert_eq!(r.width, 0);
        assert_eq!(r.fill, 0);
        let td = r.tree_decomposition(&g);
        assert!(td.is_valid(&g));
        assert_eq!(mmd_plus_lower_bound(&Graph::new(0)), 0);
        assert_eq!(elimination_game(&Graph::new(0), &[]).width, 0);
    }

    #[test]
    #[should_panic(expected = "eliminated twice")]
    fn duplicate_vertices_rejected() {
        let g = Graph::new(3);
        elimination_game(&g, &[0, 0, 1]);
    }
}
