//! Tree decompositions: the structure, validity checks and the standard
//! quality measures (width, fill-in).
//!
//! A tree decomposition of a graph `G` is a tree whose nodes carry *bags* of
//! vertices such that every vertex and every edge of `G` is covered by some
//! bag and, for every vertex, the bags containing it form a connected
//! subtree (the junction-tree property).

use mtr_graph::{Graph, VertexSet};

/// A tree decomposition: bags connected by tree edges.
///
/// Bag indices are dense (`0..bags.len()`); `tree_edges` lists the edges of
/// the tree over those indices. A decomposition with a single bag has no
/// tree edges; an empty decomposition (no bags) is allowed only for the
/// empty graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeDecomposition {
    bags: Vec<VertexSet>,
    tree_edges: Vec<(usize, usize)>,
}

impl TreeDecomposition {
    /// Creates a tree decomposition from bags and tree edges.
    ///
    /// Only structural sanity is checked here (edge endpoints in range);
    /// whether this is a *valid* decomposition of a particular graph is
    /// checked by [`TreeDecomposition::check_valid`].
    pub fn new(bags: Vec<VertexSet>, tree_edges: Vec<(usize, usize)>) -> Self {
        for &(a, b) in &tree_edges {
            assert!(a < bags.len() && b < bags.len(), "tree edge out of range");
            assert_ne!(a, b, "tree self-loop");
        }
        TreeDecomposition { bags, tree_edges }
    }

    /// A decomposition with a single bag containing every vertex of `g`.
    pub fn trivial(g: &Graph) -> Self {
        TreeDecomposition {
            bags: vec![g.vertex_set()],
            tree_edges: Vec::new(),
        }
    }

    /// The bags.
    pub fn bags(&self) -> &[VertexSet] {
        &self.bags
    }

    /// The tree edges (pairs of bag indices).
    pub fn tree_edges(&self) -> &[(usize, usize)] {
        &self.tree_edges
    }

    /// Number of bags.
    pub fn num_bags(&self) -> usize {
        self.bags.len()
    }

    /// Width: size of the largest bag minus one. The width of a
    /// decomposition with no bags is 0 by convention.
    pub fn width(&self) -> usize {
        self.bags
            .iter()
            .map(|b| b.len())
            .max()
            .unwrap_or(1)
            .saturating_sub(1)
    }

    /// Fill-in relative to `g`: the number of distinct non-edges of `g` that
    /// saturating every bag would add.
    pub fn fill_in(&self, g: &Graph) -> usize {
        let mut h = g.clone();
        let mut added = 0;
        for bag in &self.bags {
            added += h.saturate(bag);
        }
        added
    }

    /// The chordal graph obtained from `g` by saturating every bag.
    pub fn saturated_graph(&self, g: &Graph) -> Graph {
        let mut h = g.clone();
        for bag in &self.bags {
            h.saturate(bag);
        }
        h
    }

    /// The adhesions: intersections of the two bags of each tree edge.
    pub fn adhesions(&self) -> Vec<VertexSet> {
        self.tree_edges
            .iter()
            .map(|&(a, b)| self.bags[a].intersection(&self.bags[b]))
            .collect()
    }

    /// Checks validity with respect to `g`; returns a description of the
    /// first violated condition, or `Ok(())`.
    pub fn check_valid(&self, g: &Graph) -> Result<(), InvalidDecomposition> {
        // The tree must be a tree: connected and acyclic over the bags.
        let k = self.bags.len();
        if k == 0 {
            if g.n() == 0 {
                return Ok(());
            }
            return Err(InvalidDecomposition::VertexNotCovered(0));
        }
        if self.tree_edges.len() != k - 1 {
            return Err(InvalidDecomposition::NotATree);
        }
        // Connectivity of the bag tree via union-find.
        let mut parent: Vec<usize> = (0..k).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        for &(a, b) in &self.tree_edges {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra == rb {
                return Err(InvalidDecomposition::NotATree);
            }
            parent[ra] = rb;
        }
        // Vertices covered.
        let mut covered = VertexSet::empty(g.n());
        for bag in &self.bags {
            covered.union_with(bag);
        }
        if covered.len() != g.n() as usize {
            let missing = covered
                .complement()
                .min_vertex()
                .expect("some vertex uncovered");
            return Err(InvalidDecomposition::VertexNotCovered(missing));
        }
        // Edges covered.
        for (u, v) in g.edges() {
            if !self
                .bags
                .iter()
                .any(|bag| bag.contains(u) && bag.contains(v))
            {
                return Err(InvalidDecomposition::EdgeNotCovered(u, v));
            }
        }
        // Junction-tree property: for every vertex, the bags containing it
        // induce a connected subtree.
        let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); k];
        for &(a, b) in &self.tree_edges {
            adjacency[a].push(b);
            adjacency[b].push(a);
        }
        for v in g.vertices() {
            let holding: Vec<usize> = (0..k).filter(|&i| self.bags[i].contains(v)).collect();
            if holding.is_empty() {
                return Err(InvalidDecomposition::VertexNotCovered(v));
            }
            let mut seen = vec![false; k];
            let mut stack = vec![holding[0]];
            seen[holding[0]] = true;
            let mut reached = 0usize;
            while let Some(x) = stack.pop() {
                reached += 1;
                for &y in &adjacency[x] {
                    if !seen[y] && self.bags[y].contains(v) {
                        seen[y] = true;
                        stack.push(y);
                    }
                }
            }
            if reached != holding.len() {
                return Err(InvalidDecomposition::JunctionTreeViolated(v));
            }
        }
        Ok(())
    }

    /// `true` iff this is a valid tree decomposition of `g`.
    pub fn is_valid(&self, g: &Graph) -> bool {
        self.check_valid(g).is_ok()
    }

    /// `true` iff this decomposition is a clique tree of `h`: its bags are
    /// exactly the maximal cliques of `h`, with no repetitions, and the
    /// decomposition is valid for `h`.
    pub fn is_clique_tree_of(&self, h: &Graph) -> bool {
        if !self.is_valid(h) {
            return false;
        }
        let Some(mut cliques) = crate::cliques::maximal_cliques_chordal(h) else {
            return false;
        };
        let mut bags = self.bags.clone();
        bags.sort();
        cliques.sort();
        if bags.len() != cliques.len() {
            return false;
        }
        bags == cliques
    }
}

/// The ways a tree decomposition can fail validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InvalidDecomposition {
    /// The bag graph is not a tree (wrong edge count or a cycle).
    NotATree,
    /// This vertex is in no bag.
    VertexNotCovered(mtr_graph::Vertex),
    /// This edge is in no bag.
    EdgeNotCovered(mtr_graph::Vertex, mtr_graph::Vertex),
    /// The bags containing this vertex are not connected in the tree.
    JunctionTreeViolated(mtr_graph::Vertex),
}

impl std::fmt::Display for InvalidDecomposition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvalidDecomposition::NotATree => write!(f, "bag graph is not a tree"),
            InvalidDecomposition::VertexNotCovered(v) => write!(f, "vertex {v} is not covered"),
            InvalidDecomposition::EdgeNotCovered(u, v) => {
                write!(f, "edge ({u},{v}) is not covered")
            }
            InvalidDecomposition::JunctionTreeViolated(v) => {
                write!(f, "junction-tree property violated for vertex {v}")
            }
        }
    }
}

impl std::error::Error for InvalidDecomposition {}

#[cfg(test)]
mod tests {
    use super::*;
    use mtr_graph::paper_example_graph;

    /// T1 of Figure 1(c): bags {u,w1,w2,w3}, {v,w1,w2,w3}, {v,v'} in a path.
    fn paper_t1() -> TreeDecomposition {
        TreeDecomposition::new(
            vec![
                VertexSet::from_slice(6, &[0, 3, 4, 5]),
                VertexSet::from_slice(6, &[1, 3, 4, 5]),
                VertexSet::from_slice(6, &[1, 2]),
            ],
            vec![(0, 1), (1, 2)],
        )
    }

    #[test]
    fn trivial_decomposition_is_valid() {
        let g = paper_example_graph();
        let t = TreeDecomposition::trivial(&g);
        assert!(t.is_valid(&g));
        assert_eq!(t.width(), 5);
    }

    #[test]
    fn paper_t1_is_valid_with_expected_width_and_fill() {
        let g = paper_example_graph();
        let t1 = paper_t1();
        assert!(t1.is_valid(&g));
        assert_eq!(t1.width(), 3);
        // Saturating the two big bags adds the 3 edges among {w1,w2,w3}.
        assert_eq!(t1.fill_in(&g), 3);
        assert_eq!(t1.adhesions().len(), 2);
    }

    #[test]
    fn missing_edge_coverage_detected() {
        let g = paper_example_graph();
        let t = TreeDecomposition::new(
            vec![
                VertexSet::from_slice(6, &[0, 3, 4, 5]),
                VertexSet::from_slice(6, &[1, 3, 4, 5]),
            ],
            vec![(0, 1)],
        );
        assert_eq!(
            t.check_valid(&g),
            Err(InvalidDecomposition::VertexNotCovered(2))
        );
    }

    #[test]
    fn junction_tree_violation_detected() {
        // Vertex 0 appears in two bags that are not adjacent in the tree.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let t = TreeDecomposition::new(
            vec![
                VertexSet::from_slice(3, &[0, 1]),
                VertexSet::from_slice(3, &[1, 2]),
                VertexSet::from_slice(3, &[0, 2]),
            ],
            vec![(0, 1), (1, 2)],
        );
        assert_eq!(
            t.check_valid(&g),
            Err(InvalidDecomposition::JunctionTreeViolated(0))
        );
    }

    #[test]
    fn cycle_in_bag_graph_detected() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let t = TreeDecomposition::new(
            vec![
                VertexSet::from_slice(2, &[0, 1]),
                VertexSet::from_slice(2, &[0, 1]),
                VertexSet::from_slice(2, &[0, 1]),
            ],
            vec![(0, 1), (1, 2)],
        );
        assert!(t.is_valid(&g));
        let cyclic = TreeDecomposition::new(
            vec![
                VertexSet::from_slice(2, &[0, 1]),
                VertexSet::from_slice(2, &[0, 1]),
                VertexSet::from_slice(2, &[0, 1]),
            ],
            vec![(0, 1), (1, 2), (2, 0)],
        );
        assert_eq!(cyclic.check_valid(&g), Err(InvalidDecomposition::NotATree));
    }

    #[test]
    fn uncovered_edge_detected() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let t = TreeDecomposition::new(
            vec![
                VertexSet::from_slice(3, &[0, 1]),
                VertexSet::from_slice(3, &[1, 2]),
                VertexSet::from_slice(3, &[0, 2]),
            ],
            vec![(0, 1), (1, 2)],
        );
        // This fails junction tree (vertex 0) — build a cleaner example:
        let t2 = TreeDecomposition::new(
            vec![
                VertexSet::from_slice(3, &[0, 1]),
                VertexSet::from_slice(3, &[1, 2]),
            ],
            vec![(0, 1)],
        );
        assert_eq!(
            t2.check_valid(&g),
            Err(InvalidDecomposition::EdgeNotCovered(0, 2))
        );
        assert!(!t.is_valid(&g));
    }

    #[test]
    fn clique_tree_detection() {
        let g = paper_example_graph();
        let t1 = paper_t1();
        // T1 is a clique tree of H1 (G with {w1,w2,w3} saturated)…
        let h1 = t1.saturated_graph(&g);
        assert!(t1.is_clique_tree_of(&h1));
        // …but not of H2 (G + {u,v}).
        let mut h2 = g.clone();
        h2.add_edge(0, 1);
        assert!(!t1.is_clique_tree_of(&h2));
        // The trivial decomposition is not a clique tree of H1.
        assert!(!TreeDecomposition::trivial(&g).is_clique_tree_of(&h1));
    }

    #[test]
    fn empty_graph_decompositions() {
        let g = Graph::new(0);
        let t = TreeDecomposition::new(Vec::new(), Vec::new());
        assert!(t.is_valid(&g));
        let g1 = Graph::new(1);
        assert!(!t.is_valid(&g1));
    }

    #[test]
    fn saturated_graph_is_supergraph() {
        let g = paper_example_graph();
        let t = paper_t1();
        let h = t.saturated_graph(&g);
        assert_eq!(h.m(), g.m() + 3);
        for (u, v) in g.edges() {
            assert!(h.has_edge(u, v));
        }
    }
}
