//! Enumeration of all clique trees of a chordal graph.
//!
//! A tree over the maximal cliques of a chordal graph `H` is a clique tree
//! iff it is a maximum-weight spanning tree of the clique graph, where the
//! weight of `{C_i, C_j}` is `|C_i ∩ C_j|` (see Appendix A.3 of the paper,
//! citing Jordan). Equivalently — and this is the characterization we use,
//! because it needs no weight bookkeeping — a spanning tree over the maximal
//! cliques is a clique tree iff the resulting tree decomposition satisfies
//! the junction-tree property.
//!
//! The number of clique trees can be exponential in the number of cliques,
//! so the enumerator is lazy and the convenience collectors take an explicit
//! cap. This is the ingredient that turns ranked enumeration of minimal
//! triangulations into ranked enumeration of *all* proper tree
//! decompositions (Proposition 6.1).

use crate::cliques::maximal_cliques_chordal;
use crate::treedec::TreeDecomposition;
use mtr_graph::{Graph, VertexSet};

/// Enumerates clique trees of the chordal graph `h`, up to `limit` results.
///
/// Returns `None` if `h` is not chordal. The first result equals the tree
/// produced by [`crate::cliquetree::clique_tree`] up to the choice of tree
/// edges (both are valid clique trees).
pub fn clique_trees(h: &Graph, limit: usize) -> Option<Vec<TreeDecomposition>> {
    let cliques = maximal_cliques_chordal(h)?;
    Some(clique_trees_from_cliques(h, cliques, limit))
}

/// Enumerates up to `limit` clique trees given the maximal cliques of `h`.
pub fn clique_trees_from_cliques(
    h: &Graph,
    cliques: Vec<VertexSet>,
    limit: usize,
) -> Vec<TreeDecomposition> {
    let k = cliques.len();
    let mut results = Vec::new();
    if limit == 0 {
        return results;
    }
    if k == 0 {
        results.push(TreeDecomposition::new(Vec::new(), Vec::new()));
        return results;
    }
    if k == 1 {
        results.push(TreeDecomposition::new(cliques, Vec::new()));
        return results;
    }
    // Candidate tree edges: pairs of cliques. Only pairs with non-empty
    // intersection can appear in a clique tree of a connected graph, but for
    // disconnected graphs zero-weight edges are needed, so all pairs are
    // candidates and the junction-tree filter decides.
    let mut candidate_edges: Vec<(usize, usize)> = Vec::new();
    for i in 0..k {
        for j in (i + 1)..k {
            candidate_edges.push((i, j));
        }
    }
    // Order candidates by decreasing intersection size so valid trees are
    // found early.
    candidate_edges
        .sort_by_key(|&(i, j)| std::cmp::Reverse(cliques[i].intersection_len(&cliques[j])));

    // Depth-first enumeration of spanning trees (choose k-1 edges that keep
    // the edge set acyclic), validated by the junction-tree property.
    struct Dfs<'a> {
        h: &'a Graph,
        cliques: &'a [VertexSet],
        edges: &'a [(usize, usize)],
        limit: usize,
        results: Vec<TreeDecomposition>,
    }
    impl Dfs<'_> {
        fn union_find(parent: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while parent[root] != root {
                root = parent[root];
            }
            let mut cur = x;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }

        fn recurse(
            &mut self,
            start: usize,
            chosen: &mut Vec<(usize, usize)>,
            parent: &mut Vec<usize>,
        ) {
            if self.results.len() >= self.limit {
                return;
            }
            if chosen.len() == self.cliques.len() - 1 {
                let td = TreeDecomposition::new(self.cliques.to_vec(), chosen.clone());
                if td.is_valid(self.h) {
                    self.results.push(td);
                }
                return;
            }
            let remaining_needed = self.cliques.len() - 1 - chosen.len();
            if self.edges.len() - start < remaining_needed {
                return;
            }
            for idx in start..self.edges.len() {
                let (a, b) = self.edges[idx];
                let (ra, rb) = (Self::union_find(parent, a), Self::union_find(parent, b));
                if ra == rb {
                    continue;
                }
                let saved = parent.clone();
                parent[ra] = rb;
                chosen.push((a, b));
                self.recurse(idx + 1, chosen, parent);
                chosen.pop();
                *parent = saved;
                if self.results.len() >= self.limit {
                    return;
                }
            }
        }
    }
    let mut dfs = Dfs {
        h,
        cliques: &cliques,
        edges: &candidate_edges,
        limit,
        results: Vec::new(),
    };
    let mut parent: Vec<usize> = (0..k).collect();
    dfs.recurse(0, &mut Vec::new(), &mut parent);
    dfs.results
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtr_graph::paper_example_graph;

    #[test]
    fn single_clique_tree_for_simple_chordal_graphs() {
        let path = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let trees = clique_trees(&path, 100).unwrap();
        assert_eq!(trees.len(), 1);
        assert!(trees[0].is_clique_tree_of(&path));
    }

    #[test]
    fn paper_h2_has_multiple_clique_trees() {
        // H2 = paper graph + {u,v}: maximal cliques {u,v,w1}, {u,v,w2},
        // {u,v,w3}, {v,v'}; the three big cliques share the adhesion {u,v}
        // and can be connected in several tree shapes (T2 and T2'' of
        // Figure 1(c) are two of them).
        let mut h2 = paper_example_graph();
        h2.add_edge(0, 1);
        let trees = clique_trees(&h2, 1000).unwrap();
        assert!(
            trees.len() > 1,
            "expected several clique trees, got {}",
            trees.len()
        );
        for t in &trees {
            assert!(t.is_clique_tree_of(&h2));
            assert!(t.is_valid(&paper_example_graph()));
        }
    }

    #[test]
    fn limit_is_respected() {
        let mut h2 = paper_example_graph();
        h2.add_edge(0, 1);
        let trees = clique_trees(&h2, 2).unwrap();
        assert_eq!(trees.len(), 2);
        assert!(clique_trees(&h2, 0).unwrap().is_empty());
    }

    #[test]
    fn non_chordal_yields_none() {
        let c4 = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(clique_trees(&c4, 10).is_none());
    }

    #[test]
    fn all_trees_are_distinct() {
        let mut h2 = paper_example_graph();
        h2.add_edge(0, 1);
        let trees = clique_trees(&h2, 1000).unwrap();
        for i in 0..trees.len() {
            for j in (i + 1)..trees.len() {
                assert_ne!(trees[i], trees[j]);
            }
        }
    }

    #[test]
    fn star_of_cliques_counts() {
        // A "star" chordal graph: central clique {0,1}, pendant vertices 2,3
        // attached to vertex 0. Maximal cliques: {0,1}, {0,2}, {0,3}.
        // Every spanning tree over the three cliques is a clique tree
        // (all share vertex 0), so there are 3 of them.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let trees = clique_trees(&g, 100).unwrap();
        assert_eq!(trees.len(), 3);
    }
}
