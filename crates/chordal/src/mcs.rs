//! Maximum Cardinality Search, perfect elimination orderings and the
//! linear-time chordality test of Tarjan and Yannakakis.
//!
//! A graph is chordal iff it admits a *perfect elimination ordering* (PEO):
//! an order in which every vertex, at the moment it is eliminated, has a
//! clique as its remaining (later-eliminated) neighborhood. Maximum
//! Cardinality Search (MCS) visits vertices by decreasing number of visited
//! neighbors; for chordal graphs the reverse visit order is a PEO, which the
//! Tarjan–Yannakakis test then verifies.

use mtr_graph::{Graph, Vertex, VertexSet};

/// Returns an MCS visit order (`result[0]` is visited first).
///
/// Ties are broken by smallest vertex index so the order is deterministic.
pub fn mcs_order(g: &Graph) -> Vec<Vertex> {
    let n = g.n() as usize;
    let mut weight = vec![0usize; n];
    let mut visited = VertexSet::empty(g.n());
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let v = (0..g.n())
            .filter(|&v| !visited.contains(v))
            .max_by(|&a, &b| weight[a as usize].cmp(&weight[b as usize]).then(b.cmp(&a)))
            .expect("unvisited vertex must exist");
        visited.insert(v);
        order.push(v);
        for u in g.neighbors(v).iter() {
            if !visited.contains(u) {
                weight[u as usize] += 1;
            }
        }
    }
    order
}

/// Checks whether `elimination_order` (first element eliminated first) is a
/// perfect elimination ordering of `g`.
///
/// Uses the Tarjan–Yannakakis criterion: for each vertex `v`, let `S` be the
/// neighbors of `v` eliminated after `v` and `p` the earliest-eliminated
/// vertex of `S` (the "parent"); the ordering is perfect iff `S \ {p}` is
/// always contained in the neighborhood of `p`.
///
/// # Panics
/// Panics if the order does not contain every vertex exactly once.
pub fn is_perfect_elimination_ordering(g: &Graph, elimination_order: &[Vertex]) -> bool {
    let n = g.n() as usize;
    assert_eq!(elimination_order.len(), n, "order must cover all vertices");
    let mut position = vec![usize::MAX; n];
    for (i, &v) in elimination_order.iter().enumerate() {
        assert!(
            position[v as usize] == usize::MAX,
            "vertex {v} appears twice in the elimination order"
        );
        position[v as usize] = i;
    }
    for &v in elimination_order {
        let pos_v = position[v as usize];
        // Later-eliminated neighbors of v.
        let mut later: Vec<Vertex> = g
            .neighbors(v)
            .iter()
            .filter(|&u| position[u as usize] > pos_v)
            .collect();
        if later.len() <= 1 {
            continue;
        }
        later.sort_by_key(|&u| position[u as usize]);
        let parent = later[0];
        let parent_nbrs = g.neighbors(parent);
        if !later[1..].iter().all(|&u| parent_nbrs.contains(u)) {
            return false;
        }
    }
    true
}

/// Linear-time-style chordality test: MCS followed by the PEO check.
pub fn is_chordal(g: &Graph) -> bool {
    let mut order = mcs_order(g);
    order.reverse();
    is_perfect_elimination_ordering(g, &order)
}

/// Returns a perfect elimination ordering of a chordal graph, or `None` if
/// the graph is not chordal.
pub fn perfect_elimination_ordering(g: &Graph) -> Option<Vec<Vertex>> {
    let mut order = mcs_order(g);
    order.reverse();
    if is_perfect_elimination_ordering(g, &order) {
        Some(order)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtr_graph::paper_example_graph;

    fn cycle(n: u32) -> Graph {
        let edges: Vec<(Vertex, Vertex)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn trees_and_cliques_are_chordal() {
        let path = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert!(is_chordal(&path));
        assert!(is_chordal(&Graph::complete(6)));
        assert!(is_chordal(&Graph::new(4)));
        assert!(is_chordal(&Graph::new(0)));
    }

    #[test]
    fn long_cycles_are_not_chordal() {
        assert!(is_chordal(&cycle(3)));
        assert!(!is_chordal(&cycle(4)));
        assert!(!is_chordal(&cycle(5)));
        assert!(!is_chordal(&cycle(8)));
    }

    #[test]
    fn cycle_with_chord_is_chordal() {
        let mut g = cycle(4);
        g.add_edge(0, 2);
        assert!(is_chordal(&g));
    }

    #[test]
    fn paper_graph_is_not_chordal() {
        // It contains the chordless cycle u—w1—v—w2—u.
        assert!(!is_chordal(&paper_example_graph()));
    }

    #[test]
    fn paper_triangulations_are_chordal() {
        // H1: saturate {w1,w2,w3} (and S3={v}, S... ) per Figure 1(b).
        let mut h1 = paper_example_graph();
        h1.add_edge(3, 4);
        h1.add_edge(3, 5);
        h1.add_edge(4, 5);
        assert!(is_chordal(&h1));
        // H2: add the edge {u, v}.
        let mut h2 = paper_example_graph();
        h2.add_edge(0, 1);
        assert!(is_chordal(&h2));
    }

    #[test]
    fn mcs_order_is_a_permutation() {
        let g = paper_example_graph();
        let mut order = mcs_order(&g);
        order.sort_unstable();
        assert_eq!(order, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn peo_rejects_bad_order_on_chordal_graph() {
        // A path 0-1-2: eliminating the middle vertex first is not perfect.
        let path = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        assert!(!is_perfect_elimination_ordering(&path, &[1, 0, 2]));
        assert!(is_perfect_elimination_ordering(&path, &[0, 1, 2]));
        assert!(is_perfect_elimination_ordering(&path, &[0, 2, 1]));
    }

    #[test]
    fn peo_extraction() {
        let path = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let peo = perfect_elimination_ordering(&path).unwrap();
        assert!(is_perfect_elimination_ordering(&path, &peo));
        assert!(perfect_elimination_ordering(&cycle(5)).is_none());
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn peo_check_rejects_duplicates() {
        let path = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        is_perfect_elimination_ordering(&path, &[0, 0, 1]);
    }
}
