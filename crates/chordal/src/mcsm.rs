//! MCS-M: minimal triangulation via Maximum Cardinality Search with fill
//! (Berry, Blair, Heggernes 2002).
//!
//! MCS-M generalizes MCS: vertices are numbered from `n` down to `1` by
//! decreasing weight, and when a vertex `v` is numbered, every unnumbered
//! vertex `u` that can reach `v` through unnumbered vertices of strictly
//! smaller weight gets its weight bumped — and a fill edge `{u, v}` if the
//! two are not already adjacent. The graph plus the collected fill edges is
//! a minimal triangulation, and the numbering (reversed) is a perfect
//! elimination ordering of it.
//!
//! It is included both as a second black-box minimal triangulator for the
//! CKK-style baseline and for ablation benches against LB-Triang.

use mtr_graph::{Graph, Vertex, VertexSet};

/// The result of running MCS-M.
#[derive(Clone, Debug)]
pub struct McsMResult {
    /// The minimal triangulation `G ∪ fill`.
    pub triangulation: Graph,
    /// The fill edges added, as `(u, v)` pairs with `u < v`.
    pub fill: Vec<(Vertex, Vertex)>,
    /// The computed elimination ordering of the triangulation
    /// (first element eliminated first).
    pub elimination_order: Vec<Vertex>,
}

/// Runs MCS-M on `g`, producing a minimal triangulation.
///
/// Ties between equal-weight vertices are broken by smallest index so the
/// result is deterministic.
pub fn mcs_m(g: &Graph) -> McsMResult {
    let n = g.n() as usize;
    let mut weight = vec![0usize; n];
    let mut numbered = VertexSet::empty(g.n());
    let mut fill: Vec<(Vertex, Vertex)> = Vec::new();
    // visit_order[0] is the vertex numbered n (visited first).
    let mut visit_order: Vec<Vertex> = Vec::with_capacity(n);

    for _ in 0..n {
        let v = (0..g.n())
            .filter(|&x| !numbered.contains(x))
            .max_by(|&a, &b| weight[a as usize].cmp(&weight[b as usize]).then(b.cmp(&a)))
            .expect("an unnumbered vertex exists");
        // For every unnumbered u ≠ v: if there is a path v → u through
        // unnumbered vertices whose intermediate vertices all have weight
        // strictly smaller than weight[u], bump u (and add a fill edge when
        // u ∉ N(v)). We compute, for every unnumbered u, the smallest
        // possible "maximum intermediate weight" over all v→u paths through
        // unnumbered vertices, via a Dijkstra-style relaxation on the
        // bottleneck weight.
        let unnumbered: Vec<Vertex> = (0..g.n())
            .filter(|&x| !numbered.contains(x) && x != v)
            .collect();
        let mut bottleneck: Vec<Option<usize>> = vec![None; n];
        // Direct neighbors of v have no intermediate vertices: bottleneck 0
        // (interpreted as "no intermediate", always acceptable).
        let mut todo: Vec<Vertex> = Vec::new();
        for u in g.neighbors(v).iter() {
            if !numbered.contains(u) {
                bottleneck[u as usize] = Some(0);
                todo.push(u);
            }
        }
        // Relax until fixpoint (graphs here are small; a simple loop is fine).
        while let Some(x) = todo.pop() {
            let through = bottleneck[x as usize].expect("reached vertex has a bottleneck");
            // Using x as an intermediate vertex costs max(through, weight[x] + 1)
            // in the sense that every intermediate on the path must have
            // weight < weight[u]; we track the maximum intermediate weight.
            let via = through.max(weight[x as usize] + 1);
            for y in g.neighbors(x).iter() {
                if numbered.contains(y) || y == v {
                    continue;
                }
                let better = match bottleneck[y as usize] {
                    None => true,
                    Some(cur) => via < cur,
                };
                if better {
                    bottleneck[y as usize] = Some(via);
                    todo.push(y);
                }
            }
        }
        let mut bumped: Vec<Vertex> = Vec::new();
        for &u in &unnumbered {
            if let Some(b) = bottleneck[u as usize] {
                // The path exists iff every intermediate weight < weight[u],
                // i.e. the best achievable maximum intermediate weight
                // (stored as weight+1) is ≤ weight[u].
                if b <= weight[u as usize] {
                    bumped.push(u);
                    if !g.has_edge(u, v) && !fill.contains(&(u.min(v), u.max(v))) {
                        fill.push((u.min(v), u.max(v)));
                    }
                }
            }
        }
        for u in bumped {
            weight[u as usize] += 1;
        }
        numbered.insert(v);
        visit_order.push(v);
    }

    let mut triangulation = g.clone();
    for &(u, v) in &fill {
        triangulation.add_edge(u, v);
    }
    // Vertices were numbered n, n-1, …, 1; the elimination order eliminates
    // the vertex numbered 1 first, i.e. the reverse of the visit order.
    let elimination_order: Vec<Vertex> = visit_order.into_iter().rev().collect();
    McsMResult {
        triangulation,
        fill,
        elimination_order,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcs::{is_chordal, is_perfect_elimination_ordering};
    use crate::verify::is_minimal_triangulation;
    use mtr_graph::paper_example_graph;

    #[test]
    fn chordal_graphs_get_no_fill() {
        let path = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let r = mcs_m(&path);
        assert!(r.fill.is_empty());
        assert_eq!(r.triangulation, path);
        assert!(is_perfect_elimination_ordering(&path, &r.elimination_order));
    }

    #[test]
    fn cycles_get_minimal_fill() {
        for n in 4..9u32 {
            let edges: Vec<(Vertex, Vertex)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
            let c = Graph::from_edges(n, &edges);
            let r = mcs_m(&c);
            assert!(
                is_chordal(&r.triangulation),
                "C{n} triangulation not chordal"
            );
            assert!(
                is_minimal_triangulation(&c, &r.triangulation),
                "C{n} triangulation not minimal"
            );
            assert_eq!(
                r.fill.len(),
                (n - 3) as usize,
                "C{n} should need n-3 fill edges"
            );
        }
    }

    #[test]
    fn paper_graph_minimal_triangulation() {
        let g = paper_example_graph();
        let r = mcs_m(&g);
        assert!(is_chordal(&r.triangulation));
        assert!(is_minimal_triangulation(&g, &r.triangulation));
        assert!(r.fill.len() == 1 || r.fill.len() == 3);
        assert!(is_perfect_elimination_ordering(
            &r.triangulation,
            &r.elimination_order
        ));
    }

    #[test]
    fn elimination_order_is_peo_of_triangulation() {
        // 3x3 grid.
        let mut edges = Vec::new();
        let idx = |r: u32, c: u32| r * 3 + c;
        for r in 0..3 {
            for c in 0..3 {
                if c + 1 < 3 {
                    edges.push((idx(r, c), idx(r, c + 1)));
                }
                if r + 1 < 3 {
                    edges.push((idx(r, c), idx(r + 1, c)));
                }
            }
        }
        let g = Graph::from_edges(9, &edges);
        let r = mcs_m(&g);
        assert!(is_chordal(&r.triangulation));
        assert!(is_minimal_triangulation(&g, &r.triangulation));
        assert!(is_perfect_elimination_ordering(
            &r.triangulation,
            &r.elimination_order
        ));
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let r = mcs_m(&Graph::new(0));
        assert_eq!(r.triangulation.n(), 0);
        let r1 = mcs_m(&Graph::new(1));
        assert!(r1.fill.is_empty());
        let r2 = mcs_m(&Graph::from_edges(2, &[(0, 1)]));
        assert!(r2.fill.is_empty());
    }
}
