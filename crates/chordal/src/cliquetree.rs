//! Clique trees of chordal graphs.
//!
//! A clique tree of a chordal graph `H` is a tree decomposition of `H` whose
//! bags are exactly the maximal cliques of `H` (Theorem 2.2). Clique trees
//! are exactly the maximum-weight spanning trees of the *clique graph*: the
//! complete graph over the maximal cliques where the weight of an edge is
//! the size of the intersection of its two cliques (Bernstein–Goodman; see
//! also Blair–Peyton).

use crate::cliques::maximal_cliques_chordal;
use crate::treedec::TreeDecomposition;
use mtr_graph::{Graph, VertexSet};

/// Builds one clique tree of the chordal graph `h`, or returns `None` when
/// `h` is not chordal.
///
/// The tree is a maximum-weight spanning tree of the clique graph, computed
/// with Prim's algorithm; for disconnected graphs the per-component trees
/// are linked by zero-weight edges so the result is always a single tree.
pub fn clique_tree(h: &Graph) -> Option<TreeDecomposition> {
    let cliques = maximal_cliques_chordal(h)?;
    Some(clique_tree_from_cliques(cliques))
}

/// Builds a clique tree given the maximal cliques of a chordal graph.
///
/// This is the same maximum-weight spanning tree construction as
/// [`clique_tree`], exposed separately so callers that already know the
/// maximal cliques (e.g. the triangulation DP, which assembles bags itself)
/// can skip the chordality machinery.
pub fn clique_tree_from_cliques(cliques: Vec<VertexSet>) -> TreeDecomposition {
    let k = cliques.len();
    if k == 0 {
        return TreeDecomposition::new(Vec::new(), Vec::new());
    }
    // Prim's algorithm over the complete clique graph with weights
    // |C_i ∩ C_j|; zero weights are allowed so the result spans every clique
    // even when the underlying graph is disconnected.
    let mut in_tree = vec![false; k];
    let mut best_weight = vec![usize::MAX; k];
    let mut best_parent = vec![usize::MAX; k];
    let mut edges = Vec::with_capacity(k - 1);
    in_tree[0] = true;
    for j in 1..k {
        best_weight[j] = cliques[0].intersection_len(&cliques[j]);
        best_parent[j] = 0;
    }
    for _ in 1..k {
        let next = (0..k)
            .filter(|&j| !in_tree[j])
            .max_by_key(|&j| best_weight[j])
            .expect("some clique remains outside the tree");
        in_tree[next] = true;
        edges.push((best_parent[next], next));
        for j in 0..k {
            if !in_tree[j] {
                let w = cliques[next].intersection_len(&cliques[j]);
                if w > best_weight[j] {
                    best_weight[j] = w;
                    best_parent[j] = next;
                }
            }
        }
    }
    TreeDecomposition::new(cliques, edges)
}

/// The minimal separators of a chordal graph, given its maximal cliques:
/// the distinct non-empty intersections of adjacent bags of any clique
/// tree (Ho–Lee; Blair–Peyton). Returns them sorted by the total order on
/// [`VertexSet`] — the same set, in the same order, as
/// `mtr_separators::minimal_separators` on the chordal graph itself, at
/// `O(k²)` set intersections for `k ≤ n` maximal cliques instead of a full
/// separator enumeration.
///
/// The enumeration engines report each emitted triangulation's minimal
/// separators; on the factorized (per-atom) path this fast path is what
/// keeps that reporting from dominating the per-result delay.
pub fn minimal_separators_from_cliques(cliques: Vec<VertexSet>) -> Vec<VertexSet> {
    let tree = clique_tree_from_cliques(cliques);
    let mut seps: Vec<VertexSet> = tree
        .adhesions()
        .into_iter()
        .filter(|s| !s.is_empty())
        .collect();
    seps.sort();
    seps.dedup();
    seps
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtr_graph::paper_example_graph;

    /// Brute-force minimal separators of a small graph via the
    /// full-component characterization, for cross-validation.
    fn minimal_separators_bruteforce(g: &Graph) -> Vec<VertexSet> {
        let n = g.n();
        assert!(n <= 16);
        let mut out = Vec::new();
        for mask in 1u32..(1u32 << n) {
            let s = VertexSet::from_iter(n, (0..n).filter(|&v| (mask >> v) & 1 == 1));
            if s.len() == n as usize {
                continue;
            }
            let full = g
                .components_excluding(&s)
                .into_iter()
                .filter(|c| g.neighborhood_of_set(c) == s)
                .count();
            if full >= 2 {
                out.push(s);
            }
        }
        out.sort();
        out
    }

    #[test]
    fn minimal_separators_from_cliques_match_bruteforce() {
        // Chordal graphs of different shapes: paper triangulations, a
        // path, a tree, two glued triangles, a disconnected graph.
        let mut h1 = paper_example_graph();
        h1.add_edge(3, 4);
        h1.add_edge(3, 5);
        h1.add_edge(4, 5);
        let mut h2 = paper_example_graph();
        h2.add_edge(0, 1);
        let cases = vec![
            h1,
            h2,
            Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]),
            Graph::from_edges(6, &[(0, 1), (1, 2), (1, 3), (3, 4), (3, 5)]),
            Graph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]),
            Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4)]),
            Graph::complete(4),
            Graph::new(3),
        ];
        for h in cases {
            let cliques = maximal_cliques_chordal(&h).expect("case is chordal");
            let fast = minimal_separators_from_cliques(cliques);
            let slow = minimal_separators_bruteforce(&h);
            assert_eq!(fast, slow, "separator mismatch on {h:?}");
        }
    }

    #[test]
    fn clique_tree_of_paper_triangulation_h1() {
        let mut h1 = paper_example_graph();
        h1.add_edge(3, 4);
        h1.add_edge(3, 5);
        h1.add_edge(4, 5);
        let t = clique_tree(&h1).unwrap();
        assert_eq!(t.num_bags(), 3);
        assert!(t.is_clique_tree_of(&h1));
        assert!(t.is_valid(&paper_example_graph()));
        assert_eq!(t.width(), 3);
    }

    #[test]
    fn clique_tree_of_paper_triangulation_h2() {
        let mut h2 = paper_example_graph();
        h2.add_edge(0, 1);
        let t = clique_tree(&h2).unwrap();
        assert_eq!(t.num_bags(), 4);
        assert!(t.is_clique_tree_of(&h2));
        assert_eq!(t.width(), 2);
        assert_eq!(t.fill_in(&paper_example_graph()), 1);
    }

    #[test]
    fn clique_tree_of_tree_is_edge_bags() {
        let tree = Graph::from_edges(5, &[(0, 1), (1, 2), (1, 3), (3, 4)]);
        let t = clique_tree(&tree).unwrap();
        assert_eq!(t.num_bags(), 4);
        assert!(t.is_clique_tree_of(&tree));
        assert_eq!(t.width(), 1);
        assert_eq!(t.fill_in(&tree), 0);
    }

    #[test]
    fn clique_tree_of_complete_graph_is_single_bag() {
        let g = Graph::complete(4);
        let t = clique_tree(&g).unwrap();
        assert_eq!(t.num_bags(), 1);
        assert!(t.is_clique_tree_of(&g));
    }

    #[test]
    fn non_chordal_has_no_clique_tree() {
        let c4 = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(clique_tree(&c4).is_none());
    }

    #[test]
    fn disconnected_chordal_graph_still_yields_one_tree() {
        // Two disjoint triangles.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        let t = clique_tree(&g).unwrap();
        assert_eq!(t.num_bags(), 2);
        assert!(t.is_valid(&g));
        assert!(t.is_clique_tree_of(&g));
    }

    #[test]
    fn from_cliques_empty() {
        let t = clique_tree_from_cliques(Vec::new());
        assert_eq!(t.num_bags(), 0);
    }
}
