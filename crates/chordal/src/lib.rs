//! `mtr-chordal`: chordal-graph machinery for the ranked-triangulations
//! workspace.
//!
//! This crate supplies the substrate around chordality that the paper's
//! algorithms assume:
//!
//! * [`mcs`] — Maximum Cardinality Search, perfect elimination orderings and
//!   the Tarjan–Yannakakis chordality test;
//! * [`cliques`] — maximal cliques of chordal graphs (and a Bron–Kerbosch
//!   reference for arbitrary graphs);
//! * [`cliquetree`] / [`spanning`] — one clique tree, or all of them, of a
//!   chordal graph;
//! * [`treedec`] — the [`TreeDecomposition`] type with validity, width,
//!   fill-in, and clique-tree checks;
//! * [`lbtriang`] / [`mcsm`] — the LB-Triang and MCS-M minimal
//!   triangulation heuristics used by the CKK-style baseline;
//! * [`elimination`] — elimination-game heuristics (min-degree, min-fill)
//!   and treewidth lower bounds (degeneracy, MMD+);
//! * [`verify`] — predicates for "is a (minimal) triangulation", used by
//!   tests and the experiment harness;
//! * [`td_io`] — PACE `.td` serialization of tree decompositions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cliques;
pub mod cliquetree;
pub mod elimination;
pub mod lbtriang;
pub mod mcs;
pub mod mcsm;
pub mod spanning;
pub mod td_io;
pub mod treedec;
pub mod verify;

pub use cliques::{maximal_cliques_bruteforce, maximal_cliques_chordal};
pub use cliquetree::{clique_tree, clique_tree_from_cliques, minimal_separators_from_cliques};
pub use elimination::{
    degeneracy, elimination_game, min_degree_ordering, min_fill_ordering, mmd_plus_lower_bound,
    treewidth_upper_bound, EliminationResult,
};
pub use lbtriang::{lb_triang, lb_triang_identity, lb_triang_min_degree};
pub use mcs::{
    is_chordal, is_perfect_elimination_ordering, mcs_order, perfect_elimination_ordering,
};
pub use mcsm::{mcs_m, McsMResult};
pub use spanning::{clique_trees, clique_trees_from_cliques};
pub use td_io::{parse_td, write_td, TdParseError};
pub use treedec::{InvalidDecomposition, TreeDecomposition};
pub use verify::{fill_edges, is_minimal_triangulation, is_triangulation};
