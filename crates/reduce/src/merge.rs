//! The factorized ranked enumerator: one lazy ranked stream per atom,
//! merged into a single globally ranked stream over the product space.
//!
//! Minimal triangulations factorize over the atoms of a clique-separator
//! decomposition: every minimal triangulation of the input is the union of
//! exactly one minimal triangulation per atom, with pairwise-disjoint fill
//! sets. The merge therefore ranks *tuples* `(j_1, …, j_k)` — "take the
//! `j_i`-th cheapest triangulation of atom `i`" — in a Lawler-style best
//! first search: a priority queue keyed by the combined cost (additive for
//! fill-like costs, max for width-like costs, per
//! [`AtomCombine`]), popping a tuple emits its materialized
//! triangulation and pushes the `k` tuples that increment one coordinate.
//! Per-atom streams are pulled lazily and memoized, so atom `i` only ever
//! computes as many of its own triangulations as the global ranking needs.
//!
//! Emitted triangulations are fill-edge sets of the *original* graph: the
//! per-atom fill edges are remapped through the atom's vertex mapping, the
//! union graph is rebuilt, and the reported cost is re-evaluated on the
//! full bag set — so results are bit-for-bit comparable with the direct
//! engine's.
//!
//! With a [`WorkerPool`] attached, the per-atom streams advance as pool
//! tasks: atoms are independent subproblems, so after each pop the cold
//! coordinates of the successor tuples are pulled concurrently, and every
//! pull speculatively prefetches a small bounded lookahead of further
//! `(cost, fill)` entries into the atom's memo buffer — the product-space
//! merge then never blocks on a cold stream for tuples it is about to
//! rank. The emitted sequence is identical to the sequential merge; only
//! the wall-clock delay (and the amount of speculative work) changes.

use crate::decompose::Atom;
use mtr_chordal::maximal_cliques_chordal;
use mtr_core::cost::{AtomCombine, BagCost, CostValue};
use mtr_core::pool::{Scratch, WorkerPool};
use mtr_core::{Preprocessed, RankedState, RankedTriangulation};
use mtr_graph::{Graph, Vertex};
use mtr_separators::minimal_separators;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// How many results beyond the immediately needed index a pooled stream
/// pull fetches ahead — the bounded speculative prefetch. Small on purpose:
/// each extra result is one constrained re-optimization of the atom, so a
/// large lookahead would trade latency for wasted work near exhaustion.
/// Speculation is only enabled when the pool does not oversubscribe the
/// hardware (see [`FactorizedEnumerator::new`]): on fewer cores than
/// workers the speculative pulls cannot overlap with needed work, they can
/// only serialize after it.
const PREFETCH: usize = 2;

/// One memoized per-atom result: its cost (evaluated on the remapped atom
/// graph) and its fill edges translated back to original vertex ids.
struct CachedResult {
    cost: CostValue,
    fill: Vec<(Vertex, Vertex)>,
}

/// The engine behind one atom's ranked stream.
enum AtomEngine {
    /// Chordal atom: exactly one minimal triangulation (the atom itself,
    /// zero fill). No preprocessing, no Lawler–Murty machinery.
    Trivial { graph: Graph },
    /// General atom: a full ranked enumeration over its own preprocessing
    /// (boxed — `Preprocessed` is large compared to the trivial variant).
    Ranked {
        pre: Box<Preprocessed>,
        state: RankedState,
    },
}

/// A lazily pulled, memoized ranked stream of one atom's triangulations.
pub(crate) struct AtomStream {
    mapping: Vec<Vertex>,
    engine: AtomEngine,
    cached: Vec<CachedResult>,
    exhausted: bool,
    /// `state.nodes_explored()` snapshot right after result `r` was
    /// produced — a deterministic function of `r`, independent of how far
    /// ahead speculation pulled.
    nodes_after: Vec<usize>,
    /// Results genuinely demanded by the merge so far (speculative
    /// prefetch pulls don't count), as a high-water index + 1.
    demanded: usize,
}

impl AtomStream {
    /// A stream backed by the trivial single-result engine (chordal atoms).
    pub(crate) fn trivial(atom: &Atom) -> Self {
        AtomStream {
            mapping: atom.mapping.clone(),
            engine: AtomEngine::Trivial {
                graph: atom.graph.clone(),
            },
            cached: Vec::new(),
            exhausted: false,
            nodes_after: Vec::new(),
            demanded: 0,
        }
    }

    /// A stream backed by a ranked enumeration over `pre` (which must be
    /// the preprocessing of the atom's remapped graph).
    pub(crate) fn ranked(atom: &Atom, pre: Preprocessed) -> Self {
        AtomStream {
            mapping: atom.mapping.clone(),
            engine: AtomEngine::Ranked {
                pre: Box::new(pre),
                state: RankedState::new(),
            },
            cached: Vec::new(),
            exhausted: false,
            nodes_after: Vec::new(),
            demanded: 0,
        }
    }

    /// Lawler–Murty partitions a *sequential* merge would have explored to
    /// satisfy the demand so far. Speculative prefetch work is excluded on
    /// purpose: node budgets must stop at the same result on every host
    /// and at every thread count, and the prefetch window varies with
    /// both.
    fn nodes_explored(&self) -> usize {
        match &self.engine {
            AtomEngine::Trivial { .. } => 0,
            AtomEngine::Ranked { state, .. } => {
                if self.demanded > self.cached.len() && self.exhausted {
                    // The demand ran past the stream's end, so the whole
                    // exploration (including the exhausting pull) was
                    // demanded — and its total is the same whether it was
                    // reached lazily or speculatively.
                    state.nodes_explored()
                } else {
                    match self.demanded.min(self.cached.len()) {
                        0 => 0,
                        upto => self.nodes_after[upto - 1],
                    }
                }
            }
        }
    }

    /// Records that the merge genuinely needs result `j` (or discovered
    /// exhaustion while trying to reach it).
    fn note_demand(&mut self, j: usize) {
        self.demanded = self.demanded.max(j + 1);
    }

    /// Number of results already sitting in the memo buffer.
    fn cached_len(&self) -> usize {
        self.cached.len()
    }

    fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    fn preprocessing_counts(&self) -> (usize, usize, usize) {
        match &self.engine {
            AtomEngine::Trivial { .. } => (0, 0, 0),
            AtomEngine::Ranked { pre, .. } => (
                pre.minimal_separators().len(),
                pre.pmcs().len(),
                pre.full_blocks().len(),
            ),
        }
    }

    /// Makes sure result `j` is cached (pulling the engine as needed).
    /// Returns `false` when the stream is exhausted before `j`.
    fn ensure<K: BagCost + ?Sized>(
        &mut self,
        j: usize,
        cost: &K,
        width_bound: Option<usize>,
    ) -> bool {
        while self.cached.len() <= j {
            if self.exhausted {
                return false;
            }
            match &mut self.engine {
                AtomEngine::Trivial { graph } => {
                    self.exhausted = true;
                    let bags = maximal_cliques_chordal(graph)
                        .expect("trivial atoms are chordal by construction");
                    let width = bags.iter().map(|b| b.len()).max().unwrap_or(1) - 1;
                    if width_bound.is_some_and(|b| width > b) {
                        return false;
                    }
                    let value = cost.cost_of_bags(graph, &graph.vertex_set(), &bags);
                    self.cached.push(CachedResult {
                        cost: value,
                        fill: Vec::new(),
                    });
                }
                AtomEngine::Ranked { pre, state } => match state.next(pre, cost) {
                    Some(result) => {
                        let fill = pre
                            .graph()
                            .fill_edges_of(&result.triangulation)
                            .into_iter()
                            .map(|(u, v)| (self.mapping[u as usize], self.mapping[v as usize]))
                            .collect();
                        self.cached.push(CachedResult {
                            cost: result.cost,
                            fill,
                        });
                        self.nodes_after.push(state.nodes_explored());
                    }
                    None => {
                        self.exhausted = true;
                        return false;
                    }
                },
            }
        }
        true
    }
}

/// One pending tuple of per-atom stream indices.
struct TupleEntry {
    cost: CostValue,
    sequence: u64,
    tuple: Vec<u32>,
}

impl PartialEq for TupleEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost && self.sequence == other.sequence
    }
}
impl Eq for TupleEntry {}
impl PartialOrd for TupleEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TupleEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap semantics on a max-heap: cheapest cost, then oldest.
        other
            .cost
            .cmp(&self.cost)
            .then_with(|| other.sequence.cmp(&self.sequence))
    }
}

/// The merged, globally ranked enumerator over the product of the per-atom
/// streams.
///
/// The `Option` wrapping of the streams exists for the pooled mode: a
/// stream is temporarily *moved* into a pool task while it advances on a
/// worker and put back when the batch completes, so the engine needs no
/// shared mutable state (and no locks) across threads. Outside a batch
/// every slot is occupied.
pub(crate) struct FactorizedEnumerator<'a, 'p, K: BagCost + Sync + ?Sized> {
    graph: &'a Graph,
    cost: &'a K,
    combine: AtomCombine,
    width_bound: Option<usize>,
    atoms: Vec<Option<AtomStream>>,
    pool: Option<WorkerPool<'a, 'p>>,
    prefetch: usize,
    heap: BinaryHeap<TupleEntry>,
    seen: HashSet<Vec<u32>>,
    sequence: u64,
    started: bool,
}

impl<'a, 'p, K: BagCost + Sync + ?Sized> FactorizedEnumerator<'a, 'p, K> {
    pub(crate) fn new(
        graph: &'a Graph,
        cost: &'a K,
        combine: AtomCombine,
        width_bound: Option<usize>,
        atoms: Vec<AtomStream>,
        pool: Option<WorkerPool<'a, 'p>>,
    ) -> Self {
        let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());
        let prefetch = match &pool {
            Some(p) if p.threads() <= hardware => PREFETCH,
            _ => 0,
        };
        FactorizedEnumerator {
            graph,
            cost,
            combine,
            width_bound,
            atoms: atoms.into_iter().map(Some).collect(),
            pool,
            prefetch,
            heap: BinaryHeap::new(),
            seen: HashSet::new(),
            sequence: 0,
            started: false,
        }
    }

    fn stream(&self, i: usize) -> &AtomStream {
        self.atoms[i]
            .as_ref()
            .expect("stream present outside batch")
    }

    pub(crate) fn queue_depth(&self) -> usize {
        self.heap.len()
    }

    /// Lawler–Murty partitions explored across all atom streams, counting
    /// only *demanded* work (see [`AtomStream::nodes_explored`]): node
    /// budgets therefore stop at the same result sequentially, in
    /// parallel, and on any host, regardless of speculative prefetch.
    pub(crate) fn nodes_explored(&self) -> usize {
        (0..self.atoms.len())
            .map(|i| self.stream(i).nodes_explored())
            .sum()
    }

    /// `(minimal separators, PMCs, full blocks)` summed over the per-atom
    /// preprocessings.
    pub(crate) fn preprocessing_counts(&self) -> (usize, usize, usize) {
        (0..self.atoms.len())
            .map(|i| self.stream(i).preprocessing_counts())
            .fold((0, 0, 0), |(a, b, c), (x, y, z)| (a + x, b + y, c + z))
    }

    /// Pool mode: advances the streams behind every `(atom, index)` target
    /// concurrently (one task per cold stream), each pull prefetching
    /// [`PREFETCH`] results beyond its target. Sequential mode: no-op —
    /// [`FactorizedEnumerator::combined_cost`] pulls lazily as before.
    fn ensure_batch(&mut self, targets: &[(usize, usize)]) {
        let Some(pool) = self.pool else { return };
        let cost = self.cost;
        let width_bound = self.width_bound;
        let prefetch = self.prefetch;
        let cold: Vec<(usize, usize)> = targets
            .iter()
            .copied()
            .filter(|&(i, j)| {
                let s = self.stream(i);
                !s.is_exhausted() && s.cached_len() <= j
            })
            .collect();
        let tasks: Vec<_> = cold
            .into_iter()
            .map(|(i, j)| {
                let mut stream = self.atoms[i].take().expect("stream present outside batch");
                move |_scratch: &mut Scratch| {
                    stream.ensure(j + prefetch, cost, width_bound);
                    (i, stream)
                }
            })
            .collect();
        for (i, stream) in pool.run_batch(tasks) {
            self.atoms[i] = Some(stream);
        }
    }

    /// The combined cost of a tuple, pulling atom streams as needed;
    /// `None` when some coordinate is past the end of its (finite) stream.
    fn combined_cost(&mut self, tuple: &[u32]) -> Option<CostValue> {
        let cost = self.cost;
        let width_bound = self.width_bound;
        let mut acc: Option<CostValue> = None;
        for (i, &j) in tuple.iter().enumerate() {
            let stream = self.atoms[i]
                .as_mut()
                .expect("stream present outside batch");
            // This is the genuine demand point (speculative prefetch goes
            // through `ensure_batch` instead): record it whether or not
            // the stream can satisfy it, for the node accounting.
            stream.note_demand(j as usize);
            if !stream.ensure(j as usize, cost, width_bound) {
                return None;
            }
            let c = stream.cached[j as usize].cost;
            acc = Some(match (acc, self.combine) {
                (None, _) => c,
                (Some(a), AtomCombine::Additive) => a.plus(c),
                (Some(a), AtomCombine::Max) => a.max(c),
            });
        }
        Some(acc.unwrap_or(CostValue::ZERO))
    }

    fn push_tuple(&mut self, tuple: Vec<u32>) {
        if !self.seen.insert(tuple.clone()) {
            return;
        }
        if let Some(cost) = self.combined_cost(&tuple) {
            self.sequence += 1;
            self.heap.push(TupleEntry {
                cost,
                sequence: self.sequence,
                tuple,
            });
        }
    }

    /// Rebuilds the original-graph triangulation a tuple denotes.
    fn materialize(&self, entry: &TupleEntry) -> RankedTriangulation {
        let mut h = self.graph.clone();
        for (i, &j) in entry.tuple.iter().enumerate() {
            for &(u, v) in &self.stream(i).cached[j as usize].fill {
                h.add_edge(u, v);
            }
        }
        let bags = maximal_cliques_chordal(&h)
            .expect("the union of per-atom minimal triangulations is chordal");
        let cost = self
            .cost
            .cost_of_bags(self.graph, &self.graph.vertex_set(), &bags);
        // The combined heap key must equal the true cost — that is exactly
        // the contract of `AtomCombine` — otherwise the stream would not be
        // globally sorted.
        debug_assert_eq!(cost, entry.cost, "atom_combine() contract violated");
        let seps = minimal_separators(&h);
        RankedTriangulation {
            minimal_separators: seps,
            triangulation: h,
            bags,
            cost,
        }
    }
}

impl<K: BagCost + Sync + ?Sized> Iterator for FactorizedEnumerator<'_, '_, K> {
    type Item = RankedTriangulation;

    fn next(&mut self) -> Option<RankedTriangulation> {
        if !self.started {
            self.started = true;
            // The all-zeros tuple: every atom's optimum. For the empty
            // product (zero atoms, i.e. the empty graph) this is the empty
            // tuple whose materialization is the graph itself. In pool mode
            // the per-atom optima are computed concurrently first.
            let first: Vec<(usize, usize)> = (0..self.atoms.len()).map(|i| (i, 0)).collect();
            self.ensure_batch(&first);
            self.push_tuple(vec![0; self.atoms.len()]);
        }
        let entry = self.heap.pop()?;
        // Pool mode: warm every successor coordinate concurrently before
        // the (sequential) heap pushes read the memoized costs.
        let wanted: Vec<(usize, usize)> = entry
            .tuple
            .iter()
            .enumerate()
            .map(|(i, &j)| (i, j as usize + 1))
            .collect();
        self.ensure_batch(&wanted);
        let result = self.materialize(&entry);
        for i in 0..entry.tuple.len() {
            let mut successor = entry.tuple.clone();
            successor[i] += 1;
            self.push_tuple(successor);
        }
        Some(result)
    }
}

impl<K: BagCost + Sync + ?Sized> mtr_core::SessionEngine for FactorizedEnumerator<'_, '_, K> {
    fn next_result(&mut self) -> Option<RankedTriangulation> {
        self.next()
    }

    fn queue_depth(&self) -> usize {
        self.queue_depth()
    }

    fn nodes_explored(&self) -> usize {
        self.nodes_explored()
    }

    fn duplicates_skipped(&self) -> usize {
        // Distinct tuples materialize distinct fill unions (per-atom fill
        // sets are disjoint), and the `seen` set keeps tuples unique.
        0
    }
}
