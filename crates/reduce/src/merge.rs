//! The factorized ranked enumerator: one lazy ranked stream per *stream
//! group* (isomorphism class of atoms), merged into a single globally
//! ranked stream over the product space.
//!
//! Minimal triangulations factorize over the atoms of a clique-separator
//! decomposition: every minimal triangulation of the input is the union of
//! exactly one minimal triangulation per atom, with pairwise-disjoint fill
//! sets. The merge therefore ranks *tuples* `(j_1, …, j_k)` — "take the
//! `j_i`-th cheapest triangulation of atom `i`" — in a Lawler-style best
//! first search: a priority queue keyed by the combined cost (additive for
//! fill-like costs, max for width-like costs, per
//! [`AtomCombine`]), popping a tuple emits its materialized
//! triangulation and pushes the `k` tuples that increment one coordinate.
//! Per-atom streams are pulled lazily and memoized, so atom `i` only ever
//! computes as many of its own triangulations as the global ranking needs.
//!
//! With the atom cache active ([`CachePolicy`](mtr_core::CachePolicy)),
//! atoms are first grouped by the [`CanonicalForm`](mtr_graph::canonical)
//! of their remapped subgraph: isomorphic atoms share a *single* stream
//! enumerated in the canonical labeling, and each atom carries only a
//! [`MemberBinding`] — the composition `canonical → atom-local → original`
//! that translates the shared stream's fill edges back to original vertex
//! ids on emission. Each keyed group can additionally be *seeded* with a
//! prefix from an [`AtomStore`] (cross-session reuse) and publishes the
//! entries it computed back to the store when the run ends. A stream that
//! is demanded past its seeded prefix lazily materializes its own
//! preprocessing and replays the enumeration (which is deterministic) to
//! catch up — a warm session never does more work than a cold one for the
//! same demand, and usually far less.
//!
//! Emitted triangulations are fill-edge sets of the *original* graph: the
//! per-stream fill edges are remapped through the member binding, the
//! union graph is rebuilt, and the reported cost is re-evaluated on the
//! full bag set — so results are bit-for-bit comparable with the direct
//! engine's.
//!
//! With a [`WorkerPool`] attached, the per-group streams advance as pool
//! tasks: groups are independent subproblems, so after each pop the cold
//! coordinates of the successor tuples are pulled concurrently, and every
//! pull speculatively prefetches a small bounded lookahead of further
//! `(cost, fill)` entries into the group's memo buffer — the product-space
//! merge then never blocks on a cold stream for tuples it is about to
//! rank. The emitted sequence is identical to the sequential merge; only
//! the wall-clock delay (and the amount of speculative work) changes.

use mtr_cache::{AtomKey, AtomStore, CacheEntry, CachedPrefix};
use mtr_chordal::{maximal_cliques_chordal, minimal_separators_from_cliques};
use mtr_core::cost::{AtomCombine, BagCost, CostValue};
use mtr_core::pool::{Scratch, WorkerPool};
use mtr_core::{
    heuristic_incumbent, CancelFlag, OrbitContext, Preprocessed, RankedState, RankedTriangulation,
};
use mtr_graph::{Graph, Vertex};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// How many results beyond the immediately needed index a pooled stream
/// pull fetches ahead — the bounded speculative prefetch. Small on purpose:
/// each extra result is one constrained re-optimization of the atom, so a
/// large lookahead would trade latency for wasted work near exhaustion.
/// Speculation is only enabled when the pool does not oversubscribe the
/// hardware (see [`FactorizedEnumerator::new`]): on fewer cores than
/// workers the speculative pulls cannot overlap with needed work, they can
/// only serialize after it.
const PREFETCH: usize = 2;

/// Handles into the [`mtr_obs`] registry for per-atom stream advancement,
/// resolved once so the hot demand path only touches atomics.
struct StreamMetrics {
    /// `reduce.stream.advances`: results pulled out of per-atom engines
    /// (seeded cache hits excluded — they cost nothing to serve).
    advances: mtr_obs::Counter,
    /// `reduce.stream.advance_ns`: wall time of one demand that actually
    /// advanced a stream (may cover several results when demand jumps).
    advance_ns: mtr_obs::Histogram,
}

fn stream_metrics() -> &'static StreamMetrics {
    static METRICS: std::sync::OnceLock<StreamMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| StreamMetrics {
        advances: mtr_obs::counter("reduce.stream.advances"),
        advance_ns: mtr_obs::histogram("reduce.stream.advance_ns"),
    })
}

/// One memoized per-stream result: its cost (evaluated on the stream's
/// graph — relabel-invariant for every factorizing cost) and its fill
/// edges in the *stream-local* labeling (atom-local without the cache,
/// canonical with it).
struct CachedResult {
    cost: CostValue,
    fill: Vec<(Vertex, Vertex)>,
}

/// The engine behind one group's ranked stream.
enum AtomEngine {
    /// Chordal atom: exactly one minimal triangulation (the atom itself,
    /// zero fill). No preprocessing, no Lawler–Murty machinery.
    Trivial { graph: Graph },
    /// A cache-seeded stream whose preprocessing has not been paid yet: it
    /// serves entries from the memo buffer and only materializes into
    /// [`AtomEngine::Ranked`] if demand runs past the seeded prefix.
    Lazy {
        graph: Graph,
        width_bound: Option<usize>,
    },
    /// General atom: a full ranked enumeration over its own preprocessing
    /// (boxed — `Preprocessed` is large compared to the other variants).
    /// `produced` counts the results the engine itself has emitted, which
    /// lags `cached.len()` while replaying over a seeded prefix.
    Ranked {
        pre: Box<Preprocessed>,
        state: Box<RankedState>,
        produced: usize,
    },
}

/// A lazily pulled, memoized ranked stream shared by one group of
/// isomorphic atoms.
pub(crate) struct AtomStream {
    engine: AtomEngine,
    cached: Vec<CachedResult>,
    exhausted: bool,
    /// `state.nodes_explored()` snapshot right after result `r` was
    /// produced — a deterministic function of `r`, independent of how far
    /// ahead speculation pulled. Seeded entries start at zero (they cost
    /// nothing) and are upgraded to real counts if a replay recomputes
    /// them.
    nodes_after: Vec<usize>,
    /// Results genuinely demanded by the merge so far (speculative
    /// prefetch pulls don't count), as a high-water index + 1.
    demanded: usize,
    /// Entries seeded from the atom store (prefix of `cached`).
    seeded: usize,
    /// The seeded prefix was already marked complete in the store.
    was_complete: bool,
    /// The content address of this stream, when cache-keyed; publishing
    /// and seeding both go through it.
    key: Option<AtomKey>,
    /// Incumbent-bounded pruning for the stream's own Lawler–Murty search
    /// (exact — the emitted stream is identical either way). Set before the
    /// first pull; a lazily materialized engine picks it up too.
    prune: bool,
    /// Orbit-canonical sharing of constrained re-optimizations inside this
    /// stream's own search (exact — the emitted stream is identical either
    /// way). The automorphism probe runs against the *stream* graph, so
    /// isomorphic-atom grouping and per-atom symmetry compose. Same arming
    /// discipline as `prune`: set before the first pull, re-armed when a
    /// lazy engine materializes.
    share_orbits: bool,
    /// Cooperative cancellation: when raised, [`AtomStream::ensure`] bails
    /// out *without* marking the stream exhausted, so a partial prefix is
    /// still publishable (as incomplete) and never poisons the store.
    cancel: Option<CancelFlag>,
}

impl AtomStream {
    /// A stream backed by the trivial single-result engine (chordal
    /// atoms). `graph` is the stream-local graph the members map onto.
    pub(crate) fn trivial(graph: Graph) -> Self {
        AtomStream::with_engine(AtomEngine::Trivial { graph }, None)
    }

    /// A stream backed by a ranked enumeration over `pre` (the
    /// preprocessing of the stream-local graph), built eagerly — the cold
    /// path. `key` attaches the cache address its results publish under.
    pub(crate) fn cold(pre: Preprocessed, key: Option<AtomKey>) -> Self {
        AtomStream::with_engine(
            AtomEngine::Ranked {
                pre: Box::new(pre),
                state: Box::new(RankedState::new()),
                produced: 0,
            },
            key,
        )
    }

    /// A stream seeded from a cached prefix — the warm path. No
    /// preprocessing happens unless demand outruns the prefix, in which
    /// case the stream materializes lazily and replays (deterministically)
    /// to catch up.
    pub(crate) fn seeded(
        graph: Graph,
        width_bound: Option<usize>,
        key: AtomKey,
        prefix: &CachedPrefix,
    ) -> Self {
        let mut stream =
            AtomStream::with_engine(AtomEngine::Lazy { graph, width_bound }, Some(key));
        stream.cached = prefix
            .entries
            .iter()
            .map(|e: &CacheEntry| CachedResult {
                cost: if e.cost.is_infinite() {
                    CostValue::INFINITE
                } else {
                    CostValue::finite(e.cost)
                },
                fill: e.fill.clone(),
            })
            .collect();
        stream.nodes_after = vec![0; stream.cached.len()];
        stream.seeded = stream.cached.len();
        stream.was_complete = prefix.complete;
        stream.exhausted = prefix.complete;
        stream
    }

    fn with_engine(engine: AtomEngine, key: Option<AtomKey>) -> Self {
        AtomStream {
            engine,
            cached: Vec::new(),
            exhausted: false,
            nodes_after: Vec::new(),
            demanded: 0,
            seeded: 0,
            was_complete: false,
            key,
            prune: false,
            share_orbits: false,
            cancel: None,
        }
    }

    /// Binds a cooperative cancellation flag checked at every pull of the
    /// stream's engine (the per-atom demand boundary).
    pub(crate) fn bind_cancel(&mut self, flag: CancelFlag) {
        self.cancel = Some(flag);
    }

    /// Enables incumbent-bounded pruning on this stream's own enumeration,
    /// seeded with a heuristic minimal triangulation of the stream graph.
    /// Call before the first pull; seeded (lazy) streams arm their engine
    /// when (and if) demand materializes it.
    pub(crate) fn enable_pruning<K: BagCost + ?Sized>(
        &mut self,
        cost: &K,
        width_bound: Option<usize>,
    ) {
        self.prune = true;
        if let AtomEngine::Ranked { pre, state, .. } = &mut self.engine {
            state.enable_pruning(heuristic_incumbent(pre.graph(), cost, width_bound));
        }
    }

    /// Enables orbit-canonical subproblem sharing on this stream's own
    /// enumeration when the stream graph has a nontrivial automorphism
    /// group. Call before the first pull; seeded (lazy) streams arm their
    /// engine when (and if) demand materializes it.
    pub(crate) fn enable_orbit_sharing(&mut self) {
        self.share_orbits = true;
        if let AtomEngine::Ranked { pre, state, .. } = &mut self.engine {
            if let Some(ctx) = OrbitContext::probe(pre.graph()) {
                state.enable_orbit_sharing(ctx);
            }
        }
    }

    /// Re-optimizations the stream's own pruning deferred and never paid.
    fn nodes_pruned(&self) -> usize {
        match &self.engine {
            AtomEngine::Ranked { state, .. } => state.nodes_pruned(),
            _ => 0,
        }
    }

    /// Constrained re-optimizations this stream served from an
    /// orbit-equivalent sibling instead of running the DP.
    fn orbit_replays(&self) -> usize {
        match &self.engine {
            AtomEngine::Ranked { state, .. } => state.orbit_replays(),
            _ => 0,
        }
    }

    /// Scratch bytes the stream's enumeration served from its arena.
    fn arena_bytes_reused(&self) -> usize {
        match &self.engine {
            AtomEngine::Ranked { state, .. } => state.arena_bytes_reused(),
            _ => 0,
        }
    }

    /// Lawler–Murty partitions a *sequential* merge would have explored to
    /// satisfy the demand so far. Speculative prefetch work is excluded on
    /// purpose: node budgets must stop at the same result on every host
    /// and at every thread count, and the prefetch window varies with
    /// both. Cache-served entries count zero (no work was done for them).
    fn nodes_explored(&self) -> usize {
        match &self.engine {
            AtomEngine::Trivial { .. } | AtomEngine::Lazy { .. } => 0,
            AtomEngine::Ranked { state, .. } => {
                if self.demanded > self.cached.len() && self.exhausted {
                    // The demand ran past the stream's end, so the whole
                    // exploration (including the exhausting pull) was
                    // demanded — and its total is the same whether it was
                    // reached lazily or speculatively.
                    state.nodes_explored()
                } else {
                    match self.demanded.min(self.cached.len()) {
                        0 => 0,
                        upto => self.nodes_after[upto - 1],
                    }
                }
            }
        }
    }

    /// Records that the merge genuinely needs result `j` (or discovered
    /// exhaustion while trying to reach it).
    fn note_demand(&mut self, j: usize) {
        self.demanded = self.demanded.max(j + 1);
    }

    /// Number of results already sitting in the memo buffer.
    fn cached_len(&self) -> usize {
        self.cached.len()
    }

    fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    fn preprocessing_counts(&self) -> (usize, usize, usize) {
        match &self.engine {
            AtomEngine::Trivial { .. } | AtomEngine::Lazy { .. } => (0, 0, 0),
            AtomEngine::Ranked { pre, .. } => (
                pre.minimal_separators().len(),
                pre.pmcs().len(),
                pre.full_blocks().len(),
            ),
        }
    }

    /// What this stream should write back to the atom store: everything it
    /// knows, when that exceeds what the store already had. `None` when
    /// the stream is unkeyed or learned nothing new.
    pub(crate) fn publishable(&self) -> Option<(AtomKey, CachedPrefix)> {
        let key = self.key.clone()?;
        let learned_more =
            self.cached.len() > self.seeded || (self.exhausted && !self.was_complete);
        if !learned_more {
            return None;
        }
        Some((
            key,
            CachedPrefix {
                entries: self
                    .cached
                    .iter()
                    .map(|r| CacheEntry {
                        cost: r.cost.value(),
                        fill: r.fill.clone(),
                    })
                    .collect(),
                complete: self.exhausted,
            },
        ))
    }

    /// Makes sure result `j` is cached (pulling the engine as needed).
    /// Returns `false` when the stream is exhausted before `j`.
    fn ensure<K: BagCost + ?Sized>(
        &mut self,
        j: usize,
        cost: &K,
        width_bound: Option<usize>,
    ) -> bool {
        if self.cached.len() > j {
            // Already memoized: no engine work, no metrics traffic.
            return true;
        }
        let started = mtr_obs::clock();
        let before = self.cached.len();
        let ok = self.ensure_inner(j, cost, width_bound);
        let advanced = (self.cached.len() - before) as u64;
        if advanced > 0 {
            let metrics = stream_metrics();
            metrics.advances.add(advanced);
            metrics.advance_ns.record_elapsed(started);
        }
        ok
    }

    fn ensure_inner<K: BagCost + ?Sized>(
        &mut self,
        j: usize,
        cost: &K,
        width_bound: Option<usize>,
    ) -> bool {
        while self.cached.len() <= j {
            if self.exhausted {
                return false;
            }
            // The per-atom demand boundary. Crucially this does NOT set
            // `exhausted`: the memo buffer stays a valid (incomplete)
            // prefix, so a cancelled run publishes only what it truly knows.
            if self.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
                return false;
            }
            if let AtomEngine::Lazy {
                graph,
                width_bound: bound,
            } = &self.engine
            {
                // Demand ran past the seeded prefix: pay the preprocessing
                // now and replay the (deterministic) enumeration below to
                // catch up with the seeded entries.
                let pre = match bound {
                    Some(b) => Preprocessed::new_bounded(graph, *b),
                    None => Preprocessed::new(graph),
                };
                let mut state = RankedState::new();
                if self.prune {
                    state.enable_pruning(heuristic_incumbent(pre.graph(), cost, width_bound));
                }
                if self.share_orbits {
                    if let Some(ctx) = OrbitContext::probe(pre.graph()) {
                        state.enable_orbit_sharing(ctx);
                    }
                }
                self.engine = AtomEngine::Ranked {
                    pre: Box::new(pre),
                    state: Box::new(state),
                    produced: 0,
                };
            }
            match &mut self.engine {
                AtomEngine::Lazy { .. } => unreachable!("materialized above"),
                AtomEngine::Trivial { graph } => {
                    self.exhausted = true;
                    let bags = maximal_cliques_chordal(graph)
                        .expect("trivial atoms are chordal by construction");
                    let width = bags.iter().map(|b| b.len()).max().unwrap_or(1) - 1;
                    if width_bound.is_some_and(|b| width > b) {
                        return false;
                    }
                    let value = cost.cost_of_bags(graph, &graph.vertex_set(), &bags);
                    self.cached.push(CachedResult {
                        cost: value,
                        fill: Vec::new(),
                    });
                }
                AtomEngine::Ranked {
                    pre,
                    state,
                    produced,
                } => match state.next(pre, cost) {
                    Some(result) => {
                        let idx = *produced;
                        *produced += 1;
                        if idx < self.cached.len() {
                            // Replaying over a seeded prefix: the engine
                            // recomputed a cache-served entry. Upgrade its
                            // node count; the result itself must match.
                            debug_assert_eq!(
                                self.cached[idx].cost, result.cost,
                                "cached prefix diverges from the enumeration"
                            );
                            self.nodes_after[idx] = state.nodes_explored();
                        } else {
                            let fill = pre.graph().fill_edges_of(&result.triangulation);
                            self.cached.push(CachedResult {
                                cost: result.cost,
                                fill,
                            });
                            self.nodes_after.push(state.nodes_explored());
                        }
                    }
                    None => {
                        debug_assert!(
                            *produced >= self.cached.len(),
                            "cached prefix is longer than the actual stream"
                        );
                        self.exhausted = true;
                        return false;
                    }
                },
            }
        }
        true
    }
}

/// How one atom of the decomposition maps onto its (possibly shared)
/// stream: the group index plus the vertex translation used on emission.
pub(crate) struct MemberBinding {
    /// Index into the enumerator's stream table.
    pub group: usize,
    /// `emit_map[stream_local] = original`: translates the stream's fill
    /// edges back to original-graph vertex ids. Without the cache this is
    /// the atom's own mapping; with it, the composition through the
    /// canonical relabeling.
    pub emit_map: Vec<Vertex>,
}

/// One pending tuple of per-atom stream indices. `solved` entries carry
/// their exact combined cost; deferred ones only an admissible lower bound
/// (the cost of the tuple they were generated from), and have not demanded
/// anything from the per-atom streams yet.
struct TupleEntry {
    cost: CostValue,
    sequence: u64,
    tuple: Vec<u32>,
    solved: bool,
}

impl PartialEq for TupleEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost && self.sequence == other.sequence
    }
}
impl Eq for TupleEntry {}
impl PartialOrd for TupleEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TupleEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap semantics on a max-heap: cheapest cost, then oldest.
        other
            .cost
            .cmp(&self.cost)
            .then_with(|| other.sequence.cmp(&self.sequence))
    }
}

/// The merged, globally ranked enumerator over the product of the per-atom
/// streams. Tuples are indexed per *atom* (members); the backing streams
/// are per *group*, so isomorphic atoms share memoized work.
///
/// The `Option` wrapping of the streams exists for the pooled mode: a
/// stream is temporarily *moved* into a pool task while it advances on a
/// worker and put back when the batch completes, so the engine needs no
/// shared mutable state (and no locks) across threads. Outside a batch
/// every slot is occupied.
pub(crate) struct FactorizedEnumerator<'a, 'p, K: BagCost + Sync + ?Sized> {
    graph: &'a Graph,
    cost: &'a K,
    combine: AtomCombine,
    width_bound: Option<usize>,
    members: &'a [MemberBinding],
    streams: Vec<Option<AtomStream>>,
    pool: Option<WorkerPool<'a, 'p>>,
    prefetch: usize,
    heap: BinaryHeap<TupleEntry>,
    seen: HashSet<Vec<u32>>,
    sequence: u64,
    started: bool,
    prune: bool,
    incumbent: Option<CostValue>,
    nodes_deferred: usize,
    cancel: Option<CancelFlag>,
    /// First pool-task failure (contained panic or injected fault) seen by
    /// a stream-advancing batch. Once set the merge stops producing: the
    /// batch consumed stream slots it can no longer restore, so every
    /// later demand would be unsound — the session surfaces the typed
    /// failure instead.
    failed: Option<String>,
}

impl<'a, 'p, K: BagCost + Sync + ?Sized> FactorizedEnumerator<'a, 'p, K> {
    pub(crate) fn new(
        graph: &'a Graph,
        cost: &'a K,
        combine: AtomCombine,
        width_bound: Option<usize>,
        members: &'a [MemberBinding],
        streams: Vec<AtomStream>,
        pool: Option<WorkerPool<'a, 'p>>,
    ) -> Self {
        let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());
        let prefetch = match &pool {
            Some(p) if p.threads() <= hardware => PREFETCH,
            _ => 0,
        };
        FactorizedEnumerator {
            graph,
            cost,
            combine,
            width_bound,
            members,
            streams: streams.into_iter().map(Some).collect(),
            pool,
            prefetch,
            heap: BinaryHeap::new(),
            seen: HashSet::new(),
            sequence: 0,
            started: false,
            prune: false,
            incumbent: None,
            nodes_deferred: 0,
            cancel: None,
            failed: None,
        }
    }

    /// Binds a cooperative cancellation flag to the merge and to every
    /// per-group stream: the iterator returns `None` at its next tuple pop,
    /// and in-flight stream pulls (pooled or lazy) stop at their own demand
    /// boundaries.
    pub(crate) fn bind_cancel(&mut self, flag: CancelFlag) {
        for slot in &mut self.streams {
            if let Some(stream) = slot.as_mut() {
                stream.bind_cancel(flag.clone());
            }
        }
        self.cancel = Some(flag);
    }

    /// Enables incumbent-bounded pruning of the product-space merge,
    /// optionally seeded with the cost of a heuristic triangulation of the
    /// whole graph. Successor tuples of a popped tuple that is already
    /// costlier than the incumbent are deferred: they enter the heap on the
    /// parent's cost (a valid lower bound — per-atom streams are
    /// nondecreasing and both combines are monotone) without demanding
    /// anything from the per-atom streams, and are only priced if the
    /// ranked order reaches them. Exact: the emitted sequence is unchanged.
    pub(crate) fn enable_pruning(&mut self, incumbent: Option<CostValue>) {
        debug_assert!(!self.started, "enable pruning before iterating");
        self.prune = true;
        self.incumbent = incumbent;
    }

    /// Deferred work never paid for: heap tuples still unpriced plus the
    /// per-atom streams' own deferred re-optimizations.
    pub(crate) fn nodes_pruned(&self) -> usize {
        self.nodes_deferred
            + (0..self.streams.len())
                .map(|g| self.stream(g).nodes_pruned())
                .sum::<usize>()
    }

    /// The current global incumbent bound, if pruning is active.
    pub(crate) fn incumbent(&self) -> Option<CostValue> {
        self.incumbent
    }

    /// Constrained re-optimizations the per-atom streams served from
    /// orbit-equivalent siblings instead of running the DP.
    pub(crate) fn orbit_replays(&self) -> usize {
        (0..self.streams.len())
            .map(|g| self.stream(g).orbit_replays())
            .sum()
    }

    /// Scratch bytes served from the per-stream enumeration arenas.
    pub(crate) fn arena_bytes_reused(&self) -> usize {
        (0..self.streams.len())
            .map(|g| self.stream(g).arena_bytes_reused())
            .sum()
    }

    fn stream(&self, group: usize) -> &AtomStream {
        self.streams[group]
            .as_ref()
            .expect("stream present outside batch")
    }

    pub(crate) fn queue_depth(&self) -> usize {
        self.heap.len()
    }

    /// Lawler–Murty partitions explored across all streams, counting
    /// only *demanded* work (see [`AtomStream::nodes_explored`]): node
    /// budgets therefore stop at the same result sequentially, in
    /// parallel, and on any host, regardless of speculative prefetch.
    /// (With the cache active, served entries count zero — warm sessions
    /// genuinely explore less.)
    pub(crate) fn nodes_explored(&self) -> usize {
        (0..self.streams.len())
            .map(|g| self.stream(g).nodes_explored())
            .sum()
    }

    /// `(minimal separators, PMCs, full blocks)` summed over the per-group
    /// preprocessings (cache-served streams that never materialized count
    /// zero).
    pub(crate) fn preprocessing_counts(&self) -> (usize, usize, usize) {
        (0..self.streams.len())
            .map(|g| self.stream(g).preprocessing_counts())
            .fold((0, 0, 0), |(a, b, c), (x, y, z)| (a + x, b + y, c + z))
    }

    /// Writes every stream's newly computed entries back to `store` —
    /// called once by the session when the run ends, so prefetch results
    /// computed speculatively on pool workers are published too.
    pub(crate) fn publish_into(&self, store: &AtomStore) {
        for g in 0..self.streams.len() {
            if let Some((key, prefix)) = self.stream(g).publishable() {
                store.publish(&key, prefix);
            }
        }
    }

    /// Pool mode: advances the streams behind every `(member, index)`
    /// target concurrently (one task per cold group, at the group's
    /// maximum demanded index), each pull prefetching [`PREFETCH`] results
    /// beyond its target. Sequential mode: no-op —
    /// [`FactorizedEnumerator::combined_cost`] pulls lazily as before.
    fn ensure_batch(&mut self, targets: &[(usize, usize)]) {
        let Some(pool) = self.pool else { return };
        let cost = self.cost;
        let width_bound = self.width_bound;
        let prefetch = self.prefetch;
        // Aggregate member targets into one per group (members sharing a
        // group demand the maximum of their coordinates).
        let mut group_target: Vec<Option<usize>> = vec![None; self.streams.len()];
        for &(i, j) in targets {
            let g = self.members[i].group;
            group_target[g] = Some(group_target[g].map_or(j, |prev: usize| prev.max(j)));
        }
        let cold: Vec<(usize, usize)> = group_target
            .iter()
            .enumerate()
            .filter_map(|(g, target)| target.map(|j| (g, j)))
            .filter(|&(g, j)| {
                let s = self.stream(g);
                !s.is_exhausted() && s.cached_len() <= j
            })
            .collect();
        let tasks: Vec<_> = cold
            .into_iter()
            .map(|(g, j)| {
                let mut stream = self.streams[g]
                    .take()
                    .expect("stream present outside batch");
                move |_scratch: &mut Scratch| {
                    stream.ensure(j + prefetch, cost, width_bound);
                    (g, stream)
                }
            })
            .collect();
        match pool.run_batch(tasks) {
            Ok(advanced) => {
                for (g, stream) in advanced {
                    self.streams[g] = Some(stream);
                }
            }
            Err(panic) => {
                // The batch's stream slots are unrecoverable (they moved
                // into the dead tasks); record the failure and let `next`
                // refuse further work before any slot is dereferenced.
                self.failed = Some(panic.message);
            }
        }
    }

    /// The combined cost of a tuple, pulling streams as needed;
    /// `None` when some coordinate is past the end of its (finite) stream.
    fn combined_cost(&mut self, tuple: &[u32]) -> Option<CostValue> {
        let cost = self.cost;
        let width_bound = self.width_bound;
        let mut acc: Option<CostValue> = None;
        for (i, &j) in tuple.iter().enumerate() {
            let group = self.members[i].group;
            let stream = self.streams[group]
                .as_mut()
                .expect("stream present outside batch");
            // This is the genuine demand point (speculative prefetch goes
            // through `ensure_batch` instead): record it whether or not
            // the stream can satisfy it, for the node accounting.
            stream.note_demand(j as usize);
            if !stream.ensure(j as usize, cost, width_bound) {
                return None;
            }
            let c = stream.cached[j as usize].cost;
            acc = Some(match (acc, self.combine) {
                (None, _) => c,
                (Some(a), AtomCombine::Additive) => a.plus(c),
                (Some(a), AtomCombine::Max) => a.max(c),
            });
        }
        Some(acc.unwrap_or(CostValue::ZERO))
    }

    fn push_tuple(&mut self, tuple: Vec<u32>) {
        if !self.seen.insert(tuple.clone()) {
            return;
        }
        if let Some(cost) = self.combined_cost(&tuple) {
            self.sequence += 1;
            self.heap.push(TupleEntry {
                cost,
                sequence: self.sequence,
                tuple,
                solved: true,
            });
        }
    }

    /// Pushes `tuple` on its parent's cost alone, without demanding
    /// anything from the per-atom streams. The sequence number is assigned
    /// now (generation order), so if the tuple is later solved and survives
    /// it ranks exactly where an eager push would have ranked it.
    fn defer_tuple(&mut self, tuple: Vec<u32>, lower_bound: CostValue) {
        if !self.seen.insert(tuple.clone()) {
            return;
        }
        self.sequence += 1;
        self.nodes_deferred += 1;
        self.heap.push(TupleEntry {
            cost: lower_bound,
            sequence: self.sequence,
            tuple,
            solved: false,
        });
    }

    /// Pays for a deferred tuple that reached the heap top: prices it
    /// against the per-atom streams (pool-warming cold coordinates first)
    /// and reinserts it with its exact cost and original sequence number.
    /// Dropped if some coordinate is past the end of its stream.
    fn solve_deferred(&mut self, entry: TupleEntry) {
        self.nodes_deferred -= 1;
        let wanted: Vec<(usize, usize)> = entry
            .tuple
            .iter()
            .enumerate()
            .map(|(i, &j)| (i, j as usize))
            .collect();
        self.ensure_batch(&wanted);
        if self.failed.is_some() {
            return;
        }
        if let Some(cost) = self.combined_cost(&entry.tuple) {
            debug_assert!(
                cost >= entry.cost,
                "deferred tuple lower bound was not admissible"
            );
            self.heap.push(TupleEntry {
                cost,
                sequence: entry.sequence,
                tuple: entry.tuple,
                solved: true,
            });
        }
    }

    /// Rebuilds the original-graph triangulation a tuple denotes.
    fn materialize(&self, entry: &TupleEntry) -> RankedTriangulation {
        let mut h = self.graph.clone();
        for (i, &j) in entry.tuple.iter().enumerate() {
            let member = &self.members[i];
            for &(u, v) in &self.stream(member.group).cached[j as usize].fill {
                h.add_edge(member.emit_map[u as usize], member.emit_map[v as usize]);
            }
        }
        let bags = maximal_cliques_chordal(&h)
            .expect("the union of per-atom minimal triangulations is chordal");
        let cost = self
            .cost
            .cost_of_bags(self.graph, &self.graph.vertex_set(), &bags);
        // The combined heap key must equal the true cost — that is exactly
        // the contract of `AtomCombine` — otherwise the stream would not be
        // globally sorted.
        debug_assert_eq!(cost, entry.cost, "atom_combine() contract violated");
        // H is chordal, so its minimal separators are the clique-tree
        // adhesions — a fraction of the cost of a separator enumeration,
        // which used to dominate the per-result delay of the merge.
        let seps = minimal_separators_from_cliques(bags.clone());
        RankedTriangulation {
            minimal_separators: seps,
            triangulation: h,
            bags,
            cost,
        }
    }
}

impl<K: BagCost + Sync + ?Sized> Iterator for FactorizedEnumerator<'_, '_, K> {
    type Item = RankedTriangulation;

    fn next(&mut self) -> Option<RankedTriangulation> {
        if self.failed.is_some() {
            return None;
        }
        if !self.started {
            self.started = true;
            // The all-zeros tuple: every atom's optimum. For the empty
            // product (zero atoms, i.e. the empty graph) this is the empty
            // tuple whose materialization is the graph itself. In pool mode
            // the per-group optima are computed concurrently first.
            let first: Vec<(usize, usize)> = (0..self.members.len()).map(|i| (i, 0)).collect();
            self.ensure_batch(&first);
            if self.failed.is_some() {
                return None;
            }
            self.push_tuple(vec![0; self.members.len()]);
        }
        loop {
            // The merge's demand boundary: between tuple pops, so a
            // cancelled (or batch-failed) session never prices or
            // materializes another tuple.
            if self.failed.is_some() || self.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
                return None;
            }
            let entry = self.heap.pop()?;
            if !entry.solved {
                // A deferred tuple reached the top: its exact cost is now
                // needed to decide the order, so pay for it and re-rank.
                self.solve_deferred(entry);
                continue;
            }
            // Every successor's lower bound is this tuple's cost (per-atom
            // streams are nondecreasing and both combines monotone), so
            // when that already exceeds the incumbent, defer all of them
            // without touching the streams.
            let defer_children = self.prune && self.incumbent.is_some_and(|inc| entry.cost > inc);
            if !defer_children {
                // Pool mode: warm every successor coordinate concurrently
                // before the (sequential) heap pushes read the memoized
                // costs.
                let wanted: Vec<(usize, usize)> = entry
                    .tuple
                    .iter()
                    .enumerate()
                    .map(|(i, &j)| (i, j as usize + 1))
                    .collect();
                self.ensure_batch(&wanted);
                if self.failed.is_some() {
                    return None;
                }
            }
            let result = self.materialize(&entry);
            for i in 0..entry.tuple.len() {
                let mut successor = entry.tuple.clone();
                successor[i] += 1;
                if defer_children {
                    self.defer_tuple(successor, entry.cost);
                } else {
                    self.push_tuple(successor);
                }
            }
            if self.prune {
                self.incumbent = Some(result.cost);
            }
            return Some(result);
        }
    }
}

impl<K: BagCost + Sync + ?Sized> mtr_core::SessionEngine for FactorizedEnumerator<'_, '_, K> {
    fn next_result(&mut self) -> Option<RankedTriangulation> {
        self.next()
    }

    fn queue_depth(&self) -> usize {
        self.queue_depth()
    }

    fn nodes_explored(&self) -> usize {
        self.nodes_explored()
    }

    fn duplicates_skipped(&self) -> usize {
        // Distinct tuples materialize distinct fill unions (per-atom fill
        // sets are disjoint), and the `seen` set keeps tuples unique.
        0
    }

    fn nodes_pruned(&self) -> usize {
        self.nodes_pruned()
    }

    fn orbit_replays(&self) -> usize {
        self.orbit_replays()
    }

    fn incumbent_cost(&self) -> Option<CostValue> {
        self.incumbent()
    }

    fn arena_bytes_reused(&self) -> usize {
        self.arena_bytes_reused()
    }

    fn failure(&self) -> Option<String> {
        self.failed.clone()
    }
}
