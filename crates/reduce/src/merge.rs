//! The factorized ranked enumerator: one lazy ranked stream per atom,
//! merged into a single globally ranked stream over the product space.
//!
//! Minimal triangulations factorize over the atoms of a clique-separator
//! decomposition: every minimal triangulation of the input is the union of
//! exactly one minimal triangulation per atom, with pairwise-disjoint fill
//! sets. The merge therefore ranks *tuples* `(j_1, …, j_k)` — "take the
//! `j_i`-th cheapest triangulation of atom `i`" — in a Lawler-style best
//! first search: a priority queue keyed by the combined cost (additive for
//! fill-like costs, max for width-like costs, per
//! [`AtomCombine`]), popping a tuple emits its materialized
//! triangulation and pushes the `k` tuples that increment one coordinate.
//! Per-atom streams are pulled lazily and memoized, so atom `i` only ever
//! computes as many of its own triangulations as the global ranking needs.
//!
//! Emitted triangulations are fill-edge sets of the *original* graph: the
//! per-atom fill edges are remapped through the atom's vertex mapping, the
//! union graph is rebuilt, and the reported cost is re-evaluated on the
//! full bag set — so results are bit-for-bit comparable with the direct
//! engine's.

use crate::decompose::Atom;
use mtr_chordal::maximal_cliques_chordal;
use mtr_core::cost::{AtomCombine, BagCost, CostValue};
use mtr_core::{Preprocessed, RankedState, RankedTriangulation};
use mtr_graph::{Graph, Vertex};
use mtr_separators::minimal_separators;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// One memoized per-atom result: its cost (evaluated on the remapped atom
/// graph) and its fill edges translated back to original vertex ids.
struct CachedResult {
    cost: CostValue,
    fill: Vec<(Vertex, Vertex)>,
}

/// The engine behind one atom's ranked stream.
enum AtomEngine {
    /// Chordal atom: exactly one minimal triangulation (the atom itself,
    /// zero fill). No preprocessing, no Lawler–Murty machinery.
    Trivial { graph: Graph },
    /// General atom: a full ranked enumeration over its own preprocessing
    /// (boxed — `Preprocessed` is large compared to the trivial variant).
    Ranked {
        pre: Box<Preprocessed>,
        state: RankedState,
    },
}

/// A lazily pulled, memoized ranked stream of one atom's triangulations.
pub(crate) struct AtomStream {
    mapping: Vec<Vertex>,
    engine: AtomEngine,
    cached: Vec<CachedResult>,
    exhausted: bool,
}

impl AtomStream {
    /// A stream backed by the trivial single-result engine (chordal atoms).
    pub(crate) fn trivial(atom: &Atom) -> Self {
        AtomStream {
            mapping: atom.mapping.clone(),
            engine: AtomEngine::Trivial {
                graph: atom.graph.clone(),
            },
            cached: Vec::new(),
            exhausted: false,
        }
    }

    /// A stream backed by a ranked enumeration over `pre` (which must be
    /// the preprocessing of the atom's remapped graph).
    pub(crate) fn ranked(atom: &Atom, pre: Preprocessed) -> Self {
        AtomStream {
            mapping: atom.mapping.clone(),
            engine: AtomEngine::Ranked {
                pre: Box::new(pre),
                state: RankedState::new(),
            },
            cached: Vec::new(),
            exhausted: false,
        }
    }

    fn nodes_explored(&self) -> usize {
        match &self.engine {
            AtomEngine::Trivial { .. } => 0,
            AtomEngine::Ranked { state, .. } => state.nodes_explored(),
        }
    }

    fn preprocessing_counts(&self) -> (usize, usize, usize) {
        match &self.engine {
            AtomEngine::Trivial { .. } => (0, 0, 0),
            AtomEngine::Ranked { pre, .. } => (
                pre.minimal_separators().len(),
                pre.pmcs().len(),
                pre.full_blocks().len(),
            ),
        }
    }

    /// Makes sure result `j` is cached (pulling the engine as needed).
    /// Returns `false` when the stream is exhausted before `j`.
    fn ensure<K: BagCost + ?Sized>(
        &mut self,
        j: usize,
        cost: &K,
        width_bound: Option<usize>,
    ) -> bool {
        while self.cached.len() <= j {
            if self.exhausted {
                return false;
            }
            match &mut self.engine {
                AtomEngine::Trivial { graph } => {
                    self.exhausted = true;
                    let bags = maximal_cliques_chordal(graph)
                        .expect("trivial atoms are chordal by construction");
                    let width = bags.iter().map(|b| b.len()).max().unwrap_or(1) - 1;
                    if width_bound.is_some_and(|b| width > b) {
                        return false;
                    }
                    let value = cost.cost_of_bags(graph, &graph.vertex_set(), &bags);
                    self.cached.push(CachedResult {
                        cost: value,
                        fill: Vec::new(),
                    });
                }
                AtomEngine::Ranked { pre, state } => match state.next(pre, cost) {
                    Some(result) => {
                        let fill = pre
                            .graph()
                            .fill_edges_of(&result.triangulation)
                            .into_iter()
                            .map(|(u, v)| (self.mapping[u as usize], self.mapping[v as usize]))
                            .collect();
                        self.cached.push(CachedResult {
                            cost: result.cost,
                            fill,
                        });
                    }
                    None => {
                        self.exhausted = true;
                        return false;
                    }
                },
            }
        }
        true
    }
}

/// One pending tuple of per-atom stream indices.
struct TupleEntry {
    cost: CostValue,
    sequence: u64,
    tuple: Vec<u32>,
}

impl PartialEq for TupleEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost && self.sequence == other.sequence
    }
}
impl Eq for TupleEntry {}
impl PartialOrd for TupleEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TupleEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap semantics on a max-heap: cheapest cost, then oldest.
        other
            .cost
            .cmp(&self.cost)
            .then_with(|| other.sequence.cmp(&self.sequence))
    }
}

/// The merged, globally ranked enumerator over the product of the per-atom
/// streams.
pub(crate) struct FactorizedEnumerator<'a, K: BagCost + ?Sized> {
    graph: &'a Graph,
    cost: &'a K,
    combine: AtomCombine,
    width_bound: Option<usize>,
    atoms: Vec<AtomStream>,
    heap: BinaryHeap<TupleEntry>,
    seen: HashSet<Vec<u32>>,
    sequence: u64,
    started: bool,
}

impl<'a, K: BagCost + ?Sized> FactorizedEnumerator<'a, K> {
    pub(crate) fn new(
        graph: &'a Graph,
        cost: &'a K,
        combine: AtomCombine,
        width_bound: Option<usize>,
        atoms: Vec<AtomStream>,
    ) -> Self {
        FactorizedEnumerator {
            graph,
            cost,
            combine,
            width_bound,
            atoms,
            heap: BinaryHeap::new(),
            seen: HashSet::new(),
            sequence: 0,
            started: false,
        }
    }

    pub(crate) fn queue_depth(&self) -> usize {
        self.heap.len()
    }

    /// Lawler–Murty partitions explored across all atom streams.
    pub(crate) fn nodes_explored(&self) -> usize {
        self.atoms.iter().map(AtomStream::nodes_explored).sum()
    }

    /// `(minimal separators, PMCs, full blocks)` summed over the per-atom
    /// preprocessings.
    pub(crate) fn preprocessing_counts(&self) -> (usize, usize, usize) {
        self.atoms
            .iter()
            .map(AtomStream::preprocessing_counts)
            .fold((0, 0, 0), |(a, b, c), (x, y, z)| (a + x, b + y, c + z))
    }

    /// The combined cost of a tuple, pulling atom streams as needed;
    /// `None` when some coordinate is past the end of its (finite) stream.
    fn combined_cost(&mut self, tuple: &[u32]) -> Option<CostValue> {
        let mut acc: Option<CostValue> = None;
        for (i, &j) in tuple.iter().enumerate() {
            if !self.atoms[i].ensure(j as usize, self.cost, self.width_bound) {
                return None;
            }
            let c = self.atoms[i].cached[j as usize].cost;
            acc = Some(match (acc, self.combine) {
                (None, _) => c,
                (Some(a), AtomCombine::Additive) => a.plus(c),
                (Some(a), AtomCombine::Max) => a.max(c),
            });
        }
        Some(acc.unwrap_or(CostValue::ZERO))
    }

    fn push_tuple(&mut self, tuple: Vec<u32>) {
        if !self.seen.insert(tuple.clone()) {
            return;
        }
        if let Some(cost) = self.combined_cost(&tuple) {
            self.sequence += 1;
            self.heap.push(TupleEntry {
                cost,
                sequence: self.sequence,
                tuple,
            });
        }
    }

    /// Rebuilds the original-graph triangulation a tuple denotes.
    fn materialize(&self, entry: &TupleEntry) -> RankedTriangulation {
        let mut h = self.graph.clone();
        for (i, &j) in entry.tuple.iter().enumerate() {
            for &(u, v) in &self.atoms[i].cached[j as usize].fill {
                h.add_edge(u, v);
            }
        }
        let bags = maximal_cliques_chordal(&h)
            .expect("the union of per-atom minimal triangulations is chordal");
        let cost = self
            .cost
            .cost_of_bags(self.graph, &self.graph.vertex_set(), &bags);
        // The combined heap key must equal the true cost — that is exactly
        // the contract of `AtomCombine` — otherwise the stream would not be
        // globally sorted.
        debug_assert_eq!(cost, entry.cost, "atom_combine() contract violated");
        let seps = minimal_separators(&h);
        RankedTriangulation {
            minimal_separators: seps,
            triangulation: h,
            bags,
            cost,
        }
    }
}

impl<K: BagCost + ?Sized> Iterator for FactorizedEnumerator<'_, K> {
    type Item = RankedTriangulation;

    fn next(&mut self) -> Option<RankedTriangulation> {
        if !self.started {
            self.started = true;
            // The all-zeros tuple: every atom's optimum. For the empty
            // product (zero atoms, i.e. the empty graph) this is the empty
            // tuple whose materialization is the graph itself.
            self.push_tuple(vec![0; self.atoms.len()]);
        }
        let entry = self.heap.pop()?;
        let result = self.materialize(&entry);
        for i in 0..entry.tuple.len() {
            let mut successor = entry.tuple.clone();
            successor[i] += 1;
            self.push_tuple(successor);
        }
        Some(result)
    }
}

impl<K: BagCost + ?Sized> mtr_core::SessionEngine for FactorizedEnumerator<'_, K> {
    fn next_result(&mut self) -> Option<RankedTriangulation> {
        self.next()
    }

    fn queue_depth(&self) -> usize {
        self.queue_depth()
    }

    fn nodes_explored(&self) -> usize {
        self.nodes_explored()
    }

    fn duplicates_skipped(&self) -> usize {
        // Distinct tuples materialize distinct fill unions (per-atom fill
        // sets are disjoint), and the `seen` set keeps tuples unique.
        0
    }
}
