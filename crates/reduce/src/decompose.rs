//! Safe reductions and the clique minimal-separator decomposition into
//! atoms.
//!
//! Three reductions are applied, all of them *safe* for the enumeration of
//! minimal triangulations (the set of minimal triangulations of the input
//! is in cost-preserving bijection with the product of the per-atom sets):
//!
//! * **connected-component splitting** — components are atoms joined by the
//!   empty (trivially complete) separator;
//! * **isolated / simplicial vertex elimination** — a simplicial vertex `v`
//!   (its neighborhood is a clique; isolated vertices are the degenerate
//!   case) lies in no minimal separator, so no fill edge ever touches it;
//!   `{v} ∪ N(v)` splits off as a *clique atom* with exactly one (empty)
//!   minimal triangulation;
//! * **clique minimal-separator decomposition** — the remaining core is cut
//!   along its clique minimal separators into atoms, following the MCS-M
//!   based algorithm of Berry, Pogorelčnik & Simonet (*An introduction to
//!   clique minimal separator decomposition*, Algorithms 2010): compute a
//!   minimal triangulation `H` of the core with [`mcs_m`], walk its
//!   elimination order, and carve off a component whenever the monotone
//!   adjacency of the current vertex is a clique in the original graph.
//!
//! The resulting atoms cover every vertex and every edge, intersect
//! pairwise in cliques, and — the property the factorized enumerator
//! relies on — every clique of every minimal triangulation of the input
//! lies inside a single atom.

use mtr_chordal::{is_chordal, mcs_m};
use mtr_graph::{Graph, Vertex, VertexSet};

/// How aggressively a reduction-enabled session preprocesses the graph
/// before enumeration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReductionLevel {
    /// No reduction: the direct engine runs on the whole graph. This is the
    /// default, so existing sessions behave exactly as before.
    #[default]
    Off,
    /// Split into connected components only (cheap, always safe).
    Components,
    /// Components, simplicial/isolated vertex elimination, and clique
    /// minimal-separator decomposition into atoms.
    Full,
}

impl std::fmt::Display for ReductionLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ReductionLevel::Off => "off",
            ReductionLevel::Components => "components",
            ReductionLevel::Full => "full",
        })
    }
}

impl std::str::FromStr for ReductionLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(ReductionLevel::Off),
            "components" => Ok(ReductionLevel::Components),
            "full" => Ok(ReductionLevel::Full),
            other => Err(format!(
                "unknown reduction level {other:?} (expected off|components|full)"
            )),
        }
    }
}

/// One atom of the decomposition: an induced subgraph whose minimal
/// triangulations can be enumerated independently.
#[derive(Clone, Debug)]
pub struct Atom {
    /// The atom's vertices, in the *original* graph's indexing.
    pub vertices: VertexSet,
    /// The induced subgraph, remapped to the compact range `0..|atom|`.
    pub graph: Graph,
    /// `mapping[new] = old`: the translation back to original vertices.
    pub mapping: Vec<Vertex>,
    /// `true` when the atom is already chordal — it then has exactly one
    /// minimal triangulation (itself, zero fill), so its ranked stream is a
    /// single result that costs nothing to produce.
    pub chordal: bool,
}

/// The result of decomposing a graph at some [`ReductionLevel`].
#[derive(Clone, Debug)]
pub struct Decomposition {
    /// The atoms, each covering a subset of the original vertices. Their
    /// union is the full vertex set and every edge lies inside some atom.
    pub atoms: Vec<Atom>,
    /// The non-empty clique minimal separators the core was cut along
    /// (original indexing). Empty at [`ReductionLevel::Components`].
    pub clique_separators: Vec<VertexSet>,
    /// Simplicial (incl. isolated) vertices eliminated before the core
    /// decomposition, in elimination order. Empty below
    /// [`ReductionLevel::Full`].
    pub simplicial: Vec<Vertex>,
    /// The level the decomposition was computed at.
    pub level: ReductionLevel,
}

impl Decomposition {
    /// `true` when the decomposition found more than one atom, i.e. the
    /// factorized enumerator has something to gain over the direct engine.
    pub fn is_nontrivial(&self) -> bool {
        self.atoms.len() > 1
    }

    /// Size of the largest atom (0 for the empty graph).
    pub fn largest_atom(&self) -> usize {
        self.atoms
            .iter()
            .map(|a| a.vertices.len())
            .max()
            .unwrap_or(0)
    }
}

/// Decomposes `g` at the requested level. At [`ReductionLevel::Off`] the
/// whole graph is returned as a single atom (the identity decomposition).
pub fn decompose(g: &Graph, level: ReductionLevel) -> Decomposition {
    let (atom_sets, clique_separators, simplicial) = match level {
        ReductionLevel::Off => {
            let full = g.vertex_set();
            (
                if g.n() == 0 { vec![] } else { vec![full] },
                Vec::new(),
                Vec::new(),
            )
        }
        ReductionLevel::Components => (g.components(), Vec::new(), Vec::new()),
        ReductionLevel::Full => {
            let (mut sets, simplicial) = strip_simplicial(g);
            let core = {
                let mut c = g.vertex_set();
                for &v in &simplicial {
                    c.remove(v);
                }
                c
            };
            let (core_sets, seps) = clique_separator_atoms(g, &core);
            sets.extend(core_sets);
            (keep_maximal(sets), seps, simplicial)
        }
    };
    let atoms = atom_sets
        .into_iter()
        .map(|vertices| {
            let (graph, mapping) = g.induced_subgraph(&vertices);
            let chordal = is_chordal(&graph);
            Atom {
                vertices,
                graph,
                mapping,
                chordal,
            }
        })
        .collect();
    Decomposition {
        atoms,
        clique_separators,
        simplicial,
        level,
    }
}

/// Iteratively strips simplicial vertices. Returns one clique atom
/// `{v} ∪ N(v)` (evaluated in the graph *at strip time*) per stripped
/// vertex, plus the strip order.
fn strip_simplicial(g: &Graph) -> (Vec<VertexSet>, Vec<Vertex>) {
    let mut remaining = g.vertex_set();
    let mut atoms = Vec::new();
    let mut order = Vec::new();
    let mut changed = true;
    while changed {
        changed = false;
        for v in g.vertices() {
            if !remaining.contains(v) {
                continue;
            }
            let nbrs = g.neighbors(v).intersection(&remaining);
            if g.is_clique(&nbrs) {
                let mut atom = nbrs;
                atom.insert(v);
                atoms.push(atom);
                remaining.remove(v);
                order.push(v);
                changed = true;
            }
        }
    }
    (atoms, order)
}

/// The ATOMS algorithm of Berry, Pogorelčnik & Simonet on `g[core]`:
/// carves the core along its clique minimal separators. Returns the atom
/// vertex sets and the non-empty separators used, both in the original
/// indexing.
fn clique_separator_atoms(g: &Graph, core: &VertexSet) -> (Vec<VertexSet>, Vec<VertexSet>) {
    if core.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let (core_graph, mapping) = g.induced_subgraph(core);
    let n = core_graph.n();
    let result = mcs_m(&core_graph);
    let h = &result.triangulation;
    let order = &result.elimination_order;
    let mut pos = vec![0usize; n as usize];
    for (i, &v) in order.iter().enumerate() {
        pos[v as usize] = i;
    }

    let mut remaining = core_graph.vertex_set();
    let mut atoms = Vec::new();
    let mut separators = Vec::new();
    for &x in order {
        if !remaining.contains(x) {
            continue;
        }
        // Monotone adjacency of x: its neighbors in the triangulation that
        // are eliminated later and have not been carved away yet.
        let mut s = VertexSet::empty(n);
        for y in h.neighbors(x).iter() {
            if pos[y as usize] > pos[x as usize] && remaining.contains(y) {
                s.insert(y);
            }
        }
        // The carve condition: S must be complete in the *original* graph.
        if !core_graph.is_clique(&s) {
            continue;
        }
        let within = remaining.difference(&s);
        let comp = component_containing(&core_graph, &within, x);
        if comp.len() + s.len() < remaining.len() {
            let mut atom = comp.clone();
            atom.union_with(&s);
            atoms.push(atom);
            if !s.is_empty() {
                separators.push(s);
            }
            remaining.difference_with(&comp);
        }
    }
    if !remaining.is_empty() {
        atoms.push(remaining);
    }

    let translate =
        |set: &VertexSet| VertexSet::from_iter(g.n(), set.iter().map(|v| mapping[v as usize]));
    (
        atoms.iter().map(&translate).collect(),
        separators.iter().map(&translate).collect(),
    )
}

/// The connected component of `g[within]` containing `start`.
fn component_containing(g: &Graph, within: &VertexSet, start: Vertex) -> VertexSet {
    debug_assert!(within.contains(start));
    let mut comp = VertexSet::empty(g.n());
    comp.insert(start);
    let mut stack = vec![start];
    while let Some(v) = stack.pop() {
        for w in g.neighbors(v).intersection(within).iter() {
            if comp.insert(w) {
                stack.push(w);
            }
        }
    }
    comp
}

/// Keeps only the ⊆-maximal sets (atoms absorbed by a larger atom
/// contribute nothing: they are cliques with a single empty triangulation).
fn keep_maximal(mut sets: Vec<VertexSet>) -> Vec<VertexSet> {
    sets.sort_by_key(|s| std::cmp::Reverse(s.len()));
    let mut out: Vec<VertexSet> = Vec::new();
    for s in sets {
        if !out.iter().any(|t| s.is_subset_of(t)) {
            out.push(s);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtr_graph::paper_example_graph;

    /// Checks the structural invariants every decomposition must satisfy.
    fn check_invariants(g: &Graph, dec: &Decomposition) {
        // Vertices covered.
        let mut covered = VertexSet::empty(g.n());
        for a in &dec.atoms {
            covered.union_with(&a.vertices);
        }
        assert_eq!(covered, g.vertex_set(), "atoms must cover every vertex");
        // Edges covered.
        for (u, v) in g.edges() {
            assert!(
                dec.atoms
                    .iter()
                    .any(|a| a.vertices.contains(u) && a.vertices.contains(v)),
                "edge ({u},{v}) not inside any atom"
            );
        }
        // Pairwise intersections are cliques.
        for (i, a) in dec.atoms.iter().enumerate() {
            for b in &dec.atoms[i + 1..] {
                let overlap = a.vertices.intersection(&b.vertices);
                assert!(g.is_clique(&overlap), "atom overlap is not a clique");
            }
        }
        // The remapped subgraphs are the induced subgraphs.
        for a in &dec.atoms {
            assert_eq!(a.graph.n() as usize, a.vertices.len());
            assert_eq!(a.chordal, is_chordal(&a.graph));
        }
    }

    fn two_triangles_sharing_an_edge_plus_c4() -> Graph {
        // Vertices 0..4: two triangles glued on edge {0,1}; vertices 4..8: a
        // disjoint C4. The clique separator {0,1} splits the first component.
        Graph::from_edges(
            8,
            &[
                (0, 1),
                (0, 2),
                (1, 2),
                (0, 3),
                (1, 3),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 4),
            ],
        )
    }

    #[test]
    fn off_is_the_identity_decomposition() {
        let g = paper_example_graph();
        let dec = decompose(&g, ReductionLevel::Off);
        assert_eq!(dec.atoms.len(), 1);
        assert_eq!(dec.atoms[0].vertices, g.vertex_set());
        check_invariants(&g, &dec);
    }

    #[test]
    fn components_split() {
        let g = two_triangles_sharing_an_edge_plus_c4();
        let dec = decompose(&g, ReductionLevel::Components);
        assert_eq!(dec.atoms.len(), 2);
        check_invariants(&g, &dec);
    }

    #[test]
    fn full_decomposes_along_clique_separators() {
        let g = two_triangles_sharing_an_edge_plus_c4();
        let dec = decompose(&g, ReductionLevel::Full);
        // Triangles are chordal (simplicial elimination takes the whole
        // first component apart into clique atoms absorbed as {0,1,2} and
        // {0,1,3}); the C4 core stays one atom.
        assert!(dec.atoms.len() >= 3);
        check_invariants(&g, &dec);
        let c4_atom = dec
            .atoms
            .iter()
            .find(|a| a.vertices.contains(4))
            .expect("C4 atom");
        assert_eq!(c4_atom.vertices.len(), 4);
        assert!(!c4_atom.chordal);
    }

    #[test]
    fn paper_graph_has_no_clique_separator_core_split() {
        // The paper's example: v' is simplicial (pendant), the rest is
        // 2-connected with no clique separator.
        let g = paper_example_graph();
        let dec = decompose(&g, ReductionLevel::Full);
        check_invariants(&g, &dec);
        assert!(dec.simplicial.contains(&2), "v' is simplicial");
        // The non-chordal core {u, v, w1, w2, w3} stays one atom.
        let core_atom = dec.atoms.iter().find(|a| !a.chordal).expect("core atom");
        assert_eq!(core_atom.vertices.len(), 5);
    }

    #[test]
    fn chordal_graphs_dissolve_into_clique_atoms() {
        // A path: every atom is an edge.
        let path = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let dec = decompose(&path, ReductionLevel::Full);
        check_invariants(&path, &dec);
        assert_eq!(dec.atoms.len(), 4);
        assert!(dec.atoms.iter().all(|a| a.chordal));
        assert_eq!(dec.simplicial.len(), 5);
    }

    #[test]
    fn isolated_vertices_and_empty_graphs() {
        let g = Graph::new(3);
        let dec = decompose(&g, ReductionLevel::Full);
        check_invariants(&g, &dec);
        assert_eq!(dec.atoms.len(), 3);
        let empty = Graph::new(0);
        let dec0 = decompose(&empty, ReductionLevel::Full);
        assert!(dec0.atoms.is_empty());
        let dec0_off = decompose(&empty, ReductionLevel::Off);
        assert!(dec0_off.atoms.is_empty());
    }

    #[test]
    fn cut_vertex_is_a_clique_separator() {
        // Two C4s sharing the cut vertex 0 — {0} is a clique minimal
        // separator, so Full splits where Components cannot.
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (0, 4),
                (4, 5),
                (5, 6),
                (6, 0),
            ],
        );
        assert_eq!(decompose(&g, ReductionLevel::Components).atoms.len(), 1);
        let dec = decompose(&g, ReductionLevel::Full);
        check_invariants(&g, &dec);
        assert_eq!(dec.atoms.len(), 2);
        assert!(dec
            .clique_separators
            .iter()
            .any(|s| s.len() == 1 && s.contains(0)));
    }

    #[test]
    fn level_parsing_and_display() {
        assert_eq!("off".parse::<ReductionLevel>(), Ok(ReductionLevel::Off));
        assert_eq!(
            "components".parse::<ReductionLevel>(),
            Ok(ReductionLevel::Components)
        );
        assert_eq!("full".parse::<ReductionLevel>(), Ok(ReductionLevel::Full));
        assert!("max".parse::<ReductionLevel>().is_err());
        assert_eq!(ReductionLevel::Full.to_string(), "full");
        assert_eq!(ReductionLevel::default(), ReductionLevel::Off);
    }
}
