//! Wiring the reduction subsystem into the [`Enumerate`] session builder.
//!
//! The entry point is [`EnumerateReduceExt::reduce`]:
//!
//! ```
//! use mtr_core::{cost::FillIn, Enumerate};
//! use mtr_reduce::{EnumerateReduceExt, ReductionLevel};
//! use mtr_graph::Graph;
//!
//! // Two triangles glued on an edge next to a disjoint C4: three atoms.
//! let g = Graph::from_edges(
//!     8,
//!     &[(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (4, 5), (5, 6), (6, 7), (7, 4)],
//! );
//! let run = Enumerate::on(&g)
//!     .cost(&FillIn)
//!     .reduce(ReductionLevel::Full)
//!     .run()?;
//! assert_eq!(run.stats.atoms, 3);
//! assert_eq!(run.results[0].fill_in(&g), 1); // the C4's single chord
//! # Ok::<(), mtr_core::EnumerationError>(())
//! ```
//!
//! A reduced session behaves exactly like the direct one — same results,
//! same cost order, same budgets and statistics — but preprocesses each
//! atom of the clique-separator decomposition independently and merges the
//! per-atom ranked streams. When the reduction cannot apply it falls back
//! to the direct engine transparently:
//!
//! * [`ReductionLevel::Off`] (the default) always runs direct;
//! * sessions started from an existing `Preprocessed` value have already
//!   paid the whole-graph initialization, so there is nothing to reduce;
//! * costs that do not declare an [`AtomCombine`](mtr_core::cost::AtomCombine)
//!   (see [`BagCost::atom_combine`]) cannot be ranked per-atom soundly;
//! * decompositions with a single atom gain nothing.
//!
//! [`EnumerationStats::atoms`] reports what happened: `0` — no
//! decomposition was attempted (one of the fallbacks above); `1` — the
//! decomposition found a single atom, so the direct engine ran; `≥ 2` —
//! the factorized engine ran. `threads` is ignored while the factorized
//! engine is active (per-atom parallelism is an open roadmap item).

use crate::decompose::{decompose, ReductionLevel};
use crate::merge::{AtomStream, FactorizedEnumerator};
use mtr_core::cost::BagCost;
use mtr_core::diverse::DiversityFilter;
use mtr_core::mintriang::Preprocessed;
use mtr_core::ranked::RankedTriangulation;
use mtr_core::session::{
    drive_engine, Enumerate, EnumerationError, EnumerationRun, EnumerationStats, SessionConfig,
    SessionReport, StopReason,
};
use mtr_pmc::enumerate::{
    potential_maximal_cliques_bounded_with_deadline, potential_maximal_cliques_with_deadline,
};
use std::ops::ControlFlow;
use std::time::{Duration, Instant};

/// Extension trait adding [`reduce`](EnumerateReduceExt::reduce) to the
/// [`Enumerate`] session builder. Import it (or the facade prelude) and
/// chain `.reduce(level)` like any other builder knob.
pub trait EnumerateReduceExt<'a, K: BagCost + Sync + ?Sized> {
    /// Enables safe reductions and clique-separator atom decomposition for
    /// this session. `ReductionLevel::Off` keeps the direct engine; see the
    /// [module documentation](self) for the fallback rules.
    fn reduce(self, level: ReductionLevel) -> Reduced<'a, K>;
}

impl<'a, K: BagCost + Sync + ?Sized> EnumerateReduceExt<'a, K> for Enumerate<'a, K> {
    fn reduce(self, level: ReductionLevel) -> Reduced<'a, K> {
        Reduced {
            config: self.into_config(),
            level,
        }
    }
}

/// A reduction-enabled session: an [`Enumerate`] configuration plus a
/// [`ReductionLevel`]. Terminal methods mirror the direct session's.
pub struct Reduced<'a, K: BagCost + Sync + ?Sized> {
    config: SessionConfig<'a, K>,
    level: ReductionLevel,
}

impl<'a, K: BagCost + Sync + ?Sized> Reduced<'a, K> {
    /// Budget: stop after `k` results (mirrors [`Enumerate::max_results`]),
    /// so budgets can be chained after `.reduce(..)` too.
    pub fn max_results(mut self, k: usize) -> Self {
        self.config.max_results = Some(k);
        self
    }

    /// Budget: wall-clock deadline covering the per-atom preprocessing too
    /// (mirrors [`Enumerate::deadline`]).
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.config.deadline = Some(deadline);
        self
    }

    /// Budget: cap on explored Lawler–Murty partitions, summed across the
    /// per-atom streams (mirrors [`Enumerate::node_budget`]).
    pub fn node_budget(mut self, nodes: usize) -> Self {
        self.config.node_budget = Some(nodes);
        self
    }

    /// Restricts every atom's enumeration to width ≤ `bound` — equivalent
    /// to the whole-graph bound, since a triangulation's width is the
    /// maximum over its atoms (mirrors [`Enumerate::width_bound`]).
    pub fn width_bound(mut self, bound: usize) -> Self {
        self.config.width_bound = Some(bound);
        self
    }

    /// Runs the session, collecting the ranked minimal triangulations
    /// (mirrors [`Enumerate::run`]).
    pub fn run(self) -> Result<EnumerationRun, EnumerationError> {
        let mut results = Vec::new();
        let report = self.drive(|t| {
            results.push(t);
            ControlFlow::Continue(())
        })?;
        Ok(EnumerationRun {
            results,
            stats: report.stats,
            stop_reason: report.stop_reason,
        })
    }

    /// Streams the session's results into `on_result` (mirrors
    /// [`Enumerate::drive`]).
    pub fn drive<F>(self, on_result: F) -> Result<SessionReport, EnumerationError>
    where
        F: FnMut(RankedTriangulation) -> ControlFlow<()>,
    {
        let started = Instant::now();
        let Reduced { config, level } = self;

        // Decide whether the factorized engine applies; otherwise fall back
        // to the direct session, which also performs all the validation.
        let combine = config.cost().atom_combine();
        let graph = config.graph();
        let applicable = level != ReductionLevel::Off && combine.is_some() && graph.is_some();
        if !applicable {
            return Enumerate::from_config(config).drive(on_result);
        }
        let (graph, combine) = (graph.expect("checked"), combine.expect("checked"));

        if let Some((_, threshold)) = config.diversity {
            if !(0.0..=1.0).contains(&threshold) {
                return Err(EnumerationError::InvalidDiversityThreshold(threshold));
            }
        }

        let decomposition = decompose(graph, level);
        let atom_count = decomposition.atoms.len();
        if atom_count <= 1 {
            // Nothing factorized out: the direct engine is strictly better
            // (the merge layer would only duplicate per-result work). The
            // atom count is still reported so callers can see why.
            let mut report = Enumerate::from_config(config).drive(on_result)?;
            report.stats.atoms = atom_count.max(1);
            return Ok(report);
        }

        let cost_name = config.cost().name();
        let deadline_at = config.deadline.and_then(|d| started.checked_add(d));
        let aborted_init = |started: &Instant| {
            let elapsed = started.elapsed();
            let stats = EnumerationStats {
                cost: cost_name.clone(),
                preprocessing: elapsed,
                preprocessing_complete: false,
                total: elapsed,
                atoms: atom_count,
                ..EnumerationStats::default()
            };
            SessionReport {
                stats,
                stop_reason: StopReason::DeadlineExceeded,
            }
        };

        // Per-atom preprocessing: chordal atoms are trivial streams; the
        // rest get their own (possibly width-bounded) `Preprocessed`, with
        // the session deadline covering the whole sequence.
        let mut streams = Vec::with_capacity(atom_count);
        for atom in &decomposition.atoms {
            if atom.chordal {
                streams.push(AtomStream::trivial(atom));
                continue;
            }
            let remaining = match deadline_at {
                Some(at) => match at.checked_duration_since(Instant::now()) {
                    Some(d) if d > Duration::ZERO => Some(d),
                    _ => return Ok(aborted_init(&started)),
                },
                None => None,
            };
            let pre = match (config.width_bound, remaining) {
                (Some(b), Some(d)) => {
                    match potential_maximal_cliques_bounded_with_deadline(&atom.graph, b + 1, d) {
                        Ok(e) => Preprocessed::from_parts_bounded(
                            &atom.graph,
                            e.minimal_separators,
                            e.pmcs,
                            b,
                        ),
                        Err(_) => return Ok(aborted_init(&started)),
                    }
                }
                (Some(b), None) => Preprocessed::new_bounded(&atom.graph, b),
                (None, Some(d)) => match potential_maximal_cliques_with_deadline(&atom.graph, d) {
                    Ok(e) => Preprocessed::from_parts(&atom.graph, e.minimal_separators, e.pmcs),
                    Err(_) => return Ok(aborted_init(&started)),
                },
                (None, None) => Preprocessed::new(&atom.graph),
            };
            streams.push(AtomStream::ranked(atom, pre));
        }

        let mut engine =
            FactorizedEnumerator::new(graph, config.cost(), combine, config.width_bound, streams);
        let filter = config
            .diversity
            .map(|(measure, threshold)| DiversityFilter::new(graph, measure, threshold));

        let (minimal_separators, pmcs, full_blocks) = engine.preprocessing_counts();
        let mut stats = EnumerationStats {
            cost: cost_name,
            preprocessing: started.elapsed(),
            preprocessing_complete: true,
            minimal_separators,
            pmcs,
            full_blocks,
            atoms: atom_count,
            ..EnumerationStats::default()
        };
        // The shared session loop owns all budget/diversity/statistics
        // semantics; the factorized engine only supplies results.
        let stop_reason = drive_engine(
            &mut engine,
            filter,
            &mut stats,
            started,
            config.max_results,
            config.deadline,
            config.node_budget,
            on_result,
        );
        Ok(SessionReport { stats, stop_reason })
    }
}
