//! Wiring the reduction subsystem into the [`Enumerate`] session builder.
//!
//! The entry point is [`EnumerateReduceExt::reduce`]:
//!
//! ```
//! use mtr_core::{cost::FillIn, Enumerate};
//! use mtr_reduce::{EnumerateReduceExt, ReductionLevel};
//! use mtr_graph::Graph;
//!
//! // Two triangles glued on an edge next to a disjoint C4: three atoms.
//! let g = Graph::from_edges(
//!     8,
//!     &[(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (4, 5), (5, 6), (6, 7), (7, 4)],
//! );
//! let run = Enumerate::on(&g)
//!     .cost(&FillIn)
//!     .reduce(ReductionLevel::Full)
//!     .run()?;
//! assert_eq!(run.stats.atoms, 3);
//! assert_eq!(run.results[0].fill_in(&g), 1); // the C4's single chord
//! # Ok::<(), mtr_core::EnumerationError>(())
//! ```
//!
//! A reduced session behaves exactly like the direct one — same results,
//! same cost order, same budgets and statistics — but preprocesses each
//! atom of the clique-separator decomposition independently and merges the
//! per-atom ranked streams. When the reduction cannot apply it falls back
//! to the direct engine transparently:
//!
//! * [`ReductionLevel::Off`] (the default) always runs direct;
//! * sessions started from an existing `Preprocessed` value have already
//!   paid the whole-graph initialization, so there is nothing to reduce;
//! * costs that do not declare an [`AtomCombine`] (see
//!   [`BagCost::atom_combine`]) cannot be ranked per-atom soundly;
//! * decompositions with a single atom gain nothing.
//!
//! [`EnumerationStats::atoms`] reports what happened: `0` — no
//! decomposition was attempted (one of the fallbacks above); `1` — the
//! decomposition found a single atom, so the direct engine ran; `≥ 2` —
//! the factorized engine ran. `.threads(t)` is honored on every path:
//! with the factorized engine active, the per-atom preprocessing and the
//! per-atom ranked streams run on a shared work-stealing
//! [`pool`] (atoms are independent subproblems); on every
//! fallback the thread count flows through to the direct parallel engine.
//! [`EnumerationStats::effective_threads`] reports what actually ran.
//!
//! # Atom caching
//!
//! With a cache active — [`Enumerate::cache`] /
//! [`Reduced::cache`] set to a non-`Off` [`CachePolicy`], or an explicit
//! [`Reduced::store`] — atoms are grouped by the canonical form of their
//! remapped subgraph before streams are built:
//!
//! * **intra-run dedup** — isomorphic atoms within one decomposition share
//!   a single stream enumerated in the canonical labeling, each atom
//!   relabeling the shared fill edges on emission;
//! * **cross-session reuse** — non-chordal groups look their
//!   `(canonical key, cost, width bound)` address up in the
//!   [`AtomStore`]; a hit seeds the stream's memo buffer (no per-atom
//!   preprocessing until demand outruns the prefix), a miss computes cold
//!   and publishes everything it learned — including speculative prefetch
//!   results computed on pool workers — when the run ends.
//!
//! Cached and cold runs emit equivalent ranked streams: the same cost
//! sequence, and the same triangulations up to the recorded canonical
//! relabeling (equal-cost results may tie-break differently than a
//! cache-*off* run, whose streams are enumerated in atom-local labeling).
//! [`EnumerationStats::atom_cache_hits`] /
//! [`EnumerationStats::atom_cache_misses`] /
//! [`EnumerationStats::atoms_deduped`] / [`EnumerationStats::cache_bytes`]
//! report what the cache did.

use crate::decompose::{decompose, ReductionLevel};
use crate::merge::{AtomStream, FactorizedEnumerator};
use crate::plan::{plan_canonical, plan_identity, StreamPlan};
use mtr_cache::{AtomKey, AtomStore, CachedPrefix, DEFAULT_BYTE_BUDGET};
use mtr_core::cost::{AtomCombine, BagCost};
use mtr_core::diverse::DiversityFilter;
use mtr_core::mintriang::Preprocessed;
use mtr_core::pool::{self, resolve_threads, Scratch, WorkerPool};
use mtr_core::ranked::RankedTriangulation;
use mtr_core::session::{
    drive_engine, heuristic_incumbent, CachePolicy, Enumerate, EnumerationError, EnumerationRun,
    EnumerationStats, PruningPolicy, SessionConfig, SessionReport, StopReason,
};
use mtr_core::symmetry::SymmetryPolicy;
use mtr_graph::Graph;
use mtr_pmc::enumerate::{
    potential_maximal_cliques_bounded_with_deadline, potential_maximal_cliques_with_deadline,
};
use std::ops::ControlFlow;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Extension trait adding [`reduce`](EnumerateReduceExt::reduce) to the
/// [`Enumerate`] session builder. Import it (or the facade prelude) and
/// chain `.reduce(level)` like any other builder knob.
pub trait EnumerateReduceExt<'a, K: BagCost + Sync + ?Sized> {
    /// Enables safe reductions and clique-separator atom decomposition for
    /// this session. `ReductionLevel::Off` keeps the direct engine; see the
    /// [module documentation](self) for the fallback rules.
    fn reduce(self, level: ReductionLevel) -> Reduced<'a, K>;
}

impl<'a, K: BagCost + Sync + ?Sized> EnumerateReduceExt<'a, K> for Enumerate<'a, K> {
    fn reduce(self, level: ReductionLevel) -> Reduced<'a, K> {
        Reduced {
            config: self.into_config(),
            level,
            store: None,
        }
    }
}

/// A reduction-enabled session: an [`Enumerate`] configuration plus a
/// [`ReductionLevel`]. Terminal methods mirror the direct session's.
pub struct Reduced<'a, K: BagCost + Sync + ?Sized> {
    config: SessionConfig<'a, K>,
    level: ReductionLevel,
    /// An explicit atom store, overriding the configured [`CachePolicy`].
    store: Option<Arc<AtomStore>>,
}

impl<'a, K: BagCost + Sync + ?Sized> Reduced<'a, K> {
    /// Budget: stop after `k` results (mirrors [`Enumerate::max_results`]),
    /// so budgets can be chained after `.reduce(..)` too.
    pub fn max_results(mut self, k: usize) -> Self {
        self.config.max_results = Some(k);
        self
    }

    /// Budget: wall-clock deadline covering the per-atom preprocessing too
    /// (mirrors [`Enumerate::deadline`]).
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.config.deadline = Some(deadline);
        self
    }

    /// Budget: cap on explored Lawler–Murty partitions, summed across the
    /// per-atom streams (mirrors [`Enumerate::node_budget`]).
    pub fn node_budget(mut self, nodes: usize) -> Self {
        self.config.node_budget = Some(nodes);
        self
    }

    /// Restricts every atom's enumeration to width ≤ `bound` — equivalent
    /// to the whole-graph bound, since a triangulation's width is the
    /// maximum over its atoms (mirrors [`Enumerate::width_bound`]).
    pub fn width_bound(mut self, bound: usize) -> Self {
        self.config.width_bound = Some(bound);
        self
    }

    /// Worker threads for the per-atom preprocessing and stream advancement
    /// (`0` auto-detects; mirrors [`Enumerate::threads`], so the knob can
    /// also be chained after `.reduce(..)`).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Atom cache policy (mirrors [`Enumerate::cache`], so the knob can be
    /// chained after `.reduce(..)` too).
    pub fn cache(mut self, policy: CachePolicy) -> Self {
        self.config.cache = policy;
        self
    }

    /// Incumbent-bounded pruning policy (mirrors [`Enumerate::pruning`]):
    /// applies both to the product-space merge and to every per-atom
    /// stream's own Lawler–Murty search. Exact either way.
    pub fn pruning(mut self, policy: PruningPolicy) -> Self {
        self.config.pruning = policy;
        self
    }

    /// Symmetry policy (mirrors [`Enumerate::symmetry`], so the knob can
    /// be chained after `.reduce(..)` too). `Full` arms orbit-canonical
    /// subproblem sharing inside every per-atom stream (probing each
    /// stream graph's own automorphisms); `ModuloSymmetry` falls back to
    /// the direct engine, because a whole-graph automorphism may permute
    /// atoms — a quotient the per-atom product stream cannot see.
    pub fn symmetry(mut self, policy: SymmetryPolicy) -> Self {
        self.config.symmetry = policy;
        self
    }

    /// Cooperative cancellation flag (mirrors [`Enumerate::cancel_flag`]):
    /// raising it stops the merge and every per-atom stream at their next
    /// demand boundary with [`StopReason::Cancelled`], and the run
    /// publishes only fully computed prefixes to the atom store.
    pub fn cancel_flag(mut self, flag: mtr_core::CancelFlag) -> Self {
        self.config.cancel = Some(flag);
        self
    }

    /// Uses `store` as the atom cache for this session, overriding the
    /// configured [`CachePolicy`] — the programmatic way to share one
    /// in-memory store across chosen sessions (clone the `Arc`):
    ///
    /// ```
    /// use mtr_cache::AtomStore;
    /// use mtr_core::{cost::FillIn, Enumerate};
    /// use mtr_reduce::{EnumerateReduceExt, ReductionLevel};
    /// use mtr_graph::Graph;
    ///
    /// let g = Graph::from_edges(
    ///     7,
    ///     &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (4, 5), (5, 6), (6, 0)],
    /// );
    /// let store = AtomStore::in_memory(1 << 20);
    /// let cold = Enumerate::on(&g)
    ///     .cost(&FillIn)
    ///     .reduce(ReductionLevel::Full)
    ///     .store(store.clone())
    ///     .run()?;
    /// let warm = Enumerate::on(&g)
    ///     .cost(&FillIn)
    ///     .reduce(ReductionLevel::Full)
    ///     .store(store)
    ///     .run()?;
    /// assert!(warm.stats.atom_cache_hits > 0);
    /// assert_eq!(cold.results.len(), warm.results.len());
    /// # Ok::<(), mtr_core::EnumerationError>(())
    /// ```
    pub fn store(mut self, store: Arc<AtomStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Runs the session, collecting the ranked minimal triangulations
    /// (mirrors [`Enumerate::run`]).
    pub fn run(self) -> Result<EnumerationRun, EnumerationError> {
        let mut results = Vec::new();
        let report = self.drive(|t| {
            results.push(t);
            ControlFlow::Continue(())
        })?;
        Ok(EnumerationRun {
            results,
            stats: report.stats,
            stop_reason: report.stop_reason,
        })
    }

    /// Streams the session's results into `on_result` (mirrors
    /// [`Enumerate::drive`]).
    pub fn drive<F>(self, on_result: F) -> Result<SessionReport, EnumerationError>
    where
        F: FnMut(RankedTriangulation) -> ControlFlow<()>,
    {
        let started = Instant::now();
        let Reduced {
            config,
            level,
            store,
        } = self;

        // Decide whether the factorized engine applies; otherwise fall back
        // to the direct session, which also performs all the validation —
        // and which honors `config.threads` through its own parallel
        // engine, so the thread count is never dropped on a fallback.
        let combine = config.cost().atom_combine();
        let graph = config.graph();
        // Modulo-symmetry quotients by the automorphism group of the *whole*
        // graph, which the per-atom product stream cannot see (an
        // automorphism may permute atoms); the direct engine handles it.
        let applicable = level != ReductionLevel::Off
            && combine.is_some()
            && graph.is_some()
            && config.symmetry != SymmetryPolicy::ModuloSymmetry;
        if !applicable {
            return Enumerate::from_config(config).drive(on_result);
        }
        let (graph, combine) = (graph.expect("checked"), combine.expect("checked"));

        if let Some((_, threshold)) = config.diversity {
            if !(0.0..=1.0).contains(&threshold) {
                return Err(EnumerationError::InvalidDiversityThreshold(threshold));
            }
        }

        let decomposition = decompose(graph, level);
        let atom_count = decomposition.atoms.len();
        if atom_count <= 1 {
            // Nothing factorized out: the direct engine is strictly better
            // (the merge layer would only duplicate per-result work). The
            // atom count is still reported so callers can see why. The
            // cache has nothing to key here either (no atoms ran).
            let mut report = Enumerate::from_config(config).drive(on_result)?;
            report.stats.atoms = atom_count.max(1);
            return Ok(report);
        }

        // Resolve the atom store: an explicit `.store(..)` wins, then the
        // configured policy. Canonicalization (and intra-run dedup) is on
        // exactly when a store is attached.
        let store = match store {
            Some(s) => Some(s),
            None => match &config.cache {
                CachePolicy::Off => None,
                CachePolicy::InMemory(bytes) => Some(mtr_cache::global_store(*bytes)),
                CachePolicy::Dir(path) => Some(
                    AtomStore::persistent(path, DEFAULT_BYTE_BUDGET).map_err(|e| {
                        EnumerationError::Io {
                            path: path.display().to_string(),
                            message: e.to_string(),
                        }
                    })?,
                ),
            },
        };

        // Plan the streams (grouping isomorphic atoms when caching) and
        // look up every keyed group — all ahead of the pool scope, so the
        // plan can be borrowed by pool tasks.
        let cost_id = config.cost().name();
        let plan = if store.is_some() {
            plan_canonical(&decomposition.atoms, &cost_id, config.width_bound)
        } else {
            plan_identity(&decomposition.atoms)
        };
        let seeds: Vec<Option<CachedPrefix>> = plan
            .specs
            .iter()
            .map(|spec| match (&store, &spec.key) {
                (Some(store), Some(key)) => store.lookup(key),
                _ => None,
            })
            .collect();
        let setup = FactorizedSetup { plan, seeds, store };

        let threads = resolve_threads(config.threads);
        if threads > 1 {
            // One pool for the whole reduced session: the per-atom
            // preprocessing fans out over it first, then the factorized
            // engine advances the per-atom streams on the same workers.
            pool::scoped(threads, |p| {
                drive_factorized(
                    graph,
                    &setup,
                    atom_count,
                    &config,
                    combine,
                    threads,
                    Some(p),
                    started,
                    on_result,
                )
            })
        } else {
            drive_factorized(
                graph, &setup, atom_count, &config, combine, threads, None, started, on_result,
            )
        }
    }
}

/// Everything the factorized drive needs beyond the session config: the
/// stream plan, the per-group cache seeds, and the store to publish into.
struct FactorizedSetup {
    plan: StreamPlan,
    seeds: Vec<Option<CachedPrefix>>,
    store: Option<Arc<AtomStore>>,
}

/// The single place reduce-path statistics are stamped from, normal
/// completion and aborted initialization alike — so a newly added stats
/// field cannot silently stay zero on one path (it either appears here or
/// the field review catches it).
struct StatsContext {
    cost_name: String,
    atoms: usize,
    threads: usize,
    cache_hits: usize,
    cache_misses: usize,
    atoms_deduped: usize,
    store: Option<Arc<AtomStore>>,
}

impl StatsContext {
    fn new(setup: &FactorizedSetup, cost_name: String, atoms: usize, threads: usize) -> Self {
        let keyed = setup.plan.specs.iter().filter(|s| s.key.is_some()).count();
        let cache_hits = setup.seeds.iter().filter(|s| s.is_some()).count();
        StatsContext {
            cost_name,
            atoms,
            threads,
            cache_hits,
            cache_misses: keyed - cache_hits,
            atoms_deduped: setup.plan.deduped,
            store: setup.store.clone(),
        }
    }

    fn cache_bytes(&self) -> usize {
        self.store.as_ref().map_or(0, |s| s.stats().bytes)
    }

    /// Base statistics for this run; the caller fills in the
    /// preprocessing counters and lets [`drive_engine`] own the rest.
    fn stats(&self, started: &Instant, preprocessing_complete: bool) -> EnumerationStats {
        let elapsed = started.elapsed();
        EnumerationStats {
            cost: self.cost_name.clone(),
            preprocessing: elapsed,
            preprocessing_complete,
            total: elapsed,
            atoms: self.atoms,
            effective_threads: self.threads,
            atom_cache_hits: self.cache_hits,
            atom_cache_misses: self.cache_misses,
            atoms_deduped: self.atoms_deduped,
            cache_bytes: self.cache_bytes(),
            // No whole-graph probe on the factorized path: symmetry lives
            // per atom here, so the session-level group order reads as
            // trivial (the per-stream probes feed `subproblems_replayed`).
            symmetry_group_order: 1,
            ..EnumerationStats::default()
        }
    }
}

/// One atom's preprocessing failed its deadline.
struct AtomInitAborted;

/// Builds one non-chordal group's cold ranked stream: its own (possibly
/// width-bounded) `Preprocessed`, under whatever remains of the session
/// deadline. A plain function (not a closure) so pool tasks can call it
/// while borrowing only the stream's graph.
fn build_stream(
    graph: &Graph,
    key: Option<AtomKey>,
    width_bound: Option<usize>,
    deadline_at: Option<Instant>,
) -> Result<AtomStream, AtomInitAborted> {
    let remaining = match deadline_at {
        Some(at) => match at.checked_duration_since(Instant::now()) {
            Some(d) if d > Duration::ZERO => Some(d),
            _ => return Err(AtomInitAborted),
        },
        None => None,
    };
    let pre = match (width_bound, remaining) {
        (Some(b), Some(d)) => {
            match potential_maximal_cliques_bounded_with_deadline(graph, b + 1, d) {
                Ok(e) => Preprocessed::from_parts_bounded(graph, e.minimal_separators, e.pmcs, b),
                Err(_) => return Err(AtomInitAborted),
            }
        }
        (Some(b), None) => Preprocessed::new_bounded(graph, b),
        (None, Some(d)) => match potential_maximal_cliques_with_deadline(graph, d) {
            Ok(e) => Preprocessed::from_parts(graph, e.minimal_separators, e.pmcs),
            Err(_) => return Err(AtomInitAborted),
        },
        (None, None) => Preprocessed::new(graph),
    };
    Ok(AtomStream::cold(pre, key))
}

/// The factorized half of [`Reduced::drive`], parameterized over an
/// optional worker pool (pulled out of the method so the pool scope can
/// wrap it with the right lifetimes).
#[allow(clippy::too_many_arguments)] // internal seam mirroring the session knobs
fn drive_factorized<'env, 'p, K, F>(
    graph: &'env Graph,
    setup: &'env FactorizedSetup,
    atom_count: usize,
    config: &'env SessionConfig<'_, K>,
    combine: AtomCombine,
    threads: usize,
    worker_pool: Option<WorkerPool<'env, 'p>>,
    started: Instant,
    on_result: F,
) -> Result<SessionReport, EnumerationError>
where
    K: BagCost + Sync + ?Sized,
    F: FnMut(RankedTriangulation) -> ControlFlow<()>,
{
    let ctx = StatsContext::new(setup, config.cost().name(), atom_count, threads);
    let deadline_at = config.deadline.and_then(|d| started.checked_add(d));
    let width_bound = config.width_bound;
    let aborted_init = |started: &Instant| SessionReport {
        stats: ctx.stats(started, false),
        stop_reason: StopReason::DeadlineExceeded,
    };

    // Per-group stream construction: chordal groups get trivial streams,
    // cache hits are seeded (no preprocessing yet), and the remaining cold
    // groups are independent subproblems — with a pool they are
    // preprocessed concurrently (the deadline applies inside each task).
    // Sequentially the deadline covers the whole sequence as before.
    let specs = &setup.plan.specs;
    let mut slots: Vec<Option<AtomStream>> = Vec::with_capacity(specs.len());
    let mut pending: Vec<usize> = Vec::new();
    for (g, spec) in specs.iter().enumerate() {
        if spec.chordal {
            slots.push(Some(AtomStream::trivial(spec.graph.clone())));
        } else if let Some(prefix) = &setup.seeds[g] {
            let key = spec.key.clone().expect("seeded specs are keyed");
            slots.push(Some(AtomStream::seeded(
                spec.graph.clone(),
                width_bound,
                key,
                prefix,
            )));
        } else {
            slots.push(None);
            pending.push(g);
        }
    }
    match worker_pool {
        Some(p) if pending.len() > 1 => {
            let tasks: Vec<_> = pending
                .iter()
                .map(|&g| {
                    let spec = &specs[g];
                    move |_scratch: &mut Scratch| {
                        (
                            g,
                            build_stream(&spec.graph, spec.key.clone(), width_bound, deadline_at),
                        )
                    }
                })
                .collect();
            let built_streams = p
                .run_batch(tasks)
                .map_err(|panic| EnumerationError::WorkerPanicked(panic.message))?;
            for (g, built) in built_streams {
                match built {
                    Ok(stream) => slots[g] = Some(stream),
                    Err(AtomInitAborted) => return Ok(aborted_init(&started)),
                }
            }
        }
        _ => {
            for &g in &pending {
                let spec = &specs[g];
                match build_stream(&spec.graph, spec.key.clone(), width_bound, deadline_at) {
                    Ok(stream) => slots[g] = Some(stream),
                    Err(AtomInitAborted) => return Ok(aborted_init(&started)),
                }
            }
        }
    }
    let mut streams: Vec<AtomStream> = slots
        .into_iter()
        .map(|s| s.expect("every group got a stream"))
        .collect();

    // Incumbent-bounded pruning, both per atom (each stream's own
    // Lawler–Murty search gets a heuristic seed for its atom graph) and
    // across the merge (a whole-graph heuristic seed bounds the product
    // space before the first result is even emitted).
    let prune = config.pruning.is_enabled();
    if prune {
        for stream in &mut streams {
            stream.enable_pruning(config.cost(), width_bound);
        }
    }

    // Per-atom symmetry: each stream graph gets its own automorphism probe
    // (an atom often keeps local symmetry even when the whole graph has
    // none). Exact — the merged stream is identical either way — and only
    // sound for label-invariant costs, same gate as the direct engine.
    if config.symmetry != SymmetryPolicy::Off && config.cost().label_invariant() {
        for stream in &mut streams {
            stream.enable_orbit_sharing();
        }
    }

    let mut engine = FactorizedEnumerator::new(
        graph,
        config.cost(),
        combine,
        width_bound,
        &setup.plan.members,
        streams,
        worker_pool,
    );
    if prune {
        engine.enable_pruning(heuristic_incumbent(graph, config.cost(), width_bound));
    }
    if let Some(flag) = &config.cancel {
        engine.bind_cancel(flag.clone());
    }
    let filter = config
        .diversity
        .map(|(measure, threshold)| DiversityFilter::new(graph, measure, threshold));

    let (minimal_separators, pmcs, full_blocks) = engine.preprocessing_counts();
    let mut stats = ctx.stats(&started, true);
    stats.minimal_separators = minimal_separators;
    stats.pmcs = pmcs;
    stats.full_blocks = full_blocks;
    // The shared session loop owns all budget/diversity/statistics
    // semantics; the factorized engine only supplies results.
    let stop_reason = drive_engine(
        &mut engine,
        filter,
        &mut stats,
        started,
        config.max_results,
        config.deadline,
        config.node_budget,
        config.cancel.as_ref(),
        on_result,
    );
    if let Some(message) = mtr_core::SessionEngine::failure(&engine) {
        // A stream-advancing batch died and took its stream slots with it:
        // nothing below (publishing included) is sound. Fail typed.
        return Err(EnumerationError::WorkerPanicked(message));
    }
    if let Some(store) = &setup.store {
        // Publish everything the streams learned (cold computation and
        // speculative prefetch alike), then refresh the resident size.
        engine.publish_into(store);
        stats.cache_bytes = store.stats().bytes;
    }
    if let Some(p) = worker_pool {
        let pool_stats = p.stats();
        stats.worker_tasks = pool_stats.worker_tasks;
        stats.steals = pool_stats.steals;
        stats.arena_bytes_reused += pool_stats.arena_bytes_reused;
    }
    Ok(SessionReport { stats, stop_reason })
}
