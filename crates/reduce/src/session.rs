//! Wiring the reduction subsystem into the [`Enumerate`] session builder.
//!
//! The entry point is [`EnumerateReduceExt::reduce`]:
//!
//! ```
//! use mtr_core::{cost::FillIn, Enumerate};
//! use mtr_reduce::{EnumerateReduceExt, ReductionLevel};
//! use mtr_graph::Graph;
//!
//! // Two triangles glued on an edge next to a disjoint C4: three atoms.
//! let g = Graph::from_edges(
//!     8,
//!     &[(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (4, 5), (5, 6), (6, 7), (7, 4)],
//! );
//! let run = Enumerate::on(&g)
//!     .cost(&FillIn)
//!     .reduce(ReductionLevel::Full)
//!     .run()?;
//! assert_eq!(run.stats.atoms, 3);
//! assert_eq!(run.results[0].fill_in(&g), 1); // the C4's single chord
//! # Ok::<(), mtr_core::EnumerationError>(())
//! ```
//!
//! A reduced session behaves exactly like the direct one — same results,
//! same cost order, same budgets and statistics — but preprocesses each
//! atom of the clique-separator decomposition independently and merges the
//! per-atom ranked streams. When the reduction cannot apply it falls back
//! to the direct engine transparently:
//!
//! * [`ReductionLevel::Off`] (the default) always runs direct;
//! * sessions started from an existing `Preprocessed` value have already
//!   paid the whole-graph initialization, so there is nothing to reduce;
//! * costs that do not declare an [`AtomCombine`] (see
//!   [`BagCost::atom_combine`]) cannot be ranked per-atom soundly;
//! * decompositions with a single atom gain nothing.
//!
//! [`EnumerationStats::atoms`] reports what happened: `0` — no
//! decomposition was attempted (one of the fallbacks above); `1` — the
//! decomposition found a single atom, so the direct engine ran; `≥ 2` —
//! the factorized engine ran. `.threads(t)` is honored on every path:
//! with the factorized engine active, the per-atom preprocessing and the
//! per-atom ranked streams run on a shared work-stealing
//! [`pool`] (atoms are independent subproblems); on every
//! fallback the thread count flows through to the direct parallel engine.
//! [`EnumerationStats::effective_threads`] reports what actually ran.

use crate::decompose::{decompose, Atom, ReductionLevel};
use crate::merge::{AtomStream, FactorizedEnumerator};
use mtr_core::cost::{AtomCombine, BagCost};
use mtr_core::diverse::DiversityFilter;
use mtr_core::mintriang::Preprocessed;
use mtr_core::pool::{self, resolve_threads, Scratch, WorkerPool};
use mtr_core::ranked::RankedTriangulation;
use mtr_core::session::{
    drive_engine, Enumerate, EnumerationError, EnumerationRun, EnumerationStats, SessionConfig,
    SessionReport, StopReason,
};
use mtr_pmc::enumerate::{
    potential_maximal_cliques_bounded_with_deadline, potential_maximal_cliques_with_deadline,
};
use std::ops::ControlFlow;
use std::time::{Duration, Instant};

/// Extension trait adding [`reduce`](EnumerateReduceExt::reduce) to the
/// [`Enumerate`] session builder. Import it (or the facade prelude) and
/// chain `.reduce(level)` like any other builder knob.
pub trait EnumerateReduceExt<'a, K: BagCost + Sync + ?Sized> {
    /// Enables safe reductions and clique-separator atom decomposition for
    /// this session. `ReductionLevel::Off` keeps the direct engine; see the
    /// [module documentation](self) for the fallback rules.
    fn reduce(self, level: ReductionLevel) -> Reduced<'a, K>;
}

impl<'a, K: BagCost + Sync + ?Sized> EnumerateReduceExt<'a, K> for Enumerate<'a, K> {
    fn reduce(self, level: ReductionLevel) -> Reduced<'a, K> {
        Reduced {
            config: self.into_config(),
            level,
        }
    }
}

/// A reduction-enabled session: an [`Enumerate`] configuration plus a
/// [`ReductionLevel`]. Terminal methods mirror the direct session's.
pub struct Reduced<'a, K: BagCost + Sync + ?Sized> {
    config: SessionConfig<'a, K>,
    level: ReductionLevel,
}

impl<'a, K: BagCost + Sync + ?Sized> Reduced<'a, K> {
    /// Budget: stop after `k` results (mirrors [`Enumerate::max_results`]),
    /// so budgets can be chained after `.reduce(..)` too.
    pub fn max_results(mut self, k: usize) -> Self {
        self.config.max_results = Some(k);
        self
    }

    /// Budget: wall-clock deadline covering the per-atom preprocessing too
    /// (mirrors [`Enumerate::deadline`]).
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.config.deadline = Some(deadline);
        self
    }

    /// Budget: cap on explored Lawler–Murty partitions, summed across the
    /// per-atom streams (mirrors [`Enumerate::node_budget`]).
    pub fn node_budget(mut self, nodes: usize) -> Self {
        self.config.node_budget = Some(nodes);
        self
    }

    /// Restricts every atom's enumeration to width ≤ `bound` — equivalent
    /// to the whole-graph bound, since a triangulation's width is the
    /// maximum over its atoms (mirrors [`Enumerate::width_bound`]).
    pub fn width_bound(mut self, bound: usize) -> Self {
        self.config.width_bound = Some(bound);
        self
    }

    /// Worker threads for the per-atom preprocessing and stream advancement
    /// (`0` auto-detects; mirrors [`Enumerate::threads`], so the knob can
    /// also be chained after `.reduce(..)`).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Runs the session, collecting the ranked minimal triangulations
    /// (mirrors [`Enumerate::run`]).
    pub fn run(self) -> Result<EnumerationRun, EnumerationError> {
        let mut results = Vec::new();
        let report = self.drive(|t| {
            results.push(t);
            ControlFlow::Continue(())
        })?;
        Ok(EnumerationRun {
            results,
            stats: report.stats,
            stop_reason: report.stop_reason,
        })
    }

    /// Streams the session's results into `on_result` (mirrors
    /// [`Enumerate::drive`]).
    pub fn drive<F>(self, on_result: F) -> Result<SessionReport, EnumerationError>
    where
        F: FnMut(RankedTriangulation) -> ControlFlow<()>,
    {
        let started = Instant::now();
        let Reduced { config, level } = self;

        // Decide whether the factorized engine applies; otherwise fall back
        // to the direct session, which also performs all the validation —
        // and which honors `config.threads` through its own parallel
        // engine, so the thread count is never dropped on a fallback.
        let combine = config.cost().atom_combine();
        let graph = config.graph();
        let applicable = level != ReductionLevel::Off && combine.is_some() && graph.is_some();
        if !applicable {
            return Enumerate::from_config(config).drive(on_result);
        }
        let (graph, combine) = (graph.expect("checked"), combine.expect("checked"));

        if let Some((_, threshold)) = config.diversity {
            if !(0.0..=1.0).contains(&threshold) {
                return Err(EnumerationError::InvalidDiversityThreshold(threshold));
            }
        }

        let decomposition = decompose(graph, level);
        let atom_count = decomposition.atoms.len();
        if atom_count <= 1 {
            // Nothing factorized out: the direct engine is strictly better
            // (the merge layer would only duplicate per-result work). The
            // atom count is still reported so callers can see why.
            let mut report = Enumerate::from_config(config).drive(on_result)?;
            report.stats.atoms = atom_count.max(1);
            return Ok(report);
        }

        let threads = resolve_threads(config.threads);
        let atoms = &decomposition.atoms;
        if threads > 1 {
            // One pool for the whole reduced session: the per-atom
            // preprocessing fans out over it first, then the factorized
            // engine advances the per-atom streams on the same workers.
            pool::scoped(threads, |p| {
                drive_factorized(
                    graph,
                    atoms,
                    &config,
                    combine,
                    threads,
                    Some(p),
                    started,
                    on_result,
                )
            })
        } else {
            drive_factorized(
                graph, atoms, &config, combine, threads, None, started, on_result,
            )
        }
    }
}

/// One atom's preprocessing failed its deadline.
struct AtomInitAborted;

/// Builds one non-chordal atom's ranked stream: its own (possibly
/// width-bounded) `Preprocessed`, under whatever remains of the session
/// deadline. A plain function (not a closure) so pool tasks can call it
/// while borrowing only the atom itself.
fn build_stream(
    atom: &Atom,
    width_bound: Option<usize>,
    deadline_at: Option<Instant>,
) -> Result<AtomStream, AtomInitAborted> {
    let remaining = match deadline_at {
        Some(at) => match at.checked_duration_since(Instant::now()) {
            Some(d) if d > Duration::ZERO => Some(d),
            _ => return Err(AtomInitAborted),
        },
        None => None,
    };
    let pre = match (width_bound, remaining) {
        (Some(b), Some(d)) => {
            match potential_maximal_cliques_bounded_with_deadline(&atom.graph, b + 1, d) {
                Ok(e) => {
                    Preprocessed::from_parts_bounded(&atom.graph, e.minimal_separators, e.pmcs, b)
                }
                Err(_) => return Err(AtomInitAborted),
            }
        }
        (Some(b), None) => Preprocessed::new_bounded(&atom.graph, b),
        (None, Some(d)) => match potential_maximal_cliques_with_deadline(&atom.graph, d) {
            Ok(e) => Preprocessed::from_parts(&atom.graph, e.minimal_separators, e.pmcs),
            Err(_) => return Err(AtomInitAborted),
        },
        (None, None) => Preprocessed::new(&atom.graph),
    };
    Ok(AtomStream::ranked(atom, pre))
}

/// The factorized half of [`Reduced::drive`], parameterized over an
/// optional worker pool (pulled out of the method so the pool scope can
/// wrap it with the right lifetimes).
#[allow(clippy::too_many_arguments)] // internal seam mirroring the session knobs
fn drive_factorized<'env, 'p, K, F>(
    graph: &'env mtr_graph::Graph,
    atoms: &'env [Atom],
    config: &'env SessionConfig<'_, K>,
    combine: AtomCombine,
    threads: usize,
    worker_pool: Option<WorkerPool<'env, 'p>>,
    started: Instant,
    on_result: F,
) -> Result<SessionReport, EnumerationError>
where
    K: BagCost + Sync + ?Sized,
    F: FnMut(RankedTriangulation) -> ControlFlow<()>,
{
    let atom_count = atoms.len();
    let cost_name = config.cost().name();
    let deadline_at = config.deadline.and_then(|d| started.checked_add(d));
    let width_bound = config.width_bound;
    let aborted_init = |started: &Instant| {
        let elapsed = started.elapsed();
        let stats = EnumerationStats {
            cost: cost_name.clone(),
            preprocessing: elapsed,
            preprocessing_complete: false,
            total: elapsed,
            atoms: atom_count,
            effective_threads: threads,
            ..EnumerationStats::default()
        };
        SessionReport {
            stats,
            stop_reason: StopReason::DeadlineExceeded,
        }
    };

    // Per-atom preprocessing: chordal atoms are trivial streams built on
    // the spot; the rest are independent subproblems, so with a pool they
    // are preprocessed concurrently (the deadline applies inside each
    // task). Sequentially the deadline covers the whole sequence as before.
    let mut slots: Vec<Option<AtomStream>> = Vec::with_capacity(atom_count);
    let mut pending: Vec<usize> = Vec::new();
    for (i, atom) in atoms.iter().enumerate() {
        if atom.chordal {
            slots.push(Some(AtomStream::trivial(atom)));
        } else {
            slots.push(None);
            pending.push(i);
        }
    }
    match worker_pool {
        Some(p) if pending.len() > 1 => {
            let tasks: Vec<_> = pending
                .iter()
                .map(|&i| {
                    let atom = &atoms[i];
                    move |_scratch: &mut Scratch| (i, build_stream(atom, width_bound, deadline_at))
                })
                .collect();
            for (i, built) in p.run_batch(tasks) {
                match built {
                    Ok(stream) => slots[i] = Some(stream),
                    Err(AtomInitAborted) => return Ok(aborted_init(&started)),
                }
            }
        }
        _ => {
            for &i in &pending {
                match build_stream(&atoms[i], width_bound, deadline_at) {
                    Ok(stream) => slots[i] = Some(stream),
                    Err(AtomInitAborted) => return Ok(aborted_init(&started)),
                }
            }
        }
    }
    let streams: Vec<AtomStream> = slots
        .into_iter()
        .map(|s| s.expect("every atom got a stream"))
        .collect();

    let mut engine = FactorizedEnumerator::new(
        graph,
        config.cost(),
        combine,
        width_bound,
        streams,
        worker_pool,
    );
    let filter = config
        .diversity
        .map(|(measure, threshold)| DiversityFilter::new(graph, measure, threshold));

    let (minimal_separators, pmcs, full_blocks) = engine.preprocessing_counts();
    let mut stats = EnumerationStats {
        cost: cost_name,
        preprocessing: started.elapsed(),
        preprocessing_complete: true,
        minimal_separators,
        pmcs,
        full_blocks,
        atoms: atom_count,
        effective_threads: threads,
        ..EnumerationStats::default()
    };
    // The shared session loop owns all budget/diversity/statistics
    // semantics; the factorized engine only supplies results.
    let stop_reason = drive_engine(
        &mut engine,
        filter,
        &mut stats,
        started,
        config.max_results,
        config.deadline,
        config.node_budget,
        on_result,
    );
    if let Some(p) = worker_pool {
        let pool_stats = p.stats();
        stats.worker_tasks = pool_stats.worker_tasks;
        stats.steals = pool_stats.steals;
    }
    Ok(SessionReport { stats, stop_reason })
}
