//! `mtr-reduce`: safe reductions and clique-separator atom decomposition
//! with factorized ranked enumeration.
//!
//! The ranked enumeration of minimal triangulations pays for the full
//! minimal-separator/PMC machinery of the *whole* graph — but minimal
//! triangulations factorize over the atoms of the clique minimal-separator
//! decomposition (Tarjan; Leimer; Carmeli, Kenig & Kimelfeld, *On the
//! Enumeration of all Minimal Triangulations*): every minimal triangulation
//! of `G` is the union of exactly one minimal triangulation per atom, with
//! disjoint fill sets. This crate exploits that as a preprocessing
//! subsystem in three layers:
//!
//! * [`decompose()`] — safe reductions (connected-component splitting,
//!   isolated/simplicial vertex elimination) plus the MCS-M based clique
//!   minimal-separator decomposition into [`Atom`]s;
//! * a factorized engine (internal) — one lazy ranked stream per atom,
//!   merged into a single globally ranked stream by a Lawler-style
//!   product-space search, combining costs additively (fill-like) or by
//!   maximum (width-like) as declared by
//!   [`BagCost::atom_combine`](mtr_core::cost::BagCost::atom_combine);
//! * [`EnumerateReduceExt`] — the session wiring: chain
//!   `.reduce(ReductionLevel::Full)` onto any
//!   [`Enumerate`](mtr_core::Enumerate) builder. The default level is
//!   `Off`, so nothing changes unless asked for.
//!
//! On decomposable inputs (graphs glued along cliques, star-of-cliques
//! models, blobs joined by bridges) the preprocessing cost drops from the
//! whole graph to its largest atom — an exponential improvement for the
//! separator/PMC enumeration — while the emitted stream stays equivalent:
//! same triangulations, same cost sequence, costs evaluated on the original
//! graph.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decompose;
mod merge;
mod plan;
pub mod session;

pub use decompose::{decompose, Atom, Decomposition, ReductionLevel};
pub use session::{EnumerateReduceExt, Reduced};

#[cfg(test)]
mod tests {
    use super::*;
    use mtr_core::cost::{CostValue, ExpBagSum, FillIn, Width};
    use mtr_core::{Enumerate, EnumerationError, Preprocessed, StopReason};
    use mtr_graph::{paper_example_graph, Graph};

    fn glued() -> Graph {
        // Two C4s sharing the cut vertex 0 plus a pendant at vertex 2:
        // decomposes into two cycle atoms and one clique atom.
        Graph::from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (0, 4),
                (4, 5),
                (5, 6),
                (6, 0),
                (2, 7),
            ],
        )
    }

    fn costs(run: &mtr_core::EnumerationRun) -> Vec<CostValue> {
        run.results.iter().map(|r| r.cost).collect()
    }

    fn fill_sets(g: &Graph, run: &mtr_core::EnumerationRun) -> Vec<Vec<(u32, u32)>> {
        let mut sets: Vec<Vec<(u32, u32)>> = run
            .results
            .iter()
            .map(|r| {
                let mut f = g.fill_edges_of(&r.triangulation);
                f.sort_unstable();
                f
            })
            .collect();
        sets.sort();
        sets
    }

    #[test]
    fn reduced_run_matches_direct_on_glued_graph() {
        let g = glued();
        for level in [ReductionLevel::Components, ReductionLevel::Full] {
            for cost in [&Width as &(dyn mtr_core::cost::BagCost + Sync), &FillIn] {
                let direct = Enumerate::on(&g).cost(cost).run().unwrap();
                let reduced = Enumerate::on(&g).cost(cost).reduce(level).run().unwrap();
                assert_eq!(costs(&direct), costs(&reduced), "level {level}");
                assert_eq!(fill_sets(&g, &direct), fill_sets(&g, &reduced));
                assert_eq!(reduced.stop_reason, StopReason::Exhausted);
            }
        }
        let reduced = Enumerate::on(&g)
            .cost(&FillIn)
            .reduce(ReductionLevel::Full)
            .run()
            .unwrap();
        assert_eq!(reduced.stats.atoms, 3);
        assert_eq!(reduced.stats.duplicates_skipped, 0);
        assert!(reduced.stats.minimal_separators > 0);
    }

    #[test]
    fn off_level_and_single_atom_fall_back_to_direct() {
        let g = paper_example_graph();
        let off = Enumerate::on(&g)
            .cost(&FillIn)
            .reduce(ReductionLevel::Off)
            .run()
            .unwrap();
        assert_eq!(off.stats.atoms, 0, "Off never decomposes");
        assert_eq!(off.results.len(), 2);
        // C6 is 2-connected with no clique separator: one atom, direct run.
        let c6 = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let one = Enumerate::on(&c6)
            .cost(&FillIn)
            .reduce(ReductionLevel::Full)
            .run()
            .unwrap();
        assert_eq!(one.stats.atoms, 1);
        assert_eq!(one.results.len(), 14);
    }

    #[test]
    fn threaded_reduced_session_matches_sequential_and_reports_threads() {
        let g = glued();
        let sequential = Enumerate::on(&g)
            .cost(&FillIn)
            .reduce(ReductionLevel::Full)
            .run()
            .unwrap();
        assert_eq!(sequential.stats.effective_threads, 1);
        for threads in [2, 4] {
            let parallel = Enumerate::on(&g)
                .cost(&FillIn)
                .threads(threads)
                .reduce(ReductionLevel::Full)
                .run()
                .unwrap();
            assert_eq!(costs(&sequential), costs(&parallel), "threads {threads}");
            assert_eq!(fill_sets(&g, &sequential), fill_sets(&g, &parallel));
            assert_eq!(parallel.stats.effective_threads, threads);
            assert_eq!(parallel.stats.atoms, 3);
            assert_eq!(parallel.stats.worker_tasks.len(), threads);
            assert!(parallel.stats.worker_tasks.iter().sum::<usize>() > 0);
        }
        // The knob can be chained after `.reduce(..)` too.
        let chained = Enumerate::on(&g)
            .cost(&FillIn)
            .reduce(ReductionLevel::Full)
            .threads(2)
            .run()
            .unwrap();
        assert_eq!(chained.stats.effective_threads, 2);
        assert_eq!(costs(&sequential), costs(&chained));
        // Single-atom fallback: threads flow to the direct parallel engine
        // instead of being silently dropped.
        let c6 = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let fallback = Enumerate::on(&c6)
            .cost(&FillIn)
            .threads(2)
            .reduce(ReductionLevel::Full)
            .run()
            .unwrap();
        assert_eq!(fallback.stats.atoms, 1);
        assert_eq!(fallback.stats.effective_threads, 2);
        assert_eq!(fallback.results.len(), 14);
    }

    #[test]
    fn non_factorizing_cost_falls_back() {
        let g = glued();
        let direct = Enumerate::on(&g).cost(&ExpBagSum).run().unwrap();
        let reduced = Enumerate::on(&g)
            .cost(&ExpBagSum)
            .reduce(ReductionLevel::Full)
            .run()
            .unwrap();
        assert_eq!(reduced.stats.atoms, 0, "fallback leaves atoms at 0");
        assert_eq!(costs(&direct), costs(&reduced));
    }

    #[test]
    fn preprocessed_source_falls_back() {
        let g = glued();
        let pre = Preprocessed::new(&g);
        let run = Enumerate::with(&pre)
            .cost(&FillIn)
            .reduce(ReductionLevel::Full)
            .run()
            .unwrap();
        assert_eq!(run.stats.atoms, 0);
        let direct = Enumerate::on(&g).cost(&FillIn).run().unwrap();
        assert_eq!(costs(&direct), costs(&run));
    }

    #[test]
    fn budgets_apply_to_reduced_sessions() {
        let g = glued();
        let all = Enumerate::on(&g)
            .cost(&FillIn)
            .reduce(ReductionLevel::Full)
            .run()
            .unwrap();
        assert!(all.results.len() > 3);
        let capped = Enumerate::on(&g)
            .cost(&FillIn)
            .reduce(ReductionLevel::Full)
            .max_results(3)
            .run()
            .unwrap();
        assert_eq!(capped.results.len(), 3);
        assert_eq!(capped.stop_reason, StopReason::MaxResults);
        for (a, b) in capped.results.iter().zip(&all.results) {
            assert_eq!(a.cost, b.cost, "budgeted prefix of the same stream");
        }
        let deadline = Enumerate::on(&g)
            .cost(&FillIn)
            .reduce(ReductionLevel::Full)
            .deadline(std::time::Duration::ZERO)
            .run()
            .unwrap();
        assert!(deadline.results.is_empty());
        assert_eq!(deadline.stop_reason, StopReason::DeadlineExceeded);
        assert!(!deadline.stats.preprocessing_complete);
        let budgeted = Enumerate::on(&g)
            .cost(&FillIn)
            .reduce(ReductionLevel::Full)
            .node_budget(0)
            .run()
            .unwrap();
        assert!(budgeted.results.is_empty());
        assert_eq!(budgeted.stop_reason, StopReason::NodeBudgetExhausted);
    }

    #[test]
    fn width_bound_composes_with_reduction() {
        let g = glued();
        // Every minimal triangulation of the glued graph has width 2.
        let bounded = Enumerate::on(&g)
            .cost(&FillIn)
            .width_bound(2)
            .reduce(ReductionLevel::Full)
            .run()
            .unwrap();
        let unbounded = Enumerate::on(&g)
            .cost(&FillIn)
            .reduce(ReductionLevel::Full)
            .run()
            .unwrap();
        assert_eq!(costs(&bounded), costs(&unbounded));
        let impossible = Enumerate::on(&g)
            .cost(&FillIn)
            .width_bound(1)
            .reduce(ReductionLevel::Full)
            .run()
            .unwrap();
        assert!(impossible.results.is_empty());
        assert_eq!(impossible.stop_reason, StopReason::Exhausted);
    }

    #[test]
    fn invalid_diversity_threshold_still_errors() {
        let g = glued();
        let err = Enumerate::on(&g)
            .cost(&FillIn)
            .diverse(mtr_core::SimilarityMeasure::FillJaccard, 2.0)
            .reduce(ReductionLevel::Full)
            .run()
            .unwrap_err();
        assert_eq!(err, EnumerationError::InvalidDiversityThreshold(2.0));
    }

    #[test]
    fn cached_sessions_match_uncached_and_report_cache_stats() {
        let g = glued();
        let store = mtr_cache::AtomStore::in_memory(1 << 20);
        let plain = Enumerate::on(&g)
            .cost(&FillIn)
            .reduce(ReductionLevel::Full)
            .run()
            .unwrap();
        assert_eq!(plain.stats.atom_cache_hits, 0);
        assert_eq!(plain.stats.atom_cache_misses, 0);
        assert_eq!(plain.stats.atoms_deduped, 0);
        let cold = Enumerate::on(&g)
            .cost(&FillIn)
            .reduce(ReductionLevel::Full)
            .store(store.clone())
            .run()
            .unwrap();
        // The two C4 atoms are isomorphic: one keyed group, looked up once.
        assert_eq!(cold.stats.atom_cache_hits, 0);
        assert_eq!(cold.stats.atom_cache_misses, 1);
        // The two C4 atoms share one stream; the {2,7} edge atom is its
        // own (chordal, unkeyed) group.
        assert_eq!(cold.stats.atoms_deduped, 1);
        assert!(cold.stats.cache_bytes > 0, "cold run published its prefix");
        let warm = Enumerate::on(&g)
            .cost(&FillIn)
            .reduce(ReductionLevel::Full)
            .store(store)
            .run()
            .unwrap();
        assert_eq!(warm.stats.atom_cache_hits, 1);
        assert_eq!(warm.stats.atom_cache_misses, 0);
        // All three runs agree on the ranked stream (costs exactly; fills
        // as sets — canonical relabeling may reorder equal-cost ties).
        assert_eq!(costs(&plain), costs(&cold));
        assert_eq!(costs(&cold), costs(&warm));
        assert_eq!(fill_sets(&g, &plain), fill_sets(&g, &cold));
        assert_eq!(fill_sets(&g, &cold), fill_sets(&g, &warm));
    }

    #[test]
    fn cache_policy_in_memory_uses_the_process_store() {
        use mtr_core::CachePolicy;
        let g = glued();
        let first = Enumerate::on(&g)
            .cost(&Width)
            .cache(CachePolicy::in_memory())
            .reduce(ReductionLevel::Full)
            .run()
            .unwrap();
        let second = Enumerate::on(&g)
            .cost(&Width)
            .reduce(ReductionLevel::Full)
            .cache(CachePolicy::in_memory())
            .run()
            .unwrap();
        assert_eq!(costs(&first), costs(&second));
        assert_eq!(
            second.stats.atom_cache_hits, 1,
            "second session hits the process-wide store"
        );
        assert_eq!(fill_sets(&g, &first), fill_sets(&g, &second));
    }

    #[test]
    fn per_atom_orbit_sharing_is_exact_on_glued_graph() {
        use mtr_core::SymmetryPolicy;
        let g = glued();
        // Each C4 atom is a 4-cycle with automorphism group of order 8, so
        // the per-atom probes fire even though they change nothing
        // observable: the merged stream must be bit-for-bit identical.
        let off = Enumerate::on(&g)
            .cost(&FillIn)
            .symmetry(SymmetryPolicy::Off)
            .reduce(ReductionLevel::Full)
            .run()
            .unwrap();
        for threads in [1, 4] {
            let shared = Enumerate::on(&g)
                .cost(&FillIn)
                .reduce(ReductionLevel::Full)
                .threads(threads)
                .run()
                .unwrap();
            assert_eq!(costs(&off), costs(&shared), "threads {threads}");
            assert_eq!(fill_sets(&g, &off), fill_sets(&g, &shared));
            assert_eq!(shared.stats.atoms, 3);
            // The factorized path never probes the whole graph: the
            // session-level group order reads as trivial by design.
            assert_eq!(shared.stats.symmetry_group_order, 1);
        }
    }

    #[test]
    fn modulo_symmetry_falls_back_to_direct_engine() {
        use mtr_core::SymmetryPolicy;
        // Two C5 lobes sharing the cut vertex 0: the cut vertex is a clique
        // separator (two atoms), but the whole graph's automorphisms swap
        // the lobes — a quotient the per-atom product stream cannot see,
        // so modulo mode must bypass the factorized engine entirely.
        let g = Graph::from_edges(
            9,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 0),
                (0, 5),
                (5, 6),
                (6, 7),
                (7, 8),
                (8, 0),
            ],
        );
        let reduced = Enumerate::on(&g)
            .cost(&FillIn)
            .symmetry(SymmetryPolicy::ModuloSymmetry)
            .reduce(ReductionLevel::Full)
            .run()
            .unwrap();
        assert_eq!(reduced.stats.atoms, 0, "modulo quotients whole graphs");
        let direct = Enumerate::on(&g)
            .cost(&FillIn)
            .symmetry(SymmetryPolicy::ModuloSymmetry)
            .run()
            .unwrap();
        assert_eq!(costs(&direct), costs(&reduced));
        assert_eq!(fill_sets(&g, &direct), fill_sets(&g, &reduced));
        let full = Enumerate::on(&g)
            .cost(&FillIn)
            .reduce(ReductionLevel::Full)
            .run()
            .unwrap();
        assert!(
            reduced.results.len() < full.results.len(),
            "one representative per orbit is a strict quotient here"
        );
        assert!(reduced.stats.orbits_merged > 0);
    }

    #[test]
    fn chordal_graph_reduces_to_single_trivial_result() {
        let path = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let run = Enumerate::on(&path)
            .cost(&Width)
            .reduce(ReductionLevel::Full)
            .run()
            .unwrap();
        assert_eq!(run.results.len(), 1);
        assert_eq!(run.results[0].triangulation, path);
        assert_eq!(run.results[0].cost, CostValue::from_usize(1));
        assert!(run.stats.atoms > 1);
        assert_eq!(run.stats.nodes_explored, 0, "trivial atoms explore nothing");
    }
}
