//! Stream planning: from decomposition atoms to (possibly shared,
//! possibly cache-keyed) enumeration streams.
//!
//! Without the atom cache every atom gets its own stream over its own
//! remapped subgraph — the pre-cache behavior, bit for bit. With the cache
//! active, atoms are grouped by the canonical form of their subgraph:
//! isomorphic atoms ("members") share one stream enumerated in the
//! *canonical* labeling, and each member keeps only the vertex translation
//! `canonical → original` used when its fill edges are emitted. Keyed
//! groups (non-chordal ones — chordal streams are O(1) and not worth
//! storing) can then be seeded from and published to an
//! [`AtomStore`](mtr_cache::AtomStore).

use crate::decompose::Atom;
use crate::merge::MemberBinding;
use mtr_cache::AtomKey;
use mtr_graph::{CanonicalKey, Graph, Vertex};
use std::collections::HashMap;

/// One stream to build: the graph it enumerates plus its cache address.
pub(crate) struct StreamSpec {
    /// The stream-local graph (atom-local without the cache, canonical
    /// with it).
    pub graph: Graph,
    /// The group is an isomorphism class of chordal atoms: a single
    /// trivial result, no preprocessing.
    pub chordal: bool,
    /// The store address of this stream — `Some` only for cache-planned
    /// non-chordal groups.
    pub key: Option<AtomKey>,
}

/// The output of planning: stream specs (one per group) and the member
/// bindings (one per atom, in atom order).
pub(crate) struct StreamPlan {
    pub specs: Vec<StreamSpec>,
    pub members: Vec<MemberBinding>,
    /// Atoms that joined an existing group instead of opening their own —
    /// the intra-run dedup count reported in the session stats.
    pub deduped: usize,
}

/// The identity plan: one stream per atom in its own labeling. This is
/// the cache-off path and keeps the engine behavior identical to previous
/// releases (including tie order among equal-cost results).
pub(crate) fn plan_identity(atoms: &[Atom]) -> StreamPlan {
    StreamPlan {
        specs: atoms
            .iter()
            .map(|atom| StreamSpec {
                graph: atom.graph.clone(),
                chordal: atom.chordal,
                key: None,
            })
            .collect(),
        members: atoms
            .iter()
            .enumerate()
            .map(|(i, atom)| MemberBinding {
                group: i,
                emit_map: atom.mapping.clone(),
            })
            .collect(),
        deduped: 0,
    }
}

/// The canonical plan: atoms grouped by the canonical form of their
/// subgraph, streams enumerated in canonical labeling, non-chordal groups
/// keyed for the store.
pub(crate) fn plan_canonical(
    atoms: &[Atom],
    cost_id: &str,
    width_bound: Option<usize>,
) -> StreamPlan {
    let mut specs: Vec<StreamSpec> = Vec::new();
    let mut members: Vec<MemberBinding> = Vec::new();
    let mut groups: HashMap<CanonicalKey, usize> = HashMap::new();
    let mut deduped = 0usize;
    for atom in atoms {
        let form = atom.graph.canonical_form();
        // emit_map[canonical] = original: canonical position -> atom-local
        // vertex (form.order) -> original vertex (atom.mapping).
        let emit_map: Vec<Vertex> = form
            .order
            .iter()
            .map(|&local| atom.mapping[local as usize])
            .collect();
        let group = match groups.get(&form.key) {
            Some(&g) => {
                debug_assert_eq!(
                    (specs[g].graph.n(), specs[g].graph.m(), specs[g].chordal),
                    (atom.graph.n(), atom.graph.m(), atom.chordal),
                    "canonical key collision between non-isomorphic atoms"
                );
                deduped += 1;
                g
            }
            None => {
                let g = specs.len();
                groups.insert(form.key, g);
                specs.push(StreamSpec {
                    graph: atom.graph.relabeled(&form.order),
                    chordal: atom.chordal,
                    key: (!atom.chordal).then(|| AtomKey {
                        graph: form.key,
                        cost_id: cost_id.to_string(),
                        width_bound,
                    }),
                });
                g
            }
        };
        members.push(MemberBinding { group, emit_map });
    }
    StreamPlan {
        specs,
        members,
        deduped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::{decompose, ReductionLevel};
    use mtr_graph::VertexSet;

    fn star() -> Graph {
        // 3 isomorphic triangle-arms glued on the center vertex 0.
        Graph::from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (1, 2),
                (0, 3),
                (0, 4),
                (3, 4),
                (0, 5),
                (0, 6),
                (5, 6),
            ],
        )
    }

    #[test]
    fn identity_plan_is_one_stream_per_atom() {
        let g = star();
        let dec = decompose(&g, ReductionLevel::Full);
        let plan = plan_identity(&dec.atoms);
        assert_eq!(plan.specs.len(), dec.atoms.len());
        assert_eq!(plan.members.len(), dec.atoms.len());
        assert_eq!(plan.deduped, 0);
        for (i, m) in plan.members.iter().enumerate() {
            assert_eq!(m.group, i);
            assert_eq!(m.emit_map, dec.atoms[i].mapping);
        }
    }

    #[test]
    fn canonical_plan_groups_isomorphic_atoms() {
        let g = star();
        let dec = decompose(&g, ReductionLevel::Full);
        assert!(dec.atoms.len() >= 3);
        let plan = plan_canonical(&dec.atoms, "fill-in", None);
        // All three arms are isomorphic triangles: one group.
        assert_eq!(plan.specs.len(), 1, "isomorphic atoms share one stream");
        assert_eq!(plan.deduped, dec.atoms.len() - 1);
        // Chordal groups are unkeyed (not worth storing).
        assert!(plan.specs[0].chordal);
        assert!(plan.specs[0].key.is_none());
        // Every member's emit map is a bijection onto its atom's vertices.
        for (m, atom) in plan.members.iter().zip(&dec.atoms) {
            let mapped = VertexSet::from_iter(g.n(), m.emit_map.iter().copied());
            assert_eq!(mapped, atom.vertices);
        }
    }

    #[test]
    fn canonical_plan_keys_non_chordal_groups() {
        // Two disjoint C4s (isomorphic, non-chordal) and one C5.
        let g = Graph::from_edges(
            13,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 4),
                (8, 9),
                (9, 10),
                (10, 11),
                (11, 12),
                (12, 8),
            ],
        );
        let dec = decompose(&g, ReductionLevel::Full);
        let plan = plan_canonical(&dec.atoms, "width", Some(3));
        assert_eq!(plan.specs.len(), 2, "two isomorphism classes");
        assert_eq!(plan.deduped, 1);
        for spec in &plan.specs {
            assert!(!spec.chordal);
            let key = spec.key.as_ref().expect("non-chordal groups are keyed");
            assert_eq!(key.cost_id, "width");
            assert_eq!(key.width_bound, Some(3));
        }
        assert_ne!(
            plan.specs[0].key.as_ref().unwrap().graph,
            plan.specs[1].key.as_ref().unwrap().graph,
            "C4 and C5 have different canonical keys"
        );
    }

    #[test]
    fn emit_maps_translate_canonical_edges_back() {
        let g = star();
        let dec = decompose(&g, ReductionLevel::Full);
        let plan = plan_canonical(&dec.atoms, "fill-in", None);
        // Relabeling the shared canonical graph through any member's emit
        // map must land exactly on that member's induced subgraph edges.
        for (m, atom) in plan.members.iter().zip(&dec.atoms) {
            let spec = &plan.specs[m.group];
            for (u, v) in spec.graph.edges() {
                let (ou, ov) = (m.emit_map[u as usize], m.emit_map[v as usize]);
                assert!(
                    g.has_edge(ou, ov),
                    "canonical edge ({u},{v}) maps to non-edge ({ou},{ov})"
                );
            }
            assert_eq!(spec.graph.m(), atom.graph.m());
        }
    }
}
