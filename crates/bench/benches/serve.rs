//! Service-mode benchmarks for the `mtr-serve` daemon: end-to-end
//! throughput of warm vs cold request traces and first-result latency
//! under client concurrency.
//!
//! * `serve_traffic` — wall-clock per trace of 6 requests
//!   ([`mtr_workloads::traffic`]) fanned over 1 / 4 / 16 concurrent
//!   client connections. `cold` traces are fresh graphs every sample
//!   (the shared store never helps); `warm` traces replay one cached
//!   base, so admission routes them to the warm queue and the atoms'
//!   ranked prefixes are served from the store. The headline claim —
//!   warm traffic ≥ 3× cold — reads directly off the two rows.
//! * `serve_first_result` — time from sending a request to receiving
//!   the first ranked result, measured one probe at a time while the
//!   remaining clients stream load ([`Bencher::iter_custom`], so the
//!   snapshot's `p50_ns`/`p99_ns` are true per-request percentiles).
//!
//! Snapshot with `MTR_BENCH_JSON=BENCH_serve.json cargo bench -p
//! mtr-bench --bench serve`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mtr_serve::{
    serve_ephemeral, Client, EnumerateRequest, ServerConfig, ServerHandle, TenantQuota,
};
use mtr_workloads::decomposable::gnp_with_bridges;
use mtr_workloads::traffic::{trace, TrafficMix, TrafficRequest};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

const CLIENT_COUNTS: [usize; 3] = [1, 4, 16];
const TRACE_LEN: usize = 6;
/// Traced instance size: 3 bridged blobs of 11 vertices. Big enough that
/// enumeration dominates transport, so warm-vs-cold measures the cache.
const TRACE_BLOBS: u32 = 3;
const TRACE_BLOB_N: u32 = 11;
const TRACE_TOP_K: usize = 10;

fn daemon() -> ServerHandle {
    serve_ephemeral(ServerConfig {
        workers: 4,
        // All bench clients share one tenant; the default per-tenant
        // concurrency quota (4) would refuse the 16-client rows.
        quota: TenantQuota {
            max_concurrent_sessions: 64,
            ..TenantQuota::default()
        },
        allow_remote_shutdown: false,
        ..ServerConfig::default()
    })
    .expect("bind bench daemon")
}

fn request_for(g: &mtr_graph::Graph, max_results: usize) -> EnumerateRequest {
    EnumerateRequest {
        tenant: "bench".into(),
        n: g.n(),
        edges: g.edges().collect(),
        cost: "width".into(),
        width_bound: None,
        max_results: Some(max_results),
        deadline_ms: None,
        node_budget: None,
        threads: 1,
        cache: true,
        binary: true,
    }
}

/// Plays a trace against the daemon over `clients` connections
/// (round-robin partition, one connection per client thread) and returns
/// the total number of results streamed back.
fn play_trace(addr: &str, requests: &[TrafficRequest], clients: usize) -> usize {
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                s.spawn(move || {
                    let mut client = Client::connect_tcp(addr).expect("connect");
                    let mut streamed = 0usize;
                    for r in requests.iter().skip(c).step_by(clients) {
                        let (results, _) = client
                            .enumerate(&request_for(&r.graph, TRACE_TOP_K))
                            .expect("served request");
                        streamed += results.len();
                    }
                    streamed
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client")).sum()
    })
}

/// Warm vs cold trace throughput at increasing client concurrency. The
/// cold rows consume a pre-generated pool of never-repeated traces so
/// the daemon's shared store cannot warm them across samples.
fn bench_traffic(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_traffic");
    // 20 samples per row: the warm rows are a few ms each and OS jitter
    // on a small host easily swings a 10-sample mean by tens of percent.
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(5));

    let handle = daemon();
    let addr = handle.local_addr().expect("tcp daemon").to_string();

    // Every sample of every cold row takes the next unseen trace (seeds
    // rotate inside each trace too, so nothing ever repeats). Sized so
    // all rows' samples together cannot wrap the pool — a wrapped trace
    // would silently come back warm.
    let cold_pool: Vec<Vec<TrafficRequest>> = (0..128)
        .map(|i| {
            trace(
                TRACE_LEN,
                TRACE_BLOBS,
                TRACE_BLOB_N,
                TrafficMix::all_cold(),
                0xC01D + 101 * i,
            )
        })
        .collect();
    let next_cold = AtomicU64::new(0);

    // The warm trace replays one base; serve it once so the pool is hot.
    let warm = trace(
        TRACE_LEN,
        TRACE_BLOBS,
        TRACE_BLOB_N,
        TrafficMix::all_warm(),
        0x3A7,
    );
    play_trace(&addr, &warm[..1], 1);

    for clients in CLIENT_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("cold", format!("{clients}clients")),
            &clients,
            |b, &clients| {
                b.iter_custom(|_| {
                    let i = next_cold.fetch_add(1, Ordering::Relaxed) as usize;
                    let requests = &cold_pool[i % cold_pool.len()];
                    let t = Instant::now();
                    play_trace(&addr, requests, clients);
                    t.elapsed()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("warm", format!("{clients}clients")),
            &clients,
            |b, &clients| b.iter(|| play_trace(&addr, &warm, clients)),
        );
    }
    group.finish();
    handle.shutdown();
}

/// First-result latency: one timed probe request per sample while the
/// other `clients - 1` connections stream competing load. Samples are
/// individual measurements, so the snapshot's p50/p99 are per-request
/// latency percentiles.
fn bench_first_result(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_first_result");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(10));

    let handle = daemon();
    let addr = handle.local_addr().expect("tcp daemon").to_string();

    let load_graph = gnp_with_bridges(2, 6, 0.35, 0x10AD);
    let warm_graph = gnp_with_bridges(2, 6, 0.35, 0x3A7_0002);
    // Pre-warm the probe graph and the load graph.
    play_trace(
        &addr,
        &[
            synthetic_request(0, warm_graph.clone()),
            synthetic_request(1, load_graph.clone()),
        ],
        1,
    );
    let next_cold_seed = AtomicU64::new(0xF005_BA11);

    for clients in CLIENT_COUNTS {
        for mode in ["cold", "warm"] {
            group.bench_with_input(
                BenchmarkId::new(mode, format!("{clients}clients")),
                &clients,
                |b, &clients| {
                    b.iter_custom(|_| {
                        let probe_graph = if mode == "warm" {
                            warm_graph.clone()
                        } else {
                            let seed = next_cold_seed.fetch_add(1, Ordering::Relaxed);
                            gnp_with_bridges(2, 6, 0.35, seed)
                        };
                        std::thread::scope(|s| {
                            for _ in 1..clients {
                                let addr = &addr;
                                let g = &load_graph;
                                s.spawn(move || {
                                    let mut cl = Client::connect_tcp(addr).expect("connect load");
                                    cl.enumerate(&request_for(g, 5)).expect("load request");
                                });
                            }
                            let mut cl = Client::connect_tcp(&addr).expect("connect probe");
                            let req = request_for(&probe_graph, 3);
                            let t = Instant::now();
                            let mut first = None;
                            cl.enumerate_streaming(&req, |_| {
                                first.get_or_insert_with(|| t.elapsed());
                            })
                            .expect("probe request");
                            first.expect("probe streamed at least one result")
                        })
                    })
                },
            );
        }
    }
    group.finish();
    handle.shutdown();
}

fn synthetic_request(index: usize, graph: mtr_graph::Graph) -> TrafficRequest {
    TrafficRequest {
        index,
        graph,
        kind: mtr_workloads::traffic::TrafficKind::Fresh,
        base: index,
    }
}

criterion_group!(benches, bench_traffic, bench_first_result);
criterion_main!(benches);
