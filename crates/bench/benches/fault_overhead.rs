//! Fault-injection overhead: `mtr-fault` failpoints sit on the cache's
//! disk path, the pool's task dispatch, and the daemon's session entry,
//! so the disabled cost must be measured, not assumed.
//!
//! * `fault_overhead` — the `ranked_first_10_results` workload (same
//!   instances as the `enumeration` and `obs_overhead` benches, so rows
//!   compare directly against `BENCH_baseline.json` and
//!   `BENCH_obs.json`) with the registry `disarmed` (every check is one
//!   relaxed atomic load — the zero-cost budget) and with an `armed`
//!   unrelated point (the hit points stay cold but the global gate is
//!   up, so every check takes the registry lock — the worst case a
//!   forgotten `--fault` flag can cause).
//! * `check_disarmed` — the raw cost of `mtr_fault::check` with nothing
//!   armed, in a tight loop (the per-call price on hot paths).
//!
//! Snapshot with `MTR_BENCH_JSON=BENCH_fault.json cargo bench -p
//! mtr-bench --bench fault_overhead`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mtr_core::cost::Width;
use mtr_core::{Enumerate, Preprocessed};
use mtr_graph::Graph;
use mtr_workloads::random::gnp_connected;
use mtr_workloads::structured::{grid, mycielski};
use std::time::Duration;

fn instances() -> Vec<(&'static str, Graph)> {
    vec![
        ("grid4x4", grid(4, 4)),
        ("myciel4", mycielski(4)),
        ("gnp20_020", gnp_connected(20, 0.20, 7)),
    ]
}

/// The baseline workload with the failpoint registry disarmed (the
/// production configuration) and with an unrelated point armed (gate up,
/// hit points cold).
fn bench_fault_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_overhead");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for mode in ["disarmed", "armed"] {
        match mode {
            // An armed point no workload ever hits: the global gate is
            // raised, so every check pays the slow path's registry
            // probe without any fault actually firing.
            "armed" => mtr_fault::configure("bench.unrelated", mtr_fault::Outcome::Error),
            _ => mtr_fault::clear_all(),
        }
        for (name, g) in instances() {
            let pre = Preprocessed::new(&g);
            group.bench_with_input(BenchmarkId::new(mode, name), &pre, |b, pre| {
                b.iter(|| {
                    Enumerate::with(pre)
                        .cost(&Width)
                        .max_results(10)
                        .run()
                        .expect("session is well-configured")
                        .results
                        .len()
                })
            });
        }
    }
    mtr_fault::clear_all();
    group.finish();
}

/// The raw per-call cost of a disarmed check — the exact expression on
/// the pool/cache/serve hot paths.
fn bench_check_disarmed(c: &mut Criterion) {
    let mut group = c.benchmark_group("check_disarmed");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    mtr_fault::clear_all();
    group.bench_with_input(BenchmarkId::new("check", "x1000"), &(), |b, ()| {
        b.iter(|| {
            let mut ok = 0u32;
            for _ in 0..1000 {
                if mtr_fault::check("pool.task").is_ok() {
                    ok += 1;
                }
            }
            ok
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fault_overhead, bench_check_disarmed);
criterion_main!(benches);
