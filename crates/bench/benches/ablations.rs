//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * incremental cost combination (`BagCost::combine` overrides) vs the
//!   generic assemble-the-bag-list fallback;
//! * LB-Triang vs MCS-M as the baseline's black-box minimal triangulator;
//! * reusing one `Preprocessed` across many constrained `MinTriang` calls vs
//!   rebuilding it each time (the paper's shared-initialization decision).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mtr_chordal::{lb_triang_identity, mcs_m};
use mtr_core::cost::{BagCost, CostValue, Width};
use mtr_core::{min_triangulation, Enumerate, Preprocessed};
use mtr_graph::{Graph, VertexSet};
use mtr_workloads::random::gnp_connected;
use mtr_workloads::structured::grid;
use std::time::Duration;

/// Width evaluated without the incremental `combine` override: forces the
/// DP to assemble every candidate's bag list.
struct NaiveWidth;

impl BagCost for NaiveWidth {
    fn name(&self) -> String {
        "width-naive".into()
    }
    fn cost_of_bags(&self, g: &Graph, scope: &VertexSet, bags: &[VertexSet]) -> CostValue {
        Width.cost_of_bags(g, scope, bags)
    }
}

fn instances() -> Vec<(&'static str, Graph)> {
    vec![
        ("grid4x4", grid(4, 4)),
        ("gnp20_020", gnp_connected(20, 0.20, 7)),
    ]
}

fn bench_incremental_vs_naive_combine(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_combine");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for (name, g) in instances() {
        let pre = Preprocessed::new(&g);
        group.bench_with_input(BenchmarkId::new("incremental", name), &pre, |b, pre| {
            b.iter(|| min_triangulation(pre, &Width))
        });
        group.bench_with_input(BenchmarkId::new("naive", name), &pre, |b, pre| {
            b.iter(|| min_triangulation(pre, &NaiveWidth))
        });
    }
    group.finish();
}

fn bench_triangulator_choice(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_black_box_triangulator");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for (name, g) in instances() {
        group.bench_with_input(BenchmarkId::new("lb_triang", name), &g, |b, g| {
            b.iter(|| lb_triang_identity(g))
        });
        group.bench_with_input(BenchmarkId::new("mcs_m", name), &g, |b, g| {
            b.iter(|| mcs_m(g))
        });
    }
    group.finish();
}

fn bench_shared_vs_rebuilt_initialization(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_shared_initialization");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for (name, g) in instances() {
        // Shared: one preprocessing pass reused by the session for 5 results.
        group.bench_with_input(BenchmarkId::new("shared", name), &g, |b, g| {
            b.iter(|| {
                Enumerate::on(g)
                    .cost(&Width)
                    .max_results(5)
                    .run()
                    .expect("session is well-configured")
                    .results
                    .len()
            })
        });
        // Rebuilt: preprocessing recomputed before every result (what the
        // verbatim pseudocode of the paper would do).
        group.bench_with_input(BenchmarkId::new("rebuilt", name), &g, |b, g| {
            b.iter(|| {
                let mut produced = 0usize;
                for _ in 0..5 {
                    let run = Enumerate::on(g)
                        .cost(&Width)
                        .max_results(produced + 1)
                        .run()
                        .expect("session is well-configured");
                    produced += (run.results.len() > produced) as usize;
                }
                produced
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_incremental_vs_naive_combine,
    bench_triangulator_choice,
    bench_shared_vs_rebuilt_initialization
);
criterion_main!(benches);
