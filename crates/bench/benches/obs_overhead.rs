//! Observability overhead: the `mtr-obs` hooks are on every hot path, so
//! their cost must be measured, not assumed.
//!
//! * `obs_overhead` — the `ranked_first_10_results` workload (same
//!   instances as the `enumeration` bench, so rows compare directly
//!   against `BENCH_baseline.json`) at each instrumentation level:
//!   `off` (every hook is one relaxed atomic load — the ≤2% budget),
//!   `metrics` (counters and histograms live — the ≤10% budget), and
//!   `trace` (spans recorded to the bounded ring on top of metrics).
//! * `metrics_frame` — round-trip latency of the daemon's `metrics`
//!   introspection frame over a live connection, with registry and
//!   tenant table populated by prior traffic.
//!
//! Snapshot with `MTR_BENCH_JSON=BENCH_obs.json cargo bench -p
//! mtr-bench --bench obs_overhead`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mtr_core::cost::Width;
use mtr_core::{Enumerate, Preprocessed};
use mtr_graph::Graph;
use mtr_serve::{serve_ephemeral, Client, EnumerateRequest, ServerConfig};
use mtr_workloads::random::gnp_connected;
use mtr_workloads::structured::{grid, mycielski};
use std::time::Duration;

fn instances() -> Vec<(&'static str, Graph)> {
    vec![
        ("grid4x4", grid(4, 4)),
        ("myciel4", mycielski(4)),
        ("gnp20_020", gnp_connected(20, 0.20, 7)),
    ]
}

/// The baseline workload of `BENCH_baseline.json`'s
/// `ranked_first_10_results` suite, repeated at every obs level.
fn bench_levels(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for (mode, level) in [
        ("off", mtr_obs::Level::Off),
        ("metrics", mtr_obs::Level::Metrics),
        ("trace", mtr_obs::Level::Trace),
    ] {
        mtr_obs::set_level(level);
        for (name, g) in instances() {
            let pre = Preprocessed::new(&g);
            group.bench_with_input(BenchmarkId::new(mode, name), &pre, |b, pre| {
                b.iter(|| {
                    Enumerate::with(pre)
                        .cost(&Width)
                        .max_results(10)
                        .run()
                        .expect("session is well-configured")
                        .results
                        .len()
                })
            });
        }
    }
    mtr_obs::set_level(mtr_obs::Level::Off);
    group.finish();
}

/// Round-trip latency of the `metrics` frame against a live daemon whose
/// registry, store, and tenant table already hold traffic.
fn bench_metrics_frame(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics_frame");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));

    let handle = serve_ephemeral(ServerConfig {
        workers: 2,
        allow_remote_shutdown: false,
        ..ServerConfig::default()
    })
    .expect("bind bench daemon");
    let addr = handle.local_addr().expect("tcp daemon").to_string();

    // Populate every section of the frame: a cached request (store
    // traffic + tenant row) served twice (cold, then warm).
    let g = mtr_workloads::decomposable::gnp_with_bridges(2, 6, 0.35, 42);
    let req = EnumerateRequest {
        tenant: "bench".into(),
        n: g.n(),
        edges: g.edges().collect(),
        cost: "fill".into(),
        width_bound: None,
        max_results: Some(5),
        deadline_ms: None,
        node_budget: None,
        threads: 1,
        cache: true,
        binary: false,
    };
    let mut warmup = Client::connect_tcp(&addr).expect("connect");
    warmup.enumerate(&req).expect("cold warm-up request");
    warmup.enumerate(&req).expect("warm warm-up request");

    let mut client = Client::connect_tcp(&addr).expect("connect");
    group.bench_with_input(BenchmarkId::from_parameter("roundtrip"), &(), |b, ()| {
        b.iter(|| client.metrics().expect("metrics frame"))
    });
    group.finish();

    drop(client);
    drop(warmup);
    handle.shutdown();
    mtr_obs::set_level(mtr_obs::Level::Off);
}

criterion_group!(benches, bench_levels, bench_metrics_frame);
criterion_main!(benches);
