//! Ablation benchmarks for symmetry-aware search-space collapse, on
//! instances with large automorphism groups (cycle C12, grid4x4, myciel4,
//! and the decomposable star-of-cliques) plus a random control whose group
//! is trivial (the aut-probe overhead must disappear into noise there).
//!
//! Two questions, two row families:
//!
//! * **Probe/sharing overhead** — raw ranked-first-10 under
//!   `SymmetryPolicy::Full` (the default) vs `Off`. Full mode emits the
//!   identical stream; the difference is the one-time automorphism probe
//!   plus the orbit-canonical bookkeeping.
//! * **Quotient speedup** — "give me 10 *meaningfully different* results".
//!   `modulo_distinct10` asks the engine (`--modulo-symmetry`,
//!   `max_results(10)`), which drops orbit-duplicate children before their
//!   eager re-optimization. `client_distinct10` is what a consumer must do
//!   without it: stream the baseline enumeration and deduplicate fill sets
//!   by automorphism orbit until 10 distinct orbits have been seen. Same
//!   deliverable, so the ratio is the honest price of post-hoc dedup.
//!
//! Each instance logs its discovered group order and the replayed/merged
//! counters once, so the snapshot note can record how often the machinery
//! actually fires.
//!
//! Snapshot with `MTR_BENCH_JSON=BENCH_symmetry.json cargo bench -p
//! mtr-bench --bench symmetry`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mtr_core::cost::FillIn;
use mtr_core::{Enumerate, SymmetryPolicy};
use mtr_graph::{Graph, Vertex};
use mtr_workloads::decomposable::star_of_cliques;
use mtr_workloads::random::gnp_connected;
use mtr_workloads::structured::{grid, mycielski};
use std::collections::HashSet;
use std::ops::ControlFlow;
use std::time::Duration;

fn cycle(n: u32) -> Graph {
    let edges: Vec<(u32, u32)> = (0..n).map(|u| (u, (u + 1) % n)).collect();
    Graph::from_edges(n, &edges)
}

/// The 3-dimensional hypercube Q3: |Aut| = 48, and the cheap
/// triangulations concentrate in a few large orbits.
fn hypercube3() -> Graph {
    let mut edges = vec![];
    for u in 0u32..8 {
        for b in 0..3 {
            let v = u ^ (1 << b);
            if u < v {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(8, &edges)
}

/// The hexagonal prism C6 × K2: |Aut| = 24, many orbit-duplicated
/// low-cost triangulations.
fn prism(n: u32) -> Graph {
    let mut edges: Vec<(u32, u32)> = (0..n).map(|u| (u, (u + 1) % n)).collect();
    edges.extend((0..n).map(|u| (n + u, n + (u + 1) % n)));
    edges.extend((0..n).map(|u| (u, n + u)));
    Graph::from_edges(2 * n, &edges)
}

/// The Möbius ladder M_n: C_n plus the n/2 antipodal rungs. Few
/// triangulation orbits, so the baseline stream chews through many
/// orbit-duplicates before it has seen ten distinct ones.
fn mobius_ladder(n: u32) -> Graph {
    let mut edges: Vec<(u32, u32)> = (0..n).map(|u| (u, (u + 1) % n)).collect();
    edges.extend((0..n / 2).map(|u| (u, u + n / 2)));
    Graph::from_edges(n, &edges)
}

/// The Paley graph on GF(q), q prime: u ~ v iff v - u is a quadratic
/// residue. Self-complementary and arc-transitive; its minimal
/// triangulations fall into a handful of large orbits.
fn paley(q: u32) -> Graph {
    let residues: HashSet<u32> = (1..q).map(|x| (x * x) % q).collect();
    let mut edges = vec![];
    for u in 0..q {
        for v in u + 1..q {
            if residues.contains(&(v - u)) || residues.contains(&(q - (v - u))) {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(q, &edges)
}

fn instances() -> Vec<(&'static str, Graph)> {
    vec![
        ("cycle12", cycle(12)),
        ("grid4x4", grid(4, 4)),
        ("myciel4", mycielski(4)),
        ("q3", hypercube3()),
        ("prism6", prism(6)),
        ("mobius14", mobius_ladder(14)),
        ("paley13", paley(13)),
        ("star_of_cliques", star_of_cliques(4, 4, 2)),
        // Control: a seeded random graph with a trivial automorphism
        // group, so full mode pays exactly one failed probe.
        ("gnp20_020", gnp_connected(20, 0.20, 7)),
    ]
}

fn ranked_first_10(g: &Graph, symmetry: SymmetryPolicy) -> usize {
    Enumerate::on(g)
        .cost(&FillIn)
        .max_results(10)
        .symmetry(symmetry)
        .run()
        .expect("session is well-configured")
        .results
        .len()
}

/// Canonical representative of a fill set's orbit under `generators` —
/// the client-side dedup a consumer needs to get "distinct up to
/// symmetry" out of the baseline stream.
fn canonical_fill(generators: &[Vec<Vertex>], fill: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let mut start = fill.to_vec();
    start.sort_unstable();
    let mut best = start.clone();
    let mut seen: HashSet<Vec<(u32, u32)>> = HashSet::new();
    seen.insert(start.clone());
    let mut frontier = vec![start];
    while let Some(cur) = frontier.pop() {
        for sigma in generators {
            let mut img: Vec<(u32, u32)> = cur
                .iter()
                .map(|&(u, v)| {
                    let (a, b) = (sigma[u as usize], sigma[v as usize]);
                    (a.min(b), a.max(b))
                })
                .collect();
            img.sort_unstable();
            if seen.insert(img.clone()) {
                if img < best {
                    best = img.clone();
                }
                frontier.push(img);
            }
        }
    }
    best
}

/// Ten orbit-distinct results the hard way: stream the baseline
/// enumeration and deduplicate client-side.
fn client_distinct_10(g: &Graph) -> usize {
    let generators = g.automorphisms().generators().to_vec();
    let mut orbits: HashSet<Vec<(u32, u32)>> = HashSet::new();
    Enumerate::on(g)
        .cost(&FillIn)
        .symmetry(SymmetryPolicy::Off)
        .drive(|r| {
            let fill = {
                let mut f = g.fill_edges_of(&r.triangulation);
                f.sort_unstable();
                f
            };
            orbits.insert(canonical_fill(&generators, &fill));
            if orbits.len() >= 10 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        })
        .expect("session is well-configured");
    orbits.len()
}

/// Ten orbit-distinct results the engine's way.
fn modulo_distinct_10(g: &Graph) -> usize {
    ranked_first_10(g, SymmetryPolicy::ModuloSymmetry)
}

fn bench_symmetry(c: &mut Criterion) {
    let mut group = c.benchmark_group("symmetry_ranked_first_10");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for (name, g) in instances() {
        // One diagnostic run per (instance, mode): group order and how much
        // the orbit machinery fired, for the snapshot's note.
        for (mode, policy) in [
            ("full", SymmetryPolicy::Full),
            ("modulo", SymmetryPolicy::ModuloSymmetry),
        ] {
            let run = Enumerate::on(&g)
                .cost(&FillIn)
                .max_results(10)
                .symmetry(policy)
                .run()
                .expect("session is well-configured");
            eprintln!(
                "{name}/{mode}: |Aut|={} replayed={} merged={} results={} nodes_explored={}",
                run.stats.symmetry_group_order,
                run.stats.subproblems_replayed,
                run.stats.orbits_merged,
                run.results.len(),
                run.stats.nodes_explored,
            );
        }
        // The trivial-group control's full/off gap is the ≤5% overhead
        // criterion, and host jitter on a ~200 ms workload easily exceeds
        // that — give its rows three times the samples so the medians
        // converge.
        if name == "gnp20_020" {
            group
                .sample_size(30)
                .measurement_time(Duration::from_secs(9));
        }
        // Probe/sharing overhead rows: identical output, default vs off.
        for (mode, policy) in [("full", SymmetryPolicy::Full), ("off", SymmetryPolicy::Off)] {
            group.bench_with_input(BenchmarkId::new(mode, name), &g, |b, g| {
                b.iter(|| ranked_first_10(g, policy))
            });
        }
        // Quotient rows: same deliverable (10 orbit-distinct results),
        // engine quotient vs client-side dedup of the baseline stream.
        group.bench_with_input(BenchmarkId::new("modulo_distinct10", name), &g, |b, g| {
            b.iter(|| modulo_distinct_10(g))
        });
        group.bench_with_input(BenchmarkId::new("client_distinct10", name), &g, |b, g| {
            b.iter(|| client_distinct_10(g))
        });
    }
    group.finish();

    // The probe in isolation, for the two instances where its relative
    // cost is the question: the trivial-group control (the full/off gap
    // there must be pure noise — this row shows the actual probe cost is
    // orders of magnitude below it) and the star of cliques, whose tiny
    // workload makes its huge-group probe the entire full/off gap.
    let mut probe = c.benchmark_group("symmetry_probe");
    probe
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for (name, g) in instances() {
        if name != "gnp20_020" && name != "star_of_cliques" {
            continue;
        }
        probe.bench_with_input(BenchmarkId::new("automorphisms", name), &g, |b, g| {
            b.iter(|| g.automorphisms().order())
        });
    }
    probe.finish();
}

criterion_group!(benches, bench_symmetry);
criterion_main!(benches);
