//! Criterion micro-benchmarks for the initialization pipeline: minimal
//! separator enumeration, PMC enumeration, and the full `Preprocessed`
//! construction (the paper's "init" column).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mtr_core::Preprocessed;
use mtr_graph::Graph;
use mtr_pmc::potential_maximal_cliques;
use mtr_separators::minimal_separators;
use mtr_workloads::random::gnp_connected;
use mtr_workloads::structured::{grid, mycielski};
use std::time::Duration;

fn instances() -> Vec<(&'static str, Graph)> {
    vec![
        ("paper", mtr_graph::paper_example_graph()),
        ("grid4x4", grid(4, 4)),
        ("myciel4", mycielski(4)),
        ("gnp20_020", gnp_connected(20, 0.20, 7)),
        ("gnp25_015", gnp_connected(25, 0.15, 7)),
    ]
}

fn bench_minseps(c: &mut Criterion) {
    let mut group = c.benchmark_group("minimal_separators");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for (name, g) in instances() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            b.iter(|| minimal_separators(g))
        });
    }
    group.finish();
}

fn bench_pmcs(c: &mut Criterion) {
    let mut group = c.benchmark_group("potential_maximal_cliques");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for (name, g) in instances() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            b.iter(|| potential_maximal_cliques(g))
        });
    }
    group.finish();
}

fn bench_preprocess(c: &mut Criterion) {
    let mut group = c.benchmark_group("preprocess_full");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for (name, g) in instances() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            b.iter(|| Preprocessed::new(g))
        });
    }
    group.finish();
}

fn bench_preprocess_bounded(c: &mut Criterion) {
    let mut group = c.benchmark_group("preprocess_bounded_width4");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for (name, g) in instances() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            b.iter(|| Preprocessed::new_bounded(g, 4))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_minseps,
    bench_pmcs,
    bench_preprocess,
    bench_preprocess_bounded
);
criterion_main!(benches);
