//! Benchmarks for the `mtr-reduce` subsystem: end-to-end ranked
//! enumeration (first 10 results, preprocessing included) with reduction
//! off vs. full, on decomposable instances (where the atom decomposition
//! should win big) and on non-decomposable control instances (where the
//! decomposition attempt must be near-free); plus the decomposition step
//! itself.
//!
//! Snapshot with `MTR_BENCH_JSON=BENCH_reduce.json cargo bench -p
//! mtr-bench --bench reduction`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mtr_core::cost::Width;
use mtr_core::Enumerate;
use mtr_graph::Graph;
use mtr_reduce::{decompose, EnumerateReduceExt, ReductionLevel};
use mtr_workloads::decomposable::{glued_grids, gnp_with_bridges, star_of_cliques};
use mtr_workloads::random::gnp_connected;
use mtr_workloads::structured::{grid, mycielski};
use std::time::Duration;

/// Instances whose clique-separator structure the reduction can exploit.
fn decomposable_instances() -> Vec<(&'static str, Graph)> {
    vec![
        ("glued_grids4x4", glued_grids(4, 4, 2)),
        ("star_of_cliques4x4", star_of_cliques(4, 4, 2)),
        ("gnp_bridges3x12", gnp_with_bridges(3, 12, 0.25, 800)),
    ]
}

/// Control instances with no useful decomposition: `--reduce full` must
/// not regress these beyond the (cheap) decomposition attempt.
fn control_instances() -> Vec<(&'static str, Graph)> {
    vec![
        ("grid4x4", grid(4, 4)),
        ("myciel4", mycielski(4)),
        ("gnp20_020", gnp_connected(20, 0.20, 7)),
    ]
}

fn ranked_first_10(g: &Graph, level: ReductionLevel) -> usize {
    Enumerate::on(g)
        .cost(&Width)
        .max_results(10)
        .reduce(level)
        .run()
        .expect("session is well-configured")
        .results
        .len()
}

fn bench_ranked_first_10(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduction_ranked_first_10");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let mut all = decomposable_instances();
    all.extend(control_instances());
    for (name, g) in all {
        group.bench_with_input(BenchmarkId::new("off", name), &g, |b, g| {
            b.iter(|| ranked_first_10(g, ReductionLevel::Off))
        });
        group.bench_with_input(BenchmarkId::new("full", name), &g, |b, g| {
            b.iter(|| ranked_first_10(g, ReductionLevel::Full))
        });
    }
    group.finish();
}

fn bench_decompose(c: &mut Criterion) {
    let mut group = c.benchmark_group("atom_decomposition");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for (name, g) in decomposable_instances() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            b.iter(|| decompose(g, ReductionLevel::Full).atoms.len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ranked_first_10, bench_decompose);
criterion_main!(benches);
