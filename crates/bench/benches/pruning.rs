//! Ablation benchmarks for incumbent-bounded Lawler pruning: end-to-end
//! ranked enumeration (first 10 results, preprocessing included) with the
//! default `PruningPolicy::Incumbent` vs `--no-prune`, on the same
//! non-decomposable instances the enumeration benches use. Pruning is
//! exact — both rows emit the identical ranked stream — so the entire
//! difference is deferred constrained re-optimizations.
//!
//! FillIn is the primary cost (additive combine, informative fill lower
//! bounds); Width rows ride along to cover the max-combine path. Each
//! instance also logs its `nodes_pruned` / `nodes_explored` counters once,
//! so the snapshot note can record how often the bound actually fires.
//!
//! Snapshot with `MTR_BENCH_JSON=BENCH_pruning.json cargo bench -p
//! mtr-bench --bench pruning`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mtr_core::cost::{FillIn, Width};
use mtr_core::{BagCost, Enumerate, PruningPolicy};
use mtr_graph::Graph;
use mtr_workloads::random::gnp_connected;
use mtr_workloads::structured::{grid, mycielski};
use std::time::Duration;

fn instances() -> Vec<(&'static str, Graph)> {
    vec![
        ("gnp20_020", gnp_connected(20, 0.20, 7)),
        ("myciel4", mycielski(4)),
        ("grid4x4", grid(4, 4)),
    ]
}

fn ranked_first_10(g: &Graph, cost: &(dyn BagCost + Sync), pruning: PruningPolicy) -> usize {
    Enumerate::on(g)
        .cost(cost)
        .max_results(10)
        .pruning(pruning)
        .run()
        .expect("session is well-configured")
        .results
        .len()
}

fn bench_pruning(c: &mut Criterion) {
    let mut group = c.benchmark_group("pruning_ranked_first_10");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for (name, g) in instances() {
        for (cost_name, cost) in [
            ("fill", &FillIn as &(dyn BagCost + Sync)),
            ("width", &Width),
        ] {
            // One diagnostic run per (instance, cost): how much work the
            // incumbent bound defers, for the snapshot's note.
            let run = Enumerate::on(&g)
                .cost(cost)
                .max_results(10)
                .run()
                .expect("session is well-configured");
            eprintln!(
                "{name}/{cost_name}: nodes_pruned={} nodes_explored={} incumbent={:?}",
                run.stats.nodes_pruned, run.stats.nodes_explored, run.stats.incumbent_cost
            );
            for (mode, policy) in [
                ("pruned", PruningPolicy::Incumbent),
                ("no_prune", PruningPolicy::Off),
            ] {
                group.bench_with_input(
                    BenchmarkId::new(&format!("{cost_name}_{mode}"), name),
                    &g,
                    |b, g| b.iter(|| ranked_first_10(g, cost, policy)),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pruning);
criterion_main!(benches);
