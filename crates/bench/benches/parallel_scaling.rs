//! Thread-scaling benchmarks for the work-stealing execution layer:
//! end-to-end ranked enumeration (first 10 results, preprocessing
//! included) at 1, 2 and 4 worker threads.
//!
//! Two engine configurations are measured:
//!
//! * decomposable instances with `--reduce full` — the factorized engine
//!   preprocesses atoms and advances per-atom streams on the pool, so on a
//!   multi-core host the wall clock should shrink roughly with the number
//!   of (large) atoms until it is bound by the largest atom;
//! * a non-decomposable control on the direct engine — the pool
//!   parallelizes the Lawler–Murty partition expansions instead.
//!
//! The threads = 1 rows double as the no-regression guard: the sequential
//! path bypasses the pool entirely, so they must stay within noise of the
//! `BENCH_reduce.json` snapshot.
//!
//! Snapshot with `MTR_BENCH_JSON=BENCH_parallel.json cargo bench -p
//! mtr-bench --bench parallel_scaling`. Interpret speedups against the
//! recording host's core count: on a single-core container every
//! `threads > 1` row degenerates to (at best) the sequential time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mtr_core::cost::Width;
use mtr_core::Enumerate;
use mtr_graph::Graph;
use mtr_reduce::{EnumerateReduceExt, ReductionLevel};
use mtr_workloads::decomposable::{glued_grids, gnp_with_bridges};
use mtr_workloads::structured::grid;
use std::time::Duration;

/// `(name, graph, reduction level)` — the decomposable instances exercise
/// the factorized per-atom parallelism, the control the direct engine.
fn instances() -> Vec<(&'static str, Graph, ReductionLevel)> {
    vec![
        ("glued_grids4x4", glued_grids(4, 4, 2), ReductionLevel::Full),
        (
            "gnp_bridges3x12",
            gnp_with_bridges(3, 12, 0.25, 800),
            ReductionLevel::Full,
        ),
        ("grid4x4_control", grid(4, 4), ReductionLevel::Off),
    ]
}

fn ranked_first_10(g: &Graph, level: ReductionLevel, threads: usize) -> usize {
    Enumerate::on(g)
        .cost(&Width)
        .threads(threads)
        .max_results(10)
        .reduce(level)
        .run()
        .expect("session is well-configured")
        .results
        .len()
}

fn bench_parallel_scaling(c: &mut Criterion) {
    // Thread-scaling numbers are only meaningful relative to the recording
    // host's width: warn loudly (and record `host_parallelism` in the
    // snapshot) when the 2- and 4-thread rows cannot physically speed up.
    mtr_bench::warn_if_oversubscribed(4);
    let mut group = c.benchmark_group("parallel_scaling_ranked_first_10");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for (name, g, level) in instances() {
        for threads in [1usize, 2, 4] {
            group.bench_with_input(BenchmarkId::new(name, threads), &g, |b, g| {
                b.iter(|| ranked_first_10(g, level, threads))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_scaling);
criterion_main!(benches);
