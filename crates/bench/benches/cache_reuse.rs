//! Benchmarks for the content-addressed atom cache (`mtr-cache`):
//! ranked-first-10 enumeration with reduction on, comparing
//!
//! * `nocache` — per-atom streams rebuilt from scratch (the pre-cache
//!   behavior, intra-run dedup off);
//! * `cold`    — caching on with a fresh store per iteration: pays
//!   canonicalization, gains intra-run dedup of isomorphic atoms, and
//!   publishes its prefixes;
//! * `warm`    — caching on against a pre-warmed shared store: per-atom
//!   preprocessing and ranked prefixes are served from the cache.
//!
//! The `evolving` group measures the flagship cross-session scenario — a
//! sweep over every snapshot of an edit sequence — and the
//! `cache_overhead` group checks that enabling the cache on
//! non-decomposable controls costs no more than noise.
//!
//! Snapshot with `MTR_BENCH_JSON=BENCH_cache.json cargo bench -p
//! mtr-bench --bench cache_reuse`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mtr_cache::AtomStore;
use mtr_core::cost::Width;
use mtr_core::Enumerate;
use mtr_graph::Graph;
use mtr_reduce::{EnumerateReduceExt, ReductionLevel};
use mtr_workloads::decomposable::{evolving_sequence, glued_grids, star_of_cliques};
use mtr_workloads::structured::{grid, mycielski, petersen};
use std::sync::Arc;
use std::time::Duration;

fn ranked_first_10(g: &Graph, store: Option<Arc<AtomStore>>) -> usize {
    let session = Enumerate::on(g)
        .cost(&Width)
        .max_results(10)
        .reduce(ReductionLevel::Full);
    let session = match store {
        Some(store) => session.store(store),
        None => session,
    };
    session
        .run()
        .expect("session is well-configured")
        .results
        .len()
}

fn fresh_store() -> Arc<AtomStore> {
    AtomStore::in_memory(64 << 20)
}

/// Instances whose atoms the cache can dedup and reuse.
fn decomposable_instances() -> Vec<(&'static str, Graph)> {
    vec![
        ("star_of_cliques4x4", star_of_cliques(4, 4, 2)),
        ("glued_grids4x4", glued_grids(4, 4, 2)),
    ]
}

fn bench_cache_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_reuse_first_10");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for (name, g) in decomposable_instances() {
        group.bench_with_input(BenchmarkId::new("nocache", name), &g, |b, g| {
            b.iter(|| ranked_first_10(g, None))
        });
        group.bench_with_input(BenchmarkId::new("cold", name), &g, |b, g| {
            b.iter(|| ranked_first_10(g, Some(fresh_store())))
        });
        let warm = fresh_store();
        ranked_first_10(&g, Some(warm.clone()));
        group.bench_with_input(BenchmarkId::new("warm", name), &g, |b, g| {
            b.iter(|| ranked_first_10(g, Some(warm.clone())))
        });
    }
    group.finish();
}

/// The cross-session scenario: enumerate every snapshot of an evolving
/// graph. Cold rebuilds a store per sweep (each snapshot still reuses the
/// previous snapshots' atoms within the sweep); warm has seen it all.
fn bench_evolving(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_reuse_evolving");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let steps = evolving_sequence(3, 12, 0.3, 4, 900);
    let sweep = |store: Arc<AtomStore>| -> usize {
        steps
            .iter()
            .map(|g| ranked_first_10(g, Some(store.clone())))
            .sum()
    };
    group.bench_with_input(
        BenchmarkId::new("nocache", "evolving3x12"),
        &steps,
        |b, steps| {
            b.iter(|| {
                steps
                    .iter()
                    .map(|g| ranked_first_10(g, None))
                    .sum::<usize>()
            })
        },
    );
    group.bench_with_input(BenchmarkId::new("cold", "evolving3x12"), &steps, |b, _| {
        b.iter(|| sweep(fresh_store()))
    });
    let warm = fresh_store();
    sweep(warm.clone());
    group.bench_with_input(BenchmarkId::new("warm", "evolving3x12"), &steps, |b, _| {
        b.iter(|| sweep(warm.clone()))
    });
    group.finish();
}

/// Non-decomposable controls (single atom, so reduction falls back to the
/// direct engine): caching must cost ≤ noise. Decomposable instances pay a
/// one-time canonical-relabeling effect on *cold* runs instead — the PMC
/// machinery is vertex-order sensitive, so enumerating an atom in
/// canonical labeling can run faster or slower than atom-local order
/// (observed ±20% on gnp blobs) until the prefix is published; warm runs
/// skip that work entirely.
fn bench_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_overhead_first_10");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for (name, g) in [
        ("grid4x4", grid(4, 4)),
        ("myciel4", mycielski(4)),
        ("petersen", petersen()),
    ] {
        group.bench_with_input(BenchmarkId::new("off", name), &g, |b, g| {
            b.iter(|| ranked_first_10(g, None))
        });
        group.bench_with_input(BenchmarkId::new("on", name), &g, |b, g| {
            b.iter(|| ranked_first_10(g, Some(fresh_store())))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cache_reuse, bench_evolving, bench_overhead);
criterion_main!(benches);
