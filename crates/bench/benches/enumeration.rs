//! Criterion micro-benchmarks for the enumeration itself: the per-result
//! delay of `RankedTriang` (the paper's "delay no init" column), the CKK
//! baseline's per-result cost, and single `MinTriang` invocations with and
//! without compiled constraints.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mtr_core::cost::{Constrained, Constraints, FillIn, Width};
use mtr_core::{min_triangulation, CkkEnumerator, Enumerate, Preprocessed};
use mtr_graph::Graph;
use mtr_workloads::random::gnp_connected;
use mtr_workloads::structured::{grid, mycielski};
use std::time::Duration;

fn instances() -> Vec<(&'static str, Graph)> {
    vec![
        ("grid4x4", grid(4, 4)),
        ("myciel4", mycielski(4)),
        ("gnp20_020", gnp_connected(20, 0.20, 7)),
    ]
}

fn bench_min_triangulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("min_triangulation");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for (name, g) in instances() {
        let pre = Preprocessed::new(&g);
        group.bench_with_input(BenchmarkId::new("width", name), &pre, |b, pre| {
            b.iter(|| min_triangulation(pre, &Width))
        });
        group.bench_with_input(BenchmarkId::new("fill", name), &pre, |b, pre| {
            b.iter(|| min_triangulation(pre, &FillIn))
        });
        // Constrained variant: force the first minimal separator, forbid the
        // second (mirrors the calls the ranked enumerator makes).
        let seps = pre.minimal_separators();
        if seps.len() >= 2 {
            let constraints = Constraints::new(vec![seps[0].clone()], vec![seps[1].clone()]);
            group.bench_with_input(
                BenchmarkId::new("fill_constrained", name),
                &pre,
                |b, pre| {
                    b.iter(|| {
                        let k = Constrained::new(&FillIn, &constraints);
                        min_triangulation(pre, &k)
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_ranked_first_10(c: &mut Criterion) {
    let mut group = c.benchmark_group("ranked_first_10_results");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for (name, g) in instances() {
        let pre = Preprocessed::new(&g);
        group.bench_with_input(BenchmarkId::from_parameter(name), &pre, |b, pre| {
            b.iter(|| {
                Enumerate::with(pre)
                    .cost(&Width)
                    .max_results(10)
                    .run()
                    .expect("session is well-configured")
                    .results
                    .len()
            })
        });
    }
    group.finish();
}

fn bench_ckk_first_10(c: &mut Criterion) {
    let mut group = c.benchmark_group("ckk_first_10_results");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for (name, g) in instances() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            b.iter(|| CkkEnumerator::new(g).take(10).count())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_min_triangulation,
    bench_ranked_first_10,
    bench_ckk_first_10
);
criterion_main!(benches);
