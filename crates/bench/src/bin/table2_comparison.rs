//! Table 2: RankedTriang vs the CKK-style baseline on the dataset families,
//! under a fixed per-graph wall-clock budget, optimizing width and fill-in.
//!
//! For every dataset family the table reports, per algorithm: the number of
//! returned triangulations, initialization time, average delay (with and
//! without initialization), the best width/fill found, and how many of the
//! returned results are optimal or within 10% of optimal — the exact columns
//! of the paper's Table 2 (scaled from 30-minute to multi-second budgets).
//!
//! `MTR_BUDGET_SECS` (default 3 s per run) and `MTR_SCALE` control the cost.

use mtr_bench::{
    accumulate_row, budget_from_env, finalize_row, scale_from_env, write_report, Table2Row,
};
use mtr_workloads::all_datasets;
use mtr_workloads::experiment::{compare_on_graph, render_csv, render_markdown};
use std::time::Duration;

fn main() {
    let scale = scale_from_env();
    let budget = budget_from_env(3.0);
    let datasets = all_datasets(scale);
    eprintln!(
        "table2: {} families at {scale:?} scale, {:.1} s per algorithm per graph",
        datasets.len(),
        budget.as_secs_f64()
    );

    let mut table_rows: Vec<Table2Row> = Vec::new();
    for dataset in &datasets {
        let mut ranked_row = Table2Row {
            dataset: dataset.name.clone(),
            algorithm: "RankedTriang".into(),
            ..Default::default()
        };
        let mut ckk_row = Table2Row {
            dataset: dataset.name.clone(),
            algorithm: "CKK".into(),
            ..Default::default()
        };
        for inst in &dataset.instances {
            eprintln!(
                "  comparing on {} ({} vertices)…",
                inst.name,
                inst.graph.n()
            );
            let cmp = compare_on_graph(&inst.name, &inst.graph, budget);
            // Skip instances whose ranked initialization does not fit the
            // budget — the paper likewise only compares on "terminated"
            // graphs.
            let (Some(rw), Some(rf)) = (cmp.ranked_width, cmp.ranked_fill) else {
                eprintln!("    skipped (initialization exceeded the budget)");
                continue;
            };
            // Reference optima: the best width/fill seen by any run.
            let best_width = [rw.min_width(), rf.min_width(), cmp.ckk.min_width()]
                .into_iter()
                .flatten()
                .min()
                .unwrap_or(0);
            let best_fill = [rw.min_fill(), rf.min_fill(), cmp.ckk.min_fill()]
                .into_iter()
                .flatten()
                .min()
                .unwrap_or(0);
            let ranked_init = rw.init;
            accumulate_row(
                &mut ranked_row,
                &rw,
                &rf,
                ranked_init,
                best_width,
                best_fill,
            );
            accumulate_row(
                &mut ckk_row,
                &cmp.ckk,
                &cmp.ckk,
                Duration::ZERO,
                best_width,
                best_fill,
            );
        }
        finalize_row(&mut ranked_row);
        finalize_row(&mut ckk_row);
        if ranked_row.graphs > 0 {
            table_rows.push(ranked_row);
            table_rows.push(ckk_row);
        }
    }

    let cells: Vec<Vec<String>> = table_rows.iter().map(Table2Row::to_cells).collect();
    let headers = Table2Row::headers();
    println!("# Table 2 — RankedTriang vs CKK under a fixed time budget\n");
    println!("{}", render_markdown(&headers, &cells));
    let csv = render_csv(&headers, &cells);
    let path = write_report("table2_comparison.csv", &csv);
    eprintln!("wrote {}", path.display());

    println!(
        "\nExpected shape (paper): RankedTriang's results are all optimal or near-optimal \
         (#min-w ≈ #trng), while CKK returns only a small fraction of optimal results; \
         CKK has near-zero initialization and often a shorter raw delay."
    );
}
