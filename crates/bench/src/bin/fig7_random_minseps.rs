//! Figure 7: the number of minimal separators of Erdős–Rényi graphs
//! `G(n, p)` as a function of `p`, for several values of `n`, with timeout
//! marks where the enumeration did not finish (the paper's red marks).
//!
//! The paper samples n ∈ {20, 30, 50, 70} and three graphs per probability;
//! the default here keeps n ∈ {20, 30, 50} so the run stays laptop-sized —
//! set `MTR_SCALE=large` to add n = 70.

use mtr_bench::{budget_from_env, scale_from_env, write_report};
use mtr_workloads::experiment::{random_minsep_study, render_csv, render_markdown, secs};
use mtr_workloads::DatasetScale;

fn main() {
    let scale = scale_from_env();
    let ns: Vec<u32> = match scale {
        DatasetScale::Smoke => vec![15, 20],
        DatasetScale::Standard => vec![20, 30, 50],
        DatasetScale::Large => vec![20, 30, 50, 70],
    };
    let ps: Vec<f64> = (1..=19).map(|i| i as f64 * 0.05).collect();
    let seeds = 3;
    let limit = 2_000_000;
    let time_budget = budget_from_env(10.0);

    eprintln!(
        "fig7: n ∈ {ns:?}, p ∈ [0.05, 0.95], {seeds} seeds each, budget {} s per graph",
        secs(time_budget)
    );
    let rows = random_minsep_study(&ns, &ps, seeds, limit, time_budget);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                format!("{:.2}", r.p),
                r.seed.to_string(),
                r.m.to_string(),
                r.num_minseps.map_or("timeout".into(), |k| k.to_string()),
                secs(r.time),
            ]
        })
        .collect();
    let headers = ["n", "p", "seed", "m", "minseps", "time"];
    let csv = render_csv(&headers, &table);
    let path = write_report("fig7_random_minseps.csv", &csv);
    eprintln!("wrote {}", path.display());

    // Aggregate per (n, p): average count (or timeout marker) — the series
    // plotted in Figure 7.
    println!("# Figure 7 — minimal separators of G(n, p)\n");
    let mut agg: Vec<Vec<String>> = Vec::new();
    for &n in &ns {
        for &p in &ps {
            let points: Vec<_> = rows
                .iter()
                .filter(|r| r.n == n && (r.p - p).abs() < 1e-9)
                .collect();
            let timeouts = points.iter().filter(|r| r.num_minseps.is_none()).count();
            let finished: Vec<usize> = points.iter().filter_map(|r| r.num_minseps).collect();
            let avg = if finished.is_empty() {
                "-".to_string()
            } else {
                format!(
                    "{:.0}",
                    finished.iter().sum::<usize>() as f64 / finished.len() as f64
                )
            };
            agg.push(vec![
                n.to_string(),
                format!("{p:.2}"),
                avg,
                timeouts.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        render_markdown(&["n", "p", "avg_minseps", "timeouts"], &agg)
    );
    println!(
        "\nExpected shape (paper): few separators for sparse and dense graphs, a blow-up around p ≈ 0.2–0.3."
    );
}
