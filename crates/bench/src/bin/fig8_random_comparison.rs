//! Figure 8: RankedTriang vs CKK on random graphs `G(n, p)` — average delay
//! (with and without initialization) and the fraction of optimal /
//! near-optimal results CKK returns relative to RankedTriang, as a function
//! of `p`, for n ∈ {20, 50} (n = 50 only at the larger scales).

use mtr_bench::{budget_from_env, scale_from_env, write_report};
use mtr_workloads::experiment::{compare_on_graph, render_csv, render_markdown};
use mtr_workloads::random::gnp_connected;
use mtr_workloads::DatasetScale;

fn main() {
    let scale = scale_from_env();
    let budget = budget_from_env(2.0);
    let (ns, seeds): (Vec<u32>, u64) = match scale {
        DatasetScale::Smoke => (vec![15], 1),
        DatasetScale::Standard => (vec![20, 30], 2),
        DatasetScale::Large => (vec![20, 50], 3),
    };
    let ps: Vec<f64> = vec![0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8];

    let headers = [
        "n",
        "p",
        "graphs",
        "ranked_delay",
        "ranked_delay_no_init",
        "ckk_delay",
        "ranked_trng",
        "ckk_trng",
        "ckk_optimal_width_ratio",
        "ckk_near_width_ratio",
        "ckk_optimal_fill_ratio",
        "ckk_near_fill_ratio",
        "ranked_skipped",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();

    for &n in &ns {
        for &p in &ps {
            let mut ranked_delay = 0.0;
            let mut ranked_delay_no_init = 0.0;
            let mut ckk_delay = 0.0;
            let mut ranked_trng = 0usize;
            let mut ckk_trng = 0usize;
            let mut ranked_opt_w = 0usize;
            let mut ranked_near_w = 0usize;
            let mut ckk_opt_w = 0usize;
            let mut ckk_near_w = 0usize;
            let mut ranked_opt_f = 0usize;
            let mut ranked_near_f = 0usize;
            let mut ckk_opt_f = 0usize;
            let mut ckk_near_f = 0usize;
            let mut compared = 0usize;
            let mut skipped = 0usize;
            for seed in 0..seeds {
                let g = gnp_connected(n, p, (n as u64) * 1000 + (p * 100.0) as u64 + seed);
                let cmp = compare_on_graph("random", &g, budget);
                let (Some(rw), Some(rf)) = (cmp.ranked_width, cmp.ranked_fill) else {
                    skipped += 1;
                    continue;
                };
                compared += 1;
                let best_w = [rw.min_width(), cmp.ckk.min_width()]
                    .into_iter()
                    .flatten()
                    .min()
                    .unwrap_or(0);
                let best_f = [rf.min_fill(), cmp.ckk.min_fill()]
                    .into_iter()
                    .flatten()
                    .min()
                    .unwrap_or(0);
                ranked_delay += rw.average_delay().as_secs_f64();
                ranked_delay_no_init += rw.average_delay_no_init().as_secs_f64();
                ckk_delay += cmp.ckk.average_delay().as_secs_f64();
                ranked_trng += rw.count();
                ckk_trng += cmp.ckk.count();
                ranked_opt_w += rw.count_width_within(best_w, 1.0);
                ranked_near_w += rw.count_width_within(best_w, 1.1);
                ckk_opt_w += cmp.ckk.count_width_within(best_w, 1.0);
                ckk_near_w += cmp.ckk.count_width_within(best_w, 1.1);
                ranked_opt_f += rf.count_fill_within(best_f, 1.0);
                ranked_near_f += rf.count_fill_within(best_f, 1.1);
                ckk_opt_f += cmp.ckk.count_fill_within(best_f, 1.0);
                ckk_near_f += cmp.ckk.count_fill_within(best_f, 1.1);
            }
            let ratio = |a: usize, b: usize| {
                if b == 0 {
                    "-".to_string()
                } else {
                    format!("{:.3}", a as f64 / b as f64)
                }
            };
            let avg = |x: f64| {
                if compared == 0 {
                    "-".to_string()
                } else {
                    format!("{:.4}", x / compared as f64)
                }
            };
            rows.push(vec![
                n.to_string(),
                format!("{p:.2}"),
                compared.to_string(),
                avg(ranked_delay),
                avg(ranked_delay_no_init),
                avg(ckk_delay),
                ranked_trng.to_string(),
                ckk_trng.to_string(),
                ratio(ckk_opt_w, ranked_opt_w),
                ratio(ckk_near_w, ranked_near_w),
                ratio(ckk_opt_f, ranked_opt_f),
                ratio(ckk_near_f, ranked_near_f),
                skipped.to_string(),
            ]);
            eprintln!("n={n} p={p:.2}: compared {compared}, skipped {skipped}");
        }
    }

    println!("# Figure 8 — RankedTriang vs CKK on G(n, p)\n");
    println!("{}", render_markdown(&headers, &rows));
    let csv = render_csv(&headers, &rows);
    let path = write_report("fig8_random_comparison.csv", &csv);
    eprintln!("wrote {}", path.display());
    println!(
        "\nExpected shape (paper): for p where the initialization fits the budget the ranked \
         delay is competitive; around p ≈ 0.1–0.5 on the larger n the initialization does not \
         finish (skipped column) mirroring Figure 8(b); CKK's optimal-result ratios stay well \
         below 1."
    );
}
