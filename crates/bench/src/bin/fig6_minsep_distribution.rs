//! Figure 6: the distribution of the number of minimal separators against
//! the number of edges on the MS-tractable instances (log-log scatter in
//! the paper; here the raw series plus the #minseps / #edges ratio).

use mtr_bench::{budget_from_env, scale_from_env, write_report};
use mtr_workloads::all_datasets;
use mtr_workloads::experiment::{
    minsep_distribution, render_csv, render_markdown, tractability_study, TractabilityBudget,
};
use std::time::Duration;

fn main() {
    let scale = scale_from_env();
    let budget = TractabilityBudget {
        minsep_time: budget_from_env(2.0).min(Duration::from_secs(30)),
        minsep_limit: 500_000,
        pmc_time: Duration::from_millis(1), // PMCs are irrelevant for Fig 6
    };
    let datasets = all_datasets(scale);
    let rows = tractability_study(&datasets, &budget);
    let dist = minsep_distribution(&rows);

    let table: Vec<Vec<String>> = dist
        .iter()
        .map(|(dataset, instance, m, minseps)| {
            vec![
                dataset.clone(),
                instance.clone(),
                m.to_string(),
                minseps.to_string(),
                format!("{:.2}", *minseps as f64 / (*m).max(1) as f64),
            ]
        })
        .collect();
    let headers = ["dataset", "instance", "edges", "minseps", "minseps/edges"];
    let csv = render_csv(&headers, &table);
    let path = write_report("fig6_minsep_distribution.csv", &csv);
    eprintln!("wrote {}", path.display());

    println!("# Figure 6 — #minimal separators vs #edges (MS-tractable instances)\n");
    println!("{}", render_markdown(&headers, &table));

    // The paper's qualitative observation: the separator count is often
    // comparable to (or below) the edge count.
    let below: usize = dist.iter().filter(|(_, _, m, k)| k <= &(m * 2)).count();
    println!(
        "\n{below}/{} instances have at most 2x as many minimal separators as edges.",
        dist.len()
    );
}
