//! Figure 5: tractability of computing the minimal separators and the PMCs
//! over the dataset families.
//!
//! For every instance the initialization is attempted under a time budget;
//! instances are classified as *terminated* (MinSep and PMC both finished),
//! *ms-terminated* (only MinSep finished) or *not-terminated*, and the
//! per-family counts are reported exactly like the stacked bars of Figure 5.
//!
//! `MTR_SCALE=smoke|standard|large` and `MTR_BUDGET_SECS=<pmc seconds>`
//! control the workload.

use mtr_bench::{budget_from_env, scale_from_env, write_report};
use mtr_workloads::experiment::{
    render_csv, render_markdown, secs, tractability_study, TractabilityBudget, TractabilityStatus,
};
use mtr_workloads::{all_datasets, Dataset};
use std::collections::BTreeMap;
use std::time::Duration;

fn main() {
    let scale = scale_from_env();
    let pmc_budget = budget_from_env(10.0);
    let budget = TractabilityBudget {
        minsep_time: pmc_budget.min(Duration::from_secs(2)),
        minsep_limit: 200_000,
        pmc_time: pmc_budget,
    };
    let datasets: Vec<Dataset> = all_datasets(scale);
    eprintln!(
        "fig5: {} families at {scale:?} scale, MinSep budget {} s, PMC budget {} s",
        datasets.len(),
        secs(budget.minsep_time),
        secs(budget.pmc_time)
    );

    let rows = tractability_study(&datasets, &budget);

    // Per-instance CSV (the raw data).
    let instance_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                r.instance.clone(),
                r.n.to_string(),
                r.m.to_string(),
                r.status.label().to_string(),
                r.num_minseps.map_or("-".into(), |k| k.to_string()),
                r.num_pmcs.map_or("-".into(), |k| k.to_string()),
                secs(r.minsep_time),
                secs(r.pmc_time),
            ]
        })
        .collect();
    let headers = [
        "dataset",
        "instance",
        "n",
        "m",
        "status",
        "minseps",
        "pmcs",
        "minsep_time",
        "pmc_time",
    ];
    let csv = render_csv(&headers, &instance_rows);
    let path = write_report("fig5_tractability.csv", &csv);
    eprintln!("wrote {}", path.display());

    // Per-family aggregate (the figure itself).
    let mut per_family: BTreeMap<String, (usize, usize, usize)> = BTreeMap::new();
    for r in &rows {
        let entry = per_family.entry(r.dataset.clone()).or_default();
        match r.status {
            TractabilityStatus::Terminated => entry.0 += 1,
            TractabilityStatus::MsTerminated => entry.1 += 1,
            TractabilityStatus::NotTerminated => entry.2 += 1,
        }
    }
    let agg_rows: Vec<Vec<String>> = per_family
        .iter()
        .map(|(name, (t, ms, nt))| {
            vec![name.clone(), t.to_string(), ms.to_string(), nt.to_string()]
        })
        .collect();
    let md = render_markdown(
        &["dataset", "terminated", "ms-terminated", "not-terminated"],
        &agg_rows,
    );
    println!("# Figure 5 — tractability of the poly-MS assumption\n");
    println!("{md}");
    let total_terminated: usize = per_family.values().map(|v| v.0).sum();
    let total: usize = rows.len();
    println!(
        "\n{total_terminated}/{total} instances fully terminated ({}%).",
        100 * total_terminated / total.max(1)
    );
}
