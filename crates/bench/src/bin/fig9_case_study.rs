//! Figure 9: case studies on two specific graphs — the number of results and
//! the width of the returned triangulations over time, for RankedTriang and
//! for CKK.
//!
//! The paper uses a CSP graph (`myciel5g_3`) and an object-detection graph;
//! the stand-ins are the Mycielski-5 CSP graph and a segmentation-style
//! noisy grid, both large enough that neither algorithm exhausts the space
//! within the budget. The output bins the execution into
//! fixed intervals and reports, per interval, the cumulative number of
//! results plus the minimum and median width among the results produced so
//! far — the three series of each subplot of Figure 9.

use mtr_bench::{budget_from_env, write_report};
use mtr_workloads::experiment::{render_csv, render_markdown, timeline_study, AlgorithmRun};
use mtr_workloads::structured;
use std::time::Duration;

fn binned_rows(
    name: &str,
    algorithm: &str,
    run: &AlgorithmRun,
    budget: Duration,
    bins: usize,
) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for b in 1..=bins {
        let cutoff = budget.mul_f64(b as f64 / bins as f64);
        let widths: Vec<usize> = run
            .samples
            .iter()
            .filter(|s| s.elapsed <= cutoff)
            .map(|s| s.width)
            .collect();
        let count = widths.len();
        let (min_w, median_w) = if widths.is_empty() {
            ("-".to_string(), "-".to_string())
        } else {
            let mut sorted = widths.clone();
            sorted.sort_unstable();
            (sorted[0].to_string(), sorted[sorted.len() / 2].to_string())
        };
        rows.push(vec![
            name.to_string(),
            algorithm.to_string(),
            format!("{:.2}", cutoff.as_secs_f64()),
            count.to_string(),
            min_w,
            median_w,
        ]);
    }
    rows
}

fn main() {
    let budget = budget_from_env(5.0);
    let bins = 10;
    let cases = vec![
        ("csp_myciel5", structured::mycielski(5)),
        ("segmentation_5x5", structured::noisy_grid(5, 5, 0.25, 77)),
    ];

    let headers = [
        "graph",
        "algorithm",
        "time",
        "results",
        "min_width",
        "median_width",
    ];
    let mut all_rows: Vec<Vec<String>> = Vec::new();
    for (name, g) in &cases {
        eprintln!(
            "fig9: running {} ({} vertices, {} edges)…",
            name,
            g.n(),
            g.m()
        );
        let (ranked, ckk) = timeline_study(g, budget);
        if let Some(run) = &ranked {
            all_rows.extend(binned_rows(name, "RankedTriang", run, budget, bins));
        } else {
            eprintln!("  RankedTriang initialization did not finish within the budget");
        }
        all_rows.extend(binned_rows(name, "CKK", &ckk, budget, bins));
    }

    println!("# Figure 9 — results and widths over time (case studies)\n");
    println!("{}", render_markdown(&headers, &all_rows));
    let csv = render_csv(&headers, &all_rows);
    let path = write_report("fig9_case_study.csv", &csv);
    eprintln!("wrote {}", path.display());
    println!(
        "\nExpected shape (paper): RankedTriang's min and median width coincide (all results \
         optimal) and its result count grows steadily after the initialization; CKK produces \
         results from the start but with higher and fluctuating median width."
    );
}
