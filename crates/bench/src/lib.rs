//! `mtr-bench`: the benchmark harness that regenerates every table and
//! figure of the paper's evaluation (Section 7) on the synthetic dataset
//! stand-ins, plus Criterion micro-benchmarks and ablations.
//!
//! Binaries (each prints a Markdown table and writes a CSV under
//! `results/`):
//!
//! | target | paper artifact |
//! |---|---|
//! | `fig5_tractability` | Figure 5 — tractability of MinSep/PMC per dataset |
//! | `fig6_minsep_distribution` | Figure 6 — #minimal separators vs #edges |
//! | `fig7_random_minseps` | Figure 7 — #minimal separators of `G(n,p)` |
//! | `table2_comparison` | Table 2 — RankedTriang vs CKK under a time budget |
//! | `fig8_random_comparison` | Figure 8 — delay and quality on random graphs |
//! | `fig9_case_study` | Figure 9 — results-over-time case studies |
//!
//! Budgets are scaled down from the paper's 30-minute server runs to
//! laptop-friendly defaults; set the environment variables
//! `MTR_BUDGET_SECS`, `MTR_SCALE` (`smoke`/`standard`/`large`) to adjust.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mtr_workloads::experiment::AlgorithmRun;
use mtr_workloads::DatasetScale;
use std::path::PathBuf;
use std::time::Duration;

/// Reads the experiment scale from `MTR_SCALE` (default: standard).
pub fn scale_from_env() -> DatasetScale {
    match std::env::var("MTR_SCALE")
        .unwrap_or_default()
        .to_lowercase()
        .as_str()
    {
        "smoke" => DatasetScale::Smoke,
        "large" => DatasetScale::Large,
        _ => DatasetScale::Standard,
    }
}

/// Reads the per-run time budget from `MTR_BUDGET_SECS` (default given by
/// the caller).
pub fn budget_from_env(default_secs: f64) -> Duration {
    let secs = std::env::var("MTR_BUDGET_SECS")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(default_secs);
    Duration::from_secs_f64(secs)
}

/// Hardware threads the recording host actually exposes. Thread-scaling
/// snapshots are only meaningful relative to this number, so it belongs in
/// every recorded JSON's `host` section as `host_parallelism`.
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Prints a loud warning when a thread-scaling benchmark is about to run
/// more worker threads than the host has hardware threads: every
/// oversubscribed row measures scheduling overhead, not speedup, and the
/// snapshot must be interpreted (and ideally re-recorded) accordingly.
/// Returns the detected parallelism so callers can embed it in notes.
pub fn warn_if_oversubscribed(max_threads: usize) -> usize {
    let host = host_parallelism();
    if host < max_threads {
        eprintln!(
            "WARNING: this host exposes host_parallelism = {host} hardware thread(s), \
             but the benchmark scales up to {max_threads} workers. Rows with \
             threads > {host} measure pool oversubscription overhead, not speedup; \
             record host_parallelism in the snapshot's host section and re-record \
             on a wider host to observe scaling."
        );
    }
    host
}

/// Writes a report file under `results/`, creating the directory if needed.
/// Returns the path written.
pub fn write_report(name: &str, contents: &str) -> PathBuf {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir).expect("cannot create results/ directory");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("cannot write report");
    path
}

/// One aggregated Table-2 row for one algorithm on one dataset family.
#[derive(Clone, Debug, Default)]
pub struct Table2Row {
    /// Dataset family name.
    pub dataset: String,
    /// Algorithm label.
    pub algorithm: String,
    /// Number of graphs aggregated.
    pub graphs: usize,
    /// Total number of triangulations returned.
    pub trng: usize,
    /// Average initialization time in seconds.
    pub init: f64,
    /// Average delay (including initialization) in seconds.
    pub delay: f64,
    /// Average delay excluding initialization in seconds.
    pub delay_no_init: f64,
    /// Average minimum width found.
    pub min_w: f64,
    /// Total number of width-optimal results (width = per-graph optimum).
    pub n_min_w: usize,
    /// Total number of results within 1.1× of the per-graph optimal width.
    pub n_near_w: usize,
    /// Average minimum fill found.
    pub min_f: f64,
    /// Total number of fill-optimal results.
    pub n_min_f: usize,
    /// Total number of results within 1.1× of the per-graph optimal fill.
    pub n_near_f: usize,
}

impl Table2Row {
    /// Renders the row as strings in the column order of the paper's table.
    pub fn to_cells(&self) -> Vec<String> {
        vec![
            self.dataset.clone(),
            self.algorithm.clone(),
            self.graphs.to_string(),
            self.trng.to_string(),
            format!("{:.3}", self.init),
            format!("{:.4}", self.delay),
            format!("{:.4}", self.delay_no_init),
            format!("{:.1}", self.min_w),
            self.n_min_w.to_string(),
            self.n_near_w.to_string(),
            format!("{:.1}", self.min_f),
            self.n_min_f.to_string(),
            self.n_near_f.to_string(),
        ]
    }

    /// The column headers matching [`Table2Row::to_cells`].
    pub fn headers() -> Vec<&'static str> {
        vec![
            "dataset",
            "algorithm",
            "#graphs",
            "#trng",
            "init",
            "delay",
            "delay_no_init",
            "min-w",
            "#min-w",
            "#<=1.1min-w",
            "min-f",
            "#min-f",
            "#<=1.1min-f",
        ]
    }
}

/// Accumulates one graph's runs into a Table-2 aggregate.
///
/// `width_run` and `fill_run` are the runs whose *result streams* are scored
/// for width and fill quality respectively (for the ranked algorithm these
/// are two separate runs; the unranked baseline reuses the same run for
/// both). `best_width` / `best_fill` are the per-graph optima used as the
/// reference for the `#min` and `#≤1.1·min` columns — the paper uses the
/// best value found by either algorithm.
pub fn accumulate_row(
    row: &mut Table2Row,
    width_run: &AlgorithmRun,
    fill_run: &AlgorithmRun,
    init: Duration,
    best_width: usize,
    best_fill: usize,
) {
    row.graphs += 1;
    row.trng += width_run.count();
    row.init += init.as_secs_f64();
    row.delay += width_run.average_delay().as_secs_f64();
    row.delay_no_init += width_run.average_delay_no_init().as_secs_f64();
    row.min_w += width_run.min_width().unwrap_or(0) as f64;
    row.n_min_w += width_run.count_width_within(best_width, 1.0);
    row.n_near_w += width_run.count_width_within(best_width, 1.1);
    row.min_f += fill_run.min_fill().unwrap_or(0) as f64;
    row.n_min_f += fill_run.count_fill_within(best_fill, 1.0);
    row.n_near_f += fill_run.count_fill_within(best_fill, 1.1);
}

/// Divides the averaged fields by the number of graphs (call once after all
/// graphs have been accumulated).
pub fn finalize_row(row: &mut Table2Row) {
    if row.graphs == 0 {
        return;
    }
    let k = row.graphs as f64;
    row.init /= k;
    row.delay /= k;
    row.delay_no_init /= k;
    row.min_w /= k;
    row.min_f /= k;
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtr_workloads::experiment::ResultSample;

    fn fake_run(widths: &[usize]) -> AlgorithmRun {
        AlgorithmRun {
            algorithm: "fake".into(),
            init: Duration::from_millis(10),
            samples: widths
                .iter()
                .enumerate()
                .map(|(i, &w)| ResultSample {
                    elapsed: Duration::from_millis(10 * (i as u64 + 1)),
                    width: w,
                    fill: w * 2,
                })
                .collect(),
            total: Duration::from_millis(100),
            exhausted: true,
        }
    }

    #[test]
    fn table2_row_accumulation() {
        let mut row = Table2Row {
            dataset: "d".into(),
            algorithm: "a".into(),
            ..Default::default()
        };
        let run = fake_run(&[2, 3, 2]);
        accumulate_row(&mut row, &run, &run, Duration::from_millis(10), 2, 4);
        accumulate_row(&mut row, &run, &run, Duration::from_millis(30), 2, 4);
        finalize_row(&mut row);
        assert_eq!(row.graphs, 2);
        assert_eq!(row.trng, 6);
        assert!((row.init - 0.02).abs() < 1e-9);
        assert_eq!(row.n_min_w, 4);
        assert_eq!(row.n_near_w, 4);
        assert_eq!(row.n_min_f, 4);
        assert_eq!(row.to_cells().len(), Table2Row::headers().len());
    }

    #[test]
    fn env_helpers_have_defaults() {
        assert_eq!(budget_from_env(1.5), Duration::from_secs_f64(1.5));
        let _ = scale_from_env();
    }
}
