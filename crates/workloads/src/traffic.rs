//! Request-trace generator for the `mtr-serve` daemon: a seeded stream of
//! enumeration requests mixing *warm* traffic (exact repeats and
//! isomorphic relabelings of earlier graphs — both hit the
//! content-addressed atom cache) with *cold* traffic (fresh instances).
//!
//! Real multi-tenant query workloads are heavily skewed: the same queries
//! (and structurally identical queries over different literals) recur. The
//! canonical-form atom cache turns exactly that recurrence into warm
//! streams, and this generator reproduces it so the service benchmarks
//! can measure warm-vs-cold throughput and the admission scheduler's
//! effect under a realistic mix.
//!
//! Base instances are decomposable (bridged `G(n, p)` blobs — see
//! [`crate::decomposable::gnp_with_bridges`]): the cache only engages on
//! graphs with two or more atoms, so single-atom traffic would make every
//! request cold regardless of repeats.

use crate::decomposable::gnp_with_bridges;
use mtr_graph::{Graph, Vertex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How a request relates to the trace so far.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrafficKind {
    /// A verbatim repeat of an earlier request's graph (fully warm).
    Repeat,
    /// A uniformly random relabeling of an earlier graph — isomorphic, so
    /// the canonical atom keys still hit the cache (warm), but the byte
    /// representation differs (exercises canonicalization).
    Isomorphic,
    /// A graph never seen before (cold).
    Fresh,
}

/// One request of a generated trace.
#[derive(Clone, Debug)]
pub struct TrafficRequest {
    /// Position in the trace.
    pub index: usize,
    /// The request's graph.
    pub graph: Graph,
    /// Warm/cold provenance.
    pub kind: TrafficKind,
    /// Index of the base instance this request derives from (for
    /// repeats/relabelings, the earlier fresh request; for fresh
    /// requests, itself).
    pub base: usize,
}

/// The warm/cold composition of a trace. Fractions are of the whole
/// trace; the remainder is fresh. The first request is always fresh
/// (there is nothing to repeat yet).
#[derive(Clone, Copy, Debug)]
pub struct TrafficMix {
    /// Fraction of verbatim repeats.
    pub repeat: f64,
    /// Fraction of isomorphic relabelings.
    pub isomorphic: f64,
}

impl TrafficMix {
    /// The default service mix: half repeats, a quarter relabelings, a
    /// quarter fresh.
    pub fn default_mix() -> TrafficMix {
        TrafficMix {
            repeat: 0.5,
            isomorphic: 0.25,
        }
    }

    /// Everything fresh — the all-cold baseline.
    pub fn all_cold() -> TrafficMix {
        TrafficMix {
            repeat: 0.0,
            isomorphic: 0.0,
        }
    }

    /// Everything a repeat of the first instance — the all-warm ceiling.
    pub fn all_warm() -> TrafficMix {
        TrafficMix {
            repeat: 1.0,
            isomorphic: 0.0,
        }
    }
}

/// Generates a seeded request trace of `requests` graphs.
///
/// `blobs`/`blob_n` size the fresh instances (each fresh graph is a chain
/// of `blobs` random blobs of `blob_n` vertices, bridged — so it
/// decomposes into that many atoms). Fresh instances rotate their seed,
/// so every fresh request is a genuinely new graph; repeats and
/// relabelings pick a uniformly random earlier fresh instance.
///
/// The trace is reproducible: equal arguments yield the identical
/// sequence of graphs and kinds.
pub fn trace(
    requests: usize,
    blobs: u32,
    blob_n: u32,
    mix: TrafficMix,
    seed: u64,
) -> Vec<TrafficRequest> {
    assert!(
        mix.repeat >= 0.0 && mix.isomorphic >= 0.0 && mix.repeat + mix.isomorphic <= 1.0,
        "mix fractions must be non-negative and sum to at most 1"
    );
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x072A_FF1C));
    let mut out: Vec<TrafficRequest> = Vec::with_capacity(requests);
    let mut fresh_bases: Vec<usize> = Vec::new();
    let mut next_fresh_seed = seed;
    for index in 0..requests {
        // Uniform in [0, 1): the standard 53-mantissa-bit construction
        // (the compat rand stub has no float ranges).
        let draw = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let kind = if fresh_bases.is_empty() {
            TrafficKind::Fresh
        } else if draw < mix.repeat {
            TrafficKind::Repeat
        } else if draw < mix.repeat + mix.isomorphic {
            TrafficKind::Isomorphic
        } else {
            TrafficKind::Fresh
        };
        let request = match kind {
            TrafficKind::Fresh => {
                let graph = gnp_with_bridges(blobs, blob_n, 0.35, next_fresh_seed);
                next_fresh_seed = next_fresh_seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                fresh_bases.push(index);
                TrafficRequest {
                    index,
                    graph,
                    kind,
                    base: index,
                }
            }
            TrafficKind::Repeat => {
                let base = fresh_bases[rng.gen_range(0..fresh_bases.len())];
                TrafficRequest {
                    index,
                    graph: out[base].graph.clone(),
                    kind,
                    base,
                }
            }
            TrafficKind::Isomorphic => {
                let base = fresh_bases[rng.gen_range(0..fresh_bases.len())];
                let graph = out[base]
                    .graph
                    .relabeled(&random_permutation(out[base].graph.n(), &mut rng));
                TrafficRequest {
                    index,
                    graph,
                    kind,
                    base,
                }
            }
        };
        out.push(request);
    }
    out
}

/// A uniformly random permutation of `0..n` (Fisher–Yates).
fn random_permutation(n: u32, rng: &mut StdRng) -> Vec<Vertex> {
    let mut order: Vec<Vertex> = (0..n).collect();
    for i in (1..n as usize).rev() {
        let j = rng.gen_range(0..(i as u32 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtr_graph::CanonicalForm;

    #[test]
    fn traces_are_reproducible() {
        let a = trace(12, 2, 6, TrafficMix::default_mix(), 7);
        let b = trace(12, 2, 6, TrafficMix::default_mix(), 7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.base, y.base);
            let ex: Vec<_> = x.graph.edges().collect();
            let ey: Vec<_> = y.graph.edges().collect();
            assert_eq!(ex, ey);
        }
    }

    #[test]
    fn first_request_is_fresh_and_kinds_follow_the_mix() {
        let t = trace(40, 2, 5, TrafficMix::default_mix(), 3);
        assert_eq!(t[0].kind, TrafficKind::Fresh);
        let warm = t.iter().filter(|r| r.kind != TrafficKind::Fresh).count();
        // default_mix is 75% warm; 40 draws leave plenty of slack.
        assert!(warm >= 15, "expected a mostly-warm trace, got {warm}/40");
        assert!(warm < 40, "some requests must stay fresh");
    }

    #[test]
    fn repeats_are_identical_and_relabelings_are_isomorphic() {
        let t = trace(30, 2, 5, TrafficMix::default_mix(), 11);
        for r in &t {
            match r.kind {
                TrafficKind::Repeat => {
                    let base: Vec<_> = t[r.base].graph.edges().collect();
                    let this: Vec<_> = r.graph.edges().collect();
                    assert_eq!(base, this, "repeat must be verbatim");
                }
                TrafficKind::Isomorphic => {
                    // Same canonical key = isomorphic (and cache-warm).
                    let base: CanonicalForm = t[r.base].graph.canonical_form();
                    let this: CanonicalForm = r.graph.canonical_form();
                    assert_eq!(base.key, this.key);
                }
                TrafficKind::Fresh => assert_eq!(r.base, r.index),
            }
        }
    }

    #[test]
    fn fresh_instances_are_multi_atom() {
        use mtr_reduce::{decompose, ReductionLevel};
        let t = trace(6, 3, 6, TrafficMix::all_cold(), 5);
        for r in &t {
            let atoms = decompose(&r.graph, ReductionLevel::Full).atoms.len();
            assert!(
                atoms >= 2,
                "traffic graphs must factorize for the cache to engage (got {atoms} atoms)"
            );
        }
    }

    #[test]
    fn all_warm_replays_one_base() {
        let t = trace(8, 2, 5, TrafficMix::all_warm(), 9);
        assert!(t[1..].iter().all(|r| r.kind == TrafficKind::Repeat));
        assert!(t[1..].iter().all(|r| r.base == 0));
    }
}
