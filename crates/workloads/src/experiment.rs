//! The experiment harness: everything needed to regenerate the paper's
//! tables and figures at laptop scale.
//!
//! Each study mirrors one part of Section 7:
//!
//! * [`tractability_study`] — Figure 5: can `MinSep(G)` / `PMC(G)` be
//!   computed within a time budget?
//! * [`minsep_distribution`] — Figure 6: #minimal separators vs #edges for
//!   the MS-tractable instances.
//! * [`random_minsep_study`] — Figure 7: #minimal separators of `G(n, p)`.
//! * [`compare_on_graph`] — Table 2 / Figure 8: `RankedTriang` vs the CKK
//!   baseline under a fixed wall-clock budget, reporting result counts,
//!   delays and the width/fill quality columns of Table 2.
//! * [`timeline_study`] — Figure 9: results-over-time case studies.
//!
//! All functions return plain data rows; the `mtr-bench` binaries render
//! them as CSV and Markdown.

use crate::datasets::Dataset;
use crate::random::gnp;
use mtr_core::cost::{BagCost, FillIn, Width};
use mtr_core::{CkkEnumerator, Enumerate, StopReason};
use mtr_graph::Graph;
use mtr_pmc::enumerate::potential_maximal_cliques_with_deadline;
use mtr_separators::enumerate::minimal_separators_with_limits;
use std::ops::ControlFlow;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Figure 5: tractability of the poly-MS assumption
// ---------------------------------------------------------------------------

/// Outcome of the initialization attempt on one graph (Figure 5 categories).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TractabilityStatus {
    /// Both the minimal separators and the PMCs were computed in budget.
    Terminated,
    /// Minimal separators finished, PMC enumeration did not.
    MsTerminated,
    /// Even the minimal separators did not finish in budget.
    NotTerminated,
}

impl TractabilityStatus {
    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            TractabilityStatus::Terminated => "terminated",
            TractabilityStatus::MsTerminated => "ms-terminated",
            TractabilityStatus::NotTerminated => "not-terminated",
        }
    }
}

/// One row of the tractability study.
#[derive(Clone, Debug)]
pub struct TractabilityRow {
    /// Dataset family name.
    pub dataset: String,
    /// Instance name.
    pub instance: String,
    /// Number of vertices.
    pub n: u32,
    /// Number of edges.
    pub m: usize,
    /// The Figure-5 category.
    pub status: TractabilityStatus,
    /// Number of minimal separators, when known.
    pub num_minseps: Option<usize>,
    /// Number of potential maximal cliques, when known.
    pub num_pmcs: Option<usize>,
    /// Wall-clock time spent on the separator enumeration.
    pub minsep_time: Duration,
    /// Wall-clock time spent on the PMC enumeration (zero when skipped).
    pub pmc_time: Duration,
}

/// Budgets controlling the tractability study.
#[derive(Clone, Copy, Debug)]
pub struct TractabilityBudget {
    /// Wall-clock budget for the separator enumeration.
    pub minsep_time: Duration,
    /// Hard cap on the number of separators (a proxy for the paper's
    /// one-minute limit that also protects against memory blow-ups).
    pub minsep_limit: usize,
    /// Wall-clock budget for the PMC enumeration.
    pub pmc_time: Duration,
}

impl Default for TractabilityBudget {
    fn default() -> Self {
        TractabilityBudget {
            minsep_time: Duration::from_secs(2),
            minsep_limit: 200_000,
            pmc_time: Duration::from_secs(10),
        }
    }
}

/// Classifies one graph.
pub fn classify_graph(
    g: &Graph,
    budget: &TractabilityBudget,
) -> (
    TractabilityStatus,
    Option<usize>,
    Option<usize>,
    Duration,
    Duration,
) {
    let start = Instant::now();
    let seps =
        minimal_separators_with_limits(g, Some(budget.minsep_limit), Some(budget.minsep_time));
    let minsep_time = start.elapsed();
    let seps = match seps {
        Ok(s) if minsep_time <= budget.minsep_time => s,
        _ => {
            return (
                TractabilityStatus::NotTerminated,
                None,
                None,
                minsep_time,
                Duration::ZERO,
            )
        }
    };
    let pmc_start = Instant::now();
    let pmc = potential_maximal_cliques_with_deadline(g, budget.pmc_time);
    let pmc_time = pmc_start.elapsed();
    match pmc {
        Ok(enumeration) => (
            TractabilityStatus::Terminated,
            Some(seps.len()),
            Some(enumeration.pmcs.len()),
            minsep_time,
            pmc_time,
        ),
        Err(_) => (
            TractabilityStatus::MsTerminated,
            Some(seps.len()),
            None,
            minsep_time,
            pmc_time,
        ),
    }
}

/// Runs the tractability study over whole dataset families.
pub fn tractability_study(
    datasets: &[Dataset],
    budget: &TractabilityBudget,
) -> Vec<TractabilityRow> {
    let mut rows = Vec::new();
    for d in datasets {
        for inst in &d.instances {
            let (status, num_minseps, num_pmcs, minsep_time, pmc_time) =
                classify_graph(&inst.graph, budget);
            rows.push(TractabilityRow {
                dataset: d.name.clone(),
                instance: inst.name.clone(),
                n: inst.graph.n(),
                m: inst.graph.m(),
                status,
                num_minseps,
                num_pmcs,
                minsep_time,
                pmc_time,
            });
        }
    }
    rows
}

/// Figure 6: the (#edges, #minimal separators) pairs of the MS-tractable
/// rows of a tractability study.
pub fn minsep_distribution(rows: &[TractabilityRow]) -> Vec<(String, String, usize, usize)> {
    rows.iter()
        .filter_map(|r| {
            r.num_minseps
                .map(|k| (r.dataset.clone(), r.instance.clone(), r.m, k))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 7: minimal separators of random graphs
// ---------------------------------------------------------------------------

/// One point of the random-graph separator study.
#[derive(Clone, Debug)]
pub struct RandomMinsepRow {
    /// Number of vertices.
    pub n: u32,
    /// Edge probability.
    pub p: f64,
    /// RNG seed of the sampled graph.
    pub seed: u64,
    /// Number of edges of the sampled graph.
    pub m: usize,
    /// Number of minimal separators, if the enumeration finished.
    pub num_minseps: Option<usize>,
    /// Wall-clock time of the enumeration attempt.
    pub time: Duration,
}

/// Samples `seeds_per_point` graphs for every `(n, p)` pair and counts their
/// minimal separators, marking the point as timed out when the count limit
/// or the time budget is exceeded (the red marks of Figure 7).
pub fn random_minsep_study(
    ns: &[u32],
    ps: &[f64],
    seeds_per_point: u64,
    limit: usize,
    time_budget: Duration,
) -> Vec<RandomMinsepRow> {
    let mut rows = Vec::new();
    for &n in ns {
        for &p in ps {
            for seed in 0..seeds_per_point {
                let graph_seed = (n as u64) << 32 | (p * 1000.0) as u64 ^ seed;
                let g = gnp(n, p, graph_seed);
                let start = Instant::now();
                let result = minimal_separators_with_limits(&g, Some(limit), Some(time_budget));
                let time = start.elapsed();
                let num = match result {
                    Ok(s) if time <= time_budget => Some(s.len()),
                    _ => None,
                };
                rows.push(RandomMinsepRow {
                    n,
                    p,
                    seed: graph_seed,
                    m: g.m(),
                    num_minseps: num,
                    time,
                });
            }
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Table 2 / Figures 8-9: RankedTriang vs CKK under a time budget
// ---------------------------------------------------------------------------

/// One enumerated result with its timing and quality.
#[derive(Clone, Copy, Debug)]
pub struct ResultSample {
    /// Time elapsed since the enumeration started when this result arrived.
    pub elapsed: Duration,
    /// Width of the triangulation.
    pub width: usize,
    /// Fill-in of the triangulation.
    pub fill: usize,
}

/// Aggregated outcome of one algorithm on one graph under a budget — the
/// per-graph ingredients of the paper's Table 2 columns.
#[derive(Clone, Debug)]
pub struct AlgorithmRun {
    /// Algorithm label.
    pub algorithm: String,
    /// Initialization time (separators + PMCs + block structure for
    /// `RankedTriang`, essentially zero for the baseline).
    pub init: Duration,
    /// The per-result samples, in emission order.
    pub samples: Vec<ResultSample>,
    /// Total wall-clock time consumed (≤ budget unless the enumeration
    /// finished early).
    pub total: Duration,
    /// Whether the enumeration ran out of results before the budget ended.
    pub exhausted: bool,
}

impl AlgorithmRun {
    /// Number of results produced.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Average delay between results, counting initialization.
    pub fn average_delay(&self) -> Duration {
        if self.samples.is_empty() {
            self.total
        } else {
            self.total / self.samples.len() as u32
        }
    }

    /// Average delay between results, not counting initialization.
    pub fn average_delay_no_init(&self) -> Duration {
        if self.samples.is_empty() {
            return self.total.saturating_sub(self.init);
        }
        self.total.saturating_sub(self.init) / self.samples.len() as u32
    }

    /// Minimum width among the produced results.
    pub fn min_width(&self) -> Option<usize> {
        self.samples.iter().map(|s| s.width).min()
    }

    /// Minimum fill among the produced results.
    pub fn min_fill(&self) -> Option<usize> {
        self.samples.iter().map(|s| s.fill).min()
    }

    /// Number of results whose width is within `factor` of `reference`
    /// (e.g. `reference = optimal width`, `factor = 1.1` for the paper's
    /// `#≤1.1·min-w` column).
    pub fn count_width_within(&self, reference: usize, factor: f64) -> usize {
        let bound = (reference as f64 * factor).floor() as usize;
        self.samples.iter().filter(|s| s.width <= bound).count()
    }

    /// Number of results whose fill is within `factor` of `reference`.
    pub fn count_fill_within(&self, reference: usize, factor: f64) -> usize {
        let bound = (reference as f64 * factor).floor() as usize;
        self.samples.iter().filter(|s| s.fill <= bound).count()
    }
}

/// Which classic cost the ranked enumeration optimizes in a comparison run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CostKind {
    /// Optimize width.
    Width,
    /// Optimize fill-in.
    Fill,
}

impl CostKind {
    /// The cost object.
    pub fn cost(&self) -> Box<dyn BagCost + Sync> {
        match self {
            CostKind::Width => Box::new(Width),
            CostKind::Fill => Box::new(FillIn),
        }
    }

    /// Short label.
    pub fn label(&self) -> &'static str {
        match self {
            CostKind::Width => "width",
            CostKind::Fill => "fill",
        }
    }
}

/// Runs `RankedTriang` on `g` for at most `budget` wall-clock time,
/// optimizing `kind`, as a deadline-budgeted [`Enumerate`] session.
/// Returns `None` when the initialization itself does not fit in the budget
/// (the graph would be "not terminated" in Figure 5).
pub fn run_ranked(g: &Graph, kind: CostKind, budget: Duration) -> Option<AlgorithmRun> {
    let start = Instant::now();
    let cost = kind.cost();
    let mut samples = Vec::new();
    let report = Enumerate::on(g)
        .cost(cost.as_ref())
        .deadline(budget)
        .drive(|result| {
            samples.push(ResultSample {
                elapsed: start.elapsed(),
                width: result.width(),
                fill: result.fill_in(g),
            });
            ControlFlow::Continue(())
        })
        .expect("a deadline-only session on a plain graph cannot be misconfigured");
    // "Not terminated" (Figure 5): the PMC enumeration was aborted, or the
    // remaining initialization (block construction) overran the budget.
    if !report.stats.preprocessing_complete || report.stats.preprocessing > budget {
        return None;
    }
    Some(AlgorithmRun {
        algorithm: format!("ranked-{}", kind.label()),
        init: report.stats.preprocessing,
        samples,
        total: start.elapsed(),
        exhausted: report.stop_reason == StopReason::Exhausted,
    })
}

/// Runs the CKK-style baseline on `g` for at most `budget` wall-clock time.
pub fn run_ckk(g: &Graph, budget: Duration) -> AlgorithmRun {
    let start = Instant::now();
    let mut samples = Vec::new();
    let mut exhausted = true;
    let mut enumerator = CkkEnumerator::new(g);
    let init = start.elapsed();
    loop {
        if start.elapsed() >= budget {
            exhausted = false;
            break;
        }
        match enumerator.next() {
            Some(result) => {
                samples.push(ResultSample {
                    elapsed: start.elapsed(),
                    width: result.width,
                    fill: result.fill_in,
                });
            }
            None => break,
        }
    }
    AlgorithmRun {
        algorithm: "ckk".to_string(),
        init,
        samples,
        total: start.elapsed(),
        exhausted,
    }
}

/// The outcome of comparing the algorithms on a single graph (the raw
/// material of one Table 2 row and of the Figure 8 series).
#[derive(Clone, Debug)]
pub struct GraphComparison {
    /// Instance name.
    pub instance: String,
    /// Number of vertices and edges.
    pub n: u32,
    /// Number of edges.
    pub m: usize,
    /// RankedTriang optimizing width, if its initialization fit the budget.
    pub ranked_width: Option<AlgorithmRun>,
    /// RankedTriang optimizing fill-in, if its initialization fit the budget.
    pub ranked_fill: Option<AlgorithmRun>,
    /// The CKK baseline run.
    pub ckk: AlgorithmRun,
}

/// Compares the algorithms on one graph with a per-run wall-clock budget.
pub fn compare_on_graph(name: &str, g: &Graph, budget: Duration) -> GraphComparison {
    GraphComparison {
        instance: name.to_string(),
        n: g.n(),
        m: g.m(),
        ranked_width: run_ranked(g, CostKind::Width, budget),
        ranked_fill: run_ranked(g, CostKind::Fill, budget),
        ckk: run_ckk(g, budget),
    }
}

/// Figure 9: the results-over-time series of both algorithms on one graph,
/// reported as (elapsed, width) samples.
pub fn timeline_study(g: &Graph, budget: Duration) -> (Option<AlgorithmRun>, AlgorithmRun) {
    (run_ranked(g, CostKind::Width, budget), run_ckk(g, budget))
}

// ---------------------------------------------------------------------------
// Rendering helpers
// ---------------------------------------------------------------------------

/// Renders rows as CSV (headers plus one line per row).
pub fn render_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&headers.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Renders rows as a GitHub-flavored Markdown table.
pub fn render_markdown(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&headers.join(" | "));
    out.push_str(" |\n|");
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

/// Formats a duration as fractional seconds with millisecond precision.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{all_datasets, DatasetScale};
    use mtr_graph::paper_example_graph;

    #[test]
    fn classify_easy_graph_terminates() {
        let g = paper_example_graph();
        let budget = TractabilityBudget::default();
        let (status, seps, pmcs, _, _) = classify_graph(&g, &budget);
        assert_eq!(status, TractabilityStatus::Terminated);
        assert_eq!(seps, Some(3));
        assert_eq!(pmcs, Some(6));
    }

    #[test]
    fn classify_with_tiny_budget_fails() {
        let g = crate::random::gnp_connected(40, 0.3, 1);
        let budget = TractabilityBudget {
            minsep_time: Duration::from_micros(1),
            minsep_limit: 10,
            pmc_time: Duration::from_micros(1),
        };
        let (status, _, _, _, _) = classify_graph(&g, &budget);
        assert_eq!(status, TractabilityStatus::NotTerminated);
    }

    #[test]
    fn tractability_study_covers_all_instances() {
        let datasets = all_datasets(DatasetScale::Smoke);
        let budget = TractabilityBudget {
            minsep_time: Duration::from_millis(500),
            minsep_limit: 20_000,
            pmc_time: Duration::from_secs(2),
        };
        let rows = tractability_study(&datasets[..3], &budget);
        let expected: usize = datasets[..3].iter().map(|d| d.len()).sum();
        assert_eq!(rows.len(), expected);
        let dist = minsep_distribution(&rows);
        assert!(dist.len() <= rows.len());
    }

    #[test]
    fn random_minsep_study_produces_grid() {
        let rows = random_minsep_study(&[10, 12], &[0.1, 0.5], 2, 50_000, Duration::from_secs(5));
        assert_eq!(rows.len(), 2 * 2 * 2);
        assert!(rows.iter().all(|r| r.num_minseps.is_some()));
    }

    #[test]
    fn comparison_on_paper_example() {
        let g = paper_example_graph();
        let cmp = compare_on_graph("paper", &g, Duration::from_secs(5));
        let rw = cmp.ranked_width.expect("init fits easily");
        let rf = cmp.ranked_fill.expect("init fits easily");
        assert_eq!(rw.count(), 2);
        assert_eq!(rf.count(), 2);
        assert_eq!(cmp.ckk.count(), 2);
        // The ranked run's first result is optimal.
        assert_eq!(rw.samples[0].width, 2);
        assert_eq!(rf.samples[0].fill, 1);
        assert_eq!(rw.min_width(), Some(2));
        assert_eq!(rf.min_fill(), Some(1));
        assert_eq!(rw.count_width_within(2, 1.1), 1);
        assert!(rw.exhausted && rf.exhausted && cmp.ckk.exhausted);
    }

    #[test]
    fn budget_cuts_off_enumeration() {
        // A graph with many minimal triangulations and a microscopic budget:
        // the enumeration must stop early without panicking.
        let g = crate::random::gnp_connected(25, 0.25, 3);
        let run = run_ckk(&g, Duration::from_millis(1));
        assert!(!run.exhausted || run.count() > 0);
        assert!(run.total < Duration::from_secs(2));
    }

    #[test]
    fn rendering_helpers() {
        let rows = vec![vec!["a".to_string(), "1".to_string()]];
        let csv = render_csv(&["name", "value"], &rows);
        assert_eq!(csv, "name,value\na,1\n");
        let md = render_markdown(&["name", "value"], &rows);
        assert!(md.contains("| a | 1 |"));
        assert_eq!(secs(Duration::from_millis(1500)), "1.500");
    }

    #[test]
    fn algorithm_run_statistics() {
        let run = AlgorithmRun {
            algorithm: "test".into(),
            init: Duration::from_millis(100),
            samples: vec![
                ResultSample {
                    elapsed: Duration::from_millis(150),
                    width: 3,
                    fill: 5,
                },
                ResultSample {
                    elapsed: Duration::from_millis(200),
                    width: 2,
                    fill: 7,
                },
                ResultSample {
                    elapsed: Duration::from_millis(300),
                    width: 4,
                    fill: 5,
                },
            ],
            total: Duration::from_millis(300),
            exhausted: true,
        };
        assert_eq!(run.count(), 3);
        assert_eq!(run.min_width(), Some(2));
        assert_eq!(run.min_fill(), Some(5));
        assert_eq!(run.count_width_within(2, 1.1), 1);
        assert_eq!(run.count_width_within(3, 1.1), 2);
        assert_eq!(run.count_fill_within(5, 1.1), 2);
        assert_eq!(run.average_delay(), Duration::from_millis(100));
        assert!(run.average_delay_no_init() < run.average_delay());
    }
}
