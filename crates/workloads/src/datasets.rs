//! Dataset families mirroring the paper's experimental datasets.
//!
//! The paper evaluates on four sources: probabilistic graphical models from
//! the PIC 2011 challenge, Gaifman graphs of TPC-H queries, PACE 2016
//! treewidth instances, and Erdős–Rényi random graphs. Those files are not
//! redistributable here, so each family is replaced by a synthetic generator
//! with the same structural character (see DESIGN.md, "Substitutions").
//! Every instance is deterministic (seeded), so experiment output is
//! reproducible run to run.

use crate::decomposable;
use crate::queries;
use crate::random;
use crate::structured;
use crate::traffic;
use mtr_graph::Graph;

/// A named graph instance belonging to a dataset family.
#[derive(Clone, Debug)]
pub struct DatasetInstance {
    /// Instance name (unique within the family).
    pub name: String,
    /// The graph.
    pub graph: Graph,
}

/// A dataset family (one row of the paper's Figure 5 / Table 2).
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Family name, echoing the paper's dataset names with a `-like` suffix.
    pub name: String,
    /// The instances.
    pub instances: Vec<DatasetInstance>,
}

impl Dataset {
    fn new(name: &str, instances: Vec<(String, Graph)>) -> Self {
        Dataset {
            name: name.to_string(),
            instances: instances
                .into_iter()
                .map(|(name, graph)| DatasetInstance { name, graph })
                .collect(),
        }
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// `true` when the family has no instances.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }
}

/// How large the generated instances should be.
///
/// `Smoke` keeps every instance small enough for CI-style runs (seconds in
/// total); `Standard` matches the laptop-scale budgets used by the
/// experiment binaries; `Large` pushes towards the regimes where the
/// poly-MS assumption visibly breaks, as in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DatasetScale {
    /// Tiny instances for tests.
    Smoke,
    /// Default experiment scale.
    Standard,
    /// Stress scale.
    Large,
}

/// Builds every dataset family at the requested scale.
pub fn all_datasets(scale: DatasetScale) -> Vec<Dataset> {
    use DatasetScale::*;
    let mut out = Vec::new();

    // --- Grids (PIC2011 "Grids") -----------------------------------------
    let grid_sizes: &[(u32, u32)] = match scale {
        Smoke => &[(3, 3), (3, 4)],
        Standard => &[(3, 3), (4, 4), (4, 5), (5, 5)],
        Large => &[(4, 4), (5, 5), (6, 6), (7, 7)],
    };
    out.push(Dataset::new(
        "grids-like",
        grid_sizes
            .iter()
            .map(|&(r, c)| (format!("grid_{r}x{c}"), structured::grid(r, c)))
            .collect(),
    ));

    // --- Segmentation (noisy grids) --------------------------------------
    let seg_sizes: &[(u32, u32)] = match scale {
        Smoke => &[(3, 3)],
        Standard => &[(3, 4), (4, 4), (4, 5)],
        Large => &[(5, 5), (5, 6), (6, 6)],
    };
    out.push(Dataset::new(
        "segmentation-like",
        seg_sizes
            .iter()
            .enumerate()
            .map(|(i, &(r, c))| {
                (
                    format!("seg_{r}x{c}"),
                    structured::noisy_grid(r, c, 0.3, 100 + i as u64),
                )
            })
            .collect(),
    ));

    // --- DBN (layered temporal models) ------------------------------------
    let dbn_params: &[(u32, u32)] = match scale {
        Smoke => &[(3, 3)],
        Standard => &[(3, 4), (4, 4), (5, 4)],
        Large => &[(5, 5), (6, 5), (6, 6)],
    };
    out.push(Dataset::new(
        "dbn-like",
        dbn_params
            .iter()
            .enumerate()
            .map(|(i, &(slices, per))| {
                (
                    format!("dbn_{slices}x{per}"),
                    structured::dbn_like(slices, per, 0.4, 0.15, 200 + i as u64),
                )
            })
            .collect(),
    ));

    // --- Object detection (core clique + parts) ---------------------------
    let obj_params: &[(u32, u32, u32)] = match scale {
        Smoke => &[(4, 8, 2)],
        Standard => &[(4, 12, 2), (5, 16, 2), (5, 20, 3)],
        Large => &[(6, 24, 3), (6, 30, 3), (7, 30, 3)],
    };
    out.push(Dataset::new(
        "object-detection-like",
        obj_params
            .iter()
            .enumerate()
            .map(|(i, &(core, parts, attach))| {
                (
                    format!("obj_{core}_{parts}"),
                    structured::object_detection_like(core, parts, attach, 300 + i as u64),
                )
            })
            .collect(),
    ));

    // --- CSP (coloring-style graphs: Mycielski + queens) ------------------
    let csp: Vec<(String, Graph)> = match scale {
        Smoke => vec![
            ("myciel3".into(), structured::mycielski(3)),
            ("queens4".into(), structured::queens(4)),
        ],
        Standard => vec![
            ("myciel4".into(), structured::mycielski(4)),
            ("myciel5".into(), structured::mycielski(5)),
            ("queens5".into(), structured::queens(5)),
        ],
        Large => vec![
            ("myciel5".into(), structured::mycielski(5)),
            ("myciel6".into(), structured::mycielski(6)),
            ("queens6".into(), structured::queens(6)),
            ("queens7".into(), structured::queens(7)),
        ],
    };
    out.push(Dataset::new("csp-like", csp));

    // --- Promedas (dense noisy diagnostic networks: hard for poly-MS) -----
    let promedas_params: &[(u32, f64)] = match scale {
        Smoke => &[(18, 0.25)],
        Standard => &[(30, 0.25), (35, 0.25)],
        Large => &[(45, 0.25), (55, 0.25), (65, 0.3)],
    };
    out.push(Dataset::new(
        "promedas-like",
        promedas_params
            .iter()
            .enumerate()
            .map(|(i, &(n, p))| {
                (
                    format!("promedas_{n}"),
                    random::gnp_connected(n, p, 400 + i as u64),
                )
            })
            .collect(),
    ));

    // --- TPC-H (join query Gaifman graphs) ---------------------------------
    let tpch: Vec<(String, Graph)> = vec![
        ("chain5".into(), queries::chain_query(5).primal_graph()),
        ("star4".into(), queries::star_query(4).primal_graph()),
        (
            "snowflake3x2".into(),
            queries::snowflake_query(3, 2).primal_graph(),
        ),
        ("cycle6".into(), queries::cycle_query(6).primal_graph()),
        ("tpch2".into(), queries::tpch_like_query(2).primal_graph()),
        ("tpch4".into(), queries::tpch_like_query(4).primal_graph()),
    ];
    out.push(Dataset::new("tpch-like", tpch));

    // --- PACE 2016, 100-second track (smaller instances) -------------------
    let pace100: Vec<(String, Graph)> = match scale {
        Smoke => vec![
            ("petersen".into(), structured::petersen()),
            ("sp20".into(), structured::series_parallel(20, 500)),
        ],
        Standard | Large => vec![
            ("petersen".into(), structured::petersen()),
            ("sp30".into(), structured::series_parallel(30, 500)),
            ("sp60".into(), structured::series_parallel(60, 501)),
            (
                "pkt_30_4".into(),
                random::random_partial_k_tree(30, 4, 0.8, 502),
            ),
            ("tree40+".into(), {
                // A tree with a few extra edges (near-tree control-flow shape).
                let mut g = random::random_tree(40, 503);
                g.add_edge(0, 20);
                g.add_edge(5, 30);
                g.add_edge(10, 35);
                g
            }),
        ],
    };
    out.push(Dataset::new("pace100s-like", pace100));

    // --- PACE 2016, 1000-second track (larger / denser) --------------------
    let pace1000: Vec<(String, Graph)> = match scale {
        Smoke => vec![(
            "pkt_15_3".into(),
            random::random_partial_k_tree(15, 3, 0.9, 600),
        )],
        Standard => vec![
            (
                "pkt_40_5".into(),
                random::random_partial_k_tree(40, 5, 0.85, 600),
            ),
            ("gnp40_10".into(), random::gnp_connected(40, 0.10, 601)),
        ],
        Large => vec![
            (
                "pkt_60_6".into(),
                random::random_partial_k_tree(60, 6, 0.85, 600),
            ),
            ("gnp60_10".into(), random::gnp_connected(60, 0.10, 601)),
            ("gnp70_15".into(), random::gnp_connected(70, 0.15, 602)),
        ],
    };
    out.push(Dataset::new("pace1000s-like", pace1000));

    // --- Hard dense families (Alchemy / Pedigree / Protein stand-ins) ------
    let hard_params: &[(u32, f64)] = match scale {
        Smoke => &[(20, 0.4)],
        Standard => &[(35, 0.35), (40, 0.35)],
        Large => &[(50, 0.35), (60, 0.35), (70, 0.4)],
    };
    out.push(Dataset::new(
        "protein-like",
        hard_params
            .iter()
            .enumerate()
            .map(|(i, &(n, p))| {
                (
                    format!("protein_{n}"),
                    random::gnp_connected(n, p, 700 + i as u64),
                )
            })
            .collect(),
    ));

    // --- Decomposable instances (clique-separator atom structure) ----------
    let decomposable: Vec<(String, Graph)> = match scale {
        Smoke => vec![
            ("glued3x3".into(), decomposable::glued_grids(3, 3, 2)),
            ("staro3x3".into(), decomposable::star_of_cliques(3, 3, 2)),
            (
                "bridges2x8".into(),
                decomposable::gnp_with_bridges(2, 8, 0.3, 800),
            ),
        ],
        Standard => vec![
            ("glued4x4".into(), decomposable::glued_grids(4, 4, 2)),
            ("staro4x4".into(), decomposable::star_of_cliques(4, 4, 2)),
            (
                "bridges3x12".into(),
                decomposable::gnp_with_bridges(3, 12, 0.25, 800),
            ),
        ],
        Large => vec![
            ("glued5x5".into(), decomposable::glued_grids(5, 5, 3)),
            ("staro6x5".into(), decomposable::star_of_cliques(6, 5, 3)),
            (
                "bridges4x16".into(),
                decomposable::gnp_with_bridges(4, 16, 0.25, 800),
            ),
        ],
    };
    out.push(Dataset::new("decomposable-like", decomposable));

    // --- Evolving graphs (cross-session cache reuse) ------------------------
    // One instance per snapshot of an edit sequence: consecutive instances
    // share all but one atom, which is what the atom cache exploits.
    let (blobs, blob_n, p, edits): (u32, u32, f64, u32) = match scale {
        Smoke => (2, 6, 0.35, 2),
        Standard => (3, 10, 0.3, 4),
        Large => (4, 14, 0.25, 6),
    };
    out.push(Dataset::new(
        "evolving-like",
        decomposable::evolving_sequence(blobs, blob_n, p, edits, 900)
            .into_iter()
            .enumerate()
            .map(|(i, g)| (format!("evolve_step{i}"), g))
            .collect(),
    ));

    // --- Service traffic (the mtr-serve request mix) ------------------------
    // A slice of a seeded request trace: repeats and isomorphic relabelings
    // of decomposable bases interleaved with fresh instances — the daemon's
    // warm/cold admission workload (see `crate::traffic`).
    let (requests, t_blobs, t_blob_n): (usize, u32, u32) = match scale {
        Smoke => (6, 2, 6),
        Standard => (12, 3, 9),
        Large => (20, 4, 12),
    };
    out.push(Dataset::new(
        "traffic-like",
        traffic::trace(
            requests,
            t_blobs,
            t_blob_n,
            traffic::TrafficMix::default_mix(),
            1200,
        )
        .into_iter()
        .map(|r| {
            let tag = match r.kind {
                traffic::TrafficKind::Repeat => "repeat",
                traffic::TrafficKind::Isomorphic => "iso",
                traffic::TrafficKind::Fresh => "fresh",
            };
            (format!("req{:02}_{}_of{}", r.index, tag, r.base), r.graph)
        })
        .collect(),
    ));

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_datasets_are_small_and_nonempty() {
        let datasets = all_datasets(DatasetScale::Smoke);
        assert!(datasets.len() >= 8);
        for d in &datasets {
            assert!(!d.is_empty(), "{} has no instances", d.name);
            for inst in &d.instances {
                assert!(inst.graph.n() > 0);
                assert!(
                    inst.graph.n() <= 60,
                    "{} too large for smoke scale",
                    inst.name
                );
            }
        }
    }

    #[test]
    fn instance_names_are_unique_within_a_family() {
        for scale in [
            DatasetScale::Smoke,
            DatasetScale::Standard,
            DatasetScale::Large,
        ] {
            for d in all_datasets(scale) {
                let mut names: Vec<&str> = d.instances.iter().map(|i| i.name.as_str()).collect();
                names.sort_unstable();
                names.dedup();
                assert_eq!(names.len(), d.len(), "duplicate names in {}", d.name);
            }
        }
    }

    #[test]
    fn datasets_are_reproducible() {
        let a = all_datasets(DatasetScale::Standard);
        let b = all_datasets(DatasetScale::Standard);
        for (da, db) in a.iter().zip(b.iter()) {
            assert_eq!(da.name, db.name);
            for (ia, ib) in da.instances.iter().zip(db.instances.iter()) {
                assert_eq!(ia.graph, ib.graph, "instance {} not deterministic", ia.name);
            }
        }
    }

    #[test]
    fn scales_grow() {
        let smoke: usize = all_datasets(DatasetScale::Smoke)
            .iter()
            .flat_map(|d| d.instances.iter())
            .map(|i| i.graph.n() as usize)
            .sum();
        let large: usize = all_datasets(DatasetScale::Large)
            .iter()
            .flat_map(|d| d.instances.iter())
            .map(|i| i.graph.n() as usize)
            .sum();
        assert!(large > smoke);
    }
}
