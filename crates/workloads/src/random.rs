//! Random graph generators.
//!
//! The paper's random workload is the Erdős–Rényi model `G(n, p)`: `n`
//! vertices, each pair independently connected with probability `p`
//! (Section 7.1). The generators here are seeded so every experiment is
//! reproducible.

use mtr_graph::{Graph, Vertex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples an Erdős–Rényi graph `G(n, p)` with the given seed.
pub fn gnp(n: u32, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// Samples `G(n, p)` and then connects the components with uniformly chosen
/// bridge edges, so the result is always connected (useful for experiments
/// where per-component behaviour would only add noise).
pub fn gnp_connected(n: u32, p: f64, seed: u64) -> Graph {
    let mut g = gnp(n, p, seed);
    if n == 0 {
        return g;
    }
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x9E37_79B9_7F4A_7C15));
    loop {
        let comps = g.components();
        if comps.len() <= 1 {
            break;
        }
        // Connect the first two components with a random bridge.
        let a = comps[0].to_vec();
        let b = comps[1].to_vec();
        let u = a[rng.gen_range(0..a.len())];
        let v = b[rng.gen_range(0..b.len())];
        g.add_edge(u, v);
    }
    g
}

/// Samples a uniformly random labelled tree on `n` vertices (via a random
/// Prüfer sequence); trees are the extreme sparse case of the random study.
pub fn random_tree(n: u32, seed: u64) -> Graph {
    let mut g = Graph::new(n);
    if n <= 1 {
        return g;
    }
    if n == 2 {
        g.add_edge(0, 1);
        return g;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let prufer: Vec<u32> = (0..n - 2).map(|_| rng.gen_range(0..n)).collect();
    let mut degree = vec![1u32; n as usize];
    for &x in &prufer {
        degree[x as usize] += 1;
    }
    let mut leaves: std::collections::BinaryHeap<std::cmp::Reverse<u32>> = (0..n)
        .filter(|&v| degree[v as usize] == 1)
        .map(std::cmp::Reverse)
        .collect();
    for &x in &prufer {
        let std::cmp::Reverse(leaf) = leaves.pop().expect("a leaf always exists");
        g.add_edge(leaf, x);
        degree[x as usize] -= 1;
        if degree[x as usize] == 1 {
            leaves.push(std::cmp::Reverse(x));
        }
    }
    let std::cmp::Reverse(a) = leaves.pop().expect("two leaves remain");
    let std::cmp::Reverse(b) = leaves.pop().expect("two leaves remain");
    g.add_edge(a, b);
    g
}

/// A random partial k-tree: a k-tree (maximal graph of treewidth `k`) built
/// by repeated simplicial additions, from which each edge is then kept with
/// probability `keep`. Useful for generating graphs whose treewidth is
/// bounded by construction.
pub fn random_partial_k_tree(n: u32, k: u32, keep: f64, seed: u64) -> Graph {
    assert!(n > k, "need more vertices than the clique size");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::complete(k + 1).resized_to(n);
    // Track the cliques a new vertex can attach to.
    let mut cliques: Vec<Vec<Vertex>> = vec![(0..=k).collect()];
    for v in (k + 1)..n {
        let base = cliques[rng.gen_range(0..cliques.len())].clone();
        // Attach v to a random k-subset of the chosen (k+1)-clique.
        let drop = rng.gen_range(0..base.len());
        let attach: Vec<Vertex> = base
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != drop)
            .map(|(_, &x)| x)
            .collect();
        for &u in &attach {
            g.add_edge(u, v);
        }
        let mut new_clique = attach;
        new_clique.push(v);
        cliques.push(new_clique);
    }
    // Thin the edges.
    let mut thinned = Graph::new(n);
    for (u, v) in g.edges() {
        if rng.gen_bool(keep) {
            thinned.add_edge(u, v);
        }
    }
    thinned
}

/// Extension trait used by the generators to grow a graph's vertex range.
trait Resized {
    fn resized_to(&self, n: u32) -> Graph;
}

impl Resized for Graph {
    fn resized_to(&self, n: u32) -> Graph {
        assert!(n >= self.n());
        let mut g = Graph::new(n);
        for (u, v) in self.edges() {
            g.add_edge(u, v);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(10, 0.0, 1).m(), 0);
        assert_eq!(gnp(10, 1.0, 1).m(), 45);
        assert_eq!(gnp(0, 0.5, 1).n(), 0);
    }

    #[test]
    fn gnp_is_reproducible() {
        let a = gnp(30, 0.3, 7);
        let b = gnp(30, 0.3, 7);
        assert_eq!(a, b);
        let c = gnp(30, 0.3, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn gnp_edge_count_is_plausible() {
        let g = gnp(50, 0.2, 3);
        let expected = 0.2 * (50.0 * 49.0 / 2.0);
        let m = g.m() as f64;
        assert!(
            (m - expected).abs() < expected * 0.5,
            "m = {m}, expected ≈ {expected}"
        );
    }

    #[test]
    fn gnp_connected_is_connected() {
        for seed in 0..5 {
            let g = gnp_connected(40, 0.05, seed);
            assert!(g.is_connected());
        }
        assert!(gnp_connected(1, 0.5, 0).is_connected());
    }

    #[test]
    fn random_tree_is_a_tree() {
        for seed in 0..5 {
            let t = random_tree(20, seed);
            assert_eq!(t.m(), 19);
            assert!(t.is_connected());
            assert!(mtr_chordal::is_chordal(&t));
        }
        assert_eq!(random_tree(1, 0).m(), 0);
        assert_eq!(random_tree(2, 0).m(), 1);
    }

    #[test]
    fn partial_k_tree_has_bounded_treewidth_skeleton() {
        let g = random_partial_k_tree(15, 3, 1.0, 11);
        assert!(g.is_connected());
        // A full k-tree on n vertices has k(k+1)/2 + (n-k-1)k edges.
        assert_eq!(g.m(), 6 + 11 * 3);
        let thinned = random_partial_k_tree(15, 3, 0.5, 11);
        assert!(thinned.m() <= g.m());
    }
}
