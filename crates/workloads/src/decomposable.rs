//! Decomposable graph families: instances built to have small clique
//! minimal separators, so the `mtr-reduce` atom decomposition splits them
//! into much smaller independent parts.
//!
//! These are the stress instances for the factorized ranked enumeration:
//! the direct engine pays the separator/PMC machinery on the glued graph,
//! while the reduced engine pays it per atom.

use crate::random::gnp_connected;
use crate::structured::grid;
use mtr_graph::{Graph, Vertex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Two `rows × cols` grids glued on a shared clique of `clique` vertices.
///
/// Vertices `0..rows*cols` form the first grid, the next `rows*cols` the
/// second, and the last `clique` vertices a complete separator `S`; vertex
/// `S[i]` is attached to cell `(i % rows, 0)` of both grids. Removing `S`
/// disconnects the grids, so `S` is a clique minimal separator and the
/// atoms are (at most) the two grids plus `S`.
pub fn glued_grids(rows: u32, cols: u32, clique: u32) -> Graph {
    let per = rows * cols;
    let n = 2 * per + clique;
    let mut g = Graph::new(n);
    let add_grid = |g: &mut Graph, offset: u32| {
        let grid = grid(rows, cols);
        for (u, v) in grid.edges() {
            g.add_edge(offset + u, offset + v);
        }
    };
    add_grid(&mut g, 0);
    add_grid(&mut g, per);
    for i in 0..clique {
        for j in (i + 1)..clique {
            g.add_edge(2 * per + i, 2 * per + j);
        }
        // Anchor cell (i % rows, 0) in each grid.
        let anchor = (i % rows) * cols;
        g.add_edge(2 * per + i, anchor);
        g.add_edge(2 * per + i, per + anchor);
    }
    g
}

/// A star of cliques: a central clique of `center` vertices with `arms`
/// outer cliques of `arm_size` vertices each, every arm vertex adjacent to
/// every center vertex.
///
/// The graph is chordal (its clique tree is the star), so every atom of
/// the decomposition is a clique: the reduced enumeration is O(1) per atom
/// while the direct engine still has to enumerate the separators and PMCs
/// of the whole graph.
pub fn star_of_cliques(arms: u32, arm_size: u32, center: u32) -> Graph {
    let n = center + arms * arm_size;
    let mut g = Graph::new(n);
    for u in 0..center {
        for v in (u + 1)..center {
            g.add_edge(u, v);
        }
    }
    for a in 0..arms {
        let base = center + a * arm_size;
        for i in 0..arm_size {
            for j in (i + 1)..arm_size {
                g.add_edge(base + i, base + j);
            }
            for c in 0..center {
                g.add_edge(base + i, c);
            }
        }
    }
    g
}

/// A chain of `blobs` connected `G(n, p)` blobs of `blob_n` vertices each,
/// consecutive blobs joined by a single bridge edge between uniformly
/// chosen endpoints.
///
/// Bridge endpoints are cut vertices, i.e. clique minimal separators of
/// size one: the atoms are the blobs (plus the bridge edges), so the
/// reduced enumeration never sees more than one blob at a time.
pub fn gnp_with_bridges(blobs: u32, blob_n: u32, p: f64, seed: u64) -> Graph {
    let n = blobs * blob_n;
    let mut g = Graph::new(n);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0xB71D_6E5B));
    for b in 0..blobs {
        let blob = gnp_connected(blob_n, p, seed.wrapping_add(b as u64));
        let offset = b * blob_n;
        for (u, v) in blob.edges() {
            g.add_edge(offset + u, offset + v);
        }
        if b > 0 {
            let u: Vertex = (b - 1) * blob_n + rng.gen_range(0..blob_n);
            let v: Vertex = offset + rng.gen_range(0..blob_n);
            g.add_edge(u, v);
        }
    }
    g
}

/// An evolving graph: a base chain of bridged `G(n, p)` blobs (see
/// [`gnp_with_bridges`]) followed by `edits` cumulative single-edge
/// changes, each adding one missing edge *inside* a randomly chosen blob.
/// Returns the `edits + 1` snapshots, base first.
///
/// This is the cross-session cache-reuse workload: consecutive snapshots
/// differ in exactly one blob, so a cache-enabled session on snapshot
/// `i + 1` reuses the ranked prefixes of every atom it shares with
/// snapshot `i` (all but one blob) and only recomputes the edited atom.
pub fn evolving_sequence(blobs: u32, blob_n: u32, p: f64, edits: u32, seed: u64) -> Vec<Graph> {
    assert!(blob_n >= 2, "blobs need at least two vertices to edit");
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x5E9_0E4C));
    let mut current = gnp_with_bridges(blobs, blob_n, p, seed);
    let mut out = Vec::with_capacity(edits as usize + 1);
    out.push(current.clone());
    for _ in 0..edits {
        // Pick a blob, then a missing intra-blob edge; adding (never
        // removing) keeps every snapshot connected. A complete blob is
        // skipped in favor of the next one — the random draw happens once
        // per edit, so the `attempt` offset provably visits every blob.
        let mut added = false;
        let chosen = rng.gen_range(0..blobs);
        for attempt in 0..blobs {
            let b = (chosen + attempt) % blobs;
            let offset = b * blob_n;
            let candidates: Vec<(Vertex, Vertex)> = (0..blob_n)
                .flat_map(|i| ((i + 1)..blob_n).map(move |j| (offset + i, offset + j)))
                .filter(|&(u, v)| !current.has_edge(u, v))
                .collect();
            if let Some(&(u, v)) = candidates.get(rng.gen_range(0..candidates.len().max(1))) {
                current.add_edge(u, v);
                added = true;
                break;
            }
        }
        assert!(added, "every blob is complete; nothing left to edit");
        out.push(current.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtr_chordal::is_chordal;

    #[test]
    fn glued_grids_shape_and_separator() {
        let g = glued_grids(3, 3, 2);
        assert_eq!(g.n(), 20);
        assert!(g.is_connected());
        // The clique vertices separate the two grids.
        let sep = mtr_graph::VertexSet::from_slice(20, &[18, 19]);
        assert!(g.is_clique(&sep));
        assert!(g.separates(&sep, 0, 9));
        assert!(!is_chordal(&g));
    }

    #[test]
    fn star_of_cliques_is_chordal() {
        let g = star_of_cliques(3, 3, 2);
        assert_eq!(g.n(), 11);
        assert!(g.is_connected());
        assert!(is_chordal(&g));
        // Every arm vertex sees its arm plus the whole center.
        for v in 2..11 {
            assert_eq!(g.degree(v), 2 + 2);
        }
    }

    #[test]
    fn evolving_sequence_edits_one_blob_edge_at_a_time() {
        let steps = evolving_sequence(3, 6, 0.35, 4, 42);
        assert_eq!(steps.len(), 5);
        assert_eq!(steps[0], gnp_with_bridges(3, 6, 0.35, 42));
        for w in steps.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            assert_eq!(b.m(), a.m() + 1, "each step adds exactly one edge");
            assert!(b.is_connected());
            // The new edge lies inside one blob (no new bridges).
            let new_edge = b
                .edges()
                .find(|&(u, v)| !a.has_edge(u, v))
                .expect("one edge was added");
            assert_eq!(new_edge.0 / 6, new_edge.1 / 6, "edit stays intra-blob");
        }
        // Deterministic for a fixed seed.
        assert_eq!(steps, evolving_sequence(3, 6, 0.35, 4, 42));
        // Different seeds diverge.
        assert_ne!(steps, evolving_sequence(3, 6, 0.35, 4, 43));
    }

    #[test]
    fn evolving_sequence_exhausts_blobs_without_panicking() {
        // Drive each sequence to its exact edit capacity (every missing
        // intra-blob edge): blobs saturate at different times, so the
        // fallback must walk on to a still-editable blob — a re-drawing
        // fallback would panic spuriously here.
        for seed in 0..20 {
            let base = gnp_with_bridges(2, 4, 0.5, seed);
            let capacity: usize = (0..2u32)
                .map(|b| {
                    (0..4u32)
                        .flat_map(|i| ((i + 1)..4).map(move |j| (4 * b + i, 4 * b + j)))
                        .filter(|&(u, v)| !base.has_edge(u, v))
                        .count()
                })
                .sum();
            let steps = evolving_sequence(2, 4, 0.5, capacity as u32, seed);
            assert_eq!(steps.len(), capacity + 1, "seed {seed}");
            for w in steps.windows(2) {
                assert_eq!(w[1].m(), w[0].m() + 1);
            }
            // The final snapshot has both blobs complete.
            assert_eq!(steps.last().unwrap().m(), base.m() + capacity);
        }
    }

    #[test]
    fn gnp_with_bridges_chains_blobs() {
        let g = gnp_with_bridges(3, 8, 0.4, 11);
        assert_eq!(g.n(), 24);
        assert!(g.is_connected());
        // Deterministic for a fixed seed.
        assert_eq!(g, gnp_with_bridges(3, 8, 0.4, 11));
        // Exactly two bridge edges between consecutive blob ranges.
        let crossing = g.edges().filter(|&(u, v)| u / 8 != v / 8).count();
        assert_eq!(crossing, 2);
    }
}
