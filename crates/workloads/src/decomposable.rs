//! Decomposable graph families: instances built to have small clique
//! minimal separators, so the `mtr-reduce` atom decomposition splits them
//! into much smaller independent parts.
//!
//! These are the stress instances for the factorized ranked enumeration:
//! the direct engine pays the separator/PMC machinery on the glued graph,
//! while the reduced engine pays it per atom.

use crate::random::gnp_connected;
use crate::structured::grid;
use mtr_graph::{Graph, Vertex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Two `rows × cols` grids glued on a shared clique of `clique` vertices.
///
/// Vertices `0..rows*cols` form the first grid, the next `rows*cols` the
/// second, and the last `clique` vertices a complete separator `S`; vertex
/// `S[i]` is attached to cell `(i % rows, 0)` of both grids. Removing `S`
/// disconnects the grids, so `S` is a clique minimal separator and the
/// atoms are (at most) the two grids plus `S`.
pub fn glued_grids(rows: u32, cols: u32, clique: u32) -> Graph {
    let per = rows * cols;
    let n = 2 * per + clique;
    let mut g = Graph::new(n);
    let add_grid = |g: &mut Graph, offset: u32| {
        let grid = grid(rows, cols);
        for (u, v) in grid.edges() {
            g.add_edge(offset + u, offset + v);
        }
    };
    add_grid(&mut g, 0);
    add_grid(&mut g, per);
    for i in 0..clique {
        for j in (i + 1)..clique {
            g.add_edge(2 * per + i, 2 * per + j);
        }
        // Anchor cell (i % rows, 0) in each grid.
        let anchor = (i % rows) * cols;
        g.add_edge(2 * per + i, anchor);
        g.add_edge(2 * per + i, per + anchor);
    }
    g
}

/// A star of cliques: a central clique of `center` vertices with `arms`
/// outer cliques of `arm_size` vertices each, every arm vertex adjacent to
/// every center vertex.
///
/// The graph is chordal (its clique tree is the star), so every atom of
/// the decomposition is a clique: the reduced enumeration is O(1) per atom
/// while the direct engine still has to enumerate the separators and PMCs
/// of the whole graph.
pub fn star_of_cliques(arms: u32, arm_size: u32, center: u32) -> Graph {
    let n = center + arms * arm_size;
    let mut g = Graph::new(n);
    for u in 0..center {
        for v in (u + 1)..center {
            g.add_edge(u, v);
        }
    }
    for a in 0..arms {
        let base = center + a * arm_size;
        for i in 0..arm_size {
            for j in (i + 1)..arm_size {
                g.add_edge(base + i, base + j);
            }
            for c in 0..center {
                g.add_edge(base + i, c);
            }
        }
    }
    g
}

/// A chain of `blobs` connected `G(n, p)` blobs of `blob_n` vertices each,
/// consecutive blobs joined by a single bridge edge between uniformly
/// chosen endpoints.
///
/// Bridge endpoints are cut vertices, i.e. clique minimal separators of
/// size one: the atoms are the blobs (plus the bridge edges), so the
/// reduced enumeration never sees more than one blob at a time.
pub fn gnp_with_bridges(blobs: u32, blob_n: u32, p: f64, seed: u64) -> Graph {
    let n = blobs * blob_n;
    let mut g = Graph::new(n);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0xB71D_6E5B));
    for b in 0..blobs {
        let blob = gnp_connected(blob_n, p, seed.wrapping_add(b as u64));
        let offset = b * blob_n;
        for (u, v) in blob.edges() {
            g.add_edge(offset + u, offset + v);
        }
        if b > 0 {
            let u: Vertex = (b - 1) * blob_n + rng.gen_range(0..blob_n);
            let v: Vertex = offset + rng.gen_range(0..blob_n);
            g.add_edge(u, v);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtr_chordal::is_chordal;

    #[test]
    fn glued_grids_shape_and_separator() {
        let g = glued_grids(3, 3, 2);
        assert_eq!(g.n(), 20);
        assert!(g.is_connected());
        // The clique vertices separate the two grids.
        let sep = mtr_graph::VertexSet::from_slice(20, &[18, 19]);
        assert!(g.is_clique(&sep));
        assert!(g.separates(&sep, 0, 9));
        assert!(!is_chordal(&g));
    }

    #[test]
    fn star_of_cliques_is_chordal() {
        let g = star_of_cliques(3, 3, 2);
        assert_eq!(g.n(), 11);
        assert!(g.is_connected());
        assert!(is_chordal(&g));
        // Every arm vertex sees its arm plus the whole center.
        for v in 2..11 {
            assert_eq!(g.degree(v), 2 + 2);
        }
    }

    #[test]
    fn gnp_with_bridges_chains_blobs() {
        let g = gnp_with_bridges(3, 8, 0.4, 11);
        assert_eq!(g.n(), 24);
        assert!(g.is_connected());
        // Deterministic for a fixed seed.
        assert_eq!(g, gnp_with_bridges(3, 8, 0.4, 11));
        // Exactly two bridge edges between consecutive blob ranges.
        let crossing = g.edges().filter(|&(u, v)| u / 8 != v / 8).count();
        assert_eq!(crossing, 2);
    }
}
