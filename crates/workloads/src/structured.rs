//! Structured graph families standing in for the paper's real-world
//! datasets (PIC 2011 probabilistic graphical models and PACE 2016
//! treewidth instances).
//!
//! Each generator mirrors the *structure* of one dataset family so that the
//! tractability and quality experiments traverse the same regimes: grid
//! Markov networks (image segmentation / grids), layered dynamic Bayesian
//! networks, star-of-cliques object-detection models, Mycielski graphs
//! (graph-coloring CSPs), series-parallel control-flow graphs, and small
//! classic named graphs.

use mtr_graph::{Graph, Vertex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An `rows × cols` grid graph (the primal graph of a lattice Markov random
/// field, as in the paper's "Grids" and "Segmentation" datasets).
pub fn grid(rows: u32, cols: u32) -> Graph {
    let idx = |r: u32, c: u32| r * cols + c;
    let mut g = Graph::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(idx(r, c), idx(r, c + 1));
            }
            if r + 1 < rows {
                g.add_edge(idx(r, c), idx(r + 1, c));
            }
        }
    }
    g
}

/// A grid with extra random "diagonal" potentials, mimicking segmentation
/// models whose factors connect nearby but not strictly adjacent pixels.
pub fn noisy_grid(rows: u32, cols: u32, extra_probability: f64, seed: u64) -> Graph {
    let mut g = grid(rows, cols);
    let idx = |r: u32, c: u32| r * cols + c;
    let mut rng = StdRng::seed_from_u64(seed);
    for r in 0..rows.saturating_sub(1) {
        for c in 0..cols.saturating_sub(1) {
            if rng.gen_bool(extra_probability) {
                g.add_edge(idx(r, c), idx(r + 1, c + 1));
            }
            if rng.gen_bool(extra_probability) {
                g.add_edge(idx(r, c + 1), idx(r + 1, c));
            }
        }
    }
    g
}

/// A layered dynamic-Bayesian-network-style graph: `slices` time slices of
/// `per_slice` state variables; variables within a slice form a sparse
/// random graph and consecutive slices are joined by per-variable
/// transition edges plus a few random cross edges.
pub fn dbn_like(slices: u32, per_slice: u32, intra_p: f64, cross_p: f64, seed: u64) -> Graph {
    let n = slices * per_slice;
    let mut g = Graph::new(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let idx = |t: u32, i: u32| t * per_slice + i;
    for t in 0..slices {
        for i in 0..per_slice {
            for j in (i + 1)..per_slice {
                if rng.gen_bool(intra_p) {
                    g.add_edge(idx(t, i), idx(t, j));
                }
            }
            if t + 1 < slices {
                g.add_edge(idx(t, i), idx(t + 1, i));
                for j in 0..per_slice {
                    if j != i && rng.gen_bool(cross_p) {
                        g.add_edge(idx(t, i), idx(t + 1, j));
                    }
                }
            }
        }
    }
    g
}

/// An "object detection"-style model: a small core clique of object
/// variables, with many part variables each connected to a few core
/// variables (star-of-cliques shape with small separators).
pub fn object_detection_like(core: u32, parts: u32, attach: u32, seed: u64) -> Graph {
    assert!(attach <= core);
    let n = core + parts;
    let mut g = Graph::new(n);
    for u in 0..core {
        for v in (u + 1)..core {
            g.add_edge(u, v);
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for p in 0..parts {
        let part = core + p;
        let mut chosen: Vec<Vertex> = Vec::new();
        while chosen.len() < attach as usize {
            let c = rng.gen_range(0..core);
            if !chosen.contains(&c) {
                chosen.push(c);
            }
        }
        for c in chosen {
            g.add_edge(part, c);
        }
    }
    g
}

/// The Mycielski construction applied `k - 2` times to a single edge,
/// producing the triangle-free graph `M_k` with chromatic number `k`
/// (`M_3 = C5`, `M_4` = the Grötzsch graph). The PACE 2016 "coloring" CSP
/// instances in the paper (e.g. `myciel5g`) come from this family.
pub fn mycielski(k: u32) -> Graph {
    assert!(k >= 2, "the construction starts from a single edge (k = 2)");
    let mut g = Graph::from_edges(2, &[(0, 1)]);
    for _ in 2..k {
        g = mycielski_step(&g);
    }
    g
}

/// One Mycielski step: from `G` on vertices `0..n` build a graph on
/// `2n + 1` vertices (the original, one "shadow" per vertex, one apex).
fn mycielski_step(g: &Graph) -> Graph {
    let n = g.n();
    let mut out = Graph::new(2 * n + 1);
    for (u, v) in g.edges() {
        out.add_edge(u, v);
        out.add_edge(u, n + v);
        out.add_edge(v, n + u);
    }
    let apex = 2 * n;
    for u in 0..n {
        out.add_edge(n + u, apex);
    }
    out
}

/// A random series-parallel graph (treewidth ≤ 2), standing in for the
/// control-flow graphs of the PACE 2016 benchmark: start from a single
/// edge and repeatedly apply random series or parallel expansions.
pub fn series_parallel(operations: u32, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    // Edge list over a growing vertex set; start with the edge (0, 1).
    let mut edges: Vec<(Vertex, Vertex)> = vec![(0, 1)];
    let mut n: u32 = 2;
    for _ in 0..operations {
        let pick = rng.gen_range(0..edges.len());
        let (u, v) = edges[pick];
        if rng.gen_bool(0.5) {
            // Series: subdivide the edge with a new vertex.
            edges.swap_remove(pick);
            edges.push((u, n));
            edges.push((n, v));
            n += 1;
        } else {
            // Parallel: add a parallel path of length 2 (simple graphs have
            // no parallel edges, so the duplicate goes through a new vertex).
            edges.push((u, n));
            edges.push((n, v));
            n += 1;
        }
    }
    Graph::from_edges(n, &edges)
}

/// The Petersen graph: a classic "named graph" of the PACE benchmark family.
pub fn petersen() -> Graph {
    let mut g = Graph::new(10);
    for i in 0..5u32 {
        g.add_edge(i, (i + 1) % 5); // outer cycle
        g.add_edge(5 + i, 5 + (i + 2) % 5); // inner pentagram
        g.add_edge(i, 5 + i); // spokes
    }
    g
}

/// The `n`-queens graph: vertices are board squares, edges connect squares
/// that attack each other (row, column or diagonal) — the DIMACS coloring
/// family used by PACE.
pub fn queens(n: u32) -> Graph {
    let idx = |r: u32, c: u32| r * n + c;
    let mut g = Graph::new(n * n);
    for r1 in 0..n {
        for c1 in 0..n {
            for r2 in 0..n {
                for c2 in 0..n {
                    if (r1, c1) >= (r2, c2) {
                        continue;
                    }
                    let same_row = r1 == r2;
                    let same_col = c1 == c2;
                    let same_diag = r1 as i64 - r2 as i64 == c1 as i64 - c2 as i64
                        || r1 as i64 - r2 as i64 == c2 as i64 - c1 as i64;
                    if same_row || same_col || same_diag {
                        g.add_edge(idx(r1, c1), idx(r2, c2));
                    }
                }
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtr_chordal::is_chordal;

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4); // horizontal + vertical edges
        assert!(g.is_connected());
        assert!(!is_chordal(&g));
        assert_eq!(grid(1, 5).m(), 4);
    }

    #[test]
    fn noisy_grid_adds_edges() {
        let base = grid(4, 4);
        let noisy = noisy_grid(4, 4, 1.0, 1);
        assert!(noisy.m() > base.m());
        let clean = noisy_grid(4, 4, 0.0, 1);
        assert_eq!(clean, base);
    }

    #[test]
    fn dbn_is_layered_and_connected_across_slices() {
        let g = dbn_like(4, 5, 0.3, 0.1, 2);
        assert_eq!(g.n(), 20);
        // Per-variable transition edges guarantee connectivity across slices
        // as long as each slice is internally reachable… at minimum the
        // transition edges exist:
        for t in 0..3u32 {
            for i in 0..5u32 {
                assert!(g.has_edge(t * 5 + i, (t + 1) * 5 + i));
            }
        }
    }

    #[test]
    fn object_detection_shape() {
        let g = object_detection_like(5, 20, 2, 3);
        assert_eq!(g.n(), 25);
        // Core is a clique; each part has exactly `attach` neighbors.
        for p in 5..25 {
            assert_eq!(g.degree(p), 2);
        }
        assert_eq!(g.m(), 10 + 40);
    }

    #[test]
    fn mycielski_families() {
        assert_eq!(mycielski(2).n(), 2);
        let m3 = mycielski(3);
        assert_eq!(m3.n(), 5);
        assert_eq!(m3.m(), 5); // C5
        let m4 = mycielski(4); // Grötzsch graph
        assert_eq!(m4.n(), 11);
        assert_eq!(m4.m(), 20);
        // Triangle-free: no clique of size 3.
        let cliques = mtr_chordal::maximal_cliques_bruteforce(&m4);
        assert!(cliques.iter().all(|c| c.len() <= 2));
    }

    #[test]
    fn series_parallel_stays_sparse() {
        let g = series_parallel(30, 9);
        assert!(g.is_connected());
        assert!(g.m() < 2 * g.n() as usize);
    }

    #[test]
    fn petersen_shape() {
        let g = petersen();
        assert_eq!(g.n(), 10);
        assert_eq!(g.m(), 15);
        assert!((0..10).all(|v| g.degree(v) == 3));
    }

    #[test]
    fn queens_graph() {
        let g = queens(4);
        assert_eq!(g.n(), 16);
        assert!(g.is_connected());
        // Every square attacks its whole row and column: degree ≥ 6.
        assert!((0..16).all(|v| g.degree(v) >= 6));
    }
}
