//! `mtr-workloads`: workload generators and the experiment harness.
//!
//! The paper evaluates on probabilistic graphical models (PIC 2011), TPC-H
//! join queries, PACE 2016 treewidth instances and Erdős–Rényi random
//! graphs. This crate provides seeded synthetic generators covering the same
//! structural regimes ([`random`], [`structured`], [`queries`]), instances
//! engineered to exercise the clique-separator atom decomposition
//! ([`decomposable`]), request traces for the `mtr-serve` daemon mixing
//! warm repeats/relabelings with cold instances ([`traffic`]), a registry
//! of dataset families mirroring the paper's datasets ([`datasets`]), and
//! the measurement harness that regenerates each table and figure
//! ([`experiment`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datasets;
pub mod decomposable;
pub mod experiment;
pub mod queries;
pub mod random;
pub mod structured;
pub mod traffic;

pub use datasets::{all_datasets, Dataset, DatasetInstance, DatasetScale};
pub use experiment::{
    classify_graph, compare_on_graph, minsep_distribution, random_minsep_study, render_csv,
    render_markdown, run_ckk, run_ranked, timeline_study, tractability_study, AlgorithmRun,
    CostKind, GraphComparison, ResultSample, TractabilityBudget, TractabilityRow,
    TractabilityStatus,
};
