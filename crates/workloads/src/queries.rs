//! Join-query workloads: TPC-H-like conjunctive queries and their Gaifman
//! (primal) graphs.
//!
//! The paper evaluates on Gaifman graphs of conjunctive queries translated
//! from the TPC-H benchmark and notes they are small enough that all minimal
//! triangulations are produced within seconds. The generators here build
//! query hypergraphs with the same shapes — chain joins, star (fact table
//! with dimensions), snowflake (star of stars) and cycle joins — over
//! TPC-H-like relation arities, and expose both the hypergraph (for
//! hypertree-width-style costs) and its primal graph.

use mtr_graph::{Graph, Hypergraph, Vertex};

/// A join query: named relations over shared variables.
#[derive(Clone, Debug)]
pub struct JoinQuery {
    /// Number of variables.
    pub variables: u32,
    /// The atoms: relation name plus the variables it mentions.
    pub atoms: Vec<(String, Vec<Vertex>)>,
}

impl JoinQuery {
    /// The query's hypergraph (one hyperedge per atom).
    pub fn hypergraph(&self) -> Hypergraph {
        let mut h = Hypergraph::new(self.variables);
        for (_, vars) in &self.atoms {
            h.add_edge_slice(vars);
        }
        h
    }

    /// The Gaifman (primal) graph of the query.
    pub fn primal_graph(&self) -> Graph {
        self.hypergraph().primal_graph()
    }

    /// Number of atoms.
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }
}

/// A chain join `R_1(x_0, x_1) ⋈ R_2(x_1, x_2) ⋈ … ⋈ R_k(x_{k-1}, x_k)`.
pub fn chain_query(k: u32) -> JoinQuery {
    let atoms = (0..k)
        .map(|i| (format!("R{}", i + 1), vec![i, i + 1]))
        .collect();
    JoinQuery {
        variables: k + 1,
        atoms,
    }
}

/// A star join: one fact atom over `dimensions` keys, each key shared with
/// a binary dimension atom carrying one private attribute (the TPC-H
/// `lineitem ⋈ part/supplier/…` shape).
pub fn star_query(dimensions: u32) -> JoinQuery {
    // Variables: keys 0..d, then private attributes d..2d.
    let keys: Vec<Vertex> = (0..dimensions).collect();
    let mut atoms = vec![("Fact".to_string(), keys.clone())];
    for i in 0..dimensions {
        atoms.push((format!("Dim{}", i + 1), vec![i, dimensions + i]));
    }
    JoinQuery {
        variables: 2 * dimensions,
        atoms,
    }
}

/// A snowflake join: a star whose dimensions each have `branch` further
/// child atoms (two levels of normalization).
pub fn snowflake_query(dimensions: u32, branch: u32) -> JoinQuery {
    let mut query = star_query(dimensions);
    let mut next = query.variables;
    for i in 0..dimensions {
        let dim_attr = dimensions + i;
        for b in 0..branch {
            query
                .atoms
                .push((format!("Dim{}_{}", i + 1, b + 1), vec![dim_attr, next]));
            next += 1;
        }
    }
    query.variables = next;
    query
}

/// A cycle join `R_1(x_0, x_1) ⋈ … ⋈ R_k(x_{k-1}, x_0)` — the canonical
/// non-acyclic query.
pub fn cycle_query(k: u32) -> JoinQuery {
    assert!(k >= 3);
    let atoms = (0..k)
        .map(|i| (format!("R{}", i + 1), vec![i, (i + 1) % k]))
        .collect();
    JoinQuery {
        variables: k,
        atoms,
    }
}

/// A TPC-H-like schema join: eight relations with realistic arities joined
/// along key chains (suppliers, parts, orders, lineitems, customers,
/// nation, region), parameterized by how many "lineitem" fan-out copies are
/// included. Produces small, mostly-acyclic Gaifman graphs like the paper's
/// TPC-H workload.
pub fn tpch_like_query(lineitems: u32) -> JoinQuery {
    // Variables (keys): 0=regionkey 1=nationkey 2=custkey 3=orderkey
    // 4=partkey 5=suppkey; then one "price" attribute per lineitem copy.
    let mut atoms = vec![
        ("Region".to_string(), vec![0]),
        ("Nation".to_string(), vec![0, 1]),
        ("Customer".to_string(), vec![1, 2]),
        ("Orders".to_string(), vec![2, 3]),
        ("Part".to_string(), vec![4]),
        ("Supplier".to_string(), vec![1, 5]),
        ("PartSupp".to_string(), vec![4, 5]),
    ];
    let mut next = 6u32;
    for i in 0..lineitems {
        atoms.push((format!("Lineitem{}", i + 1), vec![3, 4, 5, next]));
        next += 1;
    }
    JoinQuery {
        variables: next,
        atoms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtr_chordal::is_chordal;

    #[test]
    fn chain_query_is_acyclic() {
        let q = chain_query(5);
        assert_eq!(q.variables, 6);
        assert_eq!(q.num_atoms(), 5);
        let g = q.primal_graph();
        assert_eq!(g.m(), 5);
        assert!(is_chordal(&g));
    }

    #[test]
    fn star_query_shape() {
        let q = star_query(4);
        let g = q.primal_graph();
        assert_eq!(g.n(), 8);
        // The fact atom makes the 4 keys a clique; each dimension adds a
        // pendant vertex.
        assert_eq!(g.m(), 6 + 4);
        assert!(is_chordal(&g));
    }

    #[test]
    fn snowflake_query_grows() {
        let q = snowflake_query(3, 2);
        assert_eq!(q.variables, 3 * 2 + 6);
        assert_eq!(q.num_atoms(), 1 + 3 + 6);
        assert!(q.primal_graph().is_connected());
    }

    #[test]
    fn cycle_query_is_cyclic() {
        let q = cycle_query(5);
        let g = q.primal_graph();
        assert_eq!(g.m(), 5);
        assert!(!is_chordal(&g));
    }

    #[test]
    fn tpch_like_query_is_small_and_connected() {
        let q = tpch_like_query(2);
        let g = q.primal_graph();
        assert_eq!(g.n(), 8);
        assert!(g.is_connected());
        // The hypergraph covers every variable.
        let h = q.hypergraph();
        assert_eq!(h.num_edges(), 9);
        assert!(h.cover_number(&g.vertex_set()).is_some());
    }
}
