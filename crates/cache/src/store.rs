//! The concurrent, byte-budgeted atom store.

use crate::disk::DiskBackend;
use mtr_graph::{CanonicalKey, Vertex};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Cache metric handles, resolved once per process. Recording is gated
/// inside `mtr-obs` on the global level; these mirror the per-store
/// counters so a fleet of stores aggregates into one registry view.
struct CacheMetrics {
    hits: mtr_obs::Counter,
    misses: mtr_obs::Counter,
    publishes: mtr_obs::Counter,
    evictions: mtr_obs::Counter,
    disk_loads: mtr_obs::Counter,
    disk_errors: mtr_obs::Counter,
    lookup_ns: mtr_obs::Histogram,
    publish_ns: mtr_obs::Histogram,
    disk_load_ns: mtr_obs::Histogram,
}

fn cache_metrics() -> &'static CacheMetrics {
    static METRICS: OnceLock<CacheMetrics> = OnceLock::new();
    METRICS.get_or_init(|| CacheMetrics {
        hits: mtr_obs::counter("cache.hits"),
        misses: mtr_obs::counter("cache.misses"),
        publishes: mtr_obs::counter("cache.publishes"),
        evictions: mtr_obs::counter("cache.evictions"),
        disk_loads: mtr_obs::counter("cache.disk_loads"),
        disk_errors: mtr_obs::counter("cache.disk_errors"),
        lookup_ns: mtr_obs::histogram("cache.lookup_ns"),
        publish_ns: mtr_obs::histogram("cache.publish_ns"),
        disk_load_ns: mtr_obs::histogram("cache.disk_load_ns"),
    })
}

/// The content address of one cached atom enumeration: the canonical form
/// of the atom graph, the cost it is ranked by, and the width bound it was
/// enumerated under. Two sessions agree on a key exactly when their
/// per-atom ranked streams are interchangeable (up to the canonical
/// relabeling each side records).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct AtomKey {
    /// Canonical form of the atom's graph.
    pub graph: CanonicalKey,
    /// Name of the bag cost the stream is ranked by. Shipped costs have
    /// unique names; parameterized custom costs must use distinct names to
    /// be cache-safe (see `BagCost::name` in `mtr-core`).
    pub cost_id: String,
    /// The width bound of the enumeration (`None` = unbounded). Bounded
    /// and unbounded streams differ (the bound prunes), so it is part of
    /// the address.
    pub width_bound: Option<usize>,
}

/// One cached result of an atom's ranked stream: its cost and its fill
/// edges, both in the *canonical* labeling of the atom graph.
#[derive(Clone, Debug, PartialEq)]
pub struct CacheEntry {
    /// The cost value (raw `f64`; `mtr-core`'s `CostValue` round-trips
    /// through it losslessly — infinities never occur in emitted results).
    pub cost: f64,
    /// Fill edges `(u, v)` with `u < v`, canonical vertex ids.
    pub fill: Vec<(Vertex, Vertex)>,
}

/// A ranked prefix of one atom's stream, as stored.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CachedPrefix {
    /// The first `entries.len()` results of the ranked stream, in order.
    pub entries: Vec<CacheEntry>,
    /// `true` when the stream is exhausted after this prefix: the atom has
    /// exactly `entries.len()` minimal triangulations (under the key's
    /// width bound).
    pub complete: bool,
}

impl CachedPrefix {
    /// Approximate heap footprint, used for the byte budget.
    pub fn approx_bytes(&self) -> usize {
        const ENTRY_OVERHEAD: usize = 40; // Vec header + cost + padding
        self.entries
            .iter()
            .map(|e| ENTRY_OVERHEAD + e.fill.len() * 8)
            .sum::<usize>()
            + 64 // slot + key overhead
    }

    /// `true` when `self` carries strictly more information than `other`:
    /// a longer prefix, or the same prefix now known to be complete.
    fn improves_on(&self, other: &CachedPrefix) -> bool {
        self.entries.len() > other.entries.len() || (self.complete && !other.complete)
    }
}

/// Counters and sizes of one [`AtomStore`], snapshot via
/// [`AtomStore::stats`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Keys currently resident in memory.
    pub entries: usize,
    /// Approximate bytes resident in memory.
    pub bytes: usize,
    /// Lookups that found a prefix (memory or disk).
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Prefixes published (stored or extended).
    pub publishes: u64,
    /// Keys evicted to honor the byte budget.
    pub evictions: u64,
    /// Hits served by reading the disk backend.
    pub disk_loads: u64,
    /// Disk backend operations (loads or stores) that failed: I/O
    /// errors, corrupt files, version skew. Every one degraded to a miss
    /// or to in-memory-only behavior; a growing count means the cache
    /// directory is unhealthy.
    pub disk_errors: u64,
}

/// The store-wide health counters: the subset of [`CacheStats`] an
/// operator watches (hit rate, eviction churn, disk health), snapshot
/// via [`AtomStore::store_stats`] without the sizes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups that found a prefix (memory or disk).
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Keys evicted to honor the byte budget.
    pub evictions: u64,
    /// Failed disk backend operations (see [`CacheStats::disk_errors`]).
    pub disk_errors: u64,
}

struct Slot {
    prefix: CachedPrefix,
    bytes: usize,
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<AtomKey, Slot>,
    total_bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    publishes: u64,
    evictions: u64,
    disk_loads: u64,
}

impl Inner {
    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Evicts least-recently-used slots until `total_bytes <= budget`.
    /// O(n) per eviction — fine for the entry counts a byte budget admits.
    fn evict_to(&mut self, budget: usize) {
        while self.total_bytes > budget && !self.map.is_empty() {
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty map has a minimum");
            if let Some(slot) = self.map.remove(&victim) {
                self.total_bytes -= slot.bytes;
                self.evictions += 1;
                cache_metrics().evictions.incr();
            }
        }
    }
}

/// A concurrent map from [`AtomKey`] to the ranked prefix of that atom's
/// minimal-triangulation stream. In-memory LRU with a byte budget by
/// default; optionally backed by an on-disk directory
/// ([`AtomStore::persistent`]) for cross-process reuse. Share across
/// sessions via `Arc` (every constructor returns one).
pub struct AtomStore {
    inner: Mutex<Inner>,
    disk: Option<DiskBackend>,
    byte_budget: AtomicUsize,
    /// Failed disk operations; outside `inner` because they happen
    /// outside the lock.
    disk_errors: AtomicU64,
}

impl std::fmt::Debug for AtomStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("AtomStore")
            .field("byte_budget", &self.byte_budget())
            .field("persistent", &self.disk.is_some())
            .field("stats", &stats)
            .finish()
    }
}

impl AtomStore {
    /// A purely in-memory store holding at most ~`byte_budget` bytes of
    /// cached prefixes (least-recently-used keys evicted beyond that).
    pub fn in_memory(byte_budget: usize) -> Arc<AtomStore> {
        Arc::new(AtomStore {
            inner: Mutex::new(Inner::default()),
            disk: None,
            byte_budget: AtomicUsize::new(byte_budget),
            disk_errors: AtomicU64::new(0),
        })
    }

    /// A store that additionally persists every published prefix into
    /// `dir` (created if missing) and falls back to it on memory misses —
    /// the cross-process warm path. The byte budget governs the in-memory
    /// layer only; the directory grows with the published set.
    pub fn persistent(
        dir: impl AsRef<Path>,
        byte_budget: usize,
    ) -> std::io::Result<Arc<AtomStore>> {
        let disk = DiskBackend::open(dir)?;
        Ok(Arc::new(AtomStore {
            inner: Mutex::new(Inner::default()),
            disk: Some(disk),
            byte_budget: AtomicUsize::new(byte_budget),
            disk_errors: AtomicU64::new(0),
        }))
    }

    /// The configured in-memory byte budget.
    pub fn byte_budget(&self) -> usize {
        self.byte_budget.load(Ordering::Relaxed)
    }

    /// Raises the in-memory byte budget to `at_least` if it is currently
    /// lower (it never shrinks). Sessions sharing one store — notably the
    /// process-wide [`global_store`] — may ask for different budgets; the
    /// store honors the largest request seen.
    pub fn raise_byte_budget(&self, at_least: usize) {
        self.byte_budget.fetch_max(at_least, Ordering::Relaxed);
    }

    /// Reads the disk backend for `key`, timing the read and counting
    /// failures (I/O, corruption, version skew) — every failure reads as
    /// a miss, never as data.
    fn disk_read(&self, key: &AtomKey) -> Option<CachedPrefix> {
        let disk = self.disk.as_ref()?;
        let started = mtr_obs::clock();
        let loaded = disk.load(key);
        cache_metrics().disk_load_ns.record_elapsed(started);
        match loaded {
            Ok(found) => found,
            Err(_) => {
                self.count_disk_error();
                None
            }
        }
    }

    fn count_disk_error(&self) {
        self.disk_errors.fetch_add(1, Ordering::Relaxed);
        cache_metrics().disk_errors.incr();
    }

    /// Looks up the cached prefix for `key`, consulting the disk backend
    /// on a memory miss. Marks the key recently used.
    pub fn lookup(&self, key: &AtomKey) -> Option<CachedPrefix> {
        let started = mtr_obs::clock();
        let found = self.lookup_inner(key);
        let metrics = cache_metrics();
        metrics.lookup_ns.record_elapsed(started);
        if found.is_some() {
            metrics.hits.incr();
        } else {
            metrics.misses.incr();
        }
        found
    }

    fn lookup_inner(&self, key: &AtomKey) -> Option<CachedPrefix> {
        {
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            let tick = inner.touch();
            if let Some(slot) = inner.map.get_mut(key) {
                slot.last_used = tick;
                let prefix = slot.prefix.clone();
                inner.hits += 1;
                return Some(prefix);
            }
        }
        // Memory miss: try disk outside the lock (corrupt or
        // version-mismatched files read as misses — never as data).
        let from_disk = self.disk_read(key);
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let tick = inner.touch();
        // The lock was released for the disk read, so another thread may
        // have inserted (or published a better prefix for) this key
        // meanwhile: never double-count its bytes, and only replace it if
        // the disk copy genuinely carries more information.
        if let Some(slot) = inner.map.get_mut(key) {
            slot.last_used = tick;
            let resident = slot.prefix.clone();
            inner.hits += 1;
            return Some(resident);
        }
        match from_disk {
            Some(prefix) => {
                inner.hits += 1;
                inner.disk_loads += 1;
                cache_metrics().disk_loads.incr();
                let bytes = prefix.approx_bytes();
                inner.total_bytes += bytes;
                inner.map.insert(
                    key.clone(),
                    Slot {
                        prefix: prefix.clone(),
                        bytes,
                        last_used: tick,
                    },
                );
                inner.evict_to(self.byte_budget());
                Some(prefix)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Reports whether `key` has a cached prefix — in memory or on disk —
    /// without perturbing any store state: no LRU touch, no hit/miss
    /// counters, no disk adoption into memory. Admission schedulers (the
    /// `mtr serve` daemon's warm-first queue) probe with this so that
    /// *classifying* a request as warm never ages out the entries that
    /// made it warm.
    pub fn probe(&self, key: &AtomKey) -> bool {
        {
            let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            if inner.map.contains_key(key) {
                return true;
            }
        }
        // Memory miss: a cheap disk existence check outside the lock.
        self.disk.as_ref().is_some_and(|d| d.contains(key))
    }

    /// Publishes a computed prefix for `key`. A prefix only replaces an
    /// existing one when it carries more information (longer, or newly
    /// complete); publishing is idempotent otherwise. Returns `true` when
    /// the store was updated.
    ///
    /// With a disk backend, the comparison consults the *disk* copy too:
    /// a deep prefix that was LRU-evicted from memory must never be
    /// clobbered on disk by a later shallow session — instead the better
    /// disk copy is re-adopted into memory.
    pub fn publish(&self, key: &AtomKey, prefix: CachedPrefix) -> bool {
        let started = mtr_obs::clock();
        let updated = self.publish_inner(key, prefix);
        cache_metrics().publish_ns.record_elapsed(started);
        updated
    }

    fn publish_inner(&self, key: &AtomKey, prefix: CachedPrefix) -> bool {
        let disk_existing = self.disk_read(key);
        let write_disk = match &disk_existing {
            Some(on_disk) => prefix.improves_on(on_disk),
            None => self.disk.is_some(),
        };
        // The best information available: the incoming prefix, unless the
        // disk already holds strictly more.
        let candidate = match disk_existing {
            Some(on_disk) if !write_disk => on_disk,
            _ => prefix,
        };
        let updated = {
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            let tick = inner.touch();
            let existing = inner.map.get(key);
            let improves = match existing {
                Some(slot) => candidate.improves_on(&slot.prefix),
                None => true,
            };
            if improves {
                let bytes = candidate.approx_bytes();
                let old_bytes = inner.map.get(key).map_or(0, |s| s.bytes);
                inner.total_bytes = inner.total_bytes - old_bytes + bytes;
                inner.map.insert(
                    key.clone(),
                    Slot {
                        prefix: candidate.clone(),
                        bytes,
                        last_used: tick,
                    },
                );
                inner.publishes += 1;
                cache_metrics().publishes.incr();
                inner.evict_to(self.byte_budget());
            }
            improves
        };
        if write_disk {
            if let Some(disk) = &self.disk {
                // Best-effort persistence: an unwritable directory degrades
                // to in-memory behavior instead of failing the session.
                if disk.store(key, &candidate).is_err() {
                    self.count_disk_error();
                }
            }
        }
        updated || write_disk
    }

    /// Snapshot of the store's counters and sizes.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        CacheStats {
            entries: inner.map.len(),
            bytes: inner.total_bytes,
            hits: inner.hits,
            misses: inner.misses,
            publishes: inner.publishes,
            evictions: inner.evictions,
            disk_loads: inner.disk_loads,
            disk_errors: self.disk_errors.load(Ordering::Relaxed),
        }
    }

    /// Compact store-wide health snapshot: the four figures an operator
    /// watches (hit/miss balance, eviction pressure, disk trouble) without
    /// the sizing detail of [`CacheStats`].
    pub fn store_stats(&self) -> StoreStats {
        let stats = self.stats();
        StoreStats {
            hits: stats.hits,
            misses: stats.misses,
            evictions: stats.evictions,
            disk_errors: stats.disk_errors,
        }
    }
}

/// The process-wide shared store used by sessions configured with an
/// in-memory cache policy: every session in the process publishes into and
/// reads from the same store, so repeated sessions on overlapping or
/// evolving graphs reuse each other's per-atom work without any explicit
/// wiring. The store's budget is the *largest* any caller has requested so
/// far (it grows, never shrinks — see [`AtomStore::raise_byte_budget`]).
pub fn global_store(byte_budget: usize) -> Arc<AtomStore> {
    static GLOBAL: OnceLock<Arc<AtomStore>> = OnceLock::new();
    let store = GLOBAL
        .get_or_init(|| AtomStore::in_memory(byte_budget))
        .clone();
    store.raise_byte_budget(byte_budget);
    store
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tag: u64) -> AtomKey {
        AtomKey {
            graph: CanonicalKey::from_words([tag, !tag]),
            cost_id: "width".into(),
            width_bound: None,
        }
    }

    fn prefix(results: usize, complete: bool) -> CachedPrefix {
        CachedPrefix {
            entries: (0..results)
                .map(|i| CacheEntry {
                    cost: i as f64,
                    fill: vec![(0, i as u32 + 1)],
                })
                .collect(),
            complete,
        }
    }

    #[test]
    fn lookup_miss_then_publish_then_hit() {
        let store = AtomStore::in_memory(1 << 20);
        assert!(store.lookup(&key(1)).is_none());
        assert!(store.publish(&key(1), prefix(3, false)));
        let got = store.lookup(&key(1)).expect("published");
        assert_eq!(got.entries.len(), 3);
        assert!(!got.complete);
        let stats = store.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.publishes, 1);
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes > 0);
    }

    #[test]
    fn probe_sees_entries_without_perturbing_stats_or_lru() {
        let store = AtomStore::in_memory(1 << 20);
        assert!(!store.probe(&key(1)));
        store.publish(&key(1), prefix(2, true));
        let before = store.stats();
        assert!(store.probe(&key(1)));
        assert!(!store.probe(&key(2)));
        let after = store.stats();
        // Probing is invisible: no hits, no misses, no touches.
        assert_eq!(after.hits, before.hits);
        assert_eq!(after.misses, before.misses);
        assert_eq!(after.entries, before.entries);
    }

    #[test]
    fn publish_only_improves() {
        let store = AtomStore::in_memory(1 << 20);
        assert!(store.publish(&key(2), prefix(5, false)));
        // Shorter prefix: ignored.
        assert!(!store.publish(&key(2), prefix(2, false)));
        assert_eq!(store.lookup(&key(2)).unwrap().entries.len(), 5);
        // Same length, now complete: improves.
        assert!(store.publish(&key(2), prefix(5, true)));
        assert!(store.lookup(&key(2)).unwrap().complete);
        // Re-publishing identical data: no-op.
        assert!(!store.publish(&key(2), prefix(5, true)));
    }

    #[test]
    fn keys_distinguish_cost_and_bound() {
        let store = AtomStore::in_memory(1 << 20);
        let a = AtomKey {
            graph: CanonicalKey::from_words([7, 7]),
            cost_id: "width".into(),
            width_bound: None,
        };
        let b = AtomKey {
            cost_id: "fill-in".into(),
            ..a.clone()
        };
        let c = AtomKey {
            width_bound: Some(3),
            ..a.clone()
        };
        store.publish(&a, prefix(1, true));
        assert!(store.lookup(&b).is_none());
        assert!(store.lookup(&c).is_none());
        assert!(store.lookup(&a).is_some());
    }

    #[test]
    fn lru_eviction_honors_byte_budget() {
        // Budget fits roughly two prefixes; inserting three evicts the
        // least recently used.
        let one = prefix(4, false).approx_bytes();
        let store = AtomStore::in_memory(2 * one + one / 2);
        store.publish(&key(1), prefix(4, false));
        store.publish(&key(2), prefix(4, false));
        // Touch key 1 so key 2 is the LRU victim.
        assert!(store.lookup(&key(1)).is_some());
        store.publish(&key(3), prefix(4, false));
        let stats = store.stats();
        assert!(stats.evictions >= 1, "budget must trigger eviction");
        assert!(stats.bytes <= store.byte_budget());
        assert!(store.lookup(&key(1)).is_some(), "recently used survives");
        assert!(store.lookup(&key(3)).is_some(), "newest survives");
        assert!(store.lookup(&key(2)).is_none(), "LRU victim evicted");
    }

    #[test]
    fn shallow_publish_never_clobbers_deeper_disk_prefix() {
        // Zero memory budget: everything published is immediately evicted
        // from the memory layer, so the disk file is the only copy. A
        // later shallow publish must not overwrite the deep one — and must
        // re-adopt it instead.
        let dir = std::env::temp_dir().join(format!("mtr_store_clobber_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = AtomStore::persistent(&dir, 0).unwrap();
        store.publish(&key(9), prefix(20, false));
        assert_eq!(store.stats().entries, 0, "budget 0 evicts immediately");
        store.publish(&key(9), prefix(2, false));
        let got = store.lookup(&key(9)).expect("deep prefix survives");
        assert_eq!(got.entries.len(), 20, "shallow publish must not clobber");
        // A genuinely deeper publish still goes through.
        store.publish(&key(9), prefix(25, true));
        assert_eq!(store.lookup(&key(9)).unwrap().entries.len(), 25);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_publish_and_lookup() {
        let store = AtomStore::in_memory(1 << 20);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let store = &store;
                scope.spawn(move || {
                    for i in 0..50u64 {
                        let k = key(t * 1000 + i % 10);
                        store.publish(&k, prefix((i % 5) as usize + 1, false));
                        let _ = store.lookup(&k);
                    }
                });
            }
        });
        let stats = store.stats();
        assert!(stats.entries <= 40);
        assert!(stats.hits > 0);
    }

    #[test]
    fn global_store_is_shared_and_budget_grows_to_max() {
        let a = global_store(1 << 20);
        let b = global_store(123);
        assert!(Arc::ptr_eq(&a, &b), "one store per process");
        assert_eq!(b.byte_budget(), 1 << 20, "budget never shrinks");
        let c = global_store(1 << 21);
        assert_eq!(c.byte_budget(), 1 << 21, "largest request wins");
    }
}
