//! The on-disk backend: one file per [`AtomKey`], length-prefixed binary
//! with a versioned, checksummed header.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic      4 bytes   b"MTRA"
//! version    u32       FORMAT_VERSION
//! checksum   u64       FNV-1a 64 over every byte after this field
//! key.graph  2 × u64   canonical key words (echoed for integrity)
//! cost_len   u32
//! cost_id    cost_len bytes (UTF-8)
//! bound      u64       width bound, u64::MAX = none
//! complete   u8        0 | 1
//! count      u32       number of entries
//! entry*     cost f64 (bit pattern), fill_len u32, fill_len × (u32, u32)
//! ```
//!
//! Readers reject anything that does not parse exactly: wrong magic, a
//! different [`FORMAT_VERSION`], a checksum that does not cover the
//! payload (a torn or bit-rotted file), a key echo that does not match
//! the requested key, or truncated payloads all yield a typed
//! [`DiskError`] — the store above treats every such error as a cache
//! miss, never as data. An unusable file is additionally **quarantined**:
//! renamed to `<name>.corrupt` so it stops shadowing its slot and the
//! next publish can re-create it (only genuine I/O errors leave the file
//! in place). Writes go through a temp file + `sync_all` + rename + a
//! parent-directory fsync, so a crash at any instant leaves either the
//! old file, the new file, or a quarantinable partial — never silent
//! garbage served as data.
//!
//! The `cache.disk.write` and `cache.disk.read` failpoints (`mtr-fault`)
//! inject `DiskError::Io` at the seams where the real filesystem fails;
//! `tests/chaos.rs` drives them to pin the warm ≡ cold ≡ direct
//! equivalence under disk failure.

use crate::store::{AtomKey, CacheEntry, CachedPrefix};
use mtr_graph::CanonicalKey;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Version of the on-disk format. Bump on any layout change; readers
/// reject other versions. Version 2 added the payload checksum.
pub const FORMAT_VERSION: u32 = 2;

const MAGIC: [u8; 4] = *b"MTRA";

/// Why a cache file could not be used.
#[derive(Debug)]
pub enum DiskError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with the cache magic bytes.
    BadMagic,
    /// The file was written by a different format version.
    VersionMismatch {
        /// Version found in the file header.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The header's key echo does not match the requested key.
    KeyMismatch,
    /// The stored checksum does not cover the payload bytes: the file was
    /// torn mid-write or rotted at rest.
    ChecksumMismatch,
    /// The payload is truncated or internally inconsistent.
    Corrupt(&'static str),
}

impl std::fmt::Display for DiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskError::Io(e) => write!(f, "cache file i/o error: {e}"),
            DiskError::BadMagic => f.write_str("not an atom cache file (bad magic)"),
            DiskError::VersionMismatch { found, expected } => write!(
                f,
                "atom cache format version {found} (this build reads {expected})"
            ),
            DiskError::KeyMismatch => f.write_str("cache file does not match the requested key"),
            DiskError::ChecksumMismatch => {
                f.write_str("atom cache file checksum mismatch (torn write or bit rot)")
            }
            DiskError::Corrupt(what) => write!(f, "corrupt atom cache file: {what}"),
        }
    }
}

impl std::error::Error for DiskError {}

impl From<std::io::Error> for DiskError {
    fn from(e: std::io::Error) -> Self {
        DiskError::Io(e)
    }
}

/// A directory of cache files, one per key.
#[derive(Debug)]
pub struct DiskBackend {
    dir: PathBuf,
}

impl DiskBackend {
    /// Opens (creating if necessary) `dir` as a cache directory.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<DiskBackend> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(DiskBackend { dir })
    }

    /// The file a key lives in: canonical hash + sanitized cost text +
    /// a short hash of the raw cost name + the width bound.
    pub fn path_of(&self, key: &AtomKey) -> PathBuf {
        let cost: String = key
            .cost_id
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        // A short hash of the *raw* cost name keeps the file unique per
        // key: distinct names like `fill_in` / `fill.in` sanitize to the
        // same text, and a shared file would turn both keys into permanent
        // misses through the key-echo check.
        let mut cost_hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in key.cost_id.as_bytes() {
            cost_hash ^= u64::from(*byte);
            cost_hash = cost_hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let bound = match key.width_bound {
            Some(b) => format!("b{b}"),
            None => "unbounded".into(),
        };
        self.dir.join(format!(
            "atom-{}-{}-{:08x}-{}.bin",
            key.graph.to_hex(),
            cost,
            cost_hash as u32,
            bound
        ))
    }

    /// Reports whether a file exists for `key` without reading it. The
    /// file may still fail to decode on a later [`DiskBackend::load`]
    /// (corruption, version skew) — callers using this for scheduling
    /// hints must treat a positive probe as advisory, not a guarantee.
    pub fn contains(&self, key: &AtomKey) -> bool {
        self.path_of(key).is_file()
    }

    /// Loads the prefix stored for `key`; `Ok(None)` when no file exists.
    ///
    /// A file that exists but cannot be used — bad magic, version skew, a
    /// failed checksum, a foreign key echo, or a malformed payload — is
    /// quarantined to `<name>.corrupt` before the typed error is
    /// returned, so the slot is immediately re-writable and the bad file
    /// is kept (not destroyed) for forensics. Genuine I/O errors leave
    /// the file alone: the data may be fine, the filesystem was not.
    pub fn load(&self, key: &AtomKey) -> Result<Option<CachedPrefix>, DiskError> {
        if let Err(fault) = mtr_fault::check("cache.disk.read") {
            return Err(DiskError::Io(std::io::Error::other(fault.to_string())));
        }
        let path = self.path_of(key);
        let mut bytes = Vec::new();
        match std::fs::File::open(&path) {
            Ok(mut f) => f.read_to_end(&mut bytes)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        match decode(key, &bytes) {
            Ok(prefix) => Ok(Some(prefix)),
            Err(e @ DiskError::Io(_)) => Err(e),
            Err(e) => {
                self.quarantine(&path);
                Err(e)
            }
        }
    }

    /// Moves an unusable cache file aside to `<name>.corrupt`
    /// (best-effort: a second corrupt generation overwrites the first;
    /// a failed rename falls back to deletion so the bad file can never
    /// keep shadowing its slot).
    fn quarantine(&self, path: &Path) {
        let mut target = path.as_os_str().to_owned();
        target.push(".corrupt");
        if std::fs::rename(path, &target).is_err() {
            let _ = std::fs::remove_file(path);
        }
        // Same durability rule as `store`: the rename (or unlink) only
        // survives a crash once the directory entry is synced. Without
        // this, a crash could resurrect the corrupt file in its original
        // slot and re-poison every later load. Best-effort, like the
        // rename itself.
        let _ = std::fs::File::open(&self.dir).and_then(|d| d.sync_all());
        quarantine_counter().incr();
    }

    /// Stores `prefix` under `key`, atomically and durably: temp file +
    /// `sync_all` + rename, then an fsync of the parent directory so the
    /// rename itself survives a crash. The temp name carries a
    /// process-wide counter besides the pid: two threads of one process
    /// publishing the same key must not interleave writes into a shared
    /// temp file.
    ///
    /// Every failure — including `sync_all`, which used to be silently
    /// discarded — is returned to the caller; the store above counts it
    /// in `cache.disk_errors`.
    pub fn store(&self, key: &AtomKey, prefix: &CachedPrefix) -> Result<(), DiskError> {
        static WRITE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = WRITE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let path = self.path_of(key);
        let tmp = path.with_extension(format!("tmp{}-{}", std::process::id(), seq));
        let written = (|| -> Result<(), DiskError> {
            if let Err(fault) = mtr_fault::check("cache.disk.write") {
                return Err(DiskError::Io(std::io::Error::other(fault.to_string())));
            }
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&encode(key, prefix))?;
            f.sync_all()?;
            std::fs::rename(&tmp, &path)?;
            Ok(())
        })();
        if let Err(e) = written {
            // Never leave the temp generation behind on a failed publish.
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        // Durability of the rename: fsync the directory entry. The data
        // already hit the disk above, so a failure here is counted (by
        // the caller) but the freshly-renamed file stays in place.
        let dir_sync = std::fs::File::open(&self.dir).and_then(|d| d.sync_all());
        dir_sync.map_err(DiskError::Io)
    }
}

/// Counter of quarantined cache files (`cache.disk_quarantined`),
/// resolved once per process like every other obs handle.
fn quarantine_counter() -> &'static mtr_obs::Counter {
    static QUARANTINED: std::sync::OnceLock<mtr_obs::Counter> = std::sync::OnceLock::new();
    QUARANTINED.get_or_init(|| mtr_obs::counter("cache.disk_quarantined"))
}

/// FNV-1a 64 over `bytes` — the payload checksum of format version 2.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn encode(key: &AtomKey, prefix: &CachedPrefix) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    // Checksum placeholder, patched once the payload is complete.
    out.extend_from_slice(&[0u8; 8]);
    for w in key.graph.to_words() {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out.extend_from_slice(&(key.cost_id.len() as u32).to_le_bytes());
    out.extend_from_slice(key.cost_id.as_bytes());
    out.extend_from_slice(&key.width_bound.map_or(u64::MAX, |b| b as u64).to_le_bytes());
    out.push(u8::from(prefix.complete));
    out.extend_from_slice(&(prefix.entries.len() as u32).to_le_bytes());
    for e in &prefix.entries {
        out.extend_from_slice(&e.cost.to_bits().to_le_bytes());
        out.extend_from_slice(&(e.fill.len() as u32).to_le_bytes());
        for &(u, v) in &e.fill {
            out.extend_from_slice(&u.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    let checksum = fnv64(&out[16..]);
    out[8..16].copy_from_slice(&checksum.to_le_bytes());
    out
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DiskError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(DiskError::Corrupt("truncated"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, DiskError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DiskError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DiskError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

fn decode(key: &AtomKey, bytes: &[u8]) -> Result<CachedPrefix, DiskError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(DiskError::BadMagic);
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(DiskError::VersionMismatch {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let checksum = r.u64()?;
    // Verified before any payload field is trusted: a torn or bit-rotted
    // file fails here, not in some arbitrary later parse step.
    if fnv64(&bytes[r.pos..]) != checksum {
        return Err(DiskError::ChecksumMismatch);
    }
    let words = [r.u64()?, r.u64()?];
    let cost_len = r.u32()? as usize;
    let cost_id = std::str::from_utf8(r.take(cost_len)?)
        .map_err(|_| DiskError::Corrupt("cost id not UTF-8"))?;
    let bound = match r.u64()? {
        u64::MAX => None,
        b => Some(b as usize),
    };
    if CanonicalKey::from_words(words) != key.graph
        || cost_id != key.cost_id
        || bound != key.width_bound
    {
        return Err(DiskError::KeyMismatch);
    }
    let complete = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err(DiskError::Corrupt("bad completeness flag")),
    };
    let count = r.u32()? as usize;
    let mut entries = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let cost = f64::from_bits(r.u64()?);
        if cost.is_nan() {
            return Err(DiskError::Corrupt("NaN cost"));
        }
        let fill_len = r.u32()? as usize;
        let mut fill = Vec::with_capacity(fill_len.min(1 << 16));
        for _ in 0..fill_len {
            let u = r.u32()?;
            let v = r.u32()?;
            if u >= v {
                return Err(DiskError::Corrupt("fill edge not normalized"));
            }
            fill.push((u, v));
        }
        entries.push(CacheEntry { cost, fill });
    }
    if r.pos != bytes.len() {
        return Err(DiskError::Corrupt("trailing bytes"));
    }
    Ok(CachedPrefix { entries, complete })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mtr_cache_disk_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_key() -> AtomKey {
        AtomKey {
            graph: CanonicalKey::from_words([0xdead_beef, 0xfeed_f00d]),
            cost_id: "fill-in".into(),
            width_bound: Some(4),
        }
    }

    fn sample_prefix() -> CachedPrefix {
        CachedPrefix {
            entries: vec![
                CacheEntry {
                    cost: 2.0,
                    fill: vec![(0, 3), (1, 2)],
                },
                CacheEntry {
                    cost: 3.0,
                    fill: vec![(0, 2)],
                },
                CacheEntry {
                    cost: 5.0,
                    fill: vec![],
                },
            ],
            complete: true,
        }
    }

    #[test]
    fn round_trip() {
        let dir = tmpdir("roundtrip");
        let backend = DiskBackend::open(&dir).unwrap();
        let key = sample_key();
        assert!(backend.load(&key).unwrap().is_none(), "empty dir misses");
        backend.store(&key, &sample_prefix()).unwrap();
        let loaded = backend.load(&key).unwrap().expect("stored");
        assert_eq!(loaded, sample_prefix());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let dir = tmpdir("version");
        let backend = DiskBackend::open(&dir).unwrap();
        let key = sample_key();
        backend.store(&key, &sample_prefix()).unwrap();
        // Bump the version field in place (bytes 4..8).
        let path = backend.path_of(&key);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        match backend.load(&key) {
            Err(DiskError::VersionMismatch { found, expected }) => {
                assert_eq!(found, FORMAT_VERSION + 1);
                assert_eq!(expected, FORMAT_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_is_rejected() {
        let dir = tmpdir("corrupt");
        let backend = DiskBackend::open(&dir).unwrap();
        let key = sample_key();
        backend.store(&key, &sample_prefix()).unwrap();
        let path = backend.path_of(&key);
        let bytes = std::fs::read(&path).unwrap();
        // Truncation: the checksum no longer covers the payload.
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(matches!(
            backend.load(&key),
            Err(DiskError::ChecksumMismatch)
        ));
        // Bad magic (checked before the checksum).
        let mut garbled = bytes.clone();
        garbled[0] = b'X';
        std::fs::write(&path, &garbled).unwrap();
        assert!(matches!(backend.load(&key), Err(DiskError::BadMagic)));
        // A flipped payload byte (here: in the key echo) fails the
        // checksum before any field is interpreted.
        let mut flipped = bytes.clone();
        flipped[16] ^= 0xff;
        std::fs::write(&path, &flipped).unwrap();
        assert!(matches!(
            backend.load(&key),
            Err(DiskError::ChecksumMismatch)
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn key_echo_mismatch_is_detected_on_checksum_valid_files() {
        // A *well-formed* file of key A copied over key B's slot (valid
        // checksum, foreign content) must still be rejected by the echo.
        let dir = tmpdir("keyecho");
        let backend = DiskBackend::open(&dir).unwrap();
        let a = sample_key();
        let b = AtomKey {
            graph: CanonicalKey::from_words([1, 2]),
            ..a.clone()
        };
        backend.store(&a, &sample_prefix()).unwrap();
        std::fs::copy(backend.path_of(&a), backend.path_of(&b)).unwrap();
        assert!(matches!(backend.load(&b), Err(DiskError::KeyMismatch)));
        assert_eq!(backend.load(&a).unwrap().unwrap(), sample_prefix());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unusable_files_are_quarantined_and_the_slot_recovers() {
        let dir = tmpdir("quarantine");
        let backend = DiskBackend::open(&dir).unwrap();
        let key = sample_key();
        backend.store(&key, &sample_prefix()).unwrap();
        let path = backend.path_of(&key);
        let bytes = std::fs::read(&path).unwrap();
        // Tear the file, fail one load...
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(backend.load(&key).is_err());
        // ...and the bad generation is moved aside, so the slot reads as
        // a clean miss and the corpse is preserved for inspection.
        assert!(!path.exists(), "quarantine must clear the slot");
        let quarantined = {
            let mut p = path.as_os_str().to_owned();
            p.push(".corrupt");
            PathBuf::from(p)
        };
        assert!(quarantined.exists(), "bad file kept as .corrupt");
        assert!(backend.load(&key).unwrap().is_none());
        // Re-publishing heals the slot completely.
        backend.store(&key, &sample_prefix()).unwrap();
        assert_eq!(backend.load(&key).unwrap().unwrap(), sample_prefix());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_names_separate_keys() {
        let dir = tmpdir("names");
        let backend = DiskBackend::open(&dir).unwrap();
        let a = sample_key();
        let b = AtomKey {
            width_bound: None,
            ..a.clone()
        };
        let c = AtomKey {
            cost_id: "width".into(),
            ..a.clone()
        };
        let names: Vec<PathBuf> = [&a, &b, &c].iter().map(|k| backend.path_of(k)).collect();
        assert_ne!(names[0], names[1]);
        assert_ne!(names[0], names[2]);
        backend.store(&a, &sample_prefix()).unwrap();
        assert!(backend.load(&b).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cost_names_that_sanitize_identically_get_distinct_files() {
        // `fill_in`, `fill.in` and `fill-in` all sanitize to `fill-in`;
        // the raw-name hash in the file name must keep them apart (a
        // shared file would clobber back and forth and the key-echo check
        // would turn every load into a miss).
        let dir = tmpdir("sanitize");
        let backend = DiskBackend::open(&dir).unwrap();
        let make = |cost: &str| AtomKey {
            graph: CanonicalKey::from_words([5, 6]),
            cost_id: cost.into(),
            width_bound: None,
        };
        let (a, b, c) = (make("fill_in"), make("fill.in"), make("fill-in"));
        assert_ne!(backend.path_of(&a), backend.path_of(&b));
        assert_ne!(backend.path_of(&a), backend.path_of(&c));
        assert_ne!(backend.path_of(&b), backend.path_of(&c));
        backend.store(&a, &sample_prefix()).unwrap();
        let mut other = sample_prefix();
        other.entries.truncate(1);
        backend.store(&b, &other).unwrap();
        assert_eq!(backend.load(&a).unwrap().unwrap(), sample_prefix());
        assert_eq!(backend.load(&b).unwrap().unwrap(), other);
        assert!(backend.load(&c).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
