//! The on-disk backend: one file per [`AtomKey`], length-prefixed binary
//! with a versioned header.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic      4 bytes   b"MTRA"
//! version    u32       FORMAT_VERSION
//! key.graph  2 × u64   canonical key words (echoed for integrity)
//! cost_len   u32
//! cost_id    cost_len bytes (UTF-8)
//! bound      u64       width bound, u64::MAX = none
//! complete   u8        0 | 1
//! count      u32       number of entries
//! entry*     cost f64 (bit pattern), fill_len u32, fill_len × (u32, u32)
//! ```
//!
//! Readers reject anything that does not parse exactly: wrong magic, a
//! different [`FORMAT_VERSION`], a key echo that does not match the
//! requested key, or truncated payloads all yield a typed [`DiskError`] —
//! the store above treats every such error as a cache miss, never as data.
//! Writes go through a temp file + rename so concurrent readers only ever
//! observe complete files.

use crate::store::{AtomKey, CacheEntry, CachedPrefix};
use mtr_graph::CanonicalKey;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Version of the on-disk format. Bump on any layout change; readers
/// reject other versions.
pub const FORMAT_VERSION: u32 = 1;

const MAGIC: [u8; 4] = *b"MTRA";

/// Why a cache file could not be used.
#[derive(Debug)]
pub enum DiskError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with the cache magic bytes.
    BadMagic,
    /// The file was written by a different format version.
    VersionMismatch {
        /// Version found in the file header.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The header's key echo does not match the requested key.
    KeyMismatch,
    /// The payload is truncated or internally inconsistent.
    Corrupt(&'static str),
}

impl std::fmt::Display for DiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskError::Io(e) => write!(f, "cache file i/o error: {e}"),
            DiskError::BadMagic => f.write_str("not an atom cache file (bad magic)"),
            DiskError::VersionMismatch { found, expected } => write!(
                f,
                "atom cache format version {found} (this build reads {expected})"
            ),
            DiskError::KeyMismatch => f.write_str("cache file does not match the requested key"),
            DiskError::Corrupt(what) => write!(f, "corrupt atom cache file: {what}"),
        }
    }
}

impl std::error::Error for DiskError {}

impl From<std::io::Error> for DiskError {
    fn from(e: std::io::Error) -> Self {
        DiskError::Io(e)
    }
}

/// A directory of cache files, one per key.
#[derive(Debug)]
pub struct DiskBackend {
    dir: PathBuf,
}

impl DiskBackend {
    /// Opens (creating if necessary) `dir` as a cache directory.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<DiskBackend> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(DiskBackend { dir })
    }

    /// The file a key lives in: canonical hash + sanitized cost text +
    /// a short hash of the raw cost name + the width bound.
    pub fn path_of(&self, key: &AtomKey) -> PathBuf {
        let cost: String = key
            .cost_id
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        // A short hash of the *raw* cost name keeps the file unique per
        // key: distinct names like `fill_in` / `fill.in` sanitize to the
        // same text, and a shared file would turn both keys into permanent
        // misses through the key-echo check.
        let mut cost_hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in key.cost_id.as_bytes() {
            cost_hash ^= u64::from(*byte);
            cost_hash = cost_hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let bound = match key.width_bound {
            Some(b) => format!("b{b}"),
            None => "unbounded".into(),
        };
        self.dir.join(format!(
            "atom-{}-{}-{:08x}-{}.bin",
            key.graph.to_hex(),
            cost,
            cost_hash as u32,
            bound
        ))
    }

    /// Reports whether a file exists for `key` without reading it. The
    /// file may still fail to decode on a later [`DiskBackend::load`]
    /// (corruption, version skew) — callers using this for scheduling
    /// hints must treat a positive probe as advisory, not a guarantee.
    pub fn contains(&self, key: &AtomKey) -> bool {
        self.path_of(key).is_file()
    }

    /// Loads the prefix stored for `key`; `Ok(None)` when no file exists.
    pub fn load(&self, key: &AtomKey) -> Result<Option<CachedPrefix>, DiskError> {
        let path = self.path_of(key);
        let mut bytes = Vec::new();
        match std::fs::File::open(&path) {
            Ok(mut f) => f.read_to_end(&mut bytes)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        decode(key, &bytes).map(Some)
    }

    /// Stores `prefix` under `key`, atomically (temp file + rename). The
    /// temp name carries a process-wide counter besides the pid: two
    /// threads of one process publishing the same key must not interleave
    /// writes into a shared temp file.
    pub fn store(&self, key: &AtomKey, prefix: &CachedPrefix) -> Result<(), DiskError> {
        static WRITE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = WRITE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let path = self.path_of(key);
        let tmp = path.with_extension(format!("tmp{}-{}", std::process::id(), seq));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&encode(key, prefix))?;
            f.sync_all().ok();
        }
        std::fs::rename(&tmp, &path)?;
        Ok(())
    }
}

fn encode(key: &AtomKey, prefix: &CachedPrefix) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    for w in key.graph.to_words() {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out.extend_from_slice(&(key.cost_id.len() as u32).to_le_bytes());
    out.extend_from_slice(key.cost_id.as_bytes());
    out.extend_from_slice(&key.width_bound.map_or(u64::MAX, |b| b as u64).to_le_bytes());
    out.push(u8::from(prefix.complete));
    out.extend_from_slice(&(prefix.entries.len() as u32).to_le_bytes());
    for e in &prefix.entries {
        out.extend_from_slice(&e.cost.to_bits().to_le_bytes());
        out.extend_from_slice(&(e.fill.len() as u32).to_le_bytes());
        for &(u, v) in &e.fill {
            out.extend_from_slice(&u.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DiskError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(DiskError::Corrupt("truncated"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, DiskError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DiskError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DiskError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

fn decode(key: &AtomKey, bytes: &[u8]) -> Result<CachedPrefix, DiskError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(DiskError::BadMagic);
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(DiskError::VersionMismatch {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let words = [r.u64()?, r.u64()?];
    let cost_len = r.u32()? as usize;
    let cost_id = std::str::from_utf8(r.take(cost_len)?)
        .map_err(|_| DiskError::Corrupt("cost id not UTF-8"))?;
    let bound = match r.u64()? {
        u64::MAX => None,
        b => Some(b as usize),
    };
    if CanonicalKey::from_words(words) != key.graph
        || cost_id != key.cost_id
        || bound != key.width_bound
    {
        return Err(DiskError::KeyMismatch);
    }
    let complete = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err(DiskError::Corrupt("bad completeness flag")),
    };
    let count = r.u32()? as usize;
    let mut entries = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let cost = f64::from_bits(r.u64()?);
        if cost.is_nan() {
            return Err(DiskError::Corrupt("NaN cost"));
        }
        let fill_len = r.u32()? as usize;
        let mut fill = Vec::with_capacity(fill_len.min(1 << 16));
        for _ in 0..fill_len {
            let u = r.u32()?;
            let v = r.u32()?;
            if u >= v {
                return Err(DiskError::Corrupt("fill edge not normalized"));
            }
            fill.push((u, v));
        }
        entries.push(CacheEntry { cost, fill });
    }
    if r.pos != bytes.len() {
        return Err(DiskError::Corrupt("trailing bytes"));
    }
    Ok(CachedPrefix { entries, complete })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mtr_cache_disk_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_key() -> AtomKey {
        AtomKey {
            graph: CanonicalKey::from_words([0xdead_beef, 0xfeed_f00d]),
            cost_id: "fill-in".into(),
            width_bound: Some(4),
        }
    }

    fn sample_prefix() -> CachedPrefix {
        CachedPrefix {
            entries: vec![
                CacheEntry {
                    cost: 2.0,
                    fill: vec![(0, 3), (1, 2)],
                },
                CacheEntry {
                    cost: 3.0,
                    fill: vec![(0, 2)],
                },
                CacheEntry {
                    cost: 5.0,
                    fill: vec![],
                },
            ],
            complete: true,
        }
    }

    #[test]
    fn round_trip() {
        let dir = tmpdir("roundtrip");
        let backend = DiskBackend::open(&dir).unwrap();
        let key = sample_key();
        assert!(backend.load(&key).unwrap().is_none(), "empty dir misses");
        backend.store(&key, &sample_prefix()).unwrap();
        let loaded = backend.load(&key).unwrap().expect("stored");
        assert_eq!(loaded, sample_prefix());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let dir = tmpdir("version");
        let backend = DiskBackend::open(&dir).unwrap();
        let key = sample_key();
        backend.store(&key, &sample_prefix()).unwrap();
        // Bump the version field in place (bytes 4..8).
        let path = backend.path_of(&key);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        match backend.load(&key) {
            Err(DiskError::VersionMismatch { found, expected }) => {
                assert_eq!(found, FORMAT_VERSION + 1);
                assert_eq!(expected, FORMAT_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_is_rejected() {
        let dir = tmpdir("corrupt");
        let backend = DiskBackend::open(&dir).unwrap();
        let key = sample_key();
        backend.store(&key, &sample_prefix()).unwrap();
        let path = backend.path_of(&key);
        let bytes = std::fs::read(&path).unwrap();
        // Truncation.
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(matches!(backend.load(&key), Err(DiskError::Corrupt(_))));
        // Bad magic.
        let mut garbled = bytes.clone();
        garbled[0] = b'X';
        std::fs::write(&path, &garbled).unwrap();
        assert!(matches!(backend.load(&key), Err(DiskError::BadMagic)));
        // Key echo mismatch (flip a canonical-hash byte).
        let mut wrong_key = bytes.clone();
        wrong_key[8] ^= 0xff;
        std::fs::write(&path, &wrong_key).unwrap();
        assert!(matches!(backend.load(&key), Err(DiskError::KeyMismatch)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_names_separate_keys() {
        let dir = tmpdir("names");
        let backend = DiskBackend::open(&dir).unwrap();
        let a = sample_key();
        let b = AtomKey {
            width_bound: None,
            ..a.clone()
        };
        let c = AtomKey {
            cost_id: "width".into(),
            ..a.clone()
        };
        let names: Vec<PathBuf> = [&a, &b, &c].iter().map(|k| backend.path_of(k)).collect();
        assert_ne!(names[0], names[1]);
        assert_ne!(names[0], names[2]);
        backend.store(&a, &sample_prefix()).unwrap();
        assert!(backend.load(&b).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cost_names_that_sanitize_identically_get_distinct_files() {
        // `fill_in`, `fill.in` and `fill-in` all sanitize to `fill-in`;
        // the raw-name hash in the file name must keep them apart (a
        // shared file would clobber back and forth and the key-echo check
        // would turn every load into a miss).
        let dir = tmpdir("sanitize");
        let backend = DiskBackend::open(&dir).unwrap();
        let make = |cost: &str| AtomKey {
            graph: CanonicalKey::from_words([5, 6]),
            cost_id: cost.into(),
            width_bound: None,
        };
        let (a, b, c) = (make("fill_in"), make("fill.in"), make("fill-in"));
        assert_ne!(backend.path_of(&a), backend.path_of(&b));
        assert_ne!(backend.path_of(&a), backend.path_of(&c));
        assert_ne!(backend.path_of(&b), backend.path_of(&c));
        backend.store(&a, &sample_prefix()).unwrap();
        let mut other = sample_prefix();
        other.entries.truncate(1);
        backend.store(&b, &other).unwrap();
        assert_eq!(backend.load(&a).unwrap().unwrap(), sample_prefix());
        assert_eq!(backend.load(&b).unwrap().unwrap(), other);
        assert!(backend.load(&c).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
