//! `mtr-cache`: a content-addressed store of per-atom ranked enumeration
//! prefixes.
//!
//! Atoms of a clique-separator decomposition are content-addressable
//! subgraphs: keyed by the [`CanonicalKey`](mtr_graph::CanonicalKey) of
//! their canonical form (plus the cost they are ranked by and the width
//! bound they were enumerated under), the ranked prefix of an atom's
//! minimal triangulations is reusable
//!
//! * *within* one run — isomorphic atoms of a decomposition share a single
//!   stream,
//! * *across* sessions in one process — through a shared
//!   [`AtomStore`] (`Arc`, or the process-wide [`global_store`]),
//! * *across* processes — through the optional on-disk backend
//!   ([`AtomStore::persistent`]), a simple length-prefixed binary format
//!   with a versioned header.
//!
//! The store itself is engine-agnostic: entries are `(cost, fill edges)`
//! pairs in the *canonical* vertex labeling, plus a completeness flag. The
//! `mtr-reduce` crate owns the mapping between canonical entries and live
//! enumeration state; this crate owns lookup, publication, byte-budgeted
//! LRU eviction, and persistence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod disk;
mod store;

pub use disk::{DiskBackend, DiskError, FORMAT_VERSION};
pub use store::{
    global_store, AtomKey, AtomStore, CacheEntry, CacheStats, CachedPrefix, StoreStats,
};

/// Default byte budget for in-memory stores: 64 MiB.
pub const DEFAULT_BYTE_BUDGET: usize = 64 << 20;
