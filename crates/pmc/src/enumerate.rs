//! Enumeration of all potential maximal cliques (Bouchitté–Todinca).
//!
//! The enumeration follows the "one more vertex" scheme of Bouchitté and
//! Todinca (*Listing all potential maximal cliques of a graph*, TCS 2002):
//! vertices are introduced one at a time (`G_1 ⊂ G_2 ⊂ … ⊂ G_n`, each `G_i`
//! induced by the first `i` vertices), and `PMC(G_i)` is computed from
//! `PMC(G_{i-1})`, `MinSep(G_{i-1})` and `MinSep(G_i)`.
//!
//! Soundness is guaranteed by filtering every candidate through the exact
//! polynomial PMC test ([`crate::test::is_potential_maximal_clique`]).
//! For completeness we generate a *superset* of the candidate families of
//! the published theorem:
//!
//! * every `Ω' ∈ PMC(G_{i-1})`, and `Ω' ∪ {a}`;
//! * `S ∪ {a}` for every `S ∈ MinSep(G_i)`;
//! * `S ∪ (T ∩ C)` for `S` ranging over `MinSep(G_i) ∪ MinSep(G_{i-1})`
//!   (with `a ∉ S`), `T ∈ MinSep(G_i)`, and `C` the component of
//!   `G_i \ S` containing the new vertex `a`, as well as the variant using
//!   every full component of `G_i \ S`.
//!
//! The extra variants cost a constant factor and make the generation robust;
//! completeness is additionally cross-validated against the brute-force
//! enumeration by property tests over random graphs (see
//! `tests/pmc_properties.rs` at the workspace root and the unit tests below).

use crate::test::is_potential_maximal_clique;
use mtr_graph::{Graph, VertexSet};
use mtr_separators::enumerate::minimal_separators;
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// Error returned by [`potential_maximal_cliques_with_deadline`] when the
/// wall-clock budget is exhausted before the enumeration finishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PmcDeadlineExceeded {
    /// The budget that was exceeded.
    pub budget: Duration,
}

impl std::fmt::Display for PmcDeadlineExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PMC enumeration exceeded its {:?} budget", self.budget)
    }
}

impl std::error::Error for PmcDeadlineExceeded {}

/// Result of a PMC enumeration: the cliques plus the separator sets of every
/// prefix, which the callers (notably the triangulation DP) reuse.
#[derive(Clone, Debug)]
pub struct PmcEnumeration {
    /// All potential maximal cliques of the input graph, sorted.
    pub pmcs: Vec<VertexSet>,
    /// All minimal separators of the input graph, sorted.
    pub minimal_separators: Vec<VertexSet>,
}

/// Enumerates all potential maximal cliques of `g`, along with its minimal
/// separators.
pub fn potential_maximal_cliques(g: &Graph) -> PmcEnumeration {
    potential_maximal_cliques_impl(g, None, None).expect("no deadline was set")
}

/// Enumerates all potential maximal cliques of `g`, aborting with an error
/// if the wall-clock `budget` runs out first. Used by the tractability
/// experiments (Figure 5) where the paper classifies graphs by whether the
/// PMC computation finishes within a time limit.
pub fn potential_maximal_cliques_with_deadline(
    g: &Graph,
    budget: Duration,
) -> Result<PmcEnumeration, PmcDeadlineExceeded> {
    potential_maximal_cliques_impl(g, None, Some(budget))
}

/// Enumerates the potential maximal cliques of `g` of size at most
/// `max_size`, using only minimal separators of size at most `max_size`
/// during the incremental generation.
///
/// This is the `MinTriangB` variant of the machinery (Section 5.3): when the
/// caller only cares about tree decompositions of width `b`, passing
/// `max_size = b + 1` bounds the work independently of the poly-MS
/// assumption.
pub fn potential_maximal_cliques_bounded(g: &Graph, max_size: usize) -> PmcEnumeration {
    potential_maximal_cliques_impl(g, Some(max_size), None).expect("no deadline was set")
}

/// The size-bounded enumeration of [`potential_maximal_cliques_bounded`]
/// under the wall-clock budget of
/// [`potential_maximal_cliques_with_deadline`] — the combination a
/// deadline-budgeted width-bounded enumeration session needs.
pub fn potential_maximal_cliques_bounded_with_deadline(
    g: &Graph,
    max_size: usize,
    budget: Duration,
) -> Result<PmcEnumeration, PmcDeadlineExceeded> {
    potential_maximal_cliques_impl(g, Some(max_size), Some(budget))
}

fn potential_maximal_cliques_impl(
    g: &Graph,
    max_size: Option<usize>,
    budget: Option<Duration>,
) -> Result<PmcEnumeration, PmcDeadlineExceeded> {
    let start = Instant::now();
    let n = g.n();
    if n == 0 {
        return Ok(PmcEnumeration {
            pmcs: Vec::new(),
            minimal_separators: Vec::new(),
        });
    }
    let keep_pmc = |s: &VertexSet| max_size.is_none_or(|m| s.len() <= m);
    let keep_sep = |s: &VertexSet| max_size.is_none_or(|m| s.len() <= m);

    // Separators of the previous prefix, lifted to the current universe.
    let mut prev_seps: Vec<VertexSet> = Vec::new();
    // PMCs of the previous prefix, lifted to the current universe.
    let mut prev_pmcs: Vec<VertexSet> = vec![VertexSet::singleton(n, 0)];
    let mut cur_seps: Vec<VertexSet> = Vec::new();

    for i in 2..=n {
        if let Some(budget) = budget {
            if start.elapsed() > budget {
                return Err(PmcDeadlineExceeded { budget });
            }
        }
        let a = i - 1; // the newly introduced vertex
        let gi = g.induced_prefix(i);
        // Minimal separators of the prefix graph, in the full universe.
        cur_seps = minimal_separators(&gi)
            .into_iter()
            .map(|s| s.resized(n))
            .filter(|s| keep_sep(s))
            .collect();

        let mut candidates: HashSet<VertexSet> = HashSet::new();
        // Family 0: the new vertex on its own (needed when `a` is isolated in
        // the prefix, e.g. while its only neighbors are later vertices).
        candidates.insert(VertexSet::singleton(n, a));
        // Family 1: previous PMCs, with and without the new vertex.
        for omega in &prev_pmcs {
            candidates.insert(omega.clone());
            let mut with_a = omega.clone();
            with_a.insert(a);
            candidates.insert(with_a);
        }
        // Family 2: S ∪ {a} for S ∈ MinSep(G_i).
        for s in &cur_seps {
            let mut cand = s.clone();
            cand.insert(a);
            candidates.insert(cand);
        }
        // Family 3: S ∪ (T ∩ C) for S in MinSep(G_i) ∪ MinSep(G_{i-1}),
        // a ∉ S, T ∈ MinSep(G_i), and C either the component of G_i \ S
        // containing a or any full component of G_i \ S.
        let prefix_universe = VertexSet::from_iter(n, 0..i);
        for s in cur_seps.iter().chain(prev_seps.iter()) {
            if s.contains(a) {
                continue;
            }
            let mut removed = s.clone();
            removed.union_with(&prefix_universe.complement());
            let comps = gi_components(&gi, &removed, n);
            let mut interesting: Vec<&VertexSet> = Vec::new();
            for c in &comps {
                let is_a_comp = c.contains(a);
                let nb = neighborhood_in_prefix(g, c, &prefix_universe);
                let is_full = s.is_subset_of(&nb);
                if is_a_comp || is_full {
                    interesting.push(c);
                }
            }
            for c in interesting {
                let mut pieces: HashSet<VertexSet> = HashSet::new();
                for t in &cur_seps {
                    let piece = t.intersection(c);
                    if !piece.is_empty() {
                        pieces.insert(piece);
                    }
                }
                for piece in pieces {
                    let mut cand = s.clone();
                    cand.union_with(&piece);
                    candidates.insert(cand);
                }
            }
        }

        // Filter candidates through the exact PMC test on the prefix graph.
        let mut next_pmcs: Vec<VertexSet> = Vec::new();
        let mut since_check = 0usize;
        for cand in candidates {
            since_check += 1;
            if since_check.is_multiple_of(256) {
                if let Some(budget) = budget {
                    if start.elapsed() > budget {
                        return Err(PmcDeadlineExceeded { budget });
                    }
                }
            }
            if !keep_pmc(&cand) {
                continue;
            }
            // Candidate must be inside the prefix.
            if !cand.is_subset_of(&prefix_universe) {
                continue;
            }
            let shrunk = restrict_universe(&cand, i);
            if is_potential_maximal_clique(&gi, &shrunk) {
                next_pmcs.push(cand);
            }
        }
        next_pmcs.sort();
        next_pmcs.dedup();
        prev_pmcs = next_pmcs;
        prev_seps = cur_seps.clone();
    }

    // For n == 1 the loop body never runs; the single vertex is the only PMC.
    let minimal_separators = if n == 1 { Vec::new() } else { cur_seps };
    let mut pmcs = prev_pmcs;
    pmcs.sort();
    Ok(PmcEnumeration {
        pmcs,
        minimal_separators,
    })
}

/// Components of the prefix graph `gi` (which has `i ≤ n` vertices) after
/// removing `removed` (given in the full `n`-vertex universe), returned in
/// the full universe.
fn gi_components(gi: &Graph, removed: &VertexSet, n: u32) -> Vec<VertexSet> {
    let removed_small = restrict_universe(removed, gi.n());
    gi.components_excluding(&removed_small)
        .into_iter()
        .map(|c| c.resized(n))
        .collect()
}

/// Neighborhood of `set` within the prefix, computed on the full graph but
/// clipped to the prefix universe.
fn neighborhood_in_prefix(g: &Graph, set: &VertexSet, prefix: &VertexSet) -> VertexSet {
    let mut nb = g.neighborhood_of_set(set);
    nb.intersect_with(prefix);
    nb
}

/// Projects a set in the `n`-vertex universe down to the first `k` vertices.
fn restrict_universe(s: &VertexSet, k: u32) -> VertexSet {
    VertexSet::from_iter(k, s.iter().filter(|&v| v < k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::potential_maximal_cliques_bruteforce;
    use mtr_graph::paper_example_graph;

    fn check_matches_bruteforce(g: &Graph) {
        let fast = potential_maximal_cliques(g);
        let brute = potential_maximal_cliques_bruteforce(g);
        assert_eq!(fast.pmcs, brute, "PMC mismatch on {g:?}");
    }

    #[test]
    fn paper_example_pmcs() {
        let g = paper_example_graph();
        let result = potential_maximal_cliques(&g);
        assert_eq!(result.pmcs.len(), 6);
        assert_eq!(result.minimal_separators.len(), 3);
        check_matches_bruteforce(&g);
    }

    #[test]
    fn small_fixed_graphs_match_bruteforce() {
        let cases: Vec<Graph> = vec![
            Graph::new(1),
            Graph::new(3),
            Graph::from_edges(2, &[(0, 1)]),
            Graph::complete(5),
            Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]), // C4
            Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]), // C5
            Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]), // C6
            Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]), // path
            Graph::from_edges(7, &[(0, 1), (0, 2), (0, 3), (3, 4), (3, 5), (5, 6)]), // tree
            // K4 minus an edge plus a pendant.
            Graph::from_edges(5, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (3, 4)]),
            // Two triangles sharing one vertex.
            Graph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]),
            // 3x2 grid.
            Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5), (0, 3), (1, 4), (2, 5)]),
        ];
        for g in cases {
            check_matches_bruteforce(&g);
        }
    }

    #[test]
    fn disconnected_graph_matches_bruteforce() {
        // Two disjoint paths.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        check_matches_bruteforce(&g);
        // Isolated vertex plus a triangle.
        let g2 = Graph::from_edges(4, &[(1, 2), (2, 3), (1, 3)]);
        check_matches_bruteforce(&g2);
    }

    #[test]
    fn bounded_enumeration_is_a_size_filter() {
        let g = paper_example_graph();
        let all = potential_maximal_cliques(&g);
        for bound in 1..=6 {
            let bounded = potential_maximal_cliques_bounded(&g, bound);
            let expected: Vec<VertexSet> = all
                .pmcs
                .iter()
                .filter(|p| p.len() <= bound)
                .cloned()
                .collect();
            assert_eq!(bounded.pmcs, expected, "bound {bound}");
        }
    }

    #[test]
    fn empty_graph() {
        let result = potential_maximal_cliques(&Graph::new(0));
        assert!(result.pmcs.is_empty());
    }

    #[test]
    fn mildly_dense_graph_matches_bruteforce() {
        // Wheel W5: hub 0 connected to a C5.
        let mut edges = vec![(1u32, 2u32), (2, 3), (3, 4), (4, 5), (5, 1)];
        for v in 1..=5 {
            edges.push((0, v));
        }
        let g = Graph::from_edges(6, &edges);
        check_matches_bruteforce(&g);
    }
}
