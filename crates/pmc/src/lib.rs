//! `mtr-pmc`: potential maximal cliques.
//!
//! A potential maximal clique (PMC) of `G` is a vertex set that appears as a
//! maximal clique of some minimal triangulation of `G` — equivalently, as a
//! bag of some proper tree decomposition. The Bouchitté–Todinca optimizer
//! (and therefore the paper's `MinTriang` / `RankedTriang`) needs the full
//! list `PMC(G)`.
//!
//! * [`test`](mod@test) — the polynomial PMC test (no full component + cliquish);
//! * [`enumerate`] — the incremental "one more vertex" enumeration, with a
//!   bounded-size variant for the bounded-width algorithms;
//! * [`brute`] — exhaustive subset enumeration used to cross-validate the
//!   incremental algorithm in tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brute;
pub mod enumerate;
pub mod test;

pub use brute::potential_maximal_cliques_bruteforce;
pub use enumerate::{
    potential_maximal_cliques, potential_maximal_cliques_bounded,
    potential_maximal_cliques_with_deadline, PmcDeadlineExceeded, PmcEnumeration,
};
pub use test::is_potential_maximal_clique;
