//! Brute-force enumeration of potential maximal cliques.
//!
//! Tests every vertex subset with the polynomial PMC test. Exponential in
//! the number of vertices — intended only for cross-validating the
//! incremental enumeration of [`crate::enumerate`] on small graphs (the
//! property tests use `n ≤ 10`).

use crate::test::is_potential_maximal_clique;
use mtr_graph::{Graph, VertexSet};

/// Enumerates all PMCs of `g` by exhaustive subset search.
///
/// # Panics
/// Panics when `g` has more than 24 vertices.
pub fn potential_maximal_cliques_bruteforce(g: &Graph) -> Vec<VertexSet> {
    let n = g.n();
    assert!(n <= 24, "brute force is limited to small graphs");
    let mut out = Vec::new();
    for mask in 1u32..(1u32 << n) {
        let omega = VertexSet::from_iter(n, (0..n).filter(|&v| (mask >> v) & 1 == 1));
        if is_potential_maximal_clique(g, &omega) {
            out.push(omega);
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtr_graph::paper_example_graph;

    #[test]
    fn paper_example_has_six_pmcs() {
        let g = paper_example_graph();
        let pmcs = potential_maximal_cliques_bruteforce(&g);
        assert_eq!(pmcs.len(), 6);
    }

    #[test]
    fn chordal_graph_pmcs_are_maximal_cliques() {
        let path = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let pmcs = potential_maximal_cliques_bruteforce(&path);
        let cliques = mtr_chordal_maximal_cliques(&path);
        assert_eq!(pmcs, cliques);
    }

    // Local helper to avoid a dev-dependency cycle: recompute the maximal
    // cliques of a small chordal graph by subset search.
    fn mtr_chordal_maximal_cliques(g: &Graph) -> Vec<VertexSet> {
        let n = g.n();
        let mut cliques: Vec<VertexSet> = Vec::new();
        for mask in 1u32..(1u32 << n) {
            let s = VertexSet::from_iter(n, (0..n).filter(|&v| (mask >> v) & 1 == 1));
            if g.is_clique(&s) {
                cliques.push(s);
            }
        }
        let mut maximal: Vec<VertexSet> = Vec::new();
        for c in &cliques {
            if !cliques.iter().any(|d| c.is_proper_subset_of(d)) {
                maximal.push(c.clone());
            }
        }
        maximal.sort();
        maximal
    }

    #[test]
    fn cycle_counts() {
        // |PMC(C_n)| = n(n-3)/2 + n for n ≥ 4? For C4: 4 triples = 4.
        let c4 = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(potential_maximal_cliques_bruteforce(&c4).len(), 4);
        let c5 = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        // Each minimal triangulation of C5 has 3 maximal cliques (triangles);
        // there are 5 minimal triangulations; the distinct bags number 10.
        assert_eq!(potential_maximal_cliques_bruteforce(&c5).len(), 10);
    }

    #[test]
    fn complete_graph_single_pmc() {
        let g = Graph::complete(5);
        let pmcs = potential_maximal_cliques_bruteforce(&g);
        assert_eq!(pmcs, vec![VertexSet::full(5)]);
    }
}
