//! The polynomial-time potential-maximal-clique test.
//!
//! A vertex set `Ω` is a *potential maximal clique* (PMC) of `G` iff it is a
//! maximal clique of some minimal triangulation of `G` — equivalently, a bag
//! of some proper tree decomposition. Bouchitté and Todinca give a local
//! characterization that avoids looking at any triangulation:
//!
//! 1. **No full component**: no component `C` of `G \ Ω` has `N(C) = Ω`.
//! 2. **Cliquish**: for every pair of distinct vertices `x, y ∈ Ω` that are
//!    not adjacent in `G`, some component `C` of `G \ Ω` has both `x` and
//!    `y` in its neighborhood (so saturating the associated minimal
//!    separator `N(C)` adds the missing edge).
//!
//! Both conditions are checked here in `O(n·m)` time.

use mtr_graph::{Graph, VertexSet};

/// `true` iff `omega` is a potential maximal clique of `g`.
pub fn is_potential_maximal_clique(g: &Graph, omega: &VertexSet) -> bool {
    if omega.is_empty() {
        return false;
    }
    let comps = g.components_excluding(omega);
    let neighborhoods: Vec<VertexSet> = comps.iter().map(|c| g.neighborhood_of_set(c)).collect();
    // Condition 1: no full component.
    if neighborhoods.iter().any(|nb| nb == omega) {
        return false;
    }
    // Condition 2: cliquish, word-parallel. For a fixed `x ∈ Ω` every
    // missing partner `y` must share a component neighborhood with `x`, so
    // the union of the neighborhoods containing `x` must cover all of
    // `Ω \ N(x) \ {x}` — one subset test over bit words per vertex instead
    // of a component scan per non-adjacent pair.
    let mut covered = VertexSet::empty(omega.universe());
    let mut need = VertexSet::empty(omega.universe());
    for x in omega.iter() {
        covered.clear();
        for nb in &neighborhoods {
            if nb.contains(x) {
                covered.union_with(nb);
            }
        }
        need.copy_from(omega);
        need.difference_with(g.neighbors(x));
        need.remove(x);
        if !need.is_subset_of(&covered) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtr_graph::paper_example_graph;

    #[test]
    fn paper_example_pmcs() {
        let g = paper_example_graph();
        // Bags of the proper tree decompositions T1 and T2 (Figure 1(c)).
        for omega in [
            VertexSet::from_slice(6, &[0, 3, 4, 5]), // {u,w1,w2,w3}
            VertexSet::from_slice(6, &[1, 3, 4, 5]), // {v,w1,w2,w3}
            VertexSet::from_slice(6, &[1, 2]),       // {v,v'}
            VertexSet::from_slice(6, &[0, 1, 3]),    // {u,v,w1}
            VertexSet::from_slice(6, &[0, 1, 4]),    // {u,v,w2}
            VertexSet::from_slice(6, &[0, 1, 5]),    // {u,v,w3}
        ] {
            assert!(
                is_potential_maximal_clique(&g, &omega),
                "{omega:?} should be a PMC"
            );
        }
        // Non-PMCs: a minimal separator is never a PMC (its component is full),
        // and sets missing the cliquish condition are rejected.
        for omega in [
            VertexSet::from_slice(6, &[3, 4, 5]), // S1
            VertexSet::from_slice(6, &[0, 1]),    // S2
            VertexSet::from_slice(6, &[1]),       // S3
            VertexSet::from_slice(6, &[0, 1, 2]), // {u,v,v'}: u,v not covered together… actually {u,v} is covered; but {u,v'}?
            VertexSet::from_slice(6, &[0, 2]),    // {u,v'} far apart
            VertexSet::full(6),                   // whole graph is not a clique and G\Ω empty
            VertexSet::empty(6),
        ] {
            assert!(
                !is_potential_maximal_clique(&g, &omega),
                "{omega:?} should not be a PMC"
            );
        }
    }

    #[test]
    fn complete_graph_single_pmc() {
        let g = Graph::complete(4);
        assert!(is_potential_maximal_clique(&g, &VertexSet::full(4)));
        assert!(!is_potential_maximal_clique(
            &g,
            &VertexSet::from_slice(4, &[0, 1, 2])
        ));
    }

    #[test]
    fn single_vertex_graph() {
        let g = Graph::new(1);
        assert!(is_potential_maximal_clique(&g, &VertexSet::singleton(1, 0)));
    }

    #[test]
    fn chordal_graph_pmcs_are_its_maximal_cliques() {
        // For a chordal graph the only minimal triangulation is the graph
        // itself, so PMC(G) = MaxClq(G).
        let path = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert!(is_potential_maximal_clique(
            &path,
            &VertexSet::from_slice(4, &[0, 1])
        ));
        assert!(is_potential_maximal_clique(
            &path,
            &VertexSet::from_slice(4, &[1, 2])
        ));
        assert!(!is_potential_maximal_clique(
            &path,
            &VertexSet::from_slice(4, &[0, 2])
        ));
        assert!(!is_potential_maximal_clique(
            &path,
            &VertexSet::singleton(4, 1)
        ));
        // A single non-simplicial vertex is not a PMC; a simplicial leaf is not
        // a PMC either because its closed neighborhood strictly contains it.
        assert!(!is_potential_maximal_clique(
            &path,
            &VertexSet::singleton(4, 0)
        ));
    }

    #[test]
    fn cycle_pmcs_are_triples() {
        // PMC(C4) = the four vertex triples (each is a bag of one of the two
        // minimal triangulations).
        let c4 = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        for omega in [
            VertexSet::from_slice(4, &[0, 1, 2]),
            VertexSet::from_slice(4, &[1, 2, 3]),
            VertexSet::from_slice(4, &[2, 3, 0]),
            VertexSet::from_slice(4, &[3, 0, 1]),
        ] {
            assert!(is_potential_maximal_clique(&c4, &omega));
        }
        assert!(!is_potential_maximal_clique(
            &c4,
            &VertexSet::from_slice(4, &[0, 1])
        ));
        assert!(!is_potential_maximal_clique(&c4, &VertexSet::full(4)));
    }
}
