//! Prints the PMCs of the paper's Figure 1 graph from both the incremental
//! enumeration and the brute-force reference, for eyeballing disagreements.

fn main() {
    let g = mtr_graph::paper_example_graph();
    let fast = mtr_pmc::potential_maximal_cliques(&g);
    let brute = mtr_pmc::potential_maximal_cliques_bruteforce(&g);
    println!("fast:");
    for p in &fast.pmcs {
        println!("  {:?}", p);
    }
    println!("brute:");
    for p in &brute {
        println!("  {:?}", p);
    }
}
