//! `mtr-serve`: a multi-tenant ranked-enumeration daemon.
//!
//! The PODS 2019 algorithm is *anytime*: results stream out cheapest
//! first with bounded incremental delay, so the natural deployment is a
//! long-lived service — clients submit graphs, the daemon streams ranked
//! minimal triangulations back as they are found, and a shared
//! [content-addressed atom cache](mtr_cache) turns repeated or
//! isomorphic workloads into warm, near-instant streams.
//!
//! The crate is dependency-free (the workspace is hermetic): the wire
//! format is newline-delimited JSON parsed by a [hand-rolled
//! reader](json), the event loop is non-blocking `std::net` (no epoll
//! bindings — the workspace forbids `unsafe`), and the optional binary
//! result framing reuses the little-endian magic + version + length
//! prefix discipline of the cache's disk format. See `docs/PROTOCOL.md`
//! for the wire grammar and [`server`] for the architecture.
//!
//! # Quick start
//!
//! ```no_run
//! use mtr_serve::{serve, BindAddr, Client, EnumerateRequest, ServerConfig};
//!
//! let handle = serve(
//!     &BindAddr::Tcp("127.0.0.1:0".into()),
//!     ServerConfig::default(),
//! )?;
//! let addr = handle.local_addr().expect("tcp bind");
//!
//! let mut client = Client::connect_tcp(&addr.to_string())?;
//! let req = EnumerateRequest {
//!     tenant: "demo".into(),
//!     n: 4,
//!     edges: vec![(0, 1), (1, 2), (2, 3), (3, 0)],
//!     cost: "fill".into(),
//!     width_bound: None,
//!     max_results: Some(5),
//!     deadline_ms: None,
//!     node_budget: None,
//!     threads: 1,
//!     cache: true,
//!     binary: false,
//! };
//! let done = client.enumerate_streaming(&req, |r| {
//!     println!("#{} cost {} fill {:?}", r.rank, r.cost, r.fill);
//! })?;
//! println!("stopped: {} after {} results", done.stop_reason, done.results);
//! handle.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod client;
pub mod json;
pub mod protocol;
pub mod server;

pub use client::{enumerate_with_retry, Client, ClientError, Done, RetryPolicy, ServedResult};
pub use protocol::{EnumerateRequest, ProtocolError, Request, WIRE_MAGIC, WIRE_VERSION};
pub use server::{serve, serve_ephemeral, BindAddr, ServerConfig, ServerHandle, TenantQuota};
