//! A minimal hand-rolled JSON reader/writer for the wire protocol.
//!
//! The build environment is hermetic (no crates.io), so instead of serde
//! this module implements the small JSON subset the protocol needs:
//! objects, arrays, strings, finite numbers, booleans, and null. Parsing
//! is strict — trailing garbage, NaN/Infinity literals, and unterminated
//! tokens are errors — because a daemon must never guess at malformed
//! client input.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (JSON has no NaN or infinities).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted (BTreeMap) so serialization is
    /// deterministic — handy for tests and reproducible logs.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects; `None` elsewhere or when absent.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one
    /// exactly (rejects 1.5, -1, and anything beyond 2^53).
    pub fn as_u64(&self) -> Option<u64> {
        let v = self.as_f64()?;
        if (0.0..=9_007_199_254_740_992.0).contains(&v) && v.fract() == 0.0 {
            Some(v as u64)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the value back to compact JSON text. Object keys come
    /// out sorted (the map is a BTreeMap), so rendering is deterministic.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Maximum container nesting the parser accepts. Recursion descends one
/// stack frame per `[`/`{`, so without a limit a remote line of tens of
/// thousands of opening brackets overflows the IO thread's stack and
/// aborts the whole daemon. The protocol needs depth 4.
pub const MAX_DEPTH: usize = 64;

/// Parses one complete JSON document from `input`. Anything but
/// whitespace after the document is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current container nesting, bounded by [`MAX_DEPTH`].
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at offset {}",
                char::from(b),
                self.pos
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    /// Bumps the nesting depth on container entry; errors past
    /// [`MAX_DEPTH`] instead of recursing toward a stack overflow.
    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            Err(format!(
                "nesting deeper than {MAX_DEPTH} at offset {}",
                self.pos
            ))
        } else {
            Ok(())
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.enter()?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this
                            // protocol; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or("surrogate \\u escapes are unsupported")?;
                            out.push(c);
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos - 1)),
                    }
                }
                Some(b) if b < 0x20 => return Err("raw control byte in string".into()),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so boundaries
                    // are guaranteed valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8")?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+')) {
            self.pos += 1;
        }
        // A '-' inside an exponent (1e-3) is consumed here too.
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'e' | b'E' | b'.')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        let v: f64 = text
            .parse()
            .map_err(|_| format!("bad number '{text}' at offset {start}"))?;
        if !v.is_finite() {
            return Err(format!("non-finite number '{text}'"));
        }
        Ok(Json::Num(v))
    }
}

/// Escapes `s` for embedding in a JSON string literal (no surrounding
/// quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let v = parse(r#"{"frame": "enumerate", "n": 4, "edges": [[0,1],[1,2]], "cache": true, "deadline_ms": null}"#)
            .expect("valid json");
        assert_eq!(v.get("frame").and_then(Json::as_str), Some("enumerate"));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(4));
        let edges = v.get("edges").and_then(Json::as_arr).expect("array");
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0].as_arr().expect("pair")[1].as_u64(), Some(1));
        assert_eq!(v.get("cache").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("deadline_ms"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse(r#"{"a": }"#).is_err());
        assert!(parse(r#"{"a": 1,}"#).is_err());
        assert!(parse(r#""unterminated"#).is_err());
        assert!(parse("NaN").is_err());
        assert!(parse("1e999").is_err(), "overflow to infinity is rejected");
    }

    #[test]
    fn nesting_depth_is_bounded() {
        // One past the limit is an error, not a recursive descent: a
        // hostile line of 100k brackets must not overflow the stack.
        let too_deep = "[".repeat(MAX_DEPTH + 1);
        assert!(parse(&too_deep).is_err());
        let hostile = format!("{}{}", "[".repeat(100_000), "]".repeat(100_000));
        assert!(parse(&hostile).is_err());
        let mixed = "{\"a\":".repeat(100_000);
        assert!(parse(&mixed).is_err());
        // ... while the limit itself still parses.
        let at_limit = format!("{}{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&at_limit).is_ok());
    }

    #[test]
    fn strings_round_trip_through_escape() {
        let original = "a \"quoted\"\\backslash\nnewline\ttab\u{1}ctrl";
        let wire = format!("\"{}\"", escape(original));
        let back = parse(&wire).expect("valid");
        assert_eq!(back.as_str(), Some(original));
    }

    #[test]
    fn numbers_parse_with_exponents_and_fractions() {
        assert_eq!(parse("-2.5e2").expect("num").as_f64(), Some(-250.0));
        assert_eq!(parse("0").expect("num").as_u64(), Some(0));
        assert_eq!(parse("1.5").expect("num").as_u64(), None);
        assert_eq!(parse("-1").expect("num").as_u64(), None);
    }

    #[test]
    fn render_round_trips() {
        let text = r#"{"b":[1,2.5,null],"a":{"x":"y\n"},"c":true}"#;
        let v = parse(text).expect("valid");
        let rendered = v.render();
        assert_eq!(parse(&rendered).expect("valid"), v);
        // Keys render sorted, so serialization is canonical.
        assert!(rendered.find("\"a\"").expect("a") < rendered.find("\"b\"").expect("b"));
    }
}
