//! A small blocking client for the `mtr-serve` protocol: handshake, send
//! a request, stream the ranked results back. Used by `mtr client`, the
//! equivalence tests, and the service benchmarks.

use std::io::{BufRead as _, BufReader, ErrorKind, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
#[cfg(unix)]
use std::path::Path;

use crate::json::{self, Json};
use crate::protocol::{self, EnumerateRequest, FRAME_RESULT_BINARY, WIRE_MAGIC, WIRE_VERSION};

/// One streamed result.
#[derive(Clone, Debug, PartialEq)]
pub struct ServedResult {
    /// 0-based rank in the served stream.
    pub rank: u64,
    /// Cost under the requested bag cost.
    pub cost: f64,
    /// Fill edges over the request's vertex indexing (triangulation =
    /// input graph + fill).
    pub fill: Vec<(u32, u32)>,
}

/// The terminal summary of a successful stream.
#[derive(Clone, Debug)]
pub struct Done {
    /// Which queue admission put the request on (`"warm"` / `"cold"`).
    pub queue: String,
    /// Why the session stopped (the `StopReason` display form).
    pub stop_reason: String,
    /// Number of results streamed.
    pub results: usize,
    /// The session's statistics (the `EnumerationStats::to_json` object,
    /// re-rendered with sorted keys).
    pub stats: Json,
}

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server sent something the client cannot parse.
    Protocol(String),
    /// The server refused the request with an error frame.
    Server {
        /// Machine-readable error code.
        code: String,
        /// Human-readable message.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server { code, message } => {
                write!(f, "server error [{code}]: {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

enum ClientStream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Read for ClientStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            ClientStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            ClientStream::Unix(s) => s.read(buf),
        }
    }
}

impl ClientStream {
    fn write_all_bytes(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        match self {
            ClientStream::Tcp(s) => s.write_all(bytes),
            #[cfg(unix)]
            ClientStream::Unix(s) => s.write_all(bytes),
        }
    }
}

/// A connected, handshaken client.
pub struct Client {
    reader: BufReader<ClientStream>,
}

impl Client {
    /// Connects over TCP and performs the version handshake.
    pub fn connect_tcp(addr: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Client::handshake(ClientStream::Tcp(stream))
    }

    /// Connects over a Unix-domain socket and performs the handshake.
    #[cfg(unix)]
    pub fn connect_unix(path: &Path) -> Result<Client, ClientError> {
        let stream = UnixStream::connect(path)?;
        Client::handshake(ClientStream::Unix(stream))
    }

    fn handshake(mut stream: ClientStream) -> Result<Client, ClientError> {
        stream.write_all_bytes(protocol::hello_frame().as_bytes())?;
        let mut client = Client {
            reader: BufReader::new(stream),
        };
        let line = client.read_line()?;
        let doc = json::parse(&line).map_err(ClientError::Protocol)?;
        match doc.get("frame").and_then(Json::as_str) {
            Some("hello") => {
                let version = doc.get("version").and_then(Json::as_u64).unwrap_or(0);
                if version != u64::from(WIRE_VERSION) {
                    return Err(ClientError::Protocol(format!(
                        "server speaks protocol v{version}, this client v{WIRE_VERSION}"
                    )));
                }
                Ok(client)
            }
            Some("error") => Err(server_error(&doc)),
            _ => Err(ClientError::Protocol(format!("unexpected frame: {line}"))),
        }
    }

    /// Sends an enumeration request and invokes `on_result` for every
    /// streamed result, in rank order, returning the terminal summary.
    /// Results arrive incrementally — `on_result` sees each one as soon
    /// as the daemon emits it.
    pub fn enumerate_streaming(
        &mut self,
        req: &EnumerateRequest,
        mut on_result: impl FnMut(ServedResult),
    ) -> Result<Done, ClientError> {
        self.reader
            .get_mut()
            .write_all_bytes(protocol::enumerate_frame(req).as_bytes())?;

        // The accepted frame tells us which queue admission chose.
        let line = self.read_line()?;
        let doc = json::parse(&line).map_err(ClientError::Protocol)?;
        let queue = match doc.get("frame").and_then(Json::as_str) {
            Some("accepted") => doc
                .get("queue")
                .and_then(Json::as_str)
                .unwrap_or("cold")
                .to_string(),
            Some("error") => return Err(server_error(&doc)),
            _ => return Err(ClientError::Protocol(format!("unexpected frame: {line}"))),
        };

        if req.binary {
            let mut header = [0u8; 8];
            self.reader.read_exact(&mut header)?;
            if &header[..4] != WIRE_MAGIC || le_u32(&header[4..8])? != WIRE_VERSION {
                return Err(ClientError::Protocol("bad binary stream header".into()));
            }
        }

        loop {
            if req.binary && self.peek_byte()? == FRAME_RESULT_BINARY {
                let mut tag_len = [0u8; 5];
                self.reader.read_exact(&mut tag_len)?;
                let len = le_u32(&tag_len[1..5])? as usize;
                if len > MAX_BINARY_FRAME {
                    return Err(ClientError::Protocol(format!(
                        "binary result frame claims {len} bytes (cap {MAX_BINARY_FRAME}) — \
                         corrupt stream"
                    )));
                }
                let mut payload = vec![0u8; len];
                self.reader.read_exact(&mut payload)?;
                let (rank, cost, fill) = protocol::decode_binary_result(&payload)
                    .map_err(|e| ClientError::Protocol(e.message))?;
                on_result(ServedResult { rank, cost, fill });
                continue;
            }
            let line = self.read_line()?;
            let doc = json::parse(&line).map_err(ClientError::Protocol)?;
            match doc.get("frame").and_then(Json::as_str) {
                Some("result") => {
                    let rank = doc
                        .get("rank")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| ClientError::Protocol("result without rank".into()))?;
                    let cost = doc
                        .get("cost")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| ClientError::Protocol("result without cost".into()))?;
                    let mut fill = Vec::new();
                    for pair in doc.get("fill").and_then(Json::as_arr).unwrap_or(&[]) {
                        let pair = pair
                            .as_arr()
                            .filter(|p| p.len() == 2)
                            .ok_or_else(|| ClientError::Protocol("bad fill pair".into()))?;
                        let u = pair[0]
                            .as_u64()
                            .ok_or_else(|| ClientError::Protocol("bad fill pair".into()))?;
                        let v = pair[1]
                            .as_u64()
                            .ok_or_else(|| ClientError::Protocol("bad fill pair".into()))?;
                        fill.push((u as u32, v as u32));
                    }
                    on_result(ServedResult { rank, cost, fill });
                }
                Some("done") => {
                    let stop_reason = doc
                        .get("stop_reason")
                        .and_then(Json::as_str)
                        .unwrap_or("unknown")
                        .to_string();
                    let results = doc.get("results").and_then(Json::as_u64).unwrap_or(0) as usize;
                    let stats = doc.get("stats").cloned().unwrap_or(Json::Null);
                    return Ok(Done {
                        queue,
                        stop_reason,
                        results,
                        stats,
                    });
                }
                Some("error") => return Err(server_error(&doc)),
                _ => return Err(ClientError::Protocol(format!("unexpected frame: {line}"))),
            }
        }
    }

    /// Sends an enumeration request and collects the full stream.
    pub fn enumerate(
        &mut self,
        req: &EnumerateRequest,
    ) -> Result<(Vec<ServedResult>, Done), ClientError> {
        let mut results = Vec::new();
        let done = self.enumerate_streaming(req, |r| results.push(r))?;
        Ok((results, done))
    }

    /// Asks the daemon for a live introspection snapshot. Returns the
    /// whole `metrics` frame as parsed JSON: `"metrics"` holds the
    /// observability registry, `"store"` the cache-store statistics,
    /// `"tenants"` the per-tenant request counts.
    pub fn metrics(&mut self) -> Result<Json, ClientError> {
        self.reader
            .get_mut()
            .write_all_bytes(protocol::metrics_request_frame().as_bytes())?;
        let line = self.read_line()?;
        let doc = json::parse(&line).map_err(ClientError::Protocol)?;
        match doc.get("frame").and_then(Json::as_str) {
            Some("metrics") => Ok(doc),
            Some("error") => Err(server_error(&doc)),
            _ => Err(ClientError::Protocol(format!("unexpected frame: {line}"))),
        }
    }

    /// Asks the daemon to shut down gracefully; returns once the server
    /// acknowledges with its `bye` frame.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.reader
            .get_mut()
            .write_all_bytes(protocol::shutdown_frame().as_bytes())?;
        let line = self.read_line()?;
        let doc = json::parse(&line).map_err(ClientError::Protocol)?;
        match doc.get("frame").and_then(Json::as_str) {
            Some("bye") => Ok(()),
            Some("error") => Err(server_error(&doc)),
            _ => Err(ClientError::Protocol(format!("unexpected frame: {line}"))),
        }
    }

    fn read_line(&mut self) -> Result<String, ClientError> {
        let mut line = Vec::new();
        let mut byte = [0u8; 1];
        loop {
            match self.reader.read(&mut byte) {
                Ok(0) => {
                    return Err(ClientError::Io(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    )))
                }
                Ok(_) => {
                    if byte[0] == b'\n' {
                        return String::from_utf8(line)
                            .map_err(|_| ClientError::Protocol("non-utf8 frame".into()));
                    }
                    line.push(byte[0]);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }

    /// Peeks at the next byte without consuming it (distinguishes binary
    /// frames from JSON lines).
    fn peek_byte(&mut self) -> Result<u8, ClientError> {
        let buf = self.reader.fill_buf()?;
        match buf.first() {
            Some(&b) => Ok(b),
            // fill_buf returning empty means EOF.
            None => Err(ClientError::Io(std::io::Error::new(
                ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))),
        }
    }
}

/// Sanity cap on a binary result frame's claimed payload length — a torn
/// or corrupt stream must fail with a typed protocol error, not a
/// multi-gigabyte allocation.
const MAX_BINARY_FRAME: usize = 1 << 26;

/// Decodes a 4-byte little-endian length/version field, turning a
/// short slice into a typed protocol error instead of a client panic.
fn le_u32(bytes: &[u8]) -> Result<u32, ClientError> {
    let arr: [u8; 4] = bytes
        .try_into()
        .map_err(|_| ClientError::Protocol("truncated binary field (expected 4 bytes)".into()))?;
    Ok(u32::from_le_bytes(arr))
}

/// Retry policy for [`enumerate_with_retry`]: exponential backoff with
/// deterministic, seeded jitter (reproducible chaos tests).
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Reconnect-and-reissue attempts after the first failure.
    pub retries: u32,
    /// Base backoff before the first retry; doubles every attempt
    /// (plus up to 50% seeded jitter), capped at 10 seconds.
    pub backoff_ms: u64,
    /// Jitter seed. Two clients with different seeds desynchronize
    /// their retry storms; the same seed reproduces the exact schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            retries: 0,
            backoff_ms: 100,
            seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl RetryPolicy {
    /// The delay before retry number `attempt` (0-based), from the
    /// mutable xorshift state `rng`.
    fn delay(&self, attempt: u32, rng: &mut u64) -> std::time::Duration {
        let base = self
            .backoff_ms
            .saturating_mul(1u64 << attempt.min(16))
            .min(10_000);
        // xorshift64 — same generator as the engine's seeded paths.
        let mut x = *rng | 1;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *rng = x;
        let jitter = if base == 0 { 0 } else { x % (base / 2 + 1) };
        std::time::Duration::from_millis(base + jitter)
    }
}

/// Is this failure worth a reconnect? Transport errors (refused, reset,
/// truncated) and the server's `internal-error` frame (a contained
/// daemon-side fault) are; everything else — quota refusals, malformed
/// requests, genuine session errors — would fail identically on retry.
fn retryable(e: &ClientError) -> bool {
    match e {
        ClientError::Io(_) => true,
        ClientError::Server { code, .. } => code == "internal-error",
        ClientError::Protocol(_) => false,
    }
}

/// Connects via `connect` and runs `req`, retrying per `policy` on
/// transport failures and daemon-side `internal-error` frames.
///
/// A request is reissued **only if zero result frames were received** on
/// the failed attempt: result frames are the stream's side effect, and a
/// client that already observed rank 0..k cannot reconcile them with a
/// fresh stream (enumeration is deterministic, but a retried session may
/// legitimately stop at a different budget boundary). A partial stream
/// therefore surfaces the original error.
pub fn enumerate_with_retry(
    mut connect: impl FnMut() -> Result<Client, ClientError>,
    req: &EnumerateRequest,
    policy: &RetryPolicy,
) -> Result<(Vec<ServedResult>, Done), ClientError> {
    let mut rng = policy.seed;
    let mut attempt = 0u32;
    loop {
        let mut results = Vec::new();
        let outcome =
            connect().and_then(|mut client| client.enumerate_streaming(req, |r| results.push(r)));
        match outcome {
            Ok(done) => return Ok((results, done)),
            Err(e) => {
                if !results.is_empty() || attempt >= policy.retries || !retryable(&e) {
                    return Err(e);
                }
                std::thread::sleep(policy.delay(attempt, &mut rng));
                attempt += 1;
            }
        }
    }
}

fn server_error(doc: &Json) -> ClientError {
    ClientError::Server {
        code: doc
            .get("code")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string(),
        message: doc
            .get("message")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string(),
    }
}
