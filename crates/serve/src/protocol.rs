//! The `mtr-serve` wire protocol.
//!
//! A connection speaks newline-delimited JSON frames (NDJSON). The client
//! opens with a `hello` frame carrying the protocol version — the same
//! magic + version discipline as the `mtr-cache` disk format — and the
//! server answers with its own `hello` or an `error` frame and a close.
//! After the handshake the client sends one request frame at a time and
//! the server streams response frames back; see `docs/PROTOCOL.md` for
//! the full grammar.
//!
//! Response streams are JSON by default. A request with `"binary": true`
//! switches the *result* frames of that stream to a length-prefixed
//! binary encoding (little-endian, like the disk format): the stream then
//! starts with the 8-byte `MTRW` + version header, each result is a
//! `0x01`-tagged length-prefixed record, and the trailing `done` /
//! `error` frames remain JSON lines. The two framings interleave safely
//! because a JSON line always starts with `{` (0x7B), never `0x01`.

use crate::json::{self, Json};
use mtr_core::StopReason;

/// Magic bytes opening a binary result stream. Deliberately distinct from
/// the cache's `MTRA` so a cache file can never be mistaken for a wire
/// capture (or vice versa).
pub const WIRE_MAGIC: &[u8; 4] = b"MTRW";

/// Version of the wire protocol; bumped on any incompatible change.
/// Mismatched hellos are rejected with an `error` frame, mirroring the
/// version check of the cache's disk format.
pub const WIRE_VERSION: u32 = 1;

/// Tag byte of a binary result frame.
pub const FRAME_RESULT_BINARY: u8 = 0x01;

/// An enumeration request, decoded and validated.
#[derive(Clone, Debug)]
pub struct EnumerateRequest {
    /// Tenant identity for admission control (default `"anonymous"`).
    pub tenant: String,
    /// Number of vertices.
    pub n: u32,
    /// Edge list (`u < n`, `v < n` enforced at parse time).
    pub edges: Vec<(u32, u32)>,
    /// Cost name (see `mtr_core::cost::named_cost`).
    pub cost: String,
    /// Optional width bound (`MinTriangB`).
    pub width_bound: Option<usize>,
    /// Stop after this many results.
    pub max_results: Option<usize>,
    /// Wall-clock budget in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Lawler–Murty node budget.
    pub node_budget: Option<u64>,
    /// Worker threads for this session (0 = auto).
    pub threads: usize,
    /// Run through the reduction layer with the server's shared atom
    /// store (warm path). `false` = direct engine, bit-for-bit equal to
    /// `Enumerate::on`.
    pub cache: bool,
    /// Stream results in the binary framing instead of JSON.
    pub binary: bool,
}

/// A decoded client frame.
#[derive(Clone, Debug)]
pub enum Request {
    /// The handshake frame: `{"frame": "hello", "magic": "MTRW", "version": 1}`.
    Hello {
        /// Magic string as sent (must equal `MTRW`).
        magic: String,
        /// Protocol version as sent (must equal [`WIRE_VERSION`]).
        version: u64,
    },
    /// An enumeration request.
    Enumerate(Box<EnumerateRequest>),
    /// Ask for a live introspection snapshot: the observability registry,
    /// store-wide cache statistics, and per-tenant request counts.
    Metrics,
    /// Ask the daemon to shut down gracefully (drain, then exit).
    Shutdown,
}

/// A protocol-level error: machine-readable code plus human message.
#[derive(Clone, Debug)]
pub struct ProtocolError {
    /// Stable machine-readable code (`bad-json`, `bad-request`,
    /// `version-mismatch`, `unknown-cost`, `quota-exceeded`,
    /// `frame-too-large`, `shutting-down`, `session-error`,
    /// `internal-error`). `internal-error` marks a contained daemon-side
    /// fault (a panicking session, an injected failpoint) — the request
    /// failed but the connection and daemon are healthy, so clients may
    /// retry; `session-error` is a deterministic per-request failure that
    /// would fail identically on retry.
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ProtocolError {
    fn new(code: &'static str, message: impl Into<String>) -> Self {
        ProtocolError {
            code,
            message: message.into(),
        }
    }
}

/// Parses one client frame from a protocol line.
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    let doc = json::parse(line).map_err(|e| ProtocolError::new("bad-json", e))?;
    let frame = doc
        .get("frame")
        .and_then(Json::as_str)
        .ok_or_else(|| ProtocolError::new("bad-request", "missing \"frame\""))?;
    match frame {
        "hello" => {
            let magic = doc
                .get("magic")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string();
            let version = doc.get("version").and_then(Json::as_u64).unwrap_or(0);
            Ok(Request::Hello { magic, version })
        }
        "metrics" => Ok(Request::Metrics),
        "shutdown" => Ok(Request::Shutdown),
        "enumerate" => parse_enumerate(&doc).map(|r| Request::Enumerate(Box::new(r))),
        other => Err(ProtocolError::new(
            "bad-request",
            format!("unknown frame \"{other}\""),
        )),
    }
}

fn parse_enumerate(doc: &Json) -> Result<EnumerateRequest, ProtocolError> {
    let bad = |m: String| ProtocolError::new("bad-request", m);
    let n = doc
        .get("n")
        .and_then(Json::as_u64)
        .ok_or_else(|| bad("missing or invalid \"n\"".into()))?;
    let n = u32::try_from(n).map_err(|_| bad("\"n\" out of range".into()))?;
    let mut edges = Vec::new();
    if let Some(list) = doc.get("edges") {
        let list = list
            .as_arr()
            .ok_or_else(|| bad("\"edges\" must be an array".into()))?;
        for pair in list {
            let pair = pair
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| bad("each edge must be a [u, v] pair".into()))?;
            let u = pair[0]
                .as_u64()
                .filter(|&u| u < u64::from(n))
                .ok_or_else(|| bad("edge endpoint out of range".into()))?;
            let v = pair[1]
                .as_u64()
                .filter(|&v| v < u64::from(n))
                .ok_or_else(|| bad("edge endpoint out of range".into()))?;
            if u == v {
                return Err(bad("self-loops are not allowed".into()));
            }
            edges.push((u as u32, v as u32));
        }
    }
    let usize_field = |key: &str| -> Result<Option<usize>, ProtocolError> {
        match doc.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => v
                .as_u64()
                .and_then(|v| usize::try_from(v).ok())
                .map(Some)
                .ok_or_else(|| bad(format!("invalid \"{key}\""))),
        }
    };
    let u64_field = |key: &str| -> Result<Option<u64>, ProtocolError> {
        match doc.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => v
                .as_u64()
                .map(Some)
                .ok_or_else(|| bad(format!("invalid \"{key}\""))),
        }
    };
    Ok(EnumerateRequest {
        tenant: doc
            .get("tenant")
            .and_then(Json::as_str)
            .unwrap_or("anonymous")
            .to_string(),
        n,
        edges,
        cost: doc
            .get("cost")
            .and_then(Json::as_str)
            .unwrap_or("width")
            .to_string(),
        width_bound: usize_field("width_bound")?,
        max_results: usize_field("max_results")?,
        deadline_ms: u64_field("deadline_ms")?,
        node_budget: u64_field("node_budget")?,
        threads: usize_field("threads")?.unwrap_or(1),
        cache: doc.get("cache").and_then(Json::as_bool).unwrap_or(false),
        binary: doc.get("binary").and_then(Json::as_bool).unwrap_or(false),
    })
}

/// The client's opening handshake line.
pub fn hello_frame() -> String {
    format!("{{\"frame\": \"hello\", \"magic\": \"MTRW\", \"version\": {WIRE_VERSION}}}\n")
}

/// The server's handshake acknowledgement.
pub fn hello_ack_frame() -> String {
    format!(
        "{{\"frame\": \"hello\", \"server\": \"mtr-serve\", \"magic\": \"MTRW\", \"version\": {WIRE_VERSION}}}\n"
    )
}

/// Serializes an [`EnumerateRequest`] back into its wire line (the
/// client-side encoder).
pub fn enumerate_frame(req: &EnumerateRequest) -> String {
    let edges: Vec<String> = req
        .edges
        .iter()
        .map(|&(u, v)| format!("[{u},{v}]"))
        .collect();
    let opt = |v: Option<u64>| v.map_or_else(|| "null".into(), |v| v.to_string());
    format!(
        concat!(
            "{{\"frame\": \"enumerate\", \"tenant\": \"{}\", \"n\": {}, ",
            "\"edges\": [{}], \"cost\": \"{}\", \"width_bound\": {}, ",
            "\"max_results\": {}, \"deadline_ms\": {}, \"node_budget\": {}, ",
            "\"threads\": {}, \"cache\": {}, \"binary\": {}}}\n"
        ),
        json::escape(&req.tenant),
        req.n,
        edges.join(","),
        json::escape(&req.cost),
        opt(req.width_bound.map(|v| v as u64)),
        opt(req.max_results.map(|v| v as u64)),
        opt(req.deadline_ms),
        opt(req.node_budget),
        req.threads,
        req.cache,
        req.binary,
    )
}

/// The shutdown request line.
pub fn shutdown_frame() -> String {
    "{\"frame\": \"shutdown\"}\n".to_string()
}

/// The metrics request line.
pub fn metrics_request_frame() -> String {
    "{\"frame\": \"metrics\"}\n".to_string()
}

/// A streamed result as a JSON line.
pub fn result_frame(rank: u64, cost: f64, fill: &[(u32, u32)]) -> String {
    let fill: Vec<String> = fill.iter().map(|&(u, v)| format!("[{u},{v}]")).collect();
    format!(
        "{{\"frame\": \"result\", \"rank\": {rank}, \"cost\": {cost}, \"fill\": [{}]}}\n",
        fill.join(",")
    )
}

/// The 8-byte header opening a binary result stream (magic + version,
/// little-endian — the cache disk-format discipline).
pub fn binary_stream_header() -> Vec<u8> {
    let mut out = Vec::with_capacity(8);
    out.extend_from_slice(WIRE_MAGIC);
    out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    out
}

/// A streamed result as a binary frame: tag byte, u32 payload length,
/// then `u64 rank, f64 cost, u32 k, k × (u32 u, u32 v)` — all
/// little-endian.
pub fn result_frame_binary(rank: u64, cost: f64, fill: &[(u32, u32)]) -> Vec<u8> {
    let payload_len = 8 + 8 + 4 + fill.len() * 8;
    let mut out = Vec::with_capacity(1 + 4 + payload_len);
    out.push(FRAME_RESULT_BINARY);
    out.extend_from_slice(
        &u32::try_from(payload_len)
            .expect("frame fits u32")
            .to_le_bytes(),
    );
    out.extend_from_slice(&rank.to_le_bytes());
    out.extend_from_slice(&cost.to_le_bytes());
    out.extend_from_slice(
        &u32::try_from(fill.len())
            .expect("fill fits u32")
            .to_le_bytes(),
    );
    for &(u, v) in fill {
        out.extend_from_slice(&u.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// A decoded binary result record: `(rank, cost, fill edges)`.
pub type BinaryResult = (u64, f64, Vec<(u32, u32)>);

/// Decodes the payload of a binary result frame (after tag and length
/// have been consumed). Returns `(rank, cost, fill)`.
pub fn decode_binary_result(payload: &[u8]) -> Result<BinaryResult, ProtocolError> {
    let err = || ProtocolError::new("bad-frame", "truncated binary result frame");
    let take = |at: usize, len: usize| payload.get(at..at + len).ok_or_else(err);
    let rank = u64::from_le_bytes(take(0, 8)?.try_into().expect("8 bytes"));
    let cost = f64::from_le_bytes(take(8, 8)?.try_into().expect("8 bytes"));
    let k = u32::from_le_bytes(take(16, 4)?.try_into().expect("4 bytes")) as usize;
    if payload.len() != 20 + k * 8 {
        return Err(err());
    }
    let mut fill = Vec::with_capacity(k);
    for i in 0..k {
        let u = u32::from_le_bytes(take(20 + i * 8, 4)?.try_into().expect("4 bytes"));
        let v = u32::from_le_bytes(take(24 + i * 8, 4)?.try_into().expect("4 bytes"));
        fill.push((u, v));
    }
    Ok((rank, cost, fill))
}

/// The terminal frame of a successful stream. `stats` is the JSON object
/// produced by `EnumerationStats::to_json` — embedded verbatim, so the
/// daemon and the CLI `--stats-json` output share one serialization.
pub fn done_frame(stop_reason: StopReason, results: usize, stats: &str) -> String {
    format!(
        "{{\"frame\": \"done\", \"stop_reason\": \"{stop_reason}\", \"results\": {results}, \"stats\": {stats}}}\n"
    )
}

/// An error frame. Terminal for the current request (handshake and
/// protocol errors also close the connection).
pub fn error_frame(err: &ProtocolError) -> String {
    format!(
        "{{\"frame\": \"error\", \"code\": \"{}\", \"message\": \"{}\"}}\n",
        err.code,
        json::escape(&err.message)
    )
}

/// The server's goodbye after a `shutdown` request is accepted.
pub fn bye_frame() -> String {
    "{\"frame\": \"bye\"}\n".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerate_request_round_trips() {
        let req = EnumerateRequest {
            tenant: "t1".into(),
            n: 5,
            edges: vec![(0, 1), (1, 2), (3, 4)],
            cost: "fill".into(),
            width_bound: Some(3),
            max_results: Some(10),
            deadline_ms: None,
            node_budget: Some(1000),
            threads: 2,
            cache: true,
            binary: false,
        };
        let line = enumerate_frame(&req);
        let back = match parse_request(line.trim_end()).expect("valid") {
            Request::Enumerate(r) => r,
            other => panic!("wrong frame: {other:?}"),
        };
        assert_eq!(back.tenant, req.tenant);
        assert_eq!(back.n, req.n);
        assert_eq!(back.edges, req.edges);
        assert_eq!(back.cost, req.cost);
        assert_eq!(back.width_bound, req.width_bound);
        assert_eq!(back.max_results, req.max_results);
        assert_eq!(back.deadline_ms, req.deadline_ms);
        assert_eq!(back.node_budget, req.node_budget);
        assert_eq!(back.threads, req.threads);
        assert_eq!(back.cache, req.cache);
        assert_eq!(back.binary, req.binary);
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        assert_eq!(parse_request("not json").unwrap_err().code, "bad-json");
        assert_eq!(parse_request("{}").unwrap_err().code, "bad-request");
        let out_of_range = r#"{"frame": "enumerate", "n": 3, "edges": [[0, 3]]}"#;
        assert_eq!(parse_request(out_of_range).unwrap_err().code, "bad-request");
        let self_loop = r#"{"frame": "enumerate", "n": 3, "edges": [[1, 1]]}"#;
        assert_eq!(parse_request(self_loop).unwrap_err().code, "bad-request");
    }

    #[test]
    fn binary_result_frames_round_trip() {
        let fill = vec![(0, 2), (1, 3), (7, 9)];
        let frame = result_frame_binary(42, 3.5, &fill);
        assert_eq!(frame[0], FRAME_RESULT_BINARY);
        let len = u32::from_le_bytes(frame[1..5].try_into().expect("4 bytes")) as usize;
        assert_eq!(frame.len(), 5 + len);
        let (rank, cost, back) = decode_binary_result(&frame[5..]).expect("valid");
        assert_eq!(rank, 42);
        assert_eq!(cost, 3.5);
        assert_eq!(back, fill);
        // Truncations are rejected, never mis-decoded.
        assert!(decode_binary_result(&frame[5..frame.len() - 1]).is_err());
    }

    #[test]
    fn binary_header_reuses_the_magic_version_discipline() {
        let header = binary_stream_header();
        assert_eq!(&header[..4], WIRE_MAGIC);
        assert_eq!(
            u32::from_le_bytes(header[4..8].try_into().expect("4 bytes")),
            WIRE_VERSION
        );
    }
}
