//! The daemon: a hand-rolled non-blocking event loop multiplexing many
//! client connections onto one shared [`AtomStore`] and a small pool of
//! session-runner threads.
//!
//! # Architecture
//!
//! One **IO thread** owns the listener and every socket, all in
//! non-blocking mode. Each loop iteration accepts new connections, reads
//! request bytes, parses complete frames, admits sessions, and flushes
//! per-connection write buffers. There are no callbacks and no `unsafe`
//! (the workspace forbids it, which also rules out `poll(2)`): readiness
//! is discovered by attempting the syscall and treating `WouldBlock` as
//! "not ready", with a sub-millisecond sleep when an iteration made no
//! progress.
//!
//! **Session runners** (N worker threads) pop admitted sessions from a
//! two-level queue — warm before cold — and drive the enumeration
//! engines, pushing response frames into the connection's shared write
//! buffer. The buffer enforces backpressure: past the high-water mark the
//! runner blocks (stops demanding results from the engine — the anytime
//! guarantee means no work is wasted) until the IO thread drains the
//! socket below the low-water mark.
//!
//! **Cache-aware admission**: at admission the request's graph is
//! decomposed into atoms and their canonical keys are probed —
//! non-perturbing [`AtomStore::probe`] — against the shared store. A
//! request with at least one warm atom goes to the warm queue and is
//! served first: it will stream its first results almost immediately,
//! which maximizes throughput under mixed workloads without starving
//! cold requests (runners fall back to the cold queue whenever the warm
//! one is empty).
//!
//! **Cancellation and shutdown**: a disconnect observed by the IO thread
//! raises the session's [`CancelFlag`]; every engine bails at its next
//! demand boundary ([`StopReason::Cancelled`]) and partial per-atom
//! prefixes are still published to the store (marked incomplete). A
//! graceful shutdown — [`ServerHandle::shutdown`] or a client `shutdown`
//! frame — stops accepting connections, drains every admitted session to
//! completion, flushes all buffers, then exits.

use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mtr_cache::{AtomKey, AtomStore, DEFAULT_BYTE_BUDGET};
use mtr_core::cost::named_cost;
use mtr_core::{CancelFlag, Enumerate, StopReason};
use mtr_graph::Graph;
use mtr_reduce::{decompose, EnumerateReduceExt, ReductionLevel};

use crate::json::Json;
use crate::protocol::{self, EnumerateRequest, ProtocolError, Request, WIRE_VERSION};

/// Handles into the [`mtr_obs`] registry for the daemon's own counters,
/// resolved once. Per-tenant counters live in [`Shared::tenant_metrics`]
/// (bounded — tenant names are client-controlled input).
struct ServeMetrics {
    /// `serve.connections`: connections accepted.
    connections: mtr_obs::Counter,
    /// `serve.requests`: enumerate requests that passed stage-one
    /// admission (quota refusals excluded).
    requests: mtr_obs::Counter,
    /// `serve.warm` / `serve.cold`: admission classification outcomes.
    warm: mtr_obs::Counter,
    /// See [`ServeMetrics::warm`].
    cold: mtr_obs::Counter,
    /// `serve.admission_wait_ns`: accept-to-runner-pop latency.
    admission_wait_ns: mtr_obs::Histogram,
    /// `serve.first_result_ns`: accept-to-first-result-frame latency.
    first_result_ns: mtr_obs::Histogram,
    /// `serve.backpressure_stalls`: times a session runner blocked on a
    /// connection's high-water mark.
    backpressure_stalls: mtr_obs::Counter,
}

fn serve_metrics() -> &'static ServeMetrics {
    static METRICS: std::sync::OnceLock<ServeMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| ServeMetrics {
        connections: mtr_obs::counter("serve.connections"),
        requests: mtr_obs::counter("serve.requests"),
        warm: mtr_obs::counter("serve.warm"),
        cold: mtr_obs::counter("serve.cold"),
        admission_wait_ns: mtr_obs::histogram("serve.admission_wait_ns"),
        first_result_ns: mtr_obs::histogram("serve.first_result_ns"),
        backpressure_stalls: mtr_obs::counter("serve.backpressure_stalls"),
    })
}

/// Cap on distinct per-tenant counter entries — tenant names are
/// client-controlled, so without a cap a hostile client could grow the
/// tenant table without bound. Requests beyond the cap are counted under
/// the synthetic tenant `"other"`.
const MAX_TENANT_METRICS: usize = 64;

/// Worker blocks when a connection's write buffer exceeds this.
const HIGH_WATER: usize = 256 * 1024;
/// ... and resumes once the IO thread drains it below this.
const LOW_WATER: usize = 64 * 1024;
/// Idle-iteration sleep of the event loop.
const IDLE_SLEEP: Duration = Duration::from_micros(500);
/// Cap on a connection's unparsed input. A single protocol line longer
/// than this is refused (`frame-too-large`, connection closed); while a
/// session is in flight the IO thread simply stops reading past the cap,
/// leaving further pipelined bytes in the kernel buffer, so a client can
/// never grow the daemon's memory without bound.
pub const MAX_INBUF: usize = 1024 * 1024;
/// During graceful shutdown, a draining connection whose client has
/// stopped reading (write buffer full, no flush progress) is dropped
/// after this long — `mark_disconnected` cancels its session cleanly —
/// so `shutdown()`/`wait()` cannot hang on a stalled client.
const SHUTDOWN_STALL_TIMEOUT: Duration = Duration::from_secs(5);

/// Per-tenant admission quotas. A value of `None` means "uncapped".
#[derive(Clone, Debug)]
pub struct TenantQuota {
    /// Maximum in-flight (queued or running) sessions per tenant;
    /// requests beyond it are refused with a `quota-exceeded` error
    /// frame (the connection stays usable).
    pub max_concurrent_sessions: usize,
    /// Hard cap on `max_results`; requests asking for more (or for an
    /// unbounded stream, when set) are clamped.
    pub max_results_cap: Option<usize>,
    /// Hard cap on the per-session deadline, clamped likewise.
    pub deadline_cap: Option<Duration>,
    /// Hard cap on the Lawler–Murty node budget, clamped likewise.
    pub node_budget_cap: Option<u64>,
    /// Hard cap on a request's vertex count `n`; larger requests are
    /// refused with `quota-exceeded` (the graph is never materialized,
    /// so a hostile `"n": 4000000000` cannot allocate anything).
    pub max_vertices: Option<u32>,
    /// Hard cap on a request's edge count, refused likewise.
    pub max_edges: Option<usize>,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota {
            max_concurrent_sessions: 4,
            max_results_cap: None,
            deadline_cap: None,
            node_budget_cap: None,
            max_vertices: Some(65_536),
            max_edges: Some(1 << 20),
        }
    }
}

/// Daemon configuration.
#[derive(Clone, Debug, Default)]
pub struct ServerConfig {
    /// Session-runner threads (0 = one per available core, capped at 8).
    pub workers: usize,
    /// Byte budget of the shared in-memory atom store (0 = the cache
    /// crate's default budget). Ignored when `store` is set.
    pub byte_budget: usize,
    /// Persist the shared store into this directory (cross-restart warm
    /// starts). Ignored when `store` is set.
    pub cache_dir: Option<PathBuf>,
    /// Use this store instead of creating one — lets tests and in-process
    /// embedders share a store with direct sessions.
    pub store: Option<Arc<AtomStore>>,
    /// Per-tenant quotas.
    pub quota: TenantQuota,
    /// Honor the wire `shutdown` frame (on by default in the CLI; tests
    /// may disable it so a client cannot stop a shared fixture).
    pub allow_remote_shutdown: bool,
    /// Log any request whose first-result latency exceeds this many
    /// milliseconds (one JSON line on stderr with the full timing
    /// breakdown). `None` disables the slow-request log.
    pub slow_ms: Option<u64>,
    /// Daemon-side watchdog: cancel any session still running after this
    /// many milliseconds (via its [`CancelFlag`], so the anytime
    /// guarantee holds — results streamed so far are kept and the done
    /// frame reports `cancelled`). `None` disables the watchdog.
    pub max_session_ms: Option<u64>,
}

/// Where to listen.
#[derive(Clone, Debug)]
pub enum BindAddr {
    /// A TCP address like `127.0.0.1:7171` (port 0 picks an ephemeral
    /// port, reported by [`ServerHandle::local_addr`]).
    Tcp(String),
    /// A Unix-domain socket path (removed and re-created on bind).
    #[cfg(unix)]
    Unix(PathBuf),
}

enum NetListener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl NetListener {
    fn accept(&self) -> std::io::Result<Option<NetStream>> {
        match self {
            NetListener::Tcp(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(true)?;
                    s.set_nodelay(true).ok();
                    Ok(Some(NetStream::Tcp(s)))
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            #[cfg(unix)]
            NetListener::Unix(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(true)?;
                    Ok(Some(NetStream::Unix(s)))
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
        }
    }
}

enum NetStream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl NetStream {
    fn read_some(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            NetStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            NetStream::Unix(s) => s.read(buf),
        }
    }

    fn write_some(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            NetStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            NetStream::Unix(s) => s.write(buf),
        }
    }
}

/// The write side of one connection, shared between the IO thread (which
/// drains it into the socket) and the session runner (which fills it and
/// blocks on the high-water mark).
struct ConnOut {
    state: Mutex<OutState>,
    cv: Condvar,
}

struct OutState {
    buf: VecDeque<u8>,
    /// The running session's cancel flag (raised on disconnect).
    cancel: Option<CancelFlag>,
    /// Session runner is done writing frames for the current request.
    finished: bool,
    /// The IO thread observed a disconnect; drop writes, stop blocking.
    disconnected: bool,
}

impl ConnOut {
    fn new() -> Arc<ConnOut> {
        Arc::new(ConnOut {
            state: Mutex::new(OutState {
                buf: VecDeque::new(),
                cancel: None,
                finished: false,
                disconnected: false,
            }),
            cv: Condvar::new(),
        })
    }

    /// Appends frame bytes, blocking while the buffer is above the
    /// high-water mark — the backpressure that stops the runner from
    /// demanding results a slow client cannot absorb. Returns `false`
    /// when the connection is gone (the caller should stop streaming).
    fn push(&self, bytes: &[u8]) -> bool {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.buf.len() >= HIGH_WATER && !state.disconnected {
            serve_metrics().backpressure_stalls.incr();
        }
        while state.buf.len() >= HIGH_WATER && !state.disconnected {
            let (next, _timeout) = self
                .cv
                .wait_timeout(state, Duration::from_millis(50))
                .unwrap_or_else(|e| e.into_inner());
            state = next;
        }
        if state.disconnected {
            return false;
        }
        state.buf.extend(bytes);
        true
    }

    /// Marks the current request's stream complete.
    fn finish(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.finished = true;
        state.cancel = None;
        drop(state);
        self.cv.notify_all();
    }

    fn mark_disconnected(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.disconnected = true;
        if let Some(flag) = &state.cancel {
            flag.cancel();
        }
        drop(state);
        self.cv.notify_all();
    }
}

/// A validated request handed off by the IO thread, waiting for the
/// admission worker to build its graph and classify it warm/cold. Kept
/// off the IO thread because `Graph::from_edges` + `decompose` + the
/// canonical-form probe are CPU work that would head-of-line block every
/// other connection's reads, writes, and accepts.
struct Pending {
    req: EnumerateRequest,
    out: Arc<ConnOut>,
    cancel: CancelFlag,
    tenant: String,
    /// When stage-one admission accepted the request (`None` only if the
    /// metrics level was somehow off — the daemon raises it at startup).
    accepted_at: Option<Instant>,
}

/// One admitted session, waiting in (or popped from) the scheduler.
struct Job {
    req: EnumerateRequest,
    graph: Graph,
    out: Arc<ConnOut>,
    cancel: CancelFlag,
    tenant: String,
    /// Which queue admission chose (`true` = warm).
    warm: bool,
    /// See [`Pending::accepted_at`].
    accepted_at: Option<Instant>,
}

#[derive(Default)]
struct Sched {
    warm: VecDeque<Job>,
    cold: VecDeque<Job>,
}

struct Shared {
    store: Arc<AtomStore>,
    /// Requests accepted by the IO thread, awaiting classification.
    admission: Mutex<VecDeque<Pending>>,
    admission_cv: Condvar,
    sched: Mutex<Sched>,
    sched_cv: Condvar,
    /// In-flight (queued + running) session count per tenant.
    tenants: Mutex<HashMap<String, usize>>,
    /// Cumulative requests per tenant (bounded at [`MAX_TENANT_METRICS`]
    /// distinct names; overflow folds into `"other"`). Also published to
    /// the obs registry as `serve.tenant.<name>.requests`.
    tenant_metrics: Mutex<HashMap<String, mtr_obs::Counter>>,
    /// Slow-request log threshold (see [`ServerConfig::slow_ms`]).
    slow_ms: Option<u64>,
    /// Sessions admitted but not yet finished (pending, queued, or
    /// running).
    in_flight: AtomicUsize,
    shutting_down: AtomicBool,
    quota: TenantQuota,
    /// See [`ServerConfig::max_session_ms`].
    max_session_ms: Option<u64>,
    /// Sessions under watchdog supervision: registration id, the instant
    /// past which the session is overdue, and its cancel flag.
    watchdog: Mutex<WatchdogState>,
    watchdog_cv: Condvar,
}

#[derive(Default)]
struct WatchdogState {
    next_id: u64,
    entries: Vec<(u64, Instant, CancelFlag)>,
}

impl Shared {
    /// Counts one request for `tenant`, folding names past the table cap
    /// into `"other"` so client-chosen tenant strings cannot grow the
    /// daemon's memory (or the obs registry) without bound.
    fn count_tenant_request(&self, tenant: &str) {
        let mut table = self
            .tenant_metrics
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let key = if table.contains_key(tenant) || table.len() < MAX_TENANT_METRICS {
            tenant
        } else {
            "other"
        };
        table
            .entry(key.to_string())
            .or_insert_with(|| mtr_obs::counter(&format!("serve.tenant.{key}.requests")))
            .incr();
    }

    fn release_tenant(&self, tenant: &str) {
        let mut tenants = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(count) = tenants.get_mut(tenant) {
            *count -= 1;
            if *count == 0 {
                tenants.remove(tenant);
            }
        }
    }

    /// Retires one in-flight session: tenant slot and drain counter.
    fn retire(&self, tenant: &str) {
        self.release_tenant(tenant);
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }

    /// Raises the shutdown flag and wakes every parked thread (admission
    /// worker, session runners, and watchdog) so they can observe it.
    fn begin_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        self.admission_cv.notify_all();
        self.sched_cv.notify_all();
        self.watchdog_cv.notify_all();
    }

    /// Puts a session under watchdog supervision; returns the token to
    /// pass to [`Shared::unwatch`] when the session finishes.
    fn watch(&self, deadline: Instant, cancel: CancelFlag) -> u64 {
        let mut state = self.watchdog.lock().unwrap_or_else(|e| e.into_inner());
        let id = state.next_id;
        state.next_id += 1;
        state.entries.push((id, deadline, cancel));
        drop(state);
        self.watchdog_cv.notify_all();
        id
    }

    fn unwatch(&self, id: u64) {
        let mut state = self.watchdog.lock().unwrap_or_else(|e| e.into_inner());
        state.entries.retain(|(entry_id, _, _)| *entry_id != id);
    }
}

/// The watchdog thread: cancels any supervised session still running
/// past its per-session deadline ([`ServerConfig::max_session_ms`]).
/// Sleeps until the earliest registered deadline; parks on the condvar
/// while nothing is supervised.
fn run_watchdog(shared: &Arc<Shared>) {
    let mut state = shared.watchdog.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        let now = Instant::now();
        state.entries.retain(|(_, deadline, cancel)| {
            if *deadline <= now {
                cancel.cancel();
                false
            } else {
                true
            }
        });
        if shared.shutting_down.load(Ordering::SeqCst) && state.entries.is_empty() {
            return;
        }
        let next = state.entries.iter().map(|(_, at, _)| *at).min();
        state = match next {
            Some(at) => {
                let wait = at.saturating_duration_since(Instant::now());
                let (next_state, _timeout) = shared
                    .watchdog_cv
                    .wait_timeout(state, wait)
                    .unwrap_or_else(|e| e.into_inner());
                next_state
            }
            None => shared
                .watchdog_cv
                .wait(state)
                .unwrap_or_else(|e| e.into_inner()),
        };
    }
}

/// A running daemon. Dropping the handle without calling
/// [`ServerHandle::shutdown`] detaches the threads (they keep serving);
/// call [`ServerHandle::shutdown`] for a graceful drain or
/// [`ServerHandle::wait`] to block until a wire `shutdown` frame stops
/// the daemon.
pub struct ServerHandle {
    shared: Arc<Shared>,
    local_addr: Option<SocketAddr>,
    io_thread: Option<JoinHandle<()>>,
    admission_thread: Option<JoinHandle<()>>,
    watchdog_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound TCP address (None for Unix sockets) — the way tests
    /// discover an ephemeral port.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// The shared atom store (for probing warmth from tests/benches).
    pub fn store(&self) -> Arc<AtomStore> {
        Arc::clone(&self.shared.store)
    }

    /// Graceful shutdown: stop accepting, drain every admitted session,
    /// flush every connection, join all threads.
    pub fn shutdown(mut self) {
        self.shared.begin_shutdown();
        self.join();
    }

    /// Blocks until the daemon exits on its own (a wire `shutdown`
    /// frame). The CLI `mtr serve` foreground mode.
    pub fn wait(mut self) {
        self.join();
    }

    fn join(&mut self) {
        // A panicked thread must not take the join (and with it the
        // owning process) down: the daemon's threads all run inside
        // respawn loops, so a `join` Err means the loop itself died on
        // its final iteration — report it and keep joining the rest.
        if let Some(io) = self.io_thread.take() {
            if io.join().is_err() {
                eprintln!("[mtr-serve] io thread panicked during shutdown");
            }
        }
        if let Some(admission) = self.admission_thread.take() {
            if admission.join().is_err() {
                eprintln!("[mtr-serve] admission worker panicked during shutdown");
            }
        }
        if let Some(watchdog) = self.watchdog_thread.take() {
            if watchdog.join().is_err() {
                eprintln!("[mtr-serve] watchdog thread panicked during shutdown");
            }
        }
        for worker in self.workers.drain(..) {
            if worker.join().is_err() {
                eprintln!("[mtr-serve] session runner panicked during shutdown");
            }
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // Detached: threads keep running. Explicit shutdown()/wait() are
        // the supported exits; this keeps drop non-blocking.
    }
}

/// Binds and starts the daemon.
pub fn serve(addr: &BindAddr, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let (listener, local_addr) = match addr {
        BindAddr::Tcp(spec) => {
            let l = TcpListener::bind(spec.as_str())?;
            l.set_nonblocking(true)?;
            let bound = l.local_addr()?;
            (NetListener::Tcp(l), Some(bound))
        }
        #[cfg(unix)]
        BindAddr::Unix(path) => {
            let _ = std::fs::remove_file(path);
            let l = UnixListener::bind(path)?;
            l.set_nonblocking(true)?;
            (NetListener::Unix(l), None)
        }
    };

    let store = match (&config.store, &config.cache_dir) {
        (Some(store), _) => Arc::clone(store),
        (None, Some(dir)) => AtomStore::persistent(dir, effective_budget(config.byte_budget))?,
        (None, None) => AtomStore::in_memory(effective_budget(config.byte_budget)),
    };

    // The daemon always runs with live metrics: the `metrics` frame is
    // part of the wire protocol, so its counters must be counting from
    // the first request. (Never *lowers* an ambient Trace level.)
    mtr_obs::raise_level(mtr_obs::Level::Metrics);

    let shared = Arc::new(Shared {
        store,
        admission: Mutex::new(VecDeque::new()),
        admission_cv: Condvar::new(),
        sched: Mutex::new(Sched::default()),
        sched_cv: Condvar::new(),
        tenants: Mutex::new(HashMap::new()),
        tenant_metrics: Mutex::new(HashMap::new()),
        slow_ms: config.slow_ms,
        in_flight: AtomicUsize::new(0),
        shutting_down: AtomicBool::new(false),
        quota: config.quota.clone(),
        max_session_ms: config.max_session_ms,
        watchdog: Mutex::new(WatchdogState::default()),
        watchdog_cv: Condvar::new(),
    });

    let worker_count = if config.workers == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get().min(8))
            .unwrap_or(2)
    } else {
        config.workers
    };
    let workers = (0..worker_count)
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("mtr-serve-runner-{i}"))
                .spawn(move || supervise("session runner", || run_sessions(&shared)))
                .expect("spawn session runner")
        })
        .collect();

    let admission_shared = Arc::clone(&shared);
    let admission_thread = std::thread::Builder::new()
        .name("mtr-serve-admission".into())
        .spawn(move || supervise("admission worker", || run_admission(&admission_shared)))
        .expect("spawn admission worker");

    let watchdog_thread = config.max_session_ms.map(|_| {
        let watchdog_shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("mtr-serve-watchdog".into())
            .spawn(move || supervise("watchdog", || run_watchdog(&watchdog_shared)))
            .expect("spawn watchdog thread")
    });

    let io_shared = Arc::clone(&shared);
    let allow_remote_shutdown = config.allow_remote_shutdown;
    let io_thread = std::thread::Builder::new()
        .name("mtr-serve-io".into())
        .spawn(move || event_loop(listener, &io_shared, allow_remote_shutdown))
        .expect("spawn io thread");

    Ok(ServerHandle {
        shared,
        local_addr,
        io_thread: Some(io_thread),
        admission_thread: Some(admission_thread),
        watchdog_thread,
        workers,
    })
}

/// Runs a daemon thread body inside a respawn loop: a panic is reported
/// and the body re-entered (shared state is poison-recovered on the next
/// lock, see the `unwrap_or_else(into_inner)` sites), so one wedged
/// request can never silently kill a session runner or the admission
/// worker. A normal return (shutdown observed) exits the loop.
fn supervise(role: &str, mut body: impl FnMut()) {
    loop {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(&mut body)) {
            Ok(()) => return,
            Err(payload) => {
                eprintln!(
                    "[mtr-serve] {role} thread panicked ({}); respawning",
                    mtr_core::panic_message(payload)
                );
            }
        }
    }
}

fn effective_budget(requested: usize) -> usize {
    if requested == 0 {
        DEFAULT_BYTE_BUDGET
    } else {
        requested
    }
}

/// Connection lifecycle stages.
enum Stage {
    /// Waiting for the client hello.
    AwaitHello,
    /// Handshake done; ready for a request.
    Idle,
    /// A session is queued or running for this connection.
    Busy,
}

struct Conn {
    stream: NetStream,
    inbuf: Vec<u8>,
    out: Arc<ConnOut>,
    stage: Stage,
    close_after_flush: bool,
    /// When the write buffer stopped making flush progress (client not
    /// reading); `None` while draining or empty. Drives the shutdown
    /// stall timeout.
    stalled_since: Option<Instant>,
}

impl Conn {
    fn queue_text(&self, frame: String) {
        let mut state = self.out.state.lock().unwrap_or_else(|e| e.into_inner());
        state.buf.extend(frame.as_bytes());
    }
}

/// The IO thread body.
fn event_loop(listener: NetListener, shared: &Arc<Shared>, allow_remote_shutdown: bool) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut read_buf = [0u8; 16 * 1024];
    let mut shutdown_since: Option<Instant> = None;
    let mut last_drain_report: Option<Instant> = None;
    loop {
        let shutting_down = shared.shutting_down.load(Ordering::SeqCst);
        if shutting_down && shutdown_since.is_none() {
            shutdown_since = Some(Instant::now());
        }
        let mut progressed = false;

        // Accept (never during shutdown — the listener drains instead).
        if !shutting_down {
            while let Ok(Some(stream)) = listener.accept() {
                serve_metrics().connections.incr();
                conns.push(Conn {
                    stream,
                    inbuf: Vec::new(),
                    out: ConnOut::new(),
                    stage: Stage::AwaitHello,
                    close_after_flush: false,
                    stalled_since: None,
                });
                progressed = true;
            }
        }

        let mut i = 0;
        while i < conns.len() {
            let mut drop_conn = false;

            // Read whatever the client sent; 0 bytes = disconnect. Stop
            // at the input cap — excess bytes wait in the kernel buffer
            // (TCP backpressure), so a flooding client cannot grow the
            // daemon's memory.
            while conns[i].inbuf.len() < MAX_INBUF {
                match conns[i].stream.read_some(&mut read_buf) {
                    Ok(0) => {
                        drop_conn = true;
                        break;
                    }
                    Ok(k) => {
                        conns[i].inbuf.extend_from_slice(&read_buf[..k]);
                        progressed = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        drop_conn = true;
                        break;
                    }
                }
            }

            // Parse complete lines unless a session is in flight (frames
            // arriving meanwhile stay buffered — pipelining).
            while !drop_conn
                && !conns[i].close_after_flush
                && !matches!(conns[i].stage, Stage::Busy)
            {
                let Some(nl) = conns[i].inbuf.iter().position(|&b| b == b'\n') else {
                    break;
                };
                let line: Vec<u8> = conns[i].inbuf.drain(..=nl).collect();
                let line = String::from_utf8_lossy(&line[..nl]).into_owned();
                if line.trim().is_empty() {
                    continue;
                }
                progressed = true;
                handle_line(&mut conns[i], &line, shared, allow_remote_shutdown);
            }

            // A full inbuf with no newline can never complete: refuse the
            // oversized line. (While Busy the bytes may hold well-formed
            // pipelined frames — those parse once the session finishes.)
            if !drop_conn
                && !conns[i].close_after_flush
                && !matches!(conns[i].stage, Stage::Busy)
                && conns[i].inbuf.len() >= MAX_INBUF
            {
                conns[i].queue_text(protocol::error_frame(&ProtocolError {
                    code: "frame-too-large",
                    message: format!("protocol line exceeds {MAX_INBUF} bytes"),
                }));
                conns[i].close_after_flush = true;
            }

            // Flush the write buffer into the socket.
            let mut wrote_any = false;
            loop {
                let chunk: Vec<u8> = {
                    let state = conns[i].out.state.lock().unwrap_or_else(|e| e.into_inner());
                    if state.buf.is_empty() {
                        break;
                    }
                    state.buf.iter().take(16 * 1024).copied().collect()
                };
                match conns[i].stream.write_some(&chunk) {
                    Ok(0) => {
                        drop_conn = true;
                        break;
                    }
                    Ok(k) => {
                        let mut state =
                            conns[i].out.state.lock().unwrap_or_else(|e| e.into_inner());
                        state.buf.drain(..k);
                        let below_low = state.buf.len() < LOW_WATER;
                        drop(state);
                        if below_low {
                            // Wake a runner blocked on the high-water mark.
                            conns[i].out.cv.notify_all();
                        }
                        wrote_any = true;
                        progressed = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        drop_conn = true;
                        break;
                    }
                }
            }

            // Session finished and its frames are flushed → back to Idle
            // (buffered pipelined requests get parsed next iteration).
            if matches!(conns[i].stage, Stage::Busy) {
                let state = conns[i].out.state.lock().unwrap_or_else(|e| e.into_inner());
                if state.finished && state.buf.is_empty() {
                    drop(state);
                    conns[i].stage = Stage::Idle;
                    progressed = true;
                }
            }

            let flushed = {
                let state = conns[i].out.state.lock().unwrap_or_else(|e| e.into_inner());
                state.buf.is_empty()
            };
            // Stall tracking: a non-empty buffer that made no flush
            // progress this iteration means the client is not reading.
            if flushed || wrote_any {
                conns[i].stalled_since = None;
            } else if conns[i].stalled_since.is_none() {
                conns[i].stalled_since = Some(Instant::now());
            }
            if conns[i].close_after_flush && flushed {
                drop_conn = true;
            }
            // During shutdown, idle connections are closed once flushed;
            // busy ones stay until their session drains — unless the
            // client has stopped reading, in which case waiting is
            // hopeless (the runner is parked on the high-water mark) and
            // the connection is dropped so the drain can finish.
            if shutting_down && flushed && !matches!(conns[i].stage, Stage::Busy) {
                drop_conn = true;
            }
            if shutdown_since.is_some_and(|at| at.elapsed() >= SHUTDOWN_STALL_TIMEOUT)
                && conns[i]
                    .stalled_since
                    .is_some_and(|since| since.elapsed() >= SHUTDOWN_STALL_TIMEOUT)
            {
                drop_conn = true;
            }

            if drop_conn {
                conns[i].out.mark_disconnected();
                conns.swap_remove(i);
                progressed = true;
            } else {
                i += 1;
            }
        }

        if shutting_down {
            let (warm_depth, cold_depth) = {
                let sched = shared.sched.lock().unwrap_or_else(|e| e.into_inner());
                (sched.warm.len(), sched.cold.len())
            };
            let queues_empty = warm_depth == 0 && cold_depth == 0;
            let in_flight = shared.in_flight.load(Ordering::SeqCst);
            // Drain progress, once a second: the scheduler's queue depths
            // and in-flight session count, so an operator watching a slow
            // graceful shutdown can see it is actually moving.
            if !(conns.is_empty() && queues_empty && in_flight == 0)
                && last_drain_report.is_none_or(|at| at.elapsed() >= Duration::from_secs(1))
            {
                eprintln!(
                    "[mtr-serve] draining: warm={warm_depth} cold={cold_depth} \
                     in_flight={in_flight} connections={}",
                    conns.len()
                );
                last_drain_report = Some(Instant::now());
            }
            if conns.is_empty() && queues_empty && in_flight == 0 {
                // Wake the admission worker and any runner still parked
                // on their condvars so they observe the flag and exit.
                shared.admission_cv.notify_all();
                shared.sched_cv.notify_all();
                return;
            }
        }

        if !progressed {
            std::thread::sleep(IDLE_SLEEP);
        }
    }
}

/// Processes one parsed protocol line on a connection.
fn handle_line(conn: &mut Conn, line: &str, shared: &Arc<Shared>, allow_remote_shutdown: bool) {
    let request = match protocol::parse_request(line) {
        Ok(request) => request,
        Err(err) => {
            conn.queue_text(protocol::error_frame(&err));
            conn.close_after_flush = true;
            return;
        }
    };
    match (&conn.stage, request) {
        (Stage::AwaitHello, Request::Hello { magic, version }) => {
            if magic != "MTRW" || version != u64::from(WIRE_VERSION) {
                conn.queue_text(protocol::error_frame(&ProtocolError {
                    code: "version-mismatch",
                    message: format!(
                        "server speaks MTRW v{WIRE_VERSION}, client sent {magic} v{version}"
                    ),
                }));
                conn.close_after_flush = true;
                return;
            }
            conn.queue_text(protocol::hello_ack_frame());
            conn.stage = Stage::Idle;
        }
        (Stage::AwaitHello, _) => {
            conn.queue_text(protocol::error_frame(&ProtocolError {
                code: "bad-request",
                message: "expected hello frame".into(),
            }));
            conn.close_after_flush = true;
        }
        (Stage::Idle, Request::Hello { .. }) => {
            conn.queue_text(protocol::error_frame(&ProtocolError {
                code: "bad-request",
                message: "duplicate hello".into(),
            }));
        }
        (Stage::Idle, Request::Metrics) => {
            conn.queue_text(metrics_response(shared));
        }
        (Stage::Idle, Request::Shutdown) => {
            if allow_remote_shutdown {
                conn.queue_text(protocol::bye_frame());
                conn.close_after_flush = true;
                shared.begin_shutdown();
            } else {
                conn.queue_text(protocol::error_frame(&ProtocolError {
                    code: "bad-request",
                    message: "remote shutdown is disabled".into(),
                }));
            }
        }
        (Stage::Idle, Request::Enumerate(req)) => admit(conn, *req, shared),
        (Stage::Busy, _) => unreachable!("lines are not parsed while busy"),
    }
}

/// Builds the `metrics` response frame: the full observability registry
/// (counters and gauges as numbers, histograms as
/// `{count, sum, buckets: [[le, n], ...]}`), store-wide cache statistics,
/// and the per-tenant request table. Rendered through [`Json`], so keys
/// come out sorted and the frame is deterministic for a given state.
fn metrics_response(shared: &Arc<Shared>) -> String {
    use std::collections::BTreeMap;

    let num = Json::Num;
    let mut registry = BTreeMap::new();
    for metric in mtr_obs::snapshot() {
        let value = match metric.value {
            mtr_obs::MetricValue::Counter(v) => num(v as f64),
            mtr_obs::MetricValue::Gauge(v) => num(v as f64),
            mtr_obs::MetricValue::Histogram(h) => {
                let buckets = h
                    .buckets
                    .iter()
                    .map(|&(le, n)| Json::Arr(vec![num(le as f64), num(n as f64)]))
                    .collect();
                let mut obj = BTreeMap::new();
                obj.insert("count".to_string(), num(h.count as f64));
                obj.insert("sum".to_string(), num(h.sum as f64));
                obj.insert("buckets".to_string(), Json::Arr(buckets));
                Json::Obj(obj)
            }
        };
        registry.insert(metric.name, value);
    }

    let stats = shared.store.stats();
    let mut store = BTreeMap::new();
    store.insert("entries".to_string(), num(stats.entries as f64));
    store.insert("bytes".to_string(), num(stats.bytes as f64));
    store.insert("hits".to_string(), num(stats.hits as f64));
    store.insert("misses".to_string(), num(stats.misses as f64));
    store.insert("publishes".to_string(), num(stats.publishes as f64));
    store.insert("evictions".to_string(), num(stats.evictions as f64));
    store.insert("disk_loads".to_string(), num(stats.disk_loads as f64));
    store.insert("disk_errors".to_string(), num(stats.disk_errors as f64));

    let tenants: BTreeMap<String, Json> = {
        let table = shared
            .tenant_metrics
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        table
            .iter()
            .map(|(name, counter)| (name.clone(), num(counter.get() as f64)))
            .collect()
    };

    let mut frame = BTreeMap::new();
    frame.insert("frame".to_string(), Json::Str("metrics".to_string()));
    frame.insert("metrics".to_string(), Json::Obj(registry));
    frame.insert("store".to_string(), Json::Obj(store));
    frame.insert("tenants".to_string(), Json::Obj(tenants));
    let mut line = Json::Obj(frame).render();
    line.push('\n');
    line
}

/// Admission control, stage one (IO thread): validate and enforce
/// quotas — all O(request size) — then hand off to the admission worker,
/// which does the CPU-heavy graph build and warm/cold classification.
/// Refusals are per-request error frames; the connection stays open and
/// usable.
fn admit(conn: &mut Conn, mut req: EnumerateRequest, shared: &Arc<Shared>) {
    if shared.shutting_down.load(Ordering::SeqCst) {
        conn.queue_text(protocol::error_frame(&ProtocolError {
            code: "shutting-down",
            message: "daemon is draining".into(),
        }));
        return;
    }
    if named_cost(&req.cost).is_none() {
        conn.queue_text(protocol::error_frame(&ProtocolError {
            code: "unknown-cost",
            message: format!("no cost named \"{}\"", req.cost),
        }));
        return;
    }

    // Graph-size quotas, checked before anything is materialized.
    if let Some(cap) = shared.quota.max_vertices {
        if req.n > cap {
            conn.queue_text(protocol::error_frame(&ProtocolError {
                code: "quota-exceeded",
                message: format!("graph has {} vertices, cap is {cap}", req.n),
            }));
            return;
        }
    }
    if let Some(cap) = shared.quota.max_edges {
        if req.edges.len() > cap {
            conn.queue_text(protocol::error_frame(&ProtocolError {
                code: "quota-exceeded",
                message: format!("graph has {} edges, cap is {cap}", req.edges.len()),
            }));
            return;
        }
    }

    // Per-tenant concurrency quota.
    {
        let mut tenants = shared.tenants.lock().unwrap_or_else(|e| e.into_inner());
        let count = tenants.entry(req.tenant.clone()).or_insert(0);
        if *count >= shared.quota.max_concurrent_sessions {
            drop(tenants);
            conn.queue_text(protocol::error_frame(&ProtocolError {
                code: "quota-exceeded",
                message: format!(
                    "tenant \"{}\" already has {} in-flight sessions",
                    req.tenant, shared.quota.max_concurrent_sessions
                ),
            }));
            return;
        }
        *count += 1;
    }

    // Clamp budgets to the configured caps.
    if let Some(cap) = shared.quota.max_results_cap {
        req.max_results = Some(req.max_results.map_or(cap, |v| v.min(cap)));
    }
    if let Some(cap) = shared.quota.deadline_cap {
        let cap_ms = cap.as_millis().min(u128::from(u64::MAX)) as u64;
        req.deadline_ms = Some(req.deadline_ms.map_or(cap_ms, |v| v.min(cap_ms)));
    }
    if let Some(cap) = shared.quota.node_budget_cap {
        req.node_budget = Some(req.node_budget.map_or(cap, |v| v.min(cap)));
    }

    serve_metrics().requests.incr();
    shared.count_tenant_request(&req.tenant);
    let cancel = CancelFlag::new();
    let tenant = req.tenant.clone();
    let pending = Pending {
        req,
        out: Arc::clone(&conn.out),
        cancel: cancel.clone(),
        tenant,
        accepted_at: mtr_obs::clock(),
    };
    {
        // Re-check the shutdown flag under the admission lock: the
        // worker exits once it observes (shutting-down ∧ empty queue)
        // under this same lock, so a request pushed here is guaranteed
        // to be processed — without the re-check it could be stranded,
        // wedging the drain with a phantom in-flight session.
        let mut admission = shared.admission.lock().unwrap_or_else(|e| e.into_inner());
        if shared.shutting_down.load(Ordering::SeqCst) {
            drop(admission);
            shared.release_tenant(&pending.tenant);
            conn.queue_text(protocol::error_frame(&ProtocolError {
                code: "shutting-down",
                message: "daemon is draining".into(),
            }));
            return;
        }
        let mut state = conn.out.state.lock().unwrap_or_else(|e| e.into_inner());
        state.finished = false;
        state.cancel = Some(cancel);
        drop(state);
        shared.in_flight.fetch_add(1, Ordering::SeqCst);
        admission.push_back(pending);
    }
    conn.stage = Stage::Busy;
    shared.admission_cv.notify_one();
}

/// The admission worker: pops validated requests, builds their graphs,
/// classifies warm/cold against the shared store, and enqueues them for
/// the session runners. Dedicated thread so `Graph::from_edges` +
/// `decompose` + canonical-form probing never run on the IO thread.
fn run_admission(shared: &Arc<Shared>) {
    loop {
        let pending = {
            let mut admission = shared.admission.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(pending) = admission.pop_front() {
                    break pending;
                }
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                admission = shared
                    .admission_cv
                    .wait(admission)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        classify_and_enqueue(pending, shared);
    }
}

/// Admission control, stage two (admission worker): the CPU-heavy part.
fn classify_and_enqueue(pending: Pending, shared: &Arc<Shared>) {
    // The client may have vanished while the request sat in the
    // admission queue; skip the graph work entirely.
    if pending.cancel.is_cancelled() {
        pending.out.finish();
        shared.retire(&pending.tenant);
        return;
    }

    let req = &pending.req;
    let graph = Graph::from_edges(req.n, &req.edges);

    // Cache-aware classification: probe the atoms' canonical keys
    // without perturbing the store. Only cached sessions can actually
    // hit the store, so direct requests are always cold.
    let warm = req.cache && {
        let cost_id = named_cost(&req.cost)
            .expect("validated at stage one")
            .name();
        decompose(&graph, ReductionLevel::Full)
            .atoms
            .iter()
            .any(|atom| {
                shared.store.probe(&AtomKey {
                    graph: atom.graph.canonical_form().key,
                    cost_id: cost_id.clone(),
                    width_bound: req.width_bound,
                })
            })
    };

    let metrics = serve_metrics();
    if warm {
        metrics.warm.incr();
    } else {
        metrics.cold.incr();
    }

    let accepted = format!(
        "{{\"frame\": \"accepted\", \"queue\": \"{}\"}}\n",
        if warm { "warm" } else { "cold" }
    );
    if !pending.out.push(accepted.as_bytes()) {
        pending.out.finish();
        shared.retire(&pending.tenant);
        return;
    }

    let job = Job {
        req: pending.req,
        graph,
        out: pending.out,
        cancel: pending.cancel,
        tenant: pending.tenant,
        warm,
        accepted_at: pending.accepted_at,
    };
    {
        let mut sched = shared.sched.lock().unwrap_or_else(|e| e.into_inner());
        if warm {
            sched.warm.push_back(job);
        } else {
            sched.cold.push_back(job);
        }
    }
    shared.sched_cv.notify_one();
}

/// A session-runner thread: pop warm-first, drive the engines, stream.
fn run_sessions(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut sched = shared.sched.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = sched.warm.pop_front().or_else(|| sched.cold.pop_front()) {
                    break job;
                }
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                sched = shared
                    .sched_cv
                    .wait(sched)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        // Watchdog supervision: a session still running past the cap is
        // cancelled through its CancelFlag — the engines observe it at
        // their next demand boundary and stop with `cancelled`.
        let watch_token = shared.max_session_ms.map(|ms| {
            shared.watch(
                Instant::now() + Duration::from_millis(ms),
                job.cancel.clone(),
            )
        });
        // Panic isolation: a panicking session (a cost-function bug, a
        // fault-injected panic) must fail *this* request, not the
        // daemon. The client gets a typed `internal-error` frame; every
        // other connection is untouched.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_one(&job, shared);
        }));
        if let Err(payload) = outcome {
            let message = mtr_core::panic_message(payload);
            job.out.push(
                protocol::error_frame(&ProtocolError {
                    code: "internal-error",
                    message: format!("session panicked: {message}"),
                })
                .as_bytes(),
            );
            job.out.finish();
        }
        if let Some(token) = watch_token {
            shared.unwatch(token);
        }
        shared.retire(&job.tenant);
    }
}

/// Nanoseconds in `d`, saturating at `u64::MAX`.
fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Runs one admitted session and streams its frames.
fn run_one(job: &Job, shared: &Arc<Shared>) {
    let req = &job.req;
    let queue = if job.warm { "warm" } else { "cold" };
    let admission_wait = job.accepted_at.map(|at| at.elapsed());
    if let Some(wait) = admission_wait {
        serve_metrics().admission_wait_ns.record(duration_ns(wait));
    }
    let mut req_span = mtr_obs::span("serve.request");
    req_span.attr("tenant", job.tenant.clone());
    req_span.attr("queue", queue.to_string());
    // Chaos hook: `error` surfaces as a typed internal-error frame,
    // `panic` exercises the catch_unwind isolation in the caller.
    if let Err(fault) = mtr_fault::check("serve.session.run") {
        job.out.push(
            protocol::error_frame(&ProtocolError {
                code: "internal-error",
                message: fault.to_string(),
            })
            .as_bytes(),
        );
        job.out.finish();
        return;
    }
    if req.binary {
        job.out.push(&protocol::binary_stream_header());
    }

    let mut session = match Enumerate::on(&job.graph).cost_named(&req.cost) {
        Ok(session) => session,
        Err(e) => {
            job.out.push(
                protocol::error_frame(&ProtocolError {
                    code: "unknown-cost",
                    message: e.to_string(),
                })
                .as_bytes(),
            );
            job.out.finish();
            return;
        }
    };
    session = session.threads(req.threads).cancel_flag(job.cancel.clone());
    if let Some(bound) = req.width_bound {
        session = session.width_bound(bound);
    }
    if let Some(k) = req.max_results {
        session = session.max_results(k);
    }
    if let Some(ms) = req.deadline_ms {
        session = session.deadline(Duration::from_millis(ms));
    }
    if let Some(nodes) = req.node_budget {
        session = session.node_budget(usize::try_from(nodes).unwrap_or(usize::MAX));
    }

    let mut rank = 0u64;
    let mut first_result: Option<Duration> = None;
    let out = Arc::clone(&job.out);
    let graph = &job.graph;
    let binary = req.binary;
    let accepted_at = job.accepted_at;
    let mut emit = |r: mtr_core::RankedTriangulation| {
        let fill = graph.fill_edges_of(&r.triangulation);
        let ok = if binary {
            out.push(&protocol::result_frame_binary(rank, r.cost.value(), &fill))
        } else {
            out.push(protocol::result_frame(rank, r.cost.value(), &fill).as_bytes())
        };
        if ok {
            // Count only frames actually delivered, so the done frame's
            // `results` field matches what the client received.
            rank += 1;
            if first_result.is_none() {
                first_result = accepted_at.map(|at| at.elapsed());
                if let Some(latency) = first_result {
                    serve_metrics().first_result_ns.record(duration_ns(latency));
                }
            }
            std::ops::ControlFlow::Continue(())
        } else {
            std::ops::ControlFlow::Break(())
        }
    };

    // Cached sessions run through the reduction layer against the shared
    // store (the warm path); direct ones run the plain engine and are
    // bit-for-bit equal to `Enumerate::on` — the equivalence tests rely
    // on exactly that split.
    let outcome = if req.cache {
        session
            .reduce(ReductionLevel::Full)
            .store(Arc::clone(&shared.store))
            .drive(&mut emit)
    } else {
        session.drive(&mut emit)
    };

    let stop_label = match outcome {
        Ok(report) => {
            let stop_reason = if report.stop_reason == StopReason::Stopped {
                // The only Break in the callback is a disconnect.
                StopReason::Cancelled
            } else {
                report.stop_reason
            };
            let stats = report.stats.to_json(stop_reason);
            job.out
                .push(protocol::done_frame(stop_reason, rank as usize, &stats).as_bytes());
            stop_reason.to_string()
        }
        Err(e) => {
            // A contained worker panic is the daemon's fault, not the
            // request's: distinguish it on the wire so clients can
            // decide to retry (`internal-error`) vs give up
            // (`session-error`).
            let code = match &e {
                mtr_core::EnumerationError::WorkerPanicked(_) => "internal-error",
                _ => "session-error",
            };
            job.out.push(
                protocol::error_frame(&ProtocolError {
                    code,
                    message: e.to_string(),
                })
                .as_bytes(),
            );
            "error".to_string()
        }
    };
    job.out.finish();

    if req_span.is_active() {
        req_span.attr("results", rank.to_string());
        req_span.attr("stop", stop_label.clone());
    }
    drop(req_span);

    // The slow-request log: one stderr JSON line with the full timing
    // breakdown whenever the first result took longer than the threshold
    // (a request that produced no result is judged by its total time).
    if let (Some(threshold), Some(at)) = (shared.slow_ms, job.accepted_at) {
        let total = at.elapsed();
        let first = first_result.unwrap_or(total);
        if first >= Duration::from_millis(threshold) {
            let ms = |d: Duration| d.as_nanos() as f64 / 1_000_000.0;
            eprintln!(
                concat!(
                    "{{\"slow_request\": {{\"tenant\": \"{}\", \"queue\": \"{}\", ",
                    "\"admission_wait_ms\": {:.3}, \"first_result_ms\": {:.3}, ",
                    "\"total_ms\": {:.3}, \"results\": {}, \"stop_reason\": \"{}\"}}}}"
                ),
                crate::json::escape(&job.tenant),
                queue,
                ms(admission_wait.unwrap_or_default()),
                ms(first),
                ms(total),
                rank,
                stop_label,
            );
        }
    }
}

/// Convenience: bind a TCP daemon on `127.0.0.1` with an ephemeral port
/// (the test fixture path).
pub fn serve_ephemeral(config: ServerConfig) -> std::io::Result<ServerHandle> {
    serve(&BindAddr::Tcp("127.0.0.1:0".into()), config)
}

/// Removes a stale Unix socket file (ignores missing).
pub fn cleanup_unix_socket(path: &Path) {
    let _ = std::fs::remove_file(path);
}
