//! A shared work-stealing execution layer for the enumeration engines.
//!
//! Both ranked engines spend nearly all of their time in independent
//! constrained re-optimizations: the direct engine fans each Lawler–Murty
//! partition expansion out into `k` constrained `MinTriang` calls, and the
//! factorized engine of `mtr-reduce` advances one ranked stream per atom.
//! [`WorkerPool`] is the execution substrate they share: a *scoped* pool of
//! worker threads, each with its own task deque and a reusable [`Scratch`]
//! arena, stealing from its siblings when its own deque runs dry. Compared
//! to fixed chunking, stealing means a straggler task never idles a whole
//! chunk's worth of workers.
//!
//! The pool is scoped ([`scoped`]) so tasks may borrow data that outlives
//! the `scoped` call — typically the [`Preprocessed`](crate::Preprocessed)
//! value and the cost function of a session. Workers are spawned once per
//! scope, not once per batch; because task lifetimes are pinned to the
//! scope's environment, a phase whose tasks borrow phase-local data opens
//! its own scope (the session layer runs one short-lived pool for the
//! preprocessing candidate build and one long-lived pool for the whole
//! enumeration). The submitting thread participates in every batch, so
//! `threads == 1` degrades to plain inline execution with no
//! synchronization at all.
//!
//! ```
//! use mtr_core::pool;
//!
//! let inputs: Vec<u64> = (0..100).collect();
//! let sum: u64 = pool::scoped(4, |p| {
//!     let tasks = inputs.iter().map(|&x| move |_s: &mut pool::Scratch| x * x);
//!     let results = p.run_batch(tasks.collect()).expect("tasks do not panic");
//!     results.into_iter().sum()
//! });
//! assert_eq!(sum, (0..100u64).map(|x| x * x).sum());
//! ```

use mtr_graph::VertexSet;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Condvar, Mutex, OnceLock};

/// Pool metric handles, resolved once per process (`mtr-obs` names are
/// interned in a global registry; the hot path only touches atomics).
struct PoolMetrics {
    tasks: mtr_obs::Counter,
    steals: mtr_obs::Counter,
    task_ns: mtr_obs::Histogram,
    queue_depth: mtr_obs::Gauge,
}

fn pool_metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| PoolMetrics {
        tasks: mtr_obs::counter("core.pool.tasks"),
        steals: mtr_obs::counter("core.pool.steals"),
        task_ns: mtr_obs::histogram("core.pool.task_ns"),
        queue_depth: mtr_obs::gauge("core.pool.queue_depth"),
    })
}

/// Reusable per-worker scratch space. Every task receives `&mut Scratch`
/// for its worker; sets recycled here are handed back by [`Scratch::take`]
/// without reallocating, so hot per-task temporaries ([`VertexSet`]s of the
/// host graph's universe) stop churning the allocator.
#[derive(Debug, Default)]
pub struct Scratch {
    free: Vec<VertexSet>,
    bytes_reused: usize,
}

/// Heap bytes of one bitset over `universe` vertices.
fn set_bytes(universe: u32) -> usize {
    (universe as usize).div_ceil(64) * std::mem::size_of::<u64>()
}

impl Scratch {
    /// Returns a cleared set over `universe`, reusing a recycled one of the
    /// same universe when available.
    pub fn take(&mut self, universe: u32) -> VertexSet {
        if let Some(pos) = self.free.iter().position(|s| s.universe() == universe) {
            let mut s = self.free.swap_remove(pos);
            s.clear();
            self.bytes_reused += set_bytes(universe);
            s
        } else {
            VertexSet::empty(universe)
        }
    }

    /// Hands a set back for reuse by a later [`Scratch::take`].
    pub fn recycle(&mut self, set: VertexSet) {
        // Bound the arena so one huge batch cannot pin memory forever.
        if self.free.len() < 128 {
            self.free.push(set);
        }
    }

    /// Total bytes of bitset storage served from the arena instead of fresh
    /// allocations, over the lifetime of this scratch.
    pub fn bytes_reused(&self) -> usize {
        self.bytes_reused
    }
}

/// Snapshot of a pool's execution counters, taken with
/// [`WorkerPool::stats`]. These feed
/// [`EnumerationStats`](crate::EnumerationStats) so the bench suite can
/// verify that work actually spread across workers.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker count of the pool, the submitting thread included.
    pub threads: usize,
    /// Tasks executed per worker; index 0 is the submitting thread.
    pub worker_tasks: Vec<usize>,
    /// Tasks a worker popped from a sibling's deque (work stealing events).
    pub steals: usize,
    /// Bytes of bitset scratch served from the per-worker arenas instead of
    /// fresh allocations, summed over all workers.
    pub arena_bytes_reused: usize,
}

/// A task batch failed instead of completing: some task panicked (the
/// unwind is caught on the worker, so the pool and the process survive)
/// or an armed `pool.task` failpoint injected an error. Surfaced by the
/// session layer as `EnumerationError::WorkerPanicked`, failing one
/// session instead of the process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskPanic {
    /// The panic payload (or injected-fault message) of the first task
    /// that failed.
    pub message: String,
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "a worker pool task panicked: {}", self.message)
    }
}

impl std::error::Error for TaskPanic {}

/// Renders a caught panic payload (the `Box<dyn Any>` from
/// [`std::panic::catch_unwind`]) as the human-readable message `panic!`
/// was invoked with, falling back for exotic payload types.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(other) => match other.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "non-string panic payload".to_string(),
        },
    }
}

/// Runs one task with panic containment and the `pool.task` failpoint:
/// an injected fault (error *or* panic outcome) and a genuine unwind both
/// come back as `Err(TaskPanic)`; neither escapes to the calling thread.
fn run_contained<T>(
    task: impl FnOnce(&mut Scratch) -> T,
    scratch: &mut Scratch,
) -> Result<T, TaskPanic> {
    // The failpoint runs *inside* the unwind boundary so an injected
    // panic is contained exactly like a real task panic (a worker thread
    // must never unwind — its channel slot would go missing).
    match catch_unwind(AssertUnwindSafe(|| {
        mtr_fault::check("pool.task").map(|()| task(scratch))
    })) {
        Ok(Ok(value)) => Ok(value),
        Ok(Err(fault)) => Err(TaskPanic {
            message: fault.to_string(),
        }),
        Err(payload) => Err(TaskPanic {
            message: panic_message(payload),
        }),
    }
}

type Task<'env> = Box<dyn FnOnce(&mut Scratch) + Send + 'env>;

struct PoolState {
    /// Tasks currently sitting in some deque (not yet popped).
    pending: usize,
    shutdown: bool,
}

struct Shared<'env> {
    /// One deque per worker; index 0 belongs to the submitting thread.
    queues: Vec<Mutex<VecDeque<Task<'env>>>>,
    state: Mutex<PoolState>,
    wakeup: Condvar,
    executed: Vec<AtomicUsize>,
    steals: AtomicUsize,
    arena_reused: AtomicUsize,
    /// Scratch of the submitting thread (workers own theirs on their stack).
    main_scratch: Mutex<Scratch>,
}

impl<'env> Shared<'env> {
    fn new(threads: usize) -> Self {
        Shared {
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            state: Mutex::new(PoolState {
                pending: 0,
                shutdown: false,
            }),
            wakeup: Condvar::new(),
            executed: (0..threads).map(|_| AtomicUsize::new(0)).collect(),
            steals: AtomicUsize::new(0),
            arena_reused: AtomicUsize::new(0),
            main_scratch: Mutex::new(Scratch::default()),
        }
    }

    /// Pops a task: the worker's own deque first (FIFO), then a steal from
    /// each sibling (LIFO end, so stolen work is the coldest). Returns the
    /// task and the deque index it came from.
    fn pop_any(&self, wi: usize) -> Option<(Task<'env>, usize)> {
        let threads = self.queues.len();
        for k in 0..threads {
            let qi = (wi + k) % threads;
            let task = {
                // Tasks run outside every pool lock (unwinds are caught in
                // the task wrapper), so a poisoned guard only means some
                // *other* thread died mid-section; the deques and counters
                // it protects are updated atomically under the lock and
                // stay internally consistent — recover and continue.
                let mut q = self.queues[qi].lock().unwrap_or_else(|e| e.into_inner());
                if qi == wi {
                    q.pop_front()
                } else {
                    q.pop_back()
                }
            };
            if let Some(task) = task {
                self.state.lock().unwrap_or_else(|e| e.into_inner()).pending -= 1;
                pool_metrics().queue_depth.add(-1);
                return Some((task, qi));
            }
        }
        None
    }

    fn run_task(&self, wi: usize, task: Task<'env>, from: usize, scratch: &mut Scratch) {
        let metrics = pool_metrics();
        self.executed[wi].fetch_add(1, Ordering::Relaxed);
        metrics.tasks.incr();
        if from != wi {
            self.steals.fetch_add(1, Ordering::Relaxed);
            metrics.steals.incr();
        }
        let before = scratch.bytes_reused();
        let started = mtr_obs::clock();
        task(scratch);
        metrics.task_ns.record_elapsed(started);
        self.arena_reused
            .fetch_add(scratch.bytes_reused() - before, Ordering::Relaxed);
    }

    fn shutdown(&self) {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .shutdown = true;
        self.wakeup.notify_all();
    }
}

fn worker_loop(shared: &Shared<'_>, wi: usize) {
    let mut scratch = Scratch::default();
    loop {
        if let Some((task, from)) = shared.pop_any(wi) {
            shared.run_task(wi, task, from, &mut scratch);
            continue;
        }
        let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if state.shutdown {
                return;
            }
            if state.pending > 0 {
                break;
            }
            state = shared.wakeup.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Ends the worker threads even when the scope body panics, so
/// [`std::thread::scope`] can join instead of deadlocking.
struct ShutdownGuard<'a, 'env>(&'a Shared<'env>);

impl Drop for ShutdownGuard<'_, '_> {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// A handle to the scoped worker pool — a cheap copyable reference that
/// engines hold for the lifetime of one enumeration session. Obtain one
/// through [`scoped`].
pub struct WorkerPool<'env, 'pool> {
    shared: &'pool Shared<'env>,
}

impl Clone for WorkerPool<'_, '_> {
    fn clone(&self) -> Self {
        *self
    }
}
impl Copy for WorkerPool<'_, '_> {}

impl<'env> WorkerPool<'env, '_> {
    /// Number of workers, the submitting thread included.
    pub fn threads(&self) -> usize {
        self.shared.queues.len()
    }

    /// Snapshot of the execution counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            threads: self.threads(),
            worker_tasks: self
                .shared
                .executed
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            steals: self.shared.steals.load(Ordering::Relaxed),
            arena_bytes_reused: self.shared.arena_reused.load(Ordering::Relaxed),
        }
    }

    /// Runs a batch of independent tasks to completion and returns their
    /// results in task order.
    ///
    /// Tasks are dealt round-robin onto the per-worker deques; idle workers
    /// steal from the back of their siblings' deques, so an uneven batch
    /// (one expensive re-optimization among many cheap ones) never leaves
    /// workers idle while work remains. The calling thread executes tasks
    /// too — with one thread, or a single task, this is plain inline
    /// execution.
    ///
    /// A panicking task does not take the process (or even the pool) down:
    /// the unwind is caught where the task ran, every other task of the
    /// batch still completes, the workers survive for later batches, and
    /// the whole batch reports [`TaskPanic`] carrying the first panic's
    /// message. The `pool.task` failpoint injects the same failure shape
    /// for chaos tests.
    pub fn run_batch<T, F>(&self, tasks: Vec<F>) -> Result<Vec<T>, TaskPanic>
    where
        T: Send + 'env,
        F: FnOnce(&mut Scratch) -> T + Send + 'env,
    {
        let n = tasks.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let threads = self.threads();
        if threads == 1 || n == 1 {
            let mut scratch = self
                .shared
                .main_scratch
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            self.shared.executed[0].fetch_add(n, Ordering::Relaxed);
            let metrics = pool_metrics();
            metrics.tasks.add(n as u64);
            let before = scratch.bytes_reused();
            let mut out: Vec<T> = Vec::with_capacity(n);
            let mut failed: Option<TaskPanic> = None;
            for t in tasks {
                let started = mtr_obs::clock();
                let result = run_contained(t, &mut scratch);
                metrics.task_ns.record_elapsed(started);
                match result {
                    Ok(v) => out.push(v),
                    Err(panic) => {
                        // Finish nothing further: inline batches have no
                        // concurrent siblings to wait for.
                        failed = Some(panic);
                        break;
                    }
                }
            }
            self.shared
                .arena_reused
                .fetch_add(scratch.bytes_reused() - before, Ordering::Relaxed);
            return match failed {
                None => Ok(out),
                Some(panic) => Err(panic),
            };
        }

        let (tx, rx) = mpsc::channel::<(usize, Result<T, TaskPanic>)>();
        {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            for (i, task) in tasks.into_iter().enumerate() {
                let tx = tx.clone();
                let boxed: Task<'env> = Box::new(move |scratch| {
                    let result = run_contained(task, scratch);
                    // The batch may have been abandoned; a closed channel is
                    // not this task's problem.
                    let _ = tx.send((i, result));
                });
                self.shared.queues[i % threads]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push_back(boxed);
            }
            state.pending += n;
        }
        pool_metrics().queue_depth.add(n as i64);
        self.shared.wakeup.notify_all();
        drop(tx);

        let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let mut failed: Option<TaskPanic> = None;
        let mut received = 0;
        let take = |slot: &mut Option<T>,
                    outcome: Result<T, TaskPanic>,
                    failed: &mut Option<TaskPanic>| {
            match outcome {
                Ok(v) => *slot = Some(v),
                Err(panic) => {
                    if failed.is_none() {
                        *failed = Some(panic);
                    }
                }
            }
        };
        while received < n {
            // Help with the batch from our own deque (and steal) before
            // blocking on results produced by the workers.
            if let Some((task, from)) = self.shared.pop_any(0) {
                let mut scratch = self
                    .shared
                    .main_scratch
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                self.shared.run_task(0, task, from, &mut scratch);
                drop(scratch);
                while let Ok((i, outcome)) = rx.try_recv() {
                    take(&mut results[i], outcome, &mut failed);
                    received += 1;
                }
            } else {
                match rx.recv() {
                    Ok((i, outcome)) => {
                        take(&mut results[i], outcome, &mut failed);
                        received += 1;
                    }
                    // All senders gone with results missing: every unwind is
                    // caught task-side, so this is unreachable in practice —
                    // but a lost slot must fail the batch, never hang it.
                    Err(_) => {
                        if failed.is_none() {
                            failed = Some(TaskPanic {
                                message: "a batch result went missing".to_string(),
                            });
                        }
                        break;
                    }
                }
            }
        }
        if let Some(panic) = failed {
            return Err(panic);
        }
        Ok(results
            .into_iter()
            .map(|r| r.expect("every batch slot is filled once received == n"))
            .collect())
    }
}

/// Resolves a requested thread count to an effective one: `0` means
/// auto-detect via [`std::thread::available_parallelism`], anything else is
/// taken as-is (minimum 1).
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Spawns `threads - 1` worker threads (the caller is the last worker) and
/// runs `f` with a [`WorkerPool`] handle; returns when `f` and all workers
/// are done. With `threads <= 1` no thread is spawned and every batch runs
/// inline on the caller.
///
/// Tasks submitted through the handle may borrow anything that outlives
/// this call (the `'env` lifetime) — a session's preprocessing, graph, and
/// cost function — or move owned data in and out.
pub fn scoped<'env, F, R>(threads: usize, f: F) -> R
where
    F: for<'pool> FnOnce(WorkerPool<'env, 'pool>) -> R,
{
    let threads = threads.max(1);
    let shared: Shared<'env> = Shared::new(threads);
    if threads == 1 {
        return f(WorkerPool { shared: &shared });
    }
    std::thread::scope(|scope| {
        let guard = ShutdownGuard(&shared);
        for wi in 1..threads {
            let shared = &shared;
            scope.spawn(move || worker_loop(shared, wi));
        }
        let result = f(WorkerPool { shared: &shared });
        drop(guard);
        result
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_results_come_back_in_task_order() {
        for threads in [1, 2, 4] {
            let doubled: Vec<usize> = scoped(threads, |p| {
                let tasks: Vec<_> = (0..64).map(|i| move |_s: &mut Scratch| i * 2).collect();
                p.run_batch(tasks).expect("no task panics")
            });
            assert_eq!(doubled, (0..64).map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn tasks_can_borrow_the_environment() {
        let data: Vec<u64> = (0..100).collect();
        let total: u64 = scoped(3, |p| {
            let tasks: Vec<_> = data
                .chunks(7)
                .map(|chunk| move |_s: &mut Scratch| chunk.iter().sum::<u64>())
                .collect();
            p.run_batch(tasks)
                .expect("no task panics")
                .into_iter()
                .sum()
        });
        assert_eq!(total, data.iter().sum::<u64>());
    }

    #[test]
    fn multiple_batches_reuse_the_same_workers() {
        scoped(4, |p| {
            for round in 0..10usize {
                let tasks: Vec<_> = (0..16)
                    .map(|i| move |_s: &mut Scratch| round * 100 + i)
                    .collect();
                let out = p.run_batch(tasks).expect("no task panics");
                assert_eq!(out.len(), 16);
                assert_eq!(out[3], round * 100 + 3);
            }
            let stats = p.stats();
            assert_eq!(stats.threads, 4);
            assert_eq!(stats.worker_tasks.iter().sum::<usize>(), 160);
        });
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let out: Vec<u8> = scoped(2, |p| {
            p.run_batch(Vec::<fn(&mut Scratch) -> u8>::new())
                .expect("empty batch cannot fail")
        });
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_runs_inline_and_counts_tasks() {
        scoped(1, |p| {
            let tasks: Vec<_> = (0..5).map(|i| move |_s: &mut Scratch| i).collect();
            assert_eq!(
                p.run_batch(tasks).expect("no task panics"),
                vec![0, 1, 2, 3, 4]
            );
            let stats = p.stats();
            assert_eq!(stats.threads, 1);
            assert_eq!(stats.worker_tasks, vec![5]);
            assert_eq!(stats.steals, 0);
        });
    }

    #[test]
    fn scratch_recycles_matching_universes() {
        let mut scratch = Scratch::default();
        let mut a = scratch.take(70);
        assert_eq!(scratch.bytes_reused(), 0, "first take allocates");
        a.insert(5);
        scratch.recycle(a);
        let b = scratch.take(70);
        assert!(b.is_empty(), "recycled sets come back cleared");
        assert_eq!(b.universe(), 70);
        assert_eq!(scratch.bytes_reused(), 16, "two u64 words reused");
        let c = scratch.take(10);
        assert_eq!(c.universe(), 10);
        assert_eq!(scratch.bytes_reused(), 16, "mismatched universe allocates");
    }

    #[test]
    fn stats_account_for_every_task() {
        let stats = scoped(4, |p| {
            let tasks: Vec<_> = (0..200)
                .map(|i| {
                    move |_s: &mut Scratch| {
                        // Uneven work so stealing has something to balance.
                        let spins = if i % 16 == 0 { 20_000 } else { 10 };
                        (0..spins).fold(0u64, |acc, x| acc.wrapping_add(x))
                    }
                })
                .collect();
            p.run_batch(tasks).expect("no task panics");
            p.stats()
        });
        assert_eq!(stats.worker_tasks.len(), 4);
        assert_eq!(stats.worker_tasks.iter().sum::<usize>(), 200);
    }

    #[test]
    fn panicking_task_fails_the_batch_and_spares_the_pool() {
        type BoxedTask = Box<dyn FnOnce(&mut Scratch) -> usize + Send>;
        for threads in [1, 2, 4] {
            let err = scoped(threads, |p| {
                let tasks: Vec<BoxedTask> = (0..8usize)
                    .map(|i| {
                        Box::new(move |_s: &mut Scratch| {
                            if i == 3 {
                                panic!("task {i} exploded");
                            }
                            i
                        }) as BoxedTask
                    })
                    .collect();
                let err = p.run_batch(tasks).expect_err("batch must fail");
                // The workers caught the unwind: the same pool still
                // serves later batches.
                let again = p
                    .run_batch(
                        (0..4)
                            .map(|i| move |_s: &mut Scratch| i)
                            .collect::<Vec<_>>(),
                    )
                    .expect("pool survives a panicked batch");
                assert_eq!(again, vec![0, 1, 2, 3]);
                err
            });
            assert!(
                err.message.contains("task 3 exploded"),
                "threads = {threads}: unexpected message {:?}",
                err.message
            );
            assert!(err.to_string().contains("worker pool task panicked"));
        }
    }

    #[test]
    fn panic_message_handles_common_payloads() {
        let s = catch_unwind(|| panic!("plain {}", "formatted")).unwrap_err();
        assert_eq!(panic_message(s), "plain formatted");
        let s = catch_unwind(|| std::panic::panic_any(17u32)).unwrap_err();
        assert_eq!(panic_message(s), "non-string panic payload");
    }

    #[test]
    fn resolve_threads_auto_detects_zero() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
    }

    #[test]
    fn moves_owned_state_in_and_out() {
        // The pattern the factorized engine uses: move a stateful value into
        // the task, return it with its result.
        let streams: Vec<Vec<u32>> = (0..8).map(|i| vec![i]).collect();
        let advanced: Vec<Vec<u32>> = scoped(3, |p| {
            let tasks: Vec<_> = streams
                .into_iter()
                .map(|mut s| {
                    move |_x: &mut Scratch| {
                        let next = s.last().unwrap() + 10;
                        s.push(next);
                        s
                    }
                })
                .collect();
            p.run_batch(tasks).expect("no task panics")
        });
        for (i, s) in advanced.iter().enumerate() {
            assert_eq!(s, &vec![i as u32, i as u32 + 10]);
        }
    }
}
