//! Cooperative cancellation for enumeration sessions.
//!
//! A [`CancelFlag`] is a cheaply cloneable token shared between a running
//! session and whoever may stop it — another thread, a service connection
//! handler noticing a client disconnect, a drain-and-shutdown sequence. The
//! engines check the flag at their demand boundaries (once per popped
//! Lawler–Murty partition, never inside a re-optimization), so cancellation
//! takes effect within one unit of work and the results already emitted
//! remain a valid ranked prefix. A cancelled session reports
//! [`StopReason::Cancelled`](crate::session::StopReason::Cancelled).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared one-way switch: once [`CancelFlag::cancel`] is called, every
/// clone observes [`CancelFlag::is_cancelled`] `== true` forever.
#[derive(Clone, Debug, Default)]
pub struct CancelFlag(Arc<AtomicBool>);

impl CancelFlag {
    /// A fresh, un-cancelled flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent and safe from any thread.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// `true` once [`CancelFlag::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_is_shared_across_clones_and_threads() {
        let flag = CancelFlag::new();
        assert!(!flag.is_cancelled());
        let clone = flag.clone();
        let handle = std::thread::spawn(move || clone.cancel());
        handle.join().unwrap();
        assert!(flag.is_cancelled());
        // Cancelling again is a no-op.
        flag.cancel();
        assert!(flag.is_cancelled());
    }
}
