//! `mtr-core`: ranked enumeration of minimal triangulations and proper tree
//! decompositions — the primary contribution of the reproduced paper.
//!
//! The crate layers four pieces on top of the graph/separator/PMC substrate:
//!
//! * [`cost`] — split-monotone bag costs (width, fill-in, weighted and
//!   lexicographic variants, hyperedge-cover width, `Σ 2^|bag|`, linear
//!   combinations) plus the constraint compilation `κ[I, X]` of Lemma 6.2;
//! * [`mintriang`] — `MinTriang⟨κ⟩` / `MinTriangB⟨b, κ⟩`: the generalized
//!   Bouchitté–Todinca dynamic program computing one minimum-cost minimal
//!   triangulation, with the cost-independent initialization factored into
//!   [`Preprocessed`] so it is paid once per graph;
//! * [`ranked`] — `RankedTriang⟨κ⟩`: Lawler–Murty ranked enumeration of all
//!   minimal triangulations by increasing cost, exposed as a lazy iterator;
//! * [`properdec`] — ranked enumeration of proper tree decompositions (the
//!   clique trees of the minimal triangulations, Proposition 6.1);
//! * [`baseline`] — the unranked complete enumerator the paper compares
//!   against ("CKK") and a zero-initialization LB-Triang sampler;
//! * [`parallel`] — the parallel variant of the ranked enumerator (the
//!   delay-reduction extension sketched in the paper's footnote 3);
//! * [`diverse`] — diversity-aware filtering of the ranked stream (the
//!   diversification question raised in the paper's conclusions).
//!
//! # Quick start
//!
//! ```
//! use mtr_core::{cost::Width, Preprocessed, RankedEnumerator};
//! use mtr_graph::paper_example_graph;
//!
//! let g = paper_example_graph();
//! let pre = Preprocessed::new(&g);            // minimal separators + PMCs
//! let mut best = RankedEnumerator::new(&pre, &Width);
//! let first = best.next().expect("the graph has a minimal triangulation");
//! assert_eq!(first.width(), 2);               // the optimum comes first
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod cost;
pub mod diverse;
pub mod mintriang;
pub mod parallel;
pub mod properdec;
pub mod ranked;

pub use baseline::{BaselineResult, CkkEnumerator, LbTriangSampler};
pub use cost::{BagCost, Constrained, Constraints, CostValue};
pub use diverse::{Diversified, DiversityFilter, SimilarityMeasure};
pub use mintriang::{min_triangulation, Preprocessed, Triangulation};
pub use parallel::ParallelRankedEnumerator;
pub use properdec::{
    top_k_proper_decompositions, ProperDecompositionEnumerator, RankedDecomposition,
};
pub use ranked::{
    all_triangulations_ranked, top_k_triangulations, RankedEnumerator, RankedTriangulation,
};
