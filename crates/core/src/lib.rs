//! `mtr-core`: ranked enumeration of minimal triangulations and proper tree
//! decompositions — the primary contribution of the reproduced paper.
//!
//! The crate layers four pieces on top of the graph/separator/PMC substrate:
//!
//! * [`cost`] — split-monotone bag costs (width, fill-in, weighted and
//!   lexicographic variants, hyperedge-cover width, `Σ 2^|bag|`, linear
//!   combinations) plus the constraint compilation `κ[I, X]` of Lemma 6.2;
//! * [`mintriang`] — `MinTriang⟨κ⟩` / `MinTriangB⟨b, κ⟩`: the generalized
//!   Bouchitté–Todinca dynamic program computing one minimum-cost minimal
//!   triangulation, with the cost-independent initialization factored into
//!   [`Preprocessed`] so it is paid once per graph;
//! * [`ranked`] — `RankedTriang⟨κ⟩`: Lawler–Murty ranked enumeration of all
//!   minimal triangulations by increasing cost, exposed as a lazy iterator;
//! * [`properdec`] — ranked enumeration of proper tree decompositions (the
//!   clique trees of the minimal triangulations, Proposition 6.1);
//! * [`baseline`] — the unranked complete enumerator the paper compares
//!   against ("CKK") and a zero-initialization LB-Triang sampler;
//! * [`parallel`] — the parallel variant of the ranked enumerator (the
//!   delay-reduction extension sketched in the paper's footnote 3);
//! * [`pool`] — the shared work-stealing worker pool both the parallel
//!   engine and the factorized per-atom engine of `mtr-reduce` execute on;
//! * [`diverse`] — diversity-aware filtering of the ranked stream (the
//!   diversification question raised in the paper's conclusions);
//! * [`symmetry`] — symmetry-aware search-space collapse: orbit-canonical
//!   exact-cost sharing of constrained re-optimizations in full mode, and
//!   enumeration modulo the automorphism group ([`SymmetryPolicy`]);
//! * [`session`] — the canonical entry point: the [`Enumerate`]
//!   builder/session API composing all of the above, with budgets
//!   ([`StopReason`]), statistics ([`EnumerationStats`]) and typed errors
//!   ([`EnumerationError`]).
//!
//! # Quick start
//!
//! ```
//! use mtr_core::{cost::Width, Enumerate};
//! use mtr_graph::paper_example_graph;
//!
//! let g = paper_example_graph();
//! let run = Enumerate::on(&g).cost(&Width).max_results(1).run()?;
//! let first = run.best().expect("the graph has a minimal triangulation");
//! assert_eq!(first.width(), 2);               // the optimum comes first
//! # Ok::<(), mtr_core::EnumerationError>(())
//! ```
//!
//! The per-algorithm constructors ([`RankedEnumerator::new`],
//! [`ParallelRankedEnumerator::new`],
//! [`ProperDecompositionEnumerator::new`], [`Diversified::new`]) remain
//! available as the engine layer underneath the session; prefer
//! [`Enumerate`] in new code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod cancel;
pub mod cost;
pub mod diverse;
pub mod mintriang;
pub mod parallel;
pub mod pool;
pub mod properdec;
pub mod ranked;
pub mod session;
pub mod symmetry;

pub use baseline::{BaselineResult, CkkEnumerator, LbTriangSampler};
pub use cancel::CancelFlag;
pub use cost::{named_cost, BagCost, Constrained, Constraints, CostValue, DynBagCost};
pub use diverse::{Diversified, DiversityFilter, SimilarityMeasure};
pub use mintriang::{min_triangulation, min_triangulation_in, Preprocessed, Triangulation};
pub use parallel::ParallelRankedEnumerator;
pub use pool::{panic_message, resolve_threads, PoolStats, Scratch, TaskPanic, WorkerPool};
pub use properdec::{
    top_k_proper_decompositions, ProperDecompositionEnumerator, RankedDecomposition,
};
pub use ranked::{
    all_triangulations_ranked, top_k_triangulations, RankedEnumerator, RankedState,
    RankedTriangulation,
};
pub use session::{
    drive_engine, heuristic_incumbent, CachePolicy, DecompositionRun, Enumerate, EnumerationError,
    EnumerationRun, EnumerationStats, PruningPolicy, SessionConfig, SessionEngine, SessionReport,
    StopReason,
};
pub use symmetry::{OrbitContext, SymmetryPolicy};
