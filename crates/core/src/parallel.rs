//! Parallel ranked enumeration.
//!
//! The paper notes (Section 7.1, footnote 3) that `RankedTriang` can be
//! parallelized for delay reduction by parallelizing its main loop: after a
//! triangulation is popped and printed, the `k` constrained `MinTriang`
//! re-optimizations that split its partition are independent of each other.
//! [`ParallelRankedEnumerator`] implements exactly that on the shared
//! work-stealing [`pool`]: each expansion submits one task per
//! constrained optimization, so a straggler re-optimization never idles the
//! other workers (which a fixed chunking would).
//!
//! The output is identical to the sequential [`RankedEnumerator`](crate::ranked::RankedEnumerator)
//! (same results, same cost order); only the wall-clock delay changes. The
//! cost function must be `Sync` since it is shared across workers.
//!
//! Two ways to run:
//!
//! * [`ParallelRankedEnumerator::new`] keeps the historical constructor:
//!   it spins a scoped pool up per expansion batch — fine for one-shot
//!   iteration;
//! * [`ParallelRankedEnumerator::with_pool`] attaches the enumerator to an
//!   existing [`WorkerPool`], so one set of workers (and their per-worker
//!   scratch) serves the whole session. The [`Enumerate`](crate::Enumerate)
//!   session builder uses this path.

use crate::cancel::CancelFlag;
use crate::cost::{BagCost, Constrained, Constraints, CostValue};
use crate::mintriang::{min_triangulation_in, Preprocessed, Triangulation};
use crate::pool::{self, Scratch, WorkerPool};
use crate::ranked::RankedTriangulation;
use crate::symmetry::{ModuloDedup, OrbitContext, OrbitShare, SymmetryMode};
use mtr_graph::VertexSet;
use mtr_separators::enumerate::minimal_separators;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::sync::Arc;

/// Mirror of the sequential engine's node state: solved entries carry their
/// exact-cost optimum, deferred entries an admissible lower bound, and
/// known (orbit-replayed) entries their exact cost without the
/// triangulation itself.
enum EntryState {
    Solved(Triangulation),
    Deferred,
    Known,
}

struct Entry {
    cost: CostValue,
    sequence: u64,
    state: EntryState,
    constraints: Constraints,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost && self.sequence == other.sequence
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .cost
            .cmp(&self.cost)
            .then_with(|| other.sequence.cmp(&self.sequence))
    }
}

/// How the enumerator executes its expansion batches.
enum Exec<'env, 'p> {
    /// Spin up a scoped pool per batch (the standalone constructor).
    Owned(usize),
    /// Submit to a pool that outlives the enumerator (the session path).
    Pooled(WorkerPool<'env, 'p>),
}

/// Ranked enumerator whose partition re-optimizations run as work-stealing
/// pool tasks.
pub struct ParallelRankedEnumerator<'a, 'p, K: BagCost + Sync + ?Sized> {
    pre: &'a Preprocessed,
    cost: &'a K,
    exec: Exec<'a, 'p>,
    queue: BinaryHeap<Entry>,
    emitted_fills: HashSet<Vec<(u32, u32)>>,
    duplicates_skipped: usize,
    nodes_explored: usize,
    sequence: u64,
    started: bool,
    prune: bool,
    incumbent: Option<CostValue>,
    nodes_deferred: usize,
    cancel: Option<CancelFlag>,
    /// First pool-task failure (panic or injected fault) observed by a
    /// batch: iteration stops and the session layer surfaces it as a
    /// typed error instead of a process-killing unwind.
    failed: Option<String>,
    /// Symmetry machinery (orbit sharing or modulo quotienting); see
    /// [`crate::symmetry`]. Unlike the sequential engine — which records a
    /// child's outcome before its next sibling's lookup — a whole eager
    /// batch is looked up before any of it is solved, so the parallel
    /// engine may replay fewer cousins; the output is unaffected.
    symmetry: SymmetryMode,
}

impl<'a, 'p, K: BagCost + Sync + ?Sized> ParallelRankedEnumerator<'a, 'p, K> {
    /// Creates the enumerator with the given worker count (clamped to ≥ 1).
    /// Every expansion batch runs on a short-lived scoped pool; prefer
    /// [`ParallelRankedEnumerator::with_pool`] (or the session API) to
    /// reuse one pool across the whole enumeration.
    pub fn new(pre: &'a Preprocessed, cost: &'a K, threads: usize) -> Self {
        Self::with_exec(pre, cost, Exec::Owned(threads.max(1)))
    }

    /// Creates the enumerator on an existing worker pool (see
    /// [`pool::scoped`]); the session layer uses this so one set of workers
    /// serves preprocessing and every expansion batch.
    pub fn with_pool(pre: &'a Preprocessed, cost: &'a K, pool: WorkerPool<'a, 'p>) -> Self {
        Self::with_exec(pre, cost, Exec::Pooled(pool))
    }

    fn with_exec(pre: &'a Preprocessed, cost: &'a K, exec: Exec<'a, 'p>) -> Self {
        ParallelRankedEnumerator {
            pre,
            cost,
            exec,
            queue: BinaryHeap::new(),
            emitted_fills: HashSet::new(),
            duplicates_skipped: 0,
            nodes_explored: 0,
            sequence: 0,
            started: false,
            prune: false,
            incumbent: None,
            nodes_deferred: 0,
            cancel: None,
            failed: None,
            symmetry: SymmetryMode::Off,
        }
    }

    /// Enables incumbent-bounded Lawler pruning, optionally seeded with the
    /// cost of a known (e.g. heuristic) minimal triangulation. Identical
    /// semantics to [`crate::ranked::RankedEnumerator::with_pruning`]: the
    /// output sequence is unchanged, only re-optimizations that cannot affect
    /// the emitted prefix are deferred.
    pub fn with_pruning(mut self, incumbent: Option<CostValue>) -> Self {
        debug_assert!(!self.started, "enable pruning before iterating");
        self.prune = true;
        self.incumbent = incumbent;
        self
    }

    /// Binds a cooperative cancellation flag: once raised (from any
    /// thread), the iterator returns `None` at its next demand boundary —
    /// between expansion batches, never inside one — leaving the emitted
    /// sequence a valid ranked prefix.
    pub fn with_cancel(mut self, flag: CancelFlag) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Turns on orbit-canonical exact-cost sharing; identical semantics to
    /// [`crate::ranked::RankedState::enable_orbit_sharing`].
    pub fn with_orbit_sharing(mut self, ctx: Arc<OrbitContext>) -> Self {
        debug_assert!(!self.started, "configure symmetry before iterating");
        self.symmetry = SymmetryMode::Share(OrbitShare::new(ctx));
        self
    }

    /// Quotients the stream by the automorphism group; identical semantics
    /// to [`crate::ranked::RankedState::enable_modulo_symmetry`].
    pub fn with_modulo_symmetry(mut self, ctx: Arc<OrbitContext>) -> Self {
        debug_assert!(!self.started, "configure symmetry before iterating");
        self.symmetry = SymmetryMode::Modulo(ModuloDedup::new(ctx));
        self
    }

    /// Number of re-optimizations skipped by orbit replay; see
    /// [`crate::ranked::RankedState::orbit_replays`].
    pub fn orbit_replays(&self) -> usize {
        self.symmetry.orbit_replays()
    }

    /// Number of branches/results merged into their orbit representative;
    /// see [`crate::ranked::RankedState::orbits_merged`].
    pub fn orbits_merged(&self) -> usize {
        self.symmetry.orbits_merged()
    }

    /// Number of constrained re-optimizations deferred by pruning and never
    /// (yet) paid for; see
    /// [`crate::ranked::RankedEnumerator::nodes_pruned`].
    pub fn nodes_pruned(&self) -> usize {
        self.nodes_deferred
    }

    /// The current incumbent cost bound, if pruning is active and a bound is
    /// known (the heuristic seed, then the most recently emitted cost).
    pub fn incumbent(&self) -> Option<CostValue> {
        self.incumbent
    }

    /// Number of results skipped as duplicates (expected to be zero; see
    /// [`crate::ranked::RankedEnumerator::duplicates_skipped`]).
    pub fn duplicates_skipped(&self) -> usize {
        self.duplicates_skipped
    }

    /// Number of Lawler–Murty partitions explored so far (one constrained
    /// `MinTriang` re-optimization each); see
    /// [`crate::ranked::RankedEnumerator::nodes_explored`].
    pub fn nodes_explored(&self) -> usize {
        self.nodes_explored
    }

    /// Number of partitions currently pending in the priority queue.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// The message of the pool-task panic (or injected `pool.task` fault)
    /// that aborted iteration, if one did. Once set, [`Iterator::next`]
    /// keeps returning `None`: the emitted prefix stays a valid ranked
    /// prefix, but the session must report the failure rather than
    /// exhaustion.
    pub fn failure(&self) -> Option<&str> {
        self.failed.as_deref()
    }

    /// Solves `MinTriang⟨κ[I, X]⟩` for a batch of constraint sets in
    /// parallel (one pool task each, each re-optimization drawing its
    /// `VertexSet` scratch from the worker's arena) and returns one slot per
    /// input in batch order — `None` where the constrained instance is
    /// infeasible or the optimum does not satisfy its constraints.
    fn solve_batch(
        &mut self,
        batch: Vec<Constraints>,
    ) -> Vec<Option<(Triangulation, Constraints)>> {
        if batch.is_empty() {
            return Vec::new();
        }
        let pre = self.pre;
        let cost = self.cost;
        let tasks: Vec<_> = batch
            .into_iter()
            .map(|constraints| {
                move |scratch: &mut Scratch| {
                    let constrained = Constrained::new(cost, &constraints);
                    let best = min_triangulation_in(pre, &constrained, scratch);
                    (best, constraints)
                }
            })
            .collect();
        let solved = match &self.exec {
            Exec::Owned(threads) => pool::scoped(*threads, |p| p.run_batch(tasks)),
            Exec::Pooled(p) => p.run_batch(tasks),
        };
        let solved = match solved {
            Ok(solved) => solved,
            Err(panic) => {
                // A cost-function panic (or injected fault) fails this
                // *session*: record it, stop producing, keep the process —
                // and every other session's pool workers — alive.
                self.failed = Some(panic.message);
                return Vec::new();
            }
        };
        solved
            .into_iter()
            .map(|(result, constraints)| {
                result.and_then(|best| {
                    if constraints.satisfied_by_graph(&best.graph) {
                        Some((best, constraints))
                    } else {
                        None
                    }
                })
            })
            .collect()
    }

    /// Pays for a deferred or orbit-replayed partition that reached the top
    /// of the queue: one constrained re-optimization (a single pool task),
    /// reinserted at its exact cost under its *original* sequence number so
    /// tie-breaks match the unpruned run.
    fn resolve_entry(&mut self, entry: Entry) {
        self.nodes_explored += 1;
        let solved = self.solve_batch(vec![entry.constraints]);
        if let Some((best, constraints)) = solved.into_iter().next().flatten() {
            debug_assert!(
                best.cost >= entry.cost,
                "deferred lower bound was not admissible"
            );
            self.record_outcome(&constraints, best.cost);
            self.queue.push(Entry {
                cost: best.cost,
                sequence: entry.sequence,
                state: EntryState::Solved(best),
                constraints,
            });
        }
    }

    /// Publishes a feasible subproblem's exact optimum to its orbit, when
    /// sharing is on.
    fn record_outcome(&mut self, constraints: &Constraints, cost: CostValue) {
        if let SymmetryMode::Share(share) = &mut self.symmetry {
            if let Some(key) = share.key_of(constraints) {
                share.put(key, cost);
            }
        }
    }

    fn expand(
        &mut self,
        seps_of_h: &[VertexSet],
        constraints: &Constraints,
        parent_cost: CostValue,
    ) {
        let new_seps: Vec<&VertexSet> = seps_of_h
            .iter()
            .filter(|s| !constraints.include.contains(s))
            .collect();
        let bound_children = self.prune && self.incumbent.is_some();
        // Split the children — in generation order — into deferred ones
        // (queued on their admissible lower bound alone), orbit-replayed
        // ones (queued at a sibling orbit's exact cost), and eager ones,
        // which are re-optimized as one pool batch.
        let mut deferred: Vec<(usize, CostValue, Constraints)> = Vec::new();
        let mut known: Vec<(usize, CostValue, Constraints)> = Vec::new();
        let mut eager_positions: Vec<usize> = Vec::new();
        let mut eager_batch: Vec<Constraints> = Vec::new();
        // Modulo-symmetry: siblings in one stabilizer orbit spawn one
        // child, with the staircase reordered so the dropped cells sit
        // early (see the sequential engine); the prefixes still range
        // over all earlier separators, dropped or not. Positions below
        // are plan positions, so ties break as in the sequential engine.
        let plan = match &mut self.symmetry {
            SymmetryMode::Modulo(dedup) => dedup.branch_plan(constraints, &new_seps),
            _ => None,
        };
        let order: Vec<(usize, bool)> =
            plan.unwrap_or_else(|| (0..new_seps.len()).map(|i| (i, true)).collect());
        for pos in 0..order.len() {
            let (idx, kept) = order[pos];
            if !kept {
                continue;
            }
            let i = pos;
            let mut include = constraints.include.clone();
            include.extend(order[..pos].iter().map(|&(k, _)| new_seps[k].clone()));
            let mut exclude = constraints.exclude.clone();
            exclude.push(new_seps[idx].clone());
            let lower_bound = bound_children.then(|| {
                match self.cost.include_lower_bound(self.pre.graph(), &include) {
                    Some(prefix) => parent_cost.max(prefix),
                    None => parent_cost,
                }
            });
            let child = Constraints::new(include, exclude);
            match (lower_bound, self.incumbent) {
                (Some(lb), Some(incumbent)) if lb > incumbent => deferred.push((i, lb, child)),
                _ => {
                    if let SymmetryMode::Share(share) = &mut self.symmetry {
                        if let Some(cost) = share.key_of(&child).and_then(|k| share.get(&k)) {
                            share.replays += 1;
                            known.push((i, cost, child));
                            continue;
                        }
                    }
                    eager_positions.push(i);
                    eager_batch.push(child);
                }
            }
        }
        self.nodes_explored += eager_batch.len();
        let solved = self.solve_batch(eager_batch);
        // Re-interleave solved, deferred and replayed children by generation
        // position before assigning sequence numbers, so ties break exactly
        // as in the sequential engine (and as in an unpruned run).
        let mut pending: Vec<(usize, Entry)> = Vec::with_capacity(new_seps.len());
        for (i, lb, child) in deferred {
            self.nodes_deferred += 1;
            pending.push((
                i,
                Entry {
                    cost: lb,
                    sequence: 0,
                    state: EntryState::Deferred,
                    constraints: child,
                },
            ));
        }
        for (i, cost, child) in known {
            pending.push((
                i,
                Entry {
                    cost,
                    sequence: 0,
                    state: EntryState::Known,
                    constraints: child,
                },
            ));
        }
        for (i, result) in eager_positions.into_iter().zip(solved) {
            if let Some((best, child)) = result {
                pending.push((
                    i,
                    Entry {
                        cost: best.cost,
                        sequence: 0,
                        state: EntryState::Solved(best),
                        constraints: child,
                    },
                ));
            }
        }
        pending.sort_by_key(|(i, _)| *i);
        for (_, mut entry) in pending {
            self.sequence += 1;
            entry.sequence = self.sequence;
            if let EntryState::Solved(best) = &entry.state {
                let cost = best.cost;
                self.record_outcome(&entry.constraints, cost);
            }
            self.queue.push(entry);
        }
    }
}

impl<K: BagCost + Sync + ?Sized> Iterator for ParallelRankedEnumerator<'_, '_, K> {
    type Item = RankedTriangulation;

    fn next(&mut self) -> Option<RankedTriangulation> {
        if self.failed.is_some() {
            return None;
        }
        if !self.started {
            self.started = true;
            self.nodes_explored += 1;
            let solved = self.solve_batch(vec![Constraints::none()]);
            if let Some((best, constraints)) = solved.into_iter().next().flatten() {
                self.record_outcome(&constraints, best.cost);
                self.sequence += 1;
                self.queue.push(Entry {
                    cost: best.cost,
                    sequence: self.sequence,
                    state: EntryState::Solved(best),
                    constraints,
                });
            }
        }
        loop {
            // The demand boundary: checked between partition pops so a
            // cancelled (or batch-failed) session never starts another
            // expansion batch.
            if self.failed.is_some() || self.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
                return None;
            }
            let entry = self.queue.pop()?;
            let best = match entry.state {
                EntryState::Deferred => {
                    self.nodes_deferred -= 1;
                    self.resolve_entry(entry);
                    continue;
                }
                EntryState::Known => {
                    self.resolve_entry(entry);
                    continue;
                }
                EntryState::Solved(best) => best,
            };
            let fill = best.fill_edges(self.pre.graph());
            // Modulo-symmetry: suppress orbit-duplicate results but still
            // expand their partition (mirrors the sequential engine).
            let orbit_new = match &mut self.symmetry {
                SymmetryMode::Modulo(dedup) => dedup.admit_result(&fill),
                _ => true,
            };
            let is_new = self.emitted_fills.insert(fill);
            // Computed once: shared by the expansion and the emitted result.
            let seps_of_h = minimal_separators(&best.graph);
            self.expand(&seps_of_h, &entry.constraints, entry.cost);
            if self.failed.is_some() {
                // The expansion batch died: `best` was computed, but the
                // session is failing — do not emit a result past the fault.
                return None;
            }
            if !is_new {
                self.duplicates_skipped += 1;
                continue;
            }
            if self.prune {
                self.incumbent = Some(best.cost);
            }
            if !orbit_new {
                continue;
            }
            return Some(RankedTriangulation {
                minimal_separators: seps_of_h,
                triangulation: best.graph,
                bags: best.bags,
                cost: best.cost,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{FillIn, Width};
    use crate::ranked::RankedEnumerator;
    use mtr_graph::{paper_example_graph, Graph};

    fn fill_keys(g: &Graph, results: &[RankedTriangulation]) -> Vec<Vec<(u32, u32)>> {
        results
            .iter()
            .map(|r| {
                let mut f = g.fill_edges_of(&r.triangulation);
                f.sort_unstable();
                f
            })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential_on_paper_example() {
        let g = paper_example_graph();
        let pre = Preprocessed::new(&g);
        let sequential: Vec<_> = RankedEnumerator::new(&pre, &FillIn).collect();
        let parallel: Vec<_> = ParallelRankedEnumerator::new(&pre, &FillIn, 4).collect();
        assert_eq!(sequential.len(), parallel.len());
        assert_eq!(fill_keys(&g, &sequential), fill_keys(&g, &parallel));
    }

    #[test]
    fn parallel_matches_sequential_on_cycles_and_grids() {
        let cases = vec![
            Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]),
            Graph::from_edges(
                8,
                &[
                    (0, 1),
                    (1, 2),
                    (2, 3),
                    (3, 0),
                    (2, 4),
                    (4, 5),
                    (5, 6),
                    (6, 7),
                    (7, 4),
                ],
            ),
        ];
        for g in cases {
            let pre = Preprocessed::new(&g);
            for threads in [1, 2, 4] {
                let sequential: Vec<_> = RankedEnumerator::new(&pre, &Width).collect();
                let mut parallel_iter = ParallelRankedEnumerator::new(&pre, &Width, threads);
                let parallel: Vec<_> = parallel_iter.by_ref().collect();
                assert_eq!(parallel_iter.duplicates_skipped(), 0);
                assert_eq!(sequential.len(), parallel.len(), "threads = {threads}");
                // Cost sequences are identical; the exact tie order may vary,
                // so compare the cost sequence and the result sets.
                let seq_costs: Vec<_> = sequential.iter().map(|r| r.cost).collect();
                let par_costs: Vec<_> = parallel.iter().map(|r| r.cost).collect();
                assert_eq!(seq_costs, par_costs);
                let mut seq_fills = fill_keys(&g, &sequential);
                let mut par_fills = fill_keys(&g, &parallel);
                seq_fills.sort();
                par_fills.sort();
                assert_eq!(seq_fills, par_fills);
            }
        }
    }

    #[test]
    fn shared_pool_matches_owned_per_batch_pools() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let pre = Preprocessed::new(&g);
        let owned: Vec<_> = ParallelRankedEnumerator::new(&pre, &FillIn, 3).collect();
        let (pooled, stats) = pool::scoped(3, |p| {
            let results: Vec<_> = ParallelRankedEnumerator::with_pool(&pre, &FillIn, p).collect();
            (results, p.stats())
        });
        assert_eq!(owned.len(), pooled.len());
        assert_eq!(fill_keys(&g, &owned), fill_keys(&g, &pooled));
        assert_eq!(stats.threads, 3);
        assert!(stats.worker_tasks.iter().sum::<usize>() > 0);
    }

    #[test]
    fn pruned_parallel_matches_unpruned_and_sequential() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let pre = Preprocessed::new(&g);
        for threads in [1, 4] {
            let plain: Vec<_> = ParallelRankedEnumerator::new(&pre, &FillIn, threads).collect();
            for seed in [None, Some(CostValue::ZERO), Some(CostValue::from_usize(3))] {
                let pruned: Vec<_> = ParallelRankedEnumerator::new(&pre, &FillIn, threads)
                    .with_pruning(seed)
                    .collect();
                assert_eq!(plain.len(), pruned.len(), "threads = {threads}");
                let plain_costs: Vec<_> = plain.iter().map(|r| r.cost).collect();
                let pruned_costs: Vec<_> = pruned.iter().map(|r| r.cost).collect();
                assert_eq!(plain_costs, pruned_costs);
                assert_eq!(fill_keys(&g, &plain), fill_keys(&g, &pruned));
            }
        }
        // A pruned prefix still matches the sequential engine, and defers
        // work a tight seed makes prunable.
        let sequential: Vec<_> = RankedEnumerator::new(&pre, &FillIn).take(3).collect();
        let mut pruned_iter =
            ParallelRankedEnumerator::new(&pre, &FillIn, 4).with_pruning(Some(CostValue::ZERO));
        let pruned: Vec<_> = pruned_iter.by_ref().take(3).collect();
        assert_eq!(fill_keys(&g, &sequential), fill_keys(&g, &pruned));
        assert!(pruned_iter.nodes_pruned() > 0);
        assert_eq!(pruned_iter.incumbent(), Some(pruned[2].cost));
    }

    #[test]
    fn orbit_sharing_parallel_matches_plain() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let pre = Preprocessed::new(&g);
        let ctx = OrbitContext::probe(&g).expect("C6 is symmetric");
        for threads in [1, 4] {
            let plain: Vec<_> = ParallelRankedEnumerator::new(&pre, &FillIn, threads).collect();
            let shared: Vec<_> = ParallelRankedEnumerator::new(&pre, &FillIn, threads)
                .with_orbit_sharing(ctx.clone())
                .collect();
            assert_eq!(plain.len(), shared.len(), "threads = {threads}");
            let plain_costs: Vec<_> = plain.iter().map(|r| r.cost).collect();
            let shared_costs: Vec<_> = shared.iter().map(|r| r.cost).collect();
            assert_eq!(plain_costs, shared_costs);
            assert_eq!(fill_keys(&g, &plain), fill_keys(&g, &shared));
        }
    }

    #[test]
    fn modulo_symmetry_parallel_quotients_like_sequential() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let pre = Preprocessed::new(&g);
        let ctx = OrbitContext::probe(&g).unwrap();
        let sequential: Vec<_> = RankedEnumerator::new(&pre, &FillIn)
            .with_modulo_symmetry(ctx.clone())
            .collect();
        assert_eq!(sequential.len(), 3);
        for threads in [1, 4] {
            let mut it = ParallelRankedEnumerator::new(&pre, &FillIn, threads)
                .with_modulo_symmetry(ctx.clone());
            let parallel: Vec<_> = it.by_ref().collect();
            assert_eq!(parallel.len(), 3, "threads = {threads}");
            assert!(it.orbits_merged() > 0);
            let seq_costs: Vec<_> = sequential.iter().map(|r| r.cost).collect();
            let par_costs: Vec<_> = parallel.iter().map(|r| r.cost).collect();
            assert_eq!(seq_costs, par_costs);
        }
    }

    #[test]
    fn take_works_lazily() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let pre = Preprocessed::new(&g);
        let top3: Vec<_> = ParallelRankedEnumerator::new(&pre, &FillIn, 2)
            .take(3)
            .collect();
        assert_eq!(top3.len(), 3);
        for w in top3.windows(2) {
            assert!(w[0].cost <= w[1].cost);
        }
    }
}
