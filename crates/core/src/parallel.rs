//! Parallel ranked enumeration.
//!
//! The paper notes (Section 7.1, footnote 3) that `RankedTriang` can be
//! parallelized for delay reduction by parallelizing its main loop: after a
//! triangulation is popped and printed, the `k` constrained `MinTriang`
//! re-optimizations that split its partition are independent of each other.
//! [`ParallelRankedEnumerator`] implements exactly that on the shared
//! work-stealing [`pool`]: each expansion submits one task per
//! constrained optimization, so a straggler re-optimization never idles the
//! other workers (which a fixed chunking would).
//!
//! The output is identical to the sequential [`RankedEnumerator`](crate::ranked::RankedEnumerator)
//! (same results, same cost order); only the wall-clock delay changes. The
//! cost function must be `Sync` since it is shared across workers.
//!
//! Two ways to run:
//!
//! * [`ParallelRankedEnumerator::new`] keeps the historical constructor:
//!   it spins a scoped pool up per expansion batch — fine for one-shot
//!   iteration;
//! * [`ParallelRankedEnumerator::with_pool`] attaches the enumerator to an
//!   existing [`WorkerPool`], so one set of workers (and their per-worker
//!   scratch) serves the whole session. The [`Enumerate`](crate::Enumerate)
//!   session builder uses this path.

use crate::cost::{BagCost, Constrained, Constraints, CostValue};
use crate::mintriang::{min_triangulation, Preprocessed, Triangulation};
use crate::pool::{self, Scratch, WorkerPool};
use crate::ranked::RankedTriangulation;
use mtr_graph::VertexSet;
use mtr_separators::enumerate::minimal_separators;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

struct Entry {
    cost: CostValue,
    sequence: u64,
    best: Triangulation,
    constraints: Constraints,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost && self.sequence == other.sequence
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .cost
            .cmp(&self.cost)
            .then_with(|| other.sequence.cmp(&self.sequence))
    }
}

/// How the enumerator executes its expansion batches.
enum Exec<'env, 'p> {
    /// Spin up a scoped pool per batch (the standalone constructor).
    Owned(usize),
    /// Submit to a pool that outlives the enumerator (the session path).
    Pooled(WorkerPool<'env, 'p>),
}

/// Ranked enumerator whose partition re-optimizations run as work-stealing
/// pool tasks.
pub struct ParallelRankedEnumerator<'a, 'p, K: BagCost + Sync + ?Sized> {
    pre: &'a Preprocessed,
    cost: &'a K,
    exec: Exec<'a, 'p>,
    queue: BinaryHeap<Entry>,
    emitted_fills: HashSet<Vec<(u32, u32)>>,
    duplicates_skipped: usize,
    nodes_explored: usize,
    sequence: u64,
    started: bool,
}

impl<'a, 'p, K: BagCost + Sync + ?Sized> ParallelRankedEnumerator<'a, 'p, K> {
    /// Creates the enumerator with the given worker count (clamped to ≥ 1).
    /// Every expansion batch runs on a short-lived scoped pool; prefer
    /// [`ParallelRankedEnumerator::with_pool`] (or the session API) to
    /// reuse one pool across the whole enumeration.
    pub fn new(pre: &'a Preprocessed, cost: &'a K, threads: usize) -> Self {
        Self::with_exec(pre, cost, Exec::Owned(threads.max(1)))
    }

    /// Creates the enumerator on an existing worker pool (see
    /// [`pool::scoped`]); the session layer uses this so one set of workers
    /// serves preprocessing and every expansion batch.
    pub fn with_pool(pre: &'a Preprocessed, cost: &'a K, pool: WorkerPool<'a, 'p>) -> Self {
        Self::with_exec(pre, cost, Exec::Pooled(pool))
    }

    fn with_exec(pre: &'a Preprocessed, cost: &'a K, exec: Exec<'a, 'p>) -> Self {
        ParallelRankedEnumerator {
            pre,
            cost,
            exec,
            queue: BinaryHeap::new(),
            emitted_fills: HashSet::new(),
            duplicates_skipped: 0,
            nodes_explored: 0,
            sequence: 0,
            started: false,
        }
    }

    /// Number of results skipped as duplicates (expected to be zero; see
    /// [`crate::ranked::RankedEnumerator::duplicates_skipped`]).
    pub fn duplicates_skipped(&self) -> usize {
        self.duplicates_skipped
    }

    /// Number of Lawler–Murty partitions explored so far (one constrained
    /// `MinTriang` re-optimization each); see
    /// [`crate::ranked::RankedEnumerator::nodes_explored`].
    pub fn nodes_explored(&self) -> usize {
        self.nodes_explored
    }

    /// Number of partitions currently pending in the priority queue.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Solves `MinTriang⟨κ[I, X]⟩` for a batch of constraint sets in
    /// parallel (one pool task each) and returns the satisfying optima, in
    /// batch order.
    fn solve_batch(&self, batch: Vec<Constraints>) -> Vec<(Triangulation, Constraints)> {
        if batch.is_empty() {
            return Vec::new();
        }
        let pre = self.pre;
        let cost = self.cost;
        let tasks: Vec<_> = batch
            .into_iter()
            .map(|constraints| {
                move |_scratch: &mut Scratch| {
                    let constrained = Constrained::new(cost, &constraints);
                    let best = min_triangulation(pre, &constrained);
                    (best, constraints)
                }
            })
            .collect();
        let solved = match &self.exec {
            Exec::Owned(threads) => pool::scoped(*threads, |p| p.run_batch(tasks)),
            Exec::Pooled(p) => p.run_batch(tasks),
        };
        solved
            .into_iter()
            .filter_map(|(result, constraints)| {
                result.and_then(|best| {
                    if constraints.satisfied_by_graph(&best.graph) {
                        Some((best, constraints))
                    } else {
                        None
                    }
                })
            })
            .collect()
    }

    fn push_solutions(&mut self, solutions: Vec<(Triangulation, Constraints)>) {
        for (best, constraints) in solutions {
            self.sequence += 1;
            self.queue.push(Entry {
                cost: best.cost,
                sequence: self.sequence,
                best,
                constraints,
            });
        }
    }

    fn expand(&mut self, seps_of_h: &[VertexSet], constraints: &Constraints) {
        let new_seps: Vec<&VertexSet> = seps_of_h
            .iter()
            .filter(|s| !constraints.include.contains(s))
            .collect();
        let batch: Vec<Constraints> = (0..new_seps.len())
            .map(|i| {
                let mut include = constraints.include.clone();
                include.extend(new_seps[..i].iter().map(|s| (*s).clone()));
                let mut exclude = constraints.exclude.clone();
                exclude.push(new_seps[i].clone());
                Constraints::new(include, exclude)
            })
            .collect();
        self.nodes_explored += batch.len();
        let solutions = self.solve_batch(batch);
        self.push_solutions(solutions);
    }
}

impl<K: BagCost + Sync + ?Sized> Iterator for ParallelRankedEnumerator<'_, '_, K> {
    type Item = RankedTriangulation;

    fn next(&mut self) -> Option<RankedTriangulation> {
        if !self.started {
            self.started = true;
            self.nodes_explored += 1;
            let solutions = self.solve_batch(vec![Constraints::none()]);
            self.push_solutions(solutions);
        }
        loop {
            let entry = self.queue.pop()?;
            let fill = entry.best.fill_edges(self.pre.graph());
            let is_new = self.emitted_fills.insert(fill);
            // Computed once: shared by the expansion and the emitted result.
            let seps_of_h = minimal_separators(&entry.best.graph);
            self.expand(&seps_of_h, &entry.constraints);
            if !is_new {
                self.duplicates_skipped += 1;
                continue;
            }
            return Some(RankedTriangulation {
                minimal_separators: seps_of_h,
                triangulation: entry.best.graph,
                bags: entry.best.bags,
                cost: entry.best.cost,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{FillIn, Width};
    use crate::ranked::RankedEnumerator;
    use mtr_graph::{paper_example_graph, Graph};

    fn fill_keys(g: &Graph, results: &[RankedTriangulation]) -> Vec<Vec<(u32, u32)>> {
        results
            .iter()
            .map(|r| {
                let mut f = g.fill_edges_of(&r.triangulation);
                f.sort_unstable();
                f
            })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential_on_paper_example() {
        let g = paper_example_graph();
        let pre = Preprocessed::new(&g);
        let sequential: Vec<_> = RankedEnumerator::new(&pre, &FillIn).collect();
        let parallel: Vec<_> = ParallelRankedEnumerator::new(&pre, &FillIn, 4).collect();
        assert_eq!(sequential.len(), parallel.len());
        assert_eq!(fill_keys(&g, &sequential), fill_keys(&g, &parallel));
    }

    #[test]
    fn parallel_matches_sequential_on_cycles_and_grids() {
        let cases = vec![
            Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]),
            Graph::from_edges(
                8,
                &[
                    (0, 1),
                    (1, 2),
                    (2, 3),
                    (3, 0),
                    (2, 4),
                    (4, 5),
                    (5, 6),
                    (6, 7),
                    (7, 4),
                ],
            ),
        ];
        for g in cases {
            let pre = Preprocessed::new(&g);
            for threads in [1, 2, 4] {
                let sequential: Vec<_> = RankedEnumerator::new(&pre, &Width).collect();
                let mut parallel_iter = ParallelRankedEnumerator::new(&pre, &Width, threads);
                let parallel: Vec<_> = parallel_iter.by_ref().collect();
                assert_eq!(parallel_iter.duplicates_skipped(), 0);
                assert_eq!(sequential.len(), parallel.len(), "threads = {threads}");
                // Cost sequences are identical; the exact tie order may vary,
                // so compare the cost sequence and the result sets.
                let seq_costs: Vec<_> = sequential.iter().map(|r| r.cost).collect();
                let par_costs: Vec<_> = parallel.iter().map(|r| r.cost).collect();
                assert_eq!(seq_costs, par_costs);
                let mut seq_fills = fill_keys(&g, &sequential);
                let mut par_fills = fill_keys(&g, &parallel);
                seq_fills.sort();
                par_fills.sort();
                assert_eq!(seq_fills, par_fills);
            }
        }
    }

    #[test]
    fn shared_pool_matches_owned_per_batch_pools() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let pre = Preprocessed::new(&g);
        let owned: Vec<_> = ParallelRankedEnumerator::new(&pre, &FillIn, 3).collect();
        let (pooled, stats) = pool::scoped(3, |p| {
            let results: Vec<_> = ParallelRankedEnumerator::with_pool(&pre, &FillIn, p).collect();
            (results, p.stats())
        });
        assert_eq!(owned.len(), pooled.len());
        assert_eq!(fill_keys(&g, &owned), fill_keys(&g, &pooled));
        assert_eq!(stats.threads, 3);
        assert!(stats.worker_tasks.iter().sum::<usize>() > 0);
    }

    #[test]
    fn take_works_lazily() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let pre = Preprocessed::new(&g);
        let top3: Vec<_> = ParallelRankedEnumerator::new(&pre, &FillIn, 2)
            .take(3)
            .collect();
        assert_eq!(top3.len(), 3);
        for w in top3.windows(2) {
            assert!(w[0].cost <= w[1].cost);
        }
    }
}
