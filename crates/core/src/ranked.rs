//! `RankedTriang⟨κ⟩` — ranked enumeration of minimal triangulations
//! (Section 6, Figure 4 of the paper).
//!
//! The enumerator adapts the Lawler–Murty procedure: the space of minimal
//! triangulations is partitioned by inclusion/exclusion constraints over
//! minimal separators (by Parra–Scheffler, a minimal triangulation is
//! identified by its set of minimal separators). A priority queue holds one
//! entry per partition, keyed by the cost of the partition's best member,
//! which is computed by `MinTriang` under the compiled constraint cost
//! `κ[I, X]`. Popping the cheapest entry emits its triangulation and splits
//! the remainder of its partition into sub-partitions.
//!
//! The enumerator is exposed as a lazy [`Iterator`], so callers get any-time
//! top-k semantics: stop pulling and no further work is done. With a
//! poly-MS class of graphs (or a constant width bound) the delay between
//! consecutive results is polynomial.

use crate::cancel::CancelFlag;
use crate::cost::{BagCost, Constrained, Constraints, CostValue};
use crate::mintriang::{min_triangulation_in, Preprocessed, Triangulation};
use crate::pool::Scratch;
use crate::symmetry::{ModuloDedup, OrbitContext, OrbitShare, SymmetryMode};
use mtr_graph::{Graph, VertexSet};
use mtr_separators::enumerate::minimal_separators;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::sync::Arc;

/// One result of the ranked enumeration.
#[derive(Clone, Debug)]
pub struct RankedTriangulation {
    /// The minimal triangulation (chordal supergraph of the input).
    pub triangulation: Graph,
    /// Its maximal cliques (the bags of its proper tree decompositions).
    pub bags: Vec<VertexSet>,
    /// Its cost under the enumeration's bag cost.
    pub cost: CostValue,
    /// Its minimal separators (the maximal set of pairwise-parallel minimal
    /// separators of the input graph it corresponds to).
    pub minimal_separators: Vec<VertexSet>,
}

impl RankedTriangulation {
    /// Width of the triangulation.
    pub fn width(&self) -> usize {
        self.bags
            .iter()
            .map(|b| b.len())
            .max()
            .unwrap_or(1)
            .saturating_sub(1)
    }

    /// Fill-in relative to `g`.
    pub fn fill_in(&self, g: &Graph) -> usize {
        self.triangulation.m() - g.m()
    }
}

/// How a queued partition is materialized.
#[derive(Debug)]
enum NodeState {
    /// The partition has been re-optimized; the entry's key is the exact
    /// cost of this best member.
    Solved(Triangulation),
    /// Incumbent-bounded pruning deferred the re-optimization; the entry's
    /// key is an admissible lower bound on the partition's best cost. The
    /// node is solved only if it ever reaches the front of the queue.
    Deferred,
    /// An orbit-equivalent subproblem already solved this partition's
    /// optimum: the entry's key is that *exact* cost, replayed by orbit
    /// sharing without re-running the dynamic program. The triangulation
    /// itself is materialized only if the entry ever reaches the front of
    /// the queue — the same discipline as [`NodeState::Deferred`], so the
    /// emitted stream is unchanged.
    Known,
}

/// A partition of the not-yet-emitted triangulations, keyed by the exact
/// cost of its best member (solved) or an admissible lower bound (deferred).
#[derive(Debug)]
struct QueueEntry {
    cost: CostValue,
    sequence: u64,
    state: NodeState,
    constraints: Constraints,
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost && self.sequence == other.sequence
    }
}
impl Eq for QueueEntry {}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: reverse so the cheapest cost (then the
        // oldest entry) is popped first.
        other
            .cost
            .cmp(&self.cost)
            .then_with(|| other.sequence.cmp(&self.sequence))
    }
}

/// The mutable engine state of one Lawler–Murty ranked enumeration —
/// priority queue, emitted set, and counters — decoupled from *where* the
/// preprocessing and cost live.
///
/// [`RankedEnumerator`] is the common borrowing wrapper; callers that need
/// to own their [`Preprocessed`] next to the enumeration state (the
/// per-atom streams of the `mtr-reduce` factorized enumerator) drive a
/// `RankedState` directly, passing the same `pre`/`cost` pair to every
/// [`RankedState::next`] call.
#[derive(Debug, Default)]
pub struct RankedState {
    queue: BinaryHeap<QueueEntry>,
    emitted_fills: HashSet<Vec<(u32, u32)>>,
    duplicates_skipped: usize,
    nodes_explored: usize,
    sequence: u64,
    started: bool,
    /// Per-state arena for the `MinTriang` re-optimizations.
    scratch: Scratch,
    /// Incumbent-bounded pruning: when on, children whose lower bound
    /// strictly exceeds `incumbent` are enqueued [`NodeState::Deferred`]
    /// instead of being re-optimized eagerly. The emitted sequence is
    /// identical either way; see the module docs of `session` for why.
    prune: bool,
    /// Cost of the best known triangulation: the heuristic seed before the
    /// first emission, then the cost of the latest emitted result.
    incumbent: Option<CostValue>,
    /// Deferred entries currently in the queue (re-optimizations avoided so
    /// far; any of them still in the queue when the caller stops pulling
    /// was pruned for good).
    nodes_deferred: usize,
    /// Cooperative cancellation: when raised, [`RankedState::next`] bails
    /// out with `None` at its demand boundary (before popping the next
    /// partition), leaving the emitted sequence a valid ranked prefix.
    cancel: Option<CancelFlag>,
    /// Symmetry machinery: orbit-canonical exact-cost sharing (full mode)
    /// or orbit quotienting (modulo mode); see [`crate::symmetry`].
    symmetry: SymmetryMode,
}

impl RankedState {
    /// Creates a fresh (not yet started) enumeration state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Turns on incumbent-bounded pruning, optionally seeding the incumbent
    /// with the cost of a heuristic triangulation (an upper bound on the
    /// cheapest result). Must be called before the first [`RankedState::next`].
    pub fn enable_pruning(&mut self, incumbent: Option<CostValue>) {
        debug_assert!(!self.started, "pruning must be configured up front");
        self.prune = true;
        self.incumbent = incumbent;
    }

    /// Binds a cooperative cancellation flag: once raised (from any thread),
    /// [`RankedState::next`] returns `None` at its next demand boundary.
    pub fn bind_cancel(&mut self, flag: CancelFlag) {
        self.cancel = Some(flag);
    }

    /// Turns on orbit-canonical exact-cost sharing: a child partition whose
    /// constraint configuration lands in an already-solved orbit is enqueued
    /// at that exact cost without re-running the dynamic program. The
    /// emitted stream is bit-for-bit identical to the unshared one (ties
    /// included); only sound for label-invariant costs. Must be called
    /// before the first [`RankedState::next`].
    pub fn enable_orbit_sharing(&mut self, ctx: Arc<OrbitContext>) {
        debug_assert!(!self.started, "symmetry must be configured up front");
        self.symmetry = SymmetryMode::Share(OrbitShare::new(ctx));
    }

    /// Switches the stream to one cheapest representative per
    /// automorphism-orbit of minimal triangulations, pruning orbit-duplicate
    /// branches during the search. Only sound for label-invariant costs.
    /// Must be called before the first [`RankedState::next`].
    pub fn enable_modulo_symmetry(&mut self, ctx: Arc<OrbitContext>) {
        debug_assert!(!self.started, "symmetry must be configured up front");
        self.symmetry = SymmetryMode::Modulo(ModuloDedup::new(ctx));
    }

    /// Number of re-optimizations skipped so far by replaying an
    /// orbit-mate's exact cost (full mode with sharing).
    pub fn orbit_replays(&self) -> usize {
        self.symmetry.orbit_replays()
    }

    /// Number of branches and results merged into their orbit
    /// representative so far (modulo-symmetry mode).
    pub fn orbits_merged(&self) -> usize {
        self.symmetry.orbits_merged()
    }

    /// Number of partitions whose re-optimization is currently deferred by
    /// pruning. Once the caller stops pulling, these are exactly the
    /// `MinTriang` calls that were never paid for.
    pub fn nodes_pruned(&self) -> usize {
        self.nodes_deferred
    }

    /// The current incumbent cost, when pruning is on and a bound is known.
    pub fn incumbent(&self) -> Option<CostValue> {
        self.incumbent
    }

    /// Bytes of bitset scratch this state's arena served without allocating.
    pub fn arena_bytes_reused(&self) -> usize {
        self.scratch.bytes_reused()
    }

    /// Number of results skipped because an identical triangulation was
    /// already emitted. Lawler–Murty partitions are disjoint, so this should
    /// always be zero; it is tracked as a self-check and asserted by the
    /// test suite.
    pub fn duplicates_skipped(&self) -> usize {
        self.duplicates_skipped
    }

    /// Number of Lawler–Murty partitions explored so far. Every partition
    /// costs one constrained `MinTriang` re-optimization, so this is the
    /// natural work unit for node budgets.
    pub fn nodes_explored(&self) -> usize {
        self.nodes_explored
    }

    /// Number of partitions currently pending in the priority queue.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Advances the enumeration by one result.
    ///
    /// Every call on one `RankedState` must pass the *same* `pre` and
    /// `cost`; the state is meaningless across different graphs or costs.
    pub fn next<K: BagCost + ?Sized>(
        &mut self,
        pre: &Preprocessed,
        cost: &K,
    ) -> Option<RankedTriangulation> {
        if !self.started {
            self.started = true;
            self.push_partition(pre, cost, Constraints::none(), None);
        }
        loop {
            // The demand boundary: between partition pops, never inside a
            // re-optimization, so cancellation is prompt but the emitted
            // prefix stays exact.
            if self.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
                return None;
            }
            let entry = self.queue.pop()?;
            let best = match entry.state {
                NodeState::Solved(best) => best,
                NodeState::Deferred => {
                    // The deferred partition reached the front of the queue:
                    // it must be solved now. Reinserting at its exact cost
                    // with the *original* sequence number reproduces the
                    // unpruned order exactly, ties included, because the
                    // lower bound never exceeds the exact cost.
                    self.nodes_deferred -= 1;
                    self.resolve_entry(pre, cost, entry);
                    continue;
                }
                NodeState::Known => {
                    // An orbit replay reached the front: materialize its
                    // triangulation now. The entry's key is already the
                    // exact cost, so reinserting with the original sequence
                    // number leaves the stream untouched.
                    self.resolve_entry(pre, cost, entry);
                    continue;
                }
            };
            let fill = best.fill_edges(pre.graph());
            // Modulo-symmetry: a result orbit-equivalent to an earlier
            // emission is suppressed, but its partition is still expanded —
            // its children may hold orbit representatives of their own.
            let orbit_new = match &mut self.symmetry {
                SymmetryMode::Modulo(dedup) => dedup.admit_result(&fill),
                _ => true,
            };
            let is_new = self.emitted_fills.insert(fill);
            // The minimal separators of H feed both the partition expansion
            // and the emitted result: compute them once and share.
            let seps_of_h = minimal_separators(&best.graph);
            self.expand(pre, cost, &seps_of_h, &entry.constraints, entry.cost);
            if !is_new {
                // Should not happen (partitions are disjoint); counted so the
                // tests can assert on it, and skipped to preserve soundness.
                self.duplicates_skipped += 1;
                continue;
            }
            // Emitted results track the frontier: a child can only be needed
            // after everything at most as expensive as the incumbent is out.
            // A suppressed orbit duplicate still tightens the incumbent —
            // its cost is the cost of a real (already-emitted) result.
            if self.prune {
                self.incumbent = Some(best.cost);
            }
            if !orbit_new {
                continue;
            }
            let result = RankedTriangulation {
                minimal_separators: seps_of_h,
                triangulation: best.graph,
                bags: best.bags,
                cost: best.cost,
            };
            return Some(result);
        }
    }

    /// Re-optimizes a deferred or replayed entry and reinserts it (at its
    /// exact cost, keeping its sequence number) when its partition is
    /// non-empty.
    fn resolve_entry<K: BagCost + ?Sized>(
        &mut self,
        pre: &Preprocessed,
        cost: &K,
        entry: QueueEntry,
    ) {
        self.nodes_explored += 1;
        let constrained = Constrained::new(cost, &entry.constraints);
        if let Some(best) = min_triangulation_in(pre, &constrained, &mut self.scratch) {
            if entry.constraints.satisfied_by_graph(&best.graph) {
                debug_assert!(
                    best.cost >= entry.cost,
                    "deferral lower bound must be admissible"
                );
                self.record_outcome(&entry.constraints, best.cost);
                self.queue.push(QueueEntry {
                    cost: best.cost,
                    sequence: entry.sequence,
                    state: NodeState::Solved(best),
                    constraints: entry.constraints,
                });
            }
        }
    }

    /// Publishes a feasible subproblem's exact optimum to its orbit, when
    /// sharing is on.
    fn record_outcome(&mut self, constraints: &Constraints, cost: CostValue) {
        if let SymmetryMode::Share(share) = &mut self.symmetry {
            if let Some(key) = share.key_of(constraints) {
                share.put(key, cost);
            }
        }
    }

    fn push_partition<K: BagCost + ?Sized>(
        &mut self,
        pre: &Preprocessed,
        cost: &K,
        constraints: Constraints,
        lower_bound: Option<CostValue>,
    ) {
        if self.prune {
            if let (Some(lb), Some(incumbent)) = (lower_bound, self.incumbent) {
                // Strictly-greater only: a partition whose bound ties the
                // incumbent may hold the next result, so it stays eager.
                if lb > incumbent {
                    self.sequence += 1;
                    self.nodes_deferred += 1;
                    self.queue.push(QueueEntry {
                        cost: lb,
                        sequence: self.sequence,
                        state: NodeState::Deferred,
                        constraints,
                    });
                    return;
                }
            }
        }
        // Orbit sharing: when a sibling's orbit already solved this
        // configuration, enqueue at its exact cost without re-optimizing.
        // The dynamic program runs only if the entry ever reaches the
        // front of the queue, so the emitted stream cannot change.
        let mut share_key = None;
        if let SymmetryMode::Share(share) = &mut self.symmetry {
            share_key = share.key_of(&constraints);
            if let Some(known) = share_key.as_ref().and_then(|k| share.get(k)) {
                share.replays += 1;
                self.sequence += 1;
                self.queue.push(QueueEntry {
                    cost: known,
                    sequence: self.sequence,
                    state: NodeState::Known,
                    constraints,
                });
                return;
            }
        }
        self.nodes_explored += 1;
        let constrained = Constrained::new(cost, &constraints);
        if let Some(best) = min_triangulation_in(pre, &constrained, &mut self.scratch) {
            // Guard against a best solution that silently violates the
            // constraints (line 12 of the algorithm): only non-empty
            // partitions are enqueued.
            if constraints.satisfied_by_graph(&best.graph) {
                if let (SymmetryMode::Share(share), Some(key)) = (&mut self.symmetry, share_key) {
                    share.put(key, best.cost);
                }
                self.sequence += 1;
                self.queue.push(QueueEntry {
                    cost: best.cost,
                    sequence: self.sequence,
                    state: NodeState::Solved(best),
                    constraints,
                });
            }
        }
    }

    fn expand<K: BagCost + ?Sized>(
        &mut self,
        pre: &Preprocessed,
        cost: &K,
        seps_of_h: &[VertexSet],
        constraints: &Constraints,
        parent_cost: CostValue,
    ) {
        // Minimal separators of the emitted triangulation H; those not
        // already forced define the sub-partitions.
        let new_seps: Vec<&VertexSet> = seps_of_h
            .iter()
            .filter(|s| !constraints.include.contains(s))
            .collect();
        let bound_children = self.prune && self.incumbent.is_some();
        // Modulo-symmetry: branch separators in the same orbit under the
        // stabilizer of this node's constraints spawn one child — the
        // dropped cells' triangulations are σ-images of solutions in
        // earlier kept cells. The plan reorders the staircase (any order
        // is a valid partition) so dropped cells sit as early — as large
        // — as possible; its prefixes still range over *all* earlier
        // separators, dropped or not, so kept cells keep their original
        // disjoint solution sets.
        let plan = match &mut self.symmetry {
            SymmetryMode::Modulo(dedup) => dedup.branch_plan(constraints, &new_seps),
            _ => None,
        };
        let order: Vec<(usize, bool)> =
            plan.unwrap_or_else(|| (0..new_seps.len()).map(|i| (i, true)).collect());
        for pos in 0..order.len() {
            let (idx, kept) = order[pos];
            if !kept {
                continue;
            }
            let mut include = constraints.include.clone();
            include.extend(order[..pos].iter().map(|&(k, _)| new_seps[k].clone()));
            let mut exclude = constraints.exclude.clone();
            exclude.push(new_seps[idx].clone());
            // Children are sub-partitions of the parent, so the parent's
            // exact cost lower-bounds them for *any* bag cost; the cost may
            // sharpen that with a bound forced by the committed prefix.
            let lb =
                bound_children.then(|| match cost.include_lower_bound(pre.graph(), &include) {
                    Some(prefix) => parent_cost.max(prefix),
                    None => parent_cost,
                });
            let child = Constraints::new(include, exclude);
            self.push_partition(pre, cost, child, lb);
        }
    }
}

/// Lazy ranked enumerator of the minimal triangulations of a graph.
pub struct RankedEnumerator<'a, K: BagCost + ?Sized> {
    pre: &'a Preprocessed,
    cost: &'a K,
    state: RankedState,
}

impl<'a, K: BagCost + ?Sized> RankedEnumerator<'a, K> {
    /// Creates an enumerator over the preprocessed graph, ranked by `cost`.
    ///
    /// Preprocessing (minimal separators, PMCs, block structure) is shared:
    /// build [`Preprocessed`] once and reuse it across cost functions.
    pub fn new(pre: &'a Preprocessed, cost: &'a K) -> Self {
        RankedEnumerator {
            pre,
            cost,
            state: RankedState::new(),
        }
    }

    /// Turns on incumbent-bounded pruning with an optional heuristic seed;
    /// see [`RankedState::enable_pruning`].
    pub fn with_pruning(mut self, incumbent: Option<CostValue>) -> Self {
        self.state.enable_pruning(incumbent);
        self
    }

    /// Binds a cooperative cancellation flag; see
    /// [`RankedState::bind_cancel`].
    pub fn with_cancel(mut self, flag: CancelFlag) -> Self {
        self.state.bind_cancel(flag);
        self
    }

    /// Turns on orbit-canonical exact-cost sharing; see
    /// [`RankedState::enable_orbit_sharing`].
    pub fn with_orbit_sharing(mut self, ctx: Arc<OrbitContext>) -> Self {
        self.state.enable_orbit_sharing(ctx);
        self
    }

    /// Quotients the stream by the automorphism group; see
    /// [`RankedState::enable_modulo_symmetry`].
    pub fn with_modulo_symmetry(mut self, ctx: Arc<OrbitContext>) -> Self {
        self.state.enable_modulo_symmetry(ctx);
        self
    }

    /// Number of re-optimizations skipped by orbit replay; see
    /// [`RankedState::orbit_replays`].
    pub fn orbit_replays(&self) -> usize {
        self.state.orbit_replays()
    }

    /// Number of branches/results merged into their orbit representative;
    /// see [`RankedState::orbits_merged`].
    pub fn orbits_merged(&self) -> usize {
        self.state.orbits_merged()
    }

    /// Number of re-optimizations currently avoided by pruning; see
    /// [`RankedState::nodes_pruned`].
    pub fn nodes_pruned(&self) -> usize {
        self.state.nodes_pruned()
    }

    /// The current incumbent cost, if pruning holds one.
    pub fn incumbent(&self) -> Option<CostValue> {
        self.state.incumbent()
    }

    /// Bytes of bitset scratch served from the arena; see
    /// [`RankedState::arena_bytes_reused`].
    pub fn arena_bytes_reused(&self) -> usize {
        self.state.arena_bytes_reused()
    }

    /// Number of duplicate results skipped; see
    /// [`RankedState::duplicates_skipped`].
    pub fn duplicates_skipped(&self) -> usize {
        self.state.duplicates_skipped()
    }

    /// Number of Lawler–Murty partitions explored so far; see
    /// [`RankedState::nodes_explored`].
    pub fn nodes_explored(&self) -> usize {
        self.state.nodes_explored()
    }

    /// Number of partitions currently pending in the priority queue.
    pub fn queue_depth(&self) -> usize {
        self.state.queue_depth()
    }
}

impl<K: BagCost + ?Sized> Iterator for RankedEnumerator<'_, K> {
    type Item = RankedTriangulation;

    fn next(&mut self) -> Option<RankedTriangulation> {
        self.state.next(self.pre, self.cost)
    }
}

/// Convenience: the `k` cheapest minimal triangulations of `g` under `cost`
/// (fewer if the graph has fewer minimal triangulations).
pub fn top_k_triangulations<K: BagCost + ?Sized>(
    g: &Graph,
    cost: &K,
    k: usize,
) -> Vec<RankedTriangulation> {
    let pre = Preprocessed::new(g);
    RankedEnumerator::new(&pre, cost).take(k).collect()
}

/// Convenience: all minimal triangulations of `g` by increasing `cost`.
///
/// Only sensible for graphs with manageably many minimal triangulations;
/// prefer driving [`RankedEnumerator`] lazily otherwise.
pub fn all_triangulations_ranked<K: BagCost + ?Sized>(
    g: &Graph,
    cost: &K,
) -> Vec<RankedTriangulation> {
    let pre = Preprocessed::new(g);
    RankedEnumerator::new(&pre, cost).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{FillIn, WeightedWidth, Width, WidthThenFill};
    use mtr_chordal::verify::is_minimal_triangulation;
    use mtr_graph::paper_example_graph;

    #[test]
    fn paper_example_enumeration_by_fill() {
        let g = paper_example_graph();
        let pre = Preprocessed::new(&g);
        let mut enumerator = RankedEnumerator::new(&pre, &FillIn);
        let results: Vec<_> = enumerator.by_ref().collect();
        assert_eq!(
            results.len(),
            2,
            "the paper's example has two minimal triangulations"
        );
        assert_eq!(enumerator.duplicates_skipped(), 0);
        // Ordered by fill: H2 (1 fill edge) before H1 (3 fill edges).
        assert_eq!(results[0].fill_in(&g), 1);
        assert_eq!(results[1].fill_in(&g), 3);
        for r in &results {
            assert!(is_minimal_triangulation(&g, &r.triangulation));
        }
        // The separator sets match Parra–Scheffler: {S2, S3} and {S1, S3}.
        assert_eq!(results[0].minimal_separators.len(), 2);
        assert!(results[0]
            .minimal_separators
            .contains(&VertexSet::from_slice(6, &[0, 1])));
        assert!(results[1]
            .minimal_separators
            .contains(&VertexSet::from_slice(6, &[3, 4, 5])));
    }

    #[test]
    fn paper_example_enumeration_by_weighted_width() {
        // Make w1,w2,w3 cheap and u,v expensive: now H1 (bags {u,w*},{v,w*})
        // costs less than H2 (bags {u,v,wi}), flipping the order.
        let g = paper_example_graph();
        let pre = Preprocessed::new(&g);
        let cost = WeightedWidth::new(vec![10.0, 10.0, 1.0, 0.1, 0.1, 0.1]);
        let results: Vec<_> = RankedEnumerator::new(&pre, &cost).collect();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].fill_in(&g), 3, "H1 should now come first");
        assert!(results[0].cost <= results[1].cost);
    }

    #[test]
    fn costs_are_non_decreasing() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)]);
        let pre = Preprocessed::new(&g);
        for cost in [&Width as &dyn BagCost, &FillIn, &WidthThenFill] {
            let results: Vec<_> = RankedEnumerator::new(&pre, cost).collect();
            assert!(!results.is_empty());
            for w in results.windows(2) {
                assert!(w[0].cost <= w[1].cost, "{} order violated", cost.name());
            }
            for r in &results {
                assert!(is_minimal_triangulation(&g, &r.triangulation));
            }
        }
    }

    #[test]
    fn enumeration_is_complete_on_c5() {
        // C5 has exactly 5 minimal triangulations (the polygon triangulations).
        let c5 = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let pre = Preprocessed::new(&c5);
        let mut e = RankedEnumerator::new(&pre, &FillIn);
        let results: Vec<_> = e.by_ref().collect();
        assert_eq!(results.len(), 5);
        assert_eq!(e.duplicates_skipped(), 0);
        // All have exactly 2 fill edges and width 2.
        for r in &results {
            assert_eq!(r.fill_in(&c5), 2);
            assert_eq!(r.width(), 2);
        }
        // All distinct.
        let fills: HashSet<Vec<(u32, u32)>> = results
            .iter()
            .map(|r| {
                let mut f = c5.fill_edges_of(&r.triangulation);
                f.sort_unstable();
                f
            })
            .collect();
        assert_eq!(fills.len(), 5);
    }

    #[test]
    fn chordal_input_has_single_result() {
        let path = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let results = all_triangulations_ranked(&path, &FillIn);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].triangulation, path);
        assert_eq!(results[0].cost, CostValue::ZERO);
    }

    #[test]
    fn top_k_stops_early() {
        let c6 = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let top2 = top_k_triangulations(&c6, &FillIn, 2);
        assert_eq!(top2.len(), 2);
        let all = all_triangulations_ranked(&c6, &FillIn);
        // C6 has 14 minimal triangulations (polygon triangulations: Catalan(4)).
        assert_eq!(all.len(), 14);
        assert_eq!(top2[0].cost, all[0].cost);
        assert_eq!(top2[1].cost, all[1].cost);
    }

    #[test]
    fn bounded_width_enumeration() {
        // C6: every minimal triangulation has width 2, so a bound of 2 keeps
        // all 14 and a bound of 1 keeps none.
        let c6 = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let pre2 = Preprocessed::new_bounded(&c6, 2);
        let results2: Vec<_> = RankedEnumerator::new(&pre2, &FillIn).collect();
        assert_eq!(results2.len(), 14);
        let pre1 = Preprocessed::new_bounded(&c6, 1);
        let results1: Vec<_> = RankedEnumerator::new(&pre1, &FillIn).collect();
        assert!(results1.is_empty());
    }

    #[test]
    fn pruned_enumeration_matches_unpruned_exactly() {
        let c6 = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let pre = Preprocessed::new(&c6);
        for cost in [&Width as &dyn BagCost, &FillIn, &WidthThenFill] {
            let plain: Vec<_> = RankedEnumerator::new(&pre, cost).collect();
            // Any incumbent seed — even a nonsensically low one — only defers
            // work; the emitted sequence is bit-identical.
            for seed in [None, Some(CostValue::ZERO), Some(CostValue::from_usize(2))] {
                let pruned: Vec<_> = RankedEnumerator::new(&pre, cost)
                    .with_pruning(seed)
                    .collect();
                assert_eq!(pruned.len(), plain.len(), "{}", cost.name());
                for (a, b) in plain.iter().zip(&pruned) {
                    assert_eq!(a.cost, b.cost);
                    assert_eq!(a.triangulation, b.triangulation);
                }
            }
        }
    }

    #[test]
    fn pruning_defers_re_optimizations_for_top_k() {
        let c6 = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let pre = Preprocessed::new(&c6);
        let mut pruned = RankedEnumerator::new(&pre, &FillIn).with_pruning(Some(CostValue::ZERO));
        let first = pruned.next().unwrap();
        let mut plain = RankedEnumerator::new(&pre, &FillIn);
        assert_eq!(plain.next().unwrap().cost, first.cost);
        assert!(
            pruned.nodes_pruned() > 0,
            "children above the incumbent must be deferred"
        );
        assert!(
            pruned.nodes_explored() < plain.nodes_explored(),
            "pruning must avoid eager re-optimizations ({} vs {})",
            pruned.nodes_explored(),
            plain.nodes_explored()
        );
        assert_eq!(pruned.incumbent(), Some(first.cost));
    }

    #[test]
    fn orbit_sharing_matches_plain_exactly() {
        let c6 = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let pre = Preprocessed::new(&c6);
        let ctx = OrbitContext::probe(&c6).expect("C6 has a dihedral group");
        for cost in [&Width as &dyn BagCost, &FillIn, &WidthThenFill] {
            let mut plain = RankedEnumerator::new(&pre, cost);
            let plain_results: Vec<_> = plain.by_ref().collect();
            let mut shared = RankedEnumerator::new(&pre, cost).with_orbit_sharing(ctx.clone());
            let shared_results: Vec<_> = shared.by_ref().collect();
            assert_eq!(shared_results.len(), plain_results.len(), "{}", cost.name());
            for (a, b) in plain_results.iter().zip(&shared_results) {
                assert_eq!(a.cost, b.cost, "{}", cost.name());
                assert_eq!(a.triangulation, b.triangulation, "{}", cost.name());
            }
            assert_eq!(
                shared.nodes_pruned(),
                0,
                "sharing must not count as pruning"
            );
        }
    }

    #[test]
    fn orbit_sharing_replays_on_grid() {
        // The 3×3 grid (dihedral group of order 8) generates cousin
        // partitions with orbit-equivalent constraint configurations; the
        // replayed ones skip their eager re-optimization, which shows up as
        // fewer explored nodes under top-k demand.
        let mut edges = vec![];
        let idx = |r: u32, c: u32| r * 3 + c;
        for r in 0..3u32 {
            for c in 0..3u32 {
                if c + 1 < 3 {
                    edges.push((idx(r, c), idx(r, c + 1)));
                }
                if r + 1 < 3 {
                    edges.push((idx(r, c), idx(r + 1, c)));
                }
            }
        }
        let grid = Graph::from_edges(9, &edges);
        let pre = Preprocessed::new(&grid);
        let ctx = OrbitContext::probe(&grid).expect("grid3 has a dihedral group");
        assert_eq!(ctx.group_order(), 8);
        let mut plain = RankedEnumerator::new(&pre, &FillIn);
        let plain_top: Vec<_> = plain.by_ref().take(10).collect();
        let mut shared = RankedEnumerator::new(&pre, &FillIn).with_orbit_sharing(ctx);
        let shared_top: Vec<_> = shared.by_ref().take(10).collect();
        assert_eq!(plain_top.len(), shared_top.len());
        for (a, b) in plain_top.iter().zip(&shared_top) {
            assert_eq!(a.cost, b.cost);
            assert_eq!(a.triangulation, b.triangulation);
        }
        assert!(
            shared.orbit_replays() > 0,
            "grid cousins must hit shared orbits"
        );
        assert!(
            shared.nodes_explored() < plain.nodes_explored(),
            "replayed partitions must skip their eager re-optimization ({} vs {})",
            shared.nodes_explored(),
            plain.nodes_explored()
        );
    }

    #[test]
    fn orbit_sharing_composes_with_pruning() {
        let c6 = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let pre = Preprocessed::new(&c6);
        let ctx = OrbitContext::probe(&c6).unwrap();
        let plain: Vec<_> = RankedEnumerator::new(&pre, &FillIn).collect();
        let both: Vec<_> = RankedEnumerator::new(&pre, &FillIn)
            .with_pruning(Some(CostValue::ZERO))
            .with_orbit_sharing(ctx)
            .collect();
        assert_eq!(plain.len(), both.len());
        for (a, b) in plain.iter().zip(&both) {
            assert_eq!(a.cost, b.cost);
            assert_eq!(a.triangulation, b.triangulation);
        }
    }

    #[test]
    fn modulo_symmetry_on_c6_quotients_the_stream() {
        // C6's 14 minimal triangulations fall into 3 orbits under the
        // dihedral group of order 12 (triangulations of the hexagon up to
        // rotation/reflection: 14 = 6 + 6 + 2 → orbits of the "fan",
        // "zigzag", and "center-free" shapes).
        let c6 = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let pre = Preprocessed::new(&c6);
        let ctx = OrbitContext::probe(&c6).unwrap();
        let all: Vec<_> = RankedEnumerator::new(&pre, &FillIn).collect();
        assert_eq!(all.len(), 14);
        let mut modulo = RankedEnumerator::new(&pre, &FillIn).with_modulo_symmetry(ctx);
        let reps: Vec<_> = modulo.by_ref().collect();
        assert_eq!(reps.len(), 3, "C6 triangulations form 3 orbits");
        assert!(modulo.orbits_merged() > 0);
        // Each representative is cheapest in its orbit ⇒ rank-r rep costs
        // no more than the rank-r full result.
        for (r, rep) in reps.iter().enumerate() {
            assert!(rep.cost <= all[r].cost);
        }
    }

    #[test]
    fn disconnected_graph_enumeration() {
        // C4 plus a disjoint edge: the C4 has 2 minimal triangulations, the
        // edge is already chordal, so the whole graph has 2.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 0), (4, 5)]);
        let results = all_triangulations_ranked(&g, &FillIn);
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(is_minimal_triangulation(&g, &r.triangulation));
            assert_eq!(r.fill_in(&g), 1);
        }
    }
}
