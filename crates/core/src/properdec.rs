//! Ranked enumeration of proper tree decompositions (Proposition 6.1).
//!
//! A tree decomposition is *proper* when no other decomposition strictly
//! subsumes it (splitting a bag or dropping one); Carmeli et al. show these
//! are exactly the clique trees of the minimal triangulations. Because a
//! bag cost gives every clique tree of one triangulation the same cost, the
//! ranked enumeration of proper tree decompositions reduces to the ranked
//! enumeration of minimal triangulations, emitting the clique trees of each
//! triangulation before moving to the next one.

use crate::cost::{BagCost, CostValue};
use crate::mintriang::Preprocessed;
use crate::ranked::{RankedEnumerator, RankedTriangulation};
use mtr_chordal::spanning::clique_trees_from_cliques;
use mtr_chordal::treedec::TreeDecomposition;
use mtr_graph::Graph;

/// One proper tree decomposition, paired with the triangulation it is a
/// clique tree of and the cost shared by all clique trees of that
/// triangulation.
#[derive(Clone, Debug)]
pub struct RankedDecomposition {
    /// The proper tree decomposition (a clique tree of `triangulation`).
    pub decomposition: TreeDecomposition,
    /// The minimal triangulation this decomposition belongs to.
    pub triangulation: Graph,
    /// The cost of the triangulation (and of every one of its clique trees).
    pub cost: CostValue,
}

/// Lazy ranked enumerator of proper tree decompositions.
pub struct ProperDecompositionEnumerator<'a, K: BagCost + ?Sized> {
    inner: RankedEnumerator<'a, K>,
    /// How many clique trees to emit per triangulation (`None` = all —
    /// beware, this can be exponential in the number of bags).
    per_triangulation: Option<usize>,
    pending: Vec<RankedDecomposition>,
}

impl<'a, K: BagCost + ?Sized> ProperDecompositionEnumerator<'a, K> {
    /// Creates the enumerator. `per_triangulation` caps how many clique
    /// trees of each minimal triangulation are emitted; `Some(1)` gives one
    /// canonical proper tree decomposition per triangulation, `None` emits
    /// every clique tree.
    pub fn new(pre: &'a Preprocessed, cost: &'a K, per_triangulation: Option<usize>) -> Self {
        ProperDecompositionEnumerator {
            inner: RankedEnumerator::new(pre, cost),
            per_triangulation,
            pending: Vec::new(),
        }
    }

    fn refill(&mut self, item: RankedTriangulation) {
        let limit = self.per_triangulation.unwrap_or(usize::MAX);
        let trees = clique_trees_from_cliques(&item.triangulation, item.bags.clone(), limit);
        // Emit in a stable order; reverse so `pop` yields them first-to-last.
        self.pending = trees
            .into_iter()
            .map(|decomposition| RankedDecomposition {
                decomposition,
                triangulation: item.triangulation.clone(),
                cost: item.cost,
            })
            .collect();
        self.pending.reverse();
    }
}

impl<K: BagCost + ?Sized> Iterator for ProperDecompositionEnumerator<'_, K> {
    type Item = RankedDecomposition;

    fn next(&mut self) -> Option<RankedDecomposition> {
        loop {
            if let Some(d) = self.pending.pop() {
                return Some(d);
            }
            let item = self.inner.next()?;
            self.refill(item);
        }
    }
}

/// Convenience: the `k` cheapest proper tree decompositions of `g` under
/// `cost` (counting every clique tree of every triangulation).
pub fn top_k_proper_decompositions<K: BagCost + ?Sized>(
    g: &Graph,
    cost: &K,
    k: usize,
) -> Vec<RankedDecomposition> {
    let pre = Preprocessed::new(g);
    ProperDecompositionEnumerator::new(&pre, cost, None)
        .take(k)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{FillIn, Width};
    use mtr_graph::paper_example_graph;

    #[test]
    fn paper_example_proper_decompositions() {
        let g = paper_example_graph();
        let pre = Preprocessed::new(&g);
        // One clique tree per triangulation: exactly 2 results, ordered by fill.
        let one_each: Vec<_> = ProperDecompositionEnumerator::new(&pre, &FillIn, Some(1)).collect();
        assert_eq!(one_each.len(), 2);
        assert!(one_each[0].cost <= one_each[1].cost);
        for d in &one_each {
            assert!(d.decomposition.is_valid(&g));
            assert!(d.decomposition.is_clique_tree_of(&d.triangulation));
        }
        // All clique trees: H2 (the fill-1 triangulation, bags {u,v,wi} sharing
        // {u,v}) has 3 clique trees; H1 has 2 (the middle bag arrangement), so
        // in total more than 2 proper decompositions exist.
        let all: Vec<_> = ProperDecompositionEnumerator::new(&pre, &FillIn, None).collect();
        assert!(
            all.len() > 2,
            "expected several clique trees, got {}",
            all.len()
        );
        for w in all.windows(2) {
            assert!(w[0].cost <= w[1].cost);
        }
    }

    #[test]
    fn decompositions_are_valid_and_proper_costed() {
        let c6 = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let pre = Preprocessed::new(&c6);
        let results: Vec<_> = ProperDecompositionEnumerator::new(&pre, &Width, Some(2))
            .take(10)
            .collect();
        assert!(!results.is_empty());
        for d in &results {
            assert!(d.decomposition.is_valid(&c6));
            assert_eq!(
                CostValue::from_usize(d.decomposition.width()),
                d.cost,
                "every clique tree inherits the triangulation's width"
            );
        }
    }

    #[test]
    fn top_k_convenience() {
        let g = paper_example_graph();
        let top = top_k_proper_decompositions(&g, &FillIn, 3);
        assert_eq!(top.len(), 3);
        assert!(top[0].cost <= top[2].cost);
    }
}
