//! Symmetry-aware search-space collapse for the ranked enumeration.
//!
//! The Lawler–Murty search re-optimizes one constrained subproblem per
//! partition. When the input graph has non-trivial automorphisms, many of
//! those subproblems are isomorphic: an automorphism `σ` maps the
//! partition constrained by `(I, X)` bijectively onto the partition
//! constrained by `(σI, σX)`, preserving every label-invariant cost
//! ([`crate::BagCost::label_invariant`]). This module exploits that in two
//! ways, selected by [`SymmetryPolicy`]:
//!
//! * **Full mode with orbit sharing** — subproblems are keyed by the
//!   canonical (lexicographically minimal) representative of their
//!   constraint configuration's orbit. When a sibling partition maps into
//!   an orbit whose optimum is already known, the engine enqueues it at
//!   that *exact* cost without re-running the dynamic program; the DP only
//!   runs if the partition ever reaches the front of the queue — the same
//!   deferral discipline as incumbent-bounded pruning, so the emitted
//!   stream is bit-for-bit identical to the unshared one, ties included.
//! * **`ModuloSymmetry`** — the stream itself is quotiented, by pruning
//!   branch generation: when a node is expanded, its branch separators are
//!   grouped into orbits under the *stabilizer* of the node's committed
//!   constraints, and each orbit spawns one child. Dropping the cell of
//!   `S_j = σ(S_i)` (with `i < j` and `σ` fixing both constraint
//!   families) is sound because any solution `T` of that cell maps to
//!   `σ⁻¹T` — same cost, same orbit — which avoids `S_i` and therefore
//!   lives in a cell of index `≤ i`; descending induction covers chains
//!   of drops, so the kept subtrees stay orbit-complete. A result whose
//!   fill-edge set is orbit-equivalent to an earlier emission is also
//!   suppressed (orbit-mates can still surface inside one kept cell). The
//!   output is one cheapest representative per automorphism-orbit of
//!   minimal triangulations.
//!
//! Orbits are those of the *discovered* group (see
//! [`mtr_graph::AutGroup`]): a subgroup merges fewer orbits but is always
//! sound. Canonicalization closes the orbit of the object itself (a
//! constraint family, a fill set) under the generators — bounded by the
//! orbit size, not the group order — and is capped; past the cap a
//! subproblem simply opts out of sharing/merging.

use crate::cost::{Constraints, CostValue};
use mtr_graph::{Graph, Vertex, VertexSet};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Cap on the breadth-first orbit closure of one constraint configuration
/// or fill set. Orbits of the configurations that arise in practice have
/// at most group-order size (8–24 on the symmetric benchmark instances);
/// a configuration whose orbit exceeds the cap is treated as unshareable,
/// which is always sound.
const ORBIT_CLOSURE_CAP: usize = 512;

/// Cap on materializing the discovered group's element list at probe
/// time. Stabilizer computations filter the element list when it fits
/// (the exact stabilizer) and fall back to filtering the generators
/// otherwise (a subgroup of it — fewer merges, still sound). The
/// symmetric instances that matter here have group orders 8–48; the cap
/// only bounds the one-time probe work on combinatorially huge groups.
const GROUP_ELEMENT_CAP: usize = 512;

/// How an enumeration session treats the automorphism group of its input.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SymmetryPolicy {
    /// Enumerate every minimal triangulation (the default). When the
    /// discovered automorphism group is non-trivial and the cost is
    /// label-invariant, orbit-equivalent subproblems share their exact
    /// optimum cost — the output is unchanged, bit for bit; only
    /// re-optimizations are avoided.
    #[default]
    Full,
    /// Enumerate every minimal triangulation and skip the automorphism
    /// probe entirely (measurement/debugging baseline).
    Off,
    /// Emit one cheapest representative per automorphism-orbit of minimal
    /// triangulations, pruning orbit-duplicate branches during the search.
    /// Requires a label-invariant cost; otherwise the session silently
    /// degrades to `Full` (a non-invariant cost can rank orbit members
    /// differently, so quotienting would be lossy).
    ModuloSymmetry,
}

/// Canonical form of one Lawler–Murty constraint configuration: the
/// sorted include and exclude families of the lexicographically smallest
/// orbit member.
type ConfigKey = (Vec<VertexSet>, Vec<VertexSet>);

/// The probed symmetry context of one enumeration session (or one atom of
/// a factorized session): the discovered generators plus summary figures
/// for the stats surface.
#[derive(Debug)]
pub struct OrbitContext {
    generators: Vec<Vec<Vertex>>,
    /// The full element list (identity excluded) when the group order
    /// fits [`GROUP_ELEMENT_CAP`]; `None` for huge groups.
    elements: Option<Vec<Vec<Vertex>>>,
    group_order: u128,
    orbit_count: usize,
}

impl OrbitContext {
    /// Probes the discovered automorphism group of `g`. Returns `None`
    /// when the group is trivial — there is nothing to collapse, and the
    /// engines then run exactly as without the probe.
    pub fn probe(g: &Graph) -> Option<Arc<OrbitContext>> {
        let aut = g.automorphisms();
        if aut.is_trivial() {
            return None;
        }
        let elements = aut.elements(GROUP_ELEMENT_CAP).map(|els| {
            els.into_iter()
                .filter(|p| p.iter().enumerate().any(|(i, &v)| v as usize != i))
                .collect()
        });
        Some(Arc::new(OrbitContext {
            generators: aut.generators().to_vec(),
            elements,
            group_order: aut.order(),
            orbit_count: aut.orbit_count(),
        }))
    }

    /// Order of the discovered group (saturating `u128`).
    pub fn group_order(&self) -> u128 {
        self.group_order
    }

    /// Number of vertex orbits of the discovered group.
    pub fn orbit_count(&self) -> usize {
        self.orbit_count
    }

    fn apply_to_set(sigma: &[Vertex], s: &VertexSet) -> VertexSet {
        VertexSet::from_iter(s.universe(), s.iter().map(|v| sigma[v as usize]))
    }

    /// Canonical representative of the orbit of `(include, exclude)`:
    /// the lexicographic minimum of the configuration's image over the
    /// materialized element list. `None` for huge groups — past
    /// [`GROUP_ELEMENT_CAP`] a breadth-first closure under the generators
    /// almost never fits any workable cap, so sharing would pay the full
    /// closure cost per node and collapse nothing; those sessions run
    /// unshared on the probe alone.
    fn canonical_config(&self, c: &Constraints) -> Option<ConfigKey> {
        let elements = self.elements.as_ref()?;
        let mut include = c.include.clone();
        include.sort_unstable();
        let mut exclude = c.exclude.clone();
        exclude.sort_unstable();
        let start: ConfigKey = (include, exclude);
        let mut best = start.clone();
        for sigma in elements {
            let mut img_i: Vec<VertexSet> = start
                .0
                .iter()
                .map(|s| Self::apply_to_set(sigma, s))
                .collect();
            img_i.sort_unstable();
            if img_i > best.0 {
                continue;
            }
            let mut img_x: Vec<VertexSet> = start
                .1
                .iter()
                .map(|s| Self::apply_to_set(sigma, s))
                .collect();
            img_x.sort_unstable();
            let img = (img_i, img_x);
            if img < best {
                best = img;
            }
        }
        Some(best)
    }

    /// Canonical representative of the orbit of a fill-edge set. `None`
    /// when the closure exceeds the cap.
    fn canonical_fill(&self, fill: &[(u32, u32)]) -> Option<Vec<(u32, u32)>> {
        let mut start: Vec<(u32, u32)> = fill.to_vec();
        start.sort_unstable();
        // With the element list materialized the orbit minimum is a
        // single pass over the elements — no closure, no hashing. This
        // is the hot shape (it runs once per solved node in modulo
        // mode), so images are packed into edge bitsets: any fixed total
        // order yields a canonical representative, and word-wise bitset
        // comparison avoids sorting each image. The winning bitset is
        // decoded back to a pair list at the end.
        if let Some(elements) = &self.elements {
            let n = elements.first().map_or(0, Vec::len);
            let words = (n * n).div_ceil(64);
            let pack = |edges: &[(u32, u32)], sigma: Option<&[Vertex]>, out: &mut Vec<u64>| {
                out.clear();
                out.resize(words, 0);
                for &(u, v) in edges {
                    let (a, b) = match sigma {
                        Some(p) => (p[u as usize], p[v as usize]),
                        None => (u, v),
                    };
                    let idx = a.min(b) as usize * n + a.max(b) as usize;
                    out[idx / 64] |= 1u64 << (idx % 64);
                }
            };
            let mut best = Vec::new();
            pack(&start, None, &mut best);
            let mut img = Vec::new();
            for sigma in elements {
                pack(&start, Some(sigma), &mut img);
                if img < best {
                    std::mem::swap(&mut best, &mut img);
                }
            }
            let mut decoded: Vec<(u32, u32)> = Vec::with_capacity(start.len());
            for (w, bits) in best.iter().enumerate() {
                let mut bits = *bits;
                while bits != 0 {
                    let idx = w * 64 + bits.trailing_zeros() as usize;
                    decoded.push(((idx / n) as u32, (idx % n) as u32));
                    bits &= bits - 1;
                }
            }
            return Some(decoded);
        }
        let mut best = start.clone();
        let mut seen: HashSet<Vec<(u32, u32)>> = HashSet::new();
        seen.insert(start.clone());
        let mut frontier = vec![start];
        while let Some(cur) = frontier.pop() {
            for sigma in &self.generators {
                let mut img: Vec<(u32, u32)> = cur
                    .iter()
                    .map(|&(u, v)| {
                        let (a, b) = (sigma[u as usize], sigma[v as usize]);
                        (a.min(b), a.max(b))
                    })
                    .collect();
                img.sort_unstable();
                if !seen.contains(&img) {
                    if seen.len() >= ORBIT_CLOSURE_CAP {
                        return None;
                    }
                    if img < best {
                        best = img.clone();
                    }
                    seen.insert(img.clone());
                    frontier.push(img);
                }
            }
        }
        Some(best)
    }

    /// The (non-identity elements of the) stabilizer of a constraint
    /// configuration: the group elements fixing both constraint families
    /// setwise. Filters the materialized element list when the group was
    /// small enough to enumerate — the exact stabilizer — and falls back
    /// to filtering the generators on huge groups, which yields a
    /// subgroup of it: fewer merges, still sound.
    ///
    /// A bijection fixes a finite family setwise iff every member's image
    /// is a member, so each candidate is checked by hash membership and
    /// rejected at its first miss — this runs once per expansion on the
    /// modulo hot path, and almost every element fails on the first set.
    fn stabilizer(&self, c: &Constraints) -> Vec<&Vec<Vertex>> {
        let include: HashSet<&VertexSet> = c.include.iter().collect();
        let exclude: HashSet<&VertexSet> = c.exclude.iter().collect();
        self.elements
            .as_deref()
            .unwrap_or(&self.generators)
            .iter()
            .filter(|sigma| {
                c.include
                    .iter()
                    .all(|s| include.contains(&Self::apply_to_set(sigma, s)))
                    && c.exclude
                        .iter()
                        .all(|s| exclude.contains(&Self::apply_to_set(sigma, s)))
            })
            .collect()
    }
}

/// Exact-cost sharing across orbit-equivalent subproblems (full mode).
#[derive(Debug)]
pub(crate) struct OrbitShare {
    ctx: Arc<OrbitContext>,
    solved: HashMap<ConfigKey, CostValue>,
    /// Children enqueued at a sibling orbit's exact cost instead of being
    /// re-optimized eagerly (cumulative).
    pub(crate) replays: usize,
}

impl OrbitShare {
    pub(crate) fn new(ctx: Arc<OrbitContext>) -> Self {
        OrbitShare {
            ctx,
            solved: HashMap::new(),
            replays: 0,
        }
    }

    /// The canonical key of a configuration, when its orbit fits the cap.
    pub(crate) fn key_of(&self, c: &Constraints) -> Option<ConfigKey> {
        self.ctx.canonical_config(c)
    }

    /// Known exact optimum of the orbit, if any sibling recorded one.
    pub(crate) fn get(&self, key: &ConfigKey) -> Option<CostValue> {
        self.solved.get(key).copied()
    }

    /// Records a feasible subproblem's exact optimum for its whole orbit.
    /// Only feasible outcomes are recorded: treating "sibling was empty"
    /// as transferable would couple the output to the guard's tie-breaks,
    /// while an exact cost transfers by the label-invariance argument.
    pub(crate) fn put(&mut self, key: ConfigKey, cost: CostValue) {
        self.solved.entry(key).or_insert(cost);
    }
}

/// Order-independent hash of a constraint configuration's two families,
/// used to memoize symmetry-dead nodes. A collision merely treats an
/// alive node as dead — fewer merges, never unsoundness.
fn family_hash<'a>(
    include: impl Iterator<Item = &'a VertexSet>,
    exclude: impl Iterator<Item = &'a VertexSet>,
) -> u64 {
    let mut inc: Vec<&VertexSet> = include.collect();
    inc.sort_unstable();
    let mut exc: Vec<&VertexSet> = exclude.collect();
    exc.sort_unstable();
    let mut h = DefaultHasher::new();
    for s in inc {
        s.hash(&mut h);
    }
    // Family separator, so include/exclude splits cannot alias.
    u64::MAX.hash(&mut h);
    for s in exc {
        s.hash(&mut h);
    }
    h.finish()
}

/// Orbit-quotient bookkeeping for [`SymmetryPolicy::ModuloSymmetry`].
#[derive(Debug)]
pub(crate) struct ModuloDedup {
    ctx: Arc<OrbitContext>,
    emitted: HashSet<Vec<(u32, u32)>>,
    /// Family hashes of nodes known (or inherited) to have an empty
    /// stabilizer. Committed constraints only accumulate along a branch,
    /// so once the stabilizer dies the whole subtree below is treated as
    /// dead and skips the per-expansion element filter. This is a
    /// heuristic under-approximation — a descendant's stabilizer can in
    /// principle revive when a new separator completes a symmetric
    /// family — and therefore only ever costs merges, never soundness.
    dead: HashSet<u64>,
    /// Sibling branches merged into their stabilizer-orbit representative
    /// plus results suppressed as orbit duplicates (cumulative).
    pub(crate) merged: usize,
}

impl ModuloDedup {
    pub(crate) fn new(ctx: Arc<OrbitContext>) -> Self {
        ModuloDedup {
            ctx,
            emitted: HashSet::new(),
            dead: HashSet::new(),
            merged: 0,
        }
    }

    /// Records every child of a symmetry-dead expansion as dead. The
    /// children here must mirror the natural-order staircase the caller
    /// generates when no plan is returned: child `i` includes
    /// `seps[..i]` and excludes `seps[i]`.
    fn mark_children_dead(&mut self, parent: &Constraints, seps: &[&VertexSet]) {
        for i in 0..seps.len() {
            let include = parent.include.iter().chain(seps[..i].iter().copied());
            let exclude = parent.exclude.iter().chain(std::iter::once(seps[i]));
            self.dead.insert(family_hash(include, exclude));
        }
    }

    /// Branch plan for one node expansion: the separators reordered so
    /// that each stabilizer orbit's members are consecutive, with only
    /// the orbit representative marked `true` (spawned). `None` when
    /// nothing can merge (fewer than two separators, or an empty
    /// stabilizer) — the caller then expands in natural order.
    ///
    /// Two choices make the drops *matter*, not just be sound:
    ///
    /// * The Lawler–Murty cell structure is valid for any separator
    ///   order, and cell sizes shrink along the staircase (later cells
    ///   carry longer include prefixes). Placing orbit-mates right after
    ///   their representative puts the dropped cells as early — as
    ///   *large* — as the soundness argument allows.
    /// * The staircase prefixes still range over dropped separators, so
    ///   the kept cells keep their exact (mutually disjoint) solution
    ///   sets; dropping a cell removes its whole subtree from the search.
    pub(crate) fn branch_plan(
        &mut self,
        parent: &Constraints,
        seps: &[&VertexSet],
    ) -> Option<Vec<(usize, bool)>> {
        if seps.is_empty() {
            return None;
        }
        let parent_dead = self
            .dead
            .contains(&family_hash(parent.include.iter(), parent.exclude.iter()));
        let stab = if parent_dead {
            Vec::new()
        } else {
            self.ctx.stabilizer(parent)
        };
        if stab.is_empty() {
            self.mark_children_dead(parent, seps);
            return None;
        }
        if seps.len() < 2 {
            return None;
        }
        let mut plan = Vec::with_capacity(seps.len());
        let mut visited = vec![false; seps.len()];
        for j in 0..seps.len() {
            if visited[j] {
                continue;
            }
            visited[j] = true;
            plan.push((j, true));
            // Orbit closure of the representative under the stabilizer; a
            // capped closure stops early, merging fewer siblings (sound).
            let mut orbit: HashSet<VertexSet> = HashSet::new();
            orbit.insert(seps[j].clone());
            let mut frontier = vec![seps[j].clone()];
            while let Some(cur) = frontier.pop() {
                for sigma in &stab {
                    let img = OrbitContext::apply_to_set(sigma, &cur);
                    if !orbit.contains(&img) {
                        if orbit.len() >= ORBIT_CLOSURE_CAP {
                            frontier.clear();
                            break;
                        }
                        orbit.insert(img.clone());
                        frontier.push(img);
                    }
                }
            }
            for k in j + 1..seps.len() {
                if !visited[k] && orbit.contains(seps[k]) {
                    visited[k] = true;
                    plan.push((k, false));
                    self.merged += 1;
                }
            }
        }
        Some(plan)
    }

    /// Whether a solved result should be emitted: false when a result
    /// with an orbit-equivalent fill set was already emitted.
    pub(crate) fn admit_result(&mut self, fill: &[(u32, u32)]) -> bool {
        match self.ctx.canonical_fill(fill) {
            None => true,
            Some(key) => {
                if self.emitted.insert(key) {
                    true
                } else {
                    self.merged += 1;
                    false
                }
            }
        }
    }
}

/// The symmetry machinery of one engine instance.
#[derive(Debug, Default)]
pub(crate) enum SymmetryMode {
    /// No probe or trivial group: zero overhead on the hot path.
    #[default]
    Off,
    /// Full stream with orbit-canonical exact-cost sharing.
    Share(OrbitShare),
    /// One representative per orbit.
    Modulo(ModuloDedup),
}

impl SymmetryMode {
    pub(crate) fn orbit_replays(&self) -> usize {
        match self {
            SymmetryMode::Share(share) => share.replays,
            _ => 0,
        }
    }

    pub(crate) fn orbits_merged(&self) -> usize {
        match self {
            SymmetryMode::Modulo(dedup) => dedup.merged,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtr_graph::Graph;

    fn c6() -> Graph {
        Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)])
    }

    #[test]
    fn probe_trivial_group_is_none() {
        let asym = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (1, 5), (2, 5)]);
        assert!(OrbitContext::probe(&asym).is_none());
        let ctx = OrbitContext::probe(&c6()).expect("C6 is symmetric");
        assert_eq!(ctx.group_order(), 12);
        assert_eq!(ctx.orbit_count(), 1);
    }

    #[test]
    fn canonical_config_is_orbit_invariant() {
        let g = c6();
        let ctx = OrbitContext::probe(&g).unwrap();
        let aut = g.automorphisms();
        let elements = aut.elements(64).expect("order 12");
        let base = Constraints::new(
            vec![VertexSet::from_slice(6, &[0, 2])],
            vec![VertexSet::from_slice(6, &[1, 3])],
        );
        let key = ctx.canonical_config(&base).expect("small orbit");
        for sigma in &elements {
            let image = Constraints::new(
                vec![OrbitContext::apply_to_set(sigma, &base.include[0])],
                vec![OrbitContext::apply_to_set(sigma, &base.exclude[0])],
            );
            assert_eq!(ctx.canonical_config(&image).unwrap(), key);
        }
        // A configuration in a different orbit keys differently.
        let other = Constraints::new(vec![VertexSet::from_slice(6, &[0, 3])], vec![]);
        assert_ne!(ctx.canonical_config(&other).unwrap(), key);
    }

    #[test]
    fn canonical_fill_is_orbit_invariant() {
        let g = c6();
        let ctx = OrbitContext::probe(&g).unwrap();
        let elements = g.automorphisms().elements(64).unwrap();
        let fill: Vec<(u32, u32)> = vec![(0, 2), (0, 4)];
        let key = ctx.canonical_fill(&fill).unwrap();
        for sigma in &elements {
            let image: Vec<(u32, u32)> = fill
                .iter()
                .map(|&(u, v)| {
                    let (a, b) = (sigma[u as usize], sigma[v as usize]);
                    (a.min(b), a.max(b))
                })
                .collect();
            assert_eq!(ctx.canonical_fill(&image).unwrap(), key);
        }
    }

    #[test]
    fn share_and_dedup_bookkeeping() {
        let ctx = OrbitContext::probe(&c6()).unwrap();
        let mut share = OrbitShare::new(ctx.clone());
        let c = Constraints::new(vec![VertexSet::from_slice(6, &[1, 3])], vec![]);
        let key = share.key_of(&c).unwrap();
        assert!(share.get(&key).is_none());
        share.put(key.clone(), CostValue::from_usize(2));
        // A rotated sibling sees the recorded cost.
        let rotated = Constraints::new(vec![VertexSet::from_slice(6, &[2, 4])], vec![]);
        let rkey = share.key_of(&rotated).unwrap();
        assert_eq!(share.get(&rkey), Some(CostValue::from_usize(2)));

        let mut dedup = ModuloDedup::new(ctx);
        // At the root (empty constraints) the stabilizer is the whole
        // group: the two rotated separators are siblings in one orbit and
        // spawn one child.
        let root = Constraints::new(vec![], vec![]);
        let s13 = VertexSet::from_slice(6, &[1, 3]);
        let s24 = VertexSet::from_slice(6, &[2, 4]);
        let plan = dedup.branch_plan(&root, &[&s13, &s24]);
        assert_eq!(
            plan,
            Some(vec![(0, true), (1, false)]),
            "same stabilizer orbit must merge"
        );
        assert_eq!(dedup.merged, 1);
        assert!(dedup.admit_result(&[(0, 2)]));
        assert!(!dedup.admit_result(&[(1, 3)]), "rotated fill must merge");
    }

    #[test]
    fn stabilizer_shrinks_with_committed_constraints() {
        let g = c6();
        let ctx = OrbitContext::probe(&g).unwrap();
        let s13 = VertexSet::from_slice(6, &[1, 3]);
        let s35 = VertexSet::from_slice(6, &[3, 5]);
        // Committing {0,2} kills the rotations; the surviving stabilizer
        // is the reflection through vertex 1, which cannot reach {1,3}
        // from {3,5} — both siblings must survive.
        let node = Constraints::new(vec![VertexSet::from_slice(6, &[0, 2])], vec![]);
        let mut dedup = ModuloDedup::new(ctx.clone());
        assert_eq!(
            dedup.branch_plan(&node, &[&s13, &s35]),
            Some(vec![(0, true), (1, true)]),
            "separators split by the stabilizer must both survive"
        );
        assert_eq!(dedup.merged, 0);
        // Whereas {1,5} ↔ {1,3} under that reflection (1 fixed, 0↔2,
        // 5↔3): one child.
        let s15 = VertexSet::from_slice(6, &[1, 5]);
        assert_eq!(
            dedup.branch_plan(&node, &[&s15, &s13]),
            Some(vec![(0, true), (1, false)])
        );
        assert_eq!(dedup.merged, 1);
    }
}
