//! Baseline enumerators the paper compares `RankedTriang` against.
//!
//! The paper's experiments compare against the enumerator of Carmeli, Kenig
//! and Kimelfeld (PODS 2017), "CKK": a *complete* enumeration of all minimal
//! triangulations with incremental-polynomial-time guarantees but **no order
//! guarantee**, driven by a black-box minimal triangulator (LB-Triang).
//!
//! Our stand-in, [`CkkEnumerator`], keeps those characteristics: it is
//! complete, unranked, and produces its first answers essentially instantly
//! (LB-Triang on the input ordering). It exploits the same Parra–Scheffler
//! correspondence CKK builds on — minimal triangulations are the maximal
//! independent sets of the separator crossing graph — and enumerates those
//! maximal independent sets with the classic Johnson–Yannakakis–
//! Papadimitriou successor scheme. The separator graph is built lazily on
//! the first call that needs it, so the time-to-first-result stays tiny,
//! mirroring the behaviour the paper reports for CKK.
//!
//! A second, heuristic-only baseline ([`LbTriangSampler`]) produces minimal
//! triangulations from randomized LB-Triang orderings with zero
//! initialization and no completeness guarantee; it is used for ablations on
//! graphs where the separator structure is intractable.

use crate::cost::CostValue;
use mtr_chordal::cliques::maximal_cliques_chordal;
use mtr_chordal::lbtriang::lb_triang;
use mtr_graph::{Graph, Vertex, VertexSet};
use mtr_separators::crossing::SeparatorGraph;
use mtr_separators::enumerate::minimal_separators;
use std::collections::{HashSet, VecDeque};

/// One triangulation produced by a baseline enumerator.
#[derive(Clone, Debug)]
pub struct BaselineResult {
    /// The minimal triangulation.
    pub triangulation: Graph,
    /// Its maximal cliques.
    pub bags: Vec<VertexSet>,
    /// Width of the triangulation.
    pub width: usize,
    /// Fill-in relative to the input graph.
    pub fill_in: usize,
}

impl BaselineResult {
    fn from_graph(g: &Graph, h: Graph) -> Self {
        let bags = maximal_cliques_chordal(&h).expect("baseline results must be chordal");
        let width = bags
            .iter()
            .map(|b| b.len())
            .max()
            .unwrap_or(1)
            .saturating_sub(1);
        let fill_in = h.m() - g.m();
        BaselineResult {
            triangulation: h,
            bags,
            width,
            fill_in,
        }
    }

    /// Evaluates an arbitrary bag cost on this result (used by the
    /// experiment harness to compare quality against the ranked enumerator).
    pub fn evaluate<K: crate::cost::BagCost + ?Sized>(&self, g: &Graph, cost: &K) -> CostValue {
        cost.cost_of_bags(g, &g.vertex_set(), &self.bags)
    }
}

/// Complete, unranked enumerator of minimal triangulations ("CKK" stand-in).
pub struct CkkEnumerator<'a> {
    graph: &'a Graph,
    /// Lazily built separator graph.
    separator_graph: Option<SeparatorGraph>,
    /// Queue of maximal independent sets (as separator-index sets) to emit.
    queue: VecDeque<VertexSet>,
    /// All maximal independent sets ever enqueued.
    seen: HashSet<VertexSet>,
    /// The first result (from LB-Triang) is produced before any separator
    /// machinery is touched.
    first: Option<Graph>,
    /// Fill sets of emitted triangulations, for deduplication against the
    /// LB-Triang seed.
    emitted_fills: HashSet<Vec<(Vertex, Vertex)>>,
}

impl<'a> CkkEnumerator<'a> {
    /// Creates the enumerator. No separator enumeration happens here; the
    /// first result is available immediately.
    pub fn new(graph: &'a Graph) -> Self {
        let order: Vec<Vertex> = (0..graph.n()).collect();
        let first = lb_triang(graph, &order);
        CkkEnumerator {
            graph,
            separator_graph: None,
            queue: VecDeque::new(),
            seen: HashSet::new(),
            first: Some(first),
            emitted_fills: HashSet::new(),
        }
    }

    fn separator_graph(&mut self) -> &SeparatorGraph {
        if self.separator_graph.is_none() {
            let seps = minimal_separators(self.graph);
            let sg = SeparatorGraph::build(self.graph, seps);
            // Seed the queue with the lexicographically-first maximal
            // independent set.
            let k = sg.len() as u32;
            let seed = sg.greedy_maximal_independent(&VertexSet::empty(k));
            self.seen.insert(seed.clone());
            self.queue.push_back(seed);
            self.separator_graph = Some(sg);
        }
        self.separator_graph.as_ref().expect("just initialized")
    }

    /// The triangulation obtained by saturating the separators of a maximal
    /// independent set (Theorem 2.5).
    fn realize(&self, mis: &VertexSet) -> Graph {
        let sg = self
            .separator_graph
            .as_ref()
            .expect("realize is only called after initialization");
        let mut h = self.graph.clone();
        for i in mis.iter() {
            h.saturate(&sg.separators()[i as usize]);
        }
        h
    }

    fn push_successors(&mut self, mis: &VertexSet) {
        let sg = self
            .separator_graph
            .as_ref()
            .expect("successors are only generated after initialization");
        let k = sg.len() as u32;
        let mut new_sets: Vec<VertexSet> = Vec::new();
        for j in 0..k {
            if mis.contains(j) {
                continue;
            }
            // Johnson–Yannakakis–Papadimitriou successor: keep the part of
            // the current MIS lexicographically before j that is compatible
            // with j, add j, and greedily complete.
            let mut seed = VertexSet::empty(k);
            for i in mis.iter() {
                if i < j && !sg.are_crossing(i as usize, j as usize) {
                    seed.insert(i);
                }
            }
            seed.insert(j);
            let completed = sg.greedy_maximal_independent(&seed);
            new_sets.push(completed);
        }
        for s in new_sets {
            if !self.seen.contains(&s) {
                self.seen.insert(s.clone());
                self.queue.push_back(s);
            }
        }
    }

    fn fill_key(&self, h: &Graph) -> Vec<(Vertex, Vertex)> {
        let mut fill = self.graph.fill_edges_of(h);
        fill.sort_unstable();
        fill
    }
}

impl Iterator for CkkEnumerator<'_> {
    type Item = BaselineResult;

    fn next(&mut self) -> Option<BaselineResult> {
        // Emit the LB-Triang seed first: this is what gives CKK its
        // near-zero time to the first answer.
        if let Some(first) = self.first.take() {
            self.emitted_fills.insert(self.fill_key(&first));
            return Some(BaselineResult::from_graph(self.graph, first));
        }
        // From the second answer on, drive the MIS enumeration.
        self.separator_graph();
        loop {
            let mis = self.queue.pop_front()?;
            let h = self.realize(&mis);
            self.push_successors(&mis);
            let key = self.fill_key(&h);
            if self.emitted_fills.insert(key) {
                return Some(BaselineResult::from_graph(self.graph, h));
            }
            // Identical to an earlier answer (can only collide with the
            // LB-Triang seed); try the next queued set.
        }
    }
}

/// Heuristic sampler: minimal triangulations from randomized LB-Triang
/// orderings. Zero initialization, no completeness or order guarantees.
pub struct LbTriangSampler<'a> {
    graph: &'a Graph,
    /// Simple xorshift state so the crate needs no RNG dependency.
    state: u64,
    emitted: HashSet<Vec<(Vertex, Vertex)>>,
    /// Number of consecutive duplicate draws after which the sampler stops.
    patience: usize,
}

impl<'a> LbTriangSampler<'a> {
    /// Creates a sampler with the given seed and duplicate patience.
    pub fn new(graph: &'a Graph, seed: u64, patience: usize) -> Self {
        LbTriangSampler {
            graph,
            state: seed.max(1),
            emitted: HashSet::new(),
            patience,
        }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn random_order(&mut self) -> Vec<Vertex> {
        let mut order: Vec<Vertex> = (0..self.graph.n()).collect();
        for i in (1..order.len()).rev() {
            let j = (self.next_u64() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        order
    }
}

impl Iterator for LbTriangSampler<'_> {
    type Item = BaselineResult;

    fn next(&mut self) -> Option<BaselineResult> {
        let mut misses = 0;
        while misses < self.patience {
            let order = self.random_order();
            let h = lb_triang(self.graph, &order);
            let mut fill = self.graph.fill_edges_of(&h);
            fill.sort_unstable();
            if self.emitted.insert(fill) {
                return Some(BaselineResult::from_graph(self.graph, h));
            }
            misses += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{FillIn, Width};
    use crate::ranked::all_triangulations_ranked;
    use mtr_chordal::verify::is_minimal_triangulation;
    use mtr_graph::paper_example_graph;

    #[test]
    fn ckk_is_complete_on_paper_example() {
        let g = paper_example_graph();
        let results: Vec<_> = CkkEnumerator::new(&g).collect();
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(is_minimal_triangulation(&g, &r.triangulation));
        }
        let fills: HashSet<usize> = results.iter().map(|r| r.fill_in).collect();
        assert_eq!(fills, HashSet::from([1, 3]));
    }

    #[test]
    fn ckk_matches_ranked_enumeration_count() {
        let cases = vec![
            Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]),
            Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]),
            Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)]),
            Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]),
            paper_example_graph(),
        ];
        for g in cases {
            let ckk: Vec<_> = CkkEnumerator::new(&g).collect();
            let ranked = all_triangulations_ranked(&g, &FillIn);
            assert_eq!(ckk.len(), ranked.len(), "count mismatch on {g:?}");
            // Same sets of triangulations (by fill sets).
            let ckk_fills: HashSet<Vec<(u32, u32)>> = ckk
                .iter()
                .map(|r| {
                    let mut f = g.fill_edges_of(&r.triangulation);
                    f.sort_unstable();
                    f
                })
                .collect();
            let ranked_fills: HashSet<Vec<(u32, u32)>> = ranked
                .iter()
                .map(|r| {
                    let mut f = g.fill_edges_of(&r.triangulation);
                    f.sort_unstable();
                    f
                })
                .collect();
            assert_eq!(ckk_fills, ranked_fills, "set mismatch on {g:?}");
        }
    }

    #[test]
    fn ckk_first_result_is_instant_lb_triang() {
        let g = paper_example_graph();
        let mut e = CkkEnumerator::new(&g);
        // Before pulling the second result no separator graph exists.
        let first = e.next().unwrap();
        assert!(is_minimal_triangulation(&g, &first.triangulation));
        assert!(e.separator_graph.is_none());
        let _second = e.next().unwrap();
        assert!(e.separator_graph.is_some());
    }

    #[test]
    fn ckk_results_have_correct_width_and_fill_fields() {
        let g = paper_example_graph();
        for r in CkkEnumerator::new(&g) {
            assert_eq!(r.fill_in, r.triangulation.m() - g.m());
            assert_eq!(r.width, r.bags.iter().map(|b| b.len()).max().unwrap() - 1);
            assert_eq!(r.evaluate(&g, &Width), CostValue::from_usize(r.width));
            assert_eq!(r.evaluate(&g, &FillIn), CostValue::from_usize(r.fill_in));
        }
    }

    #[test]
    fn sampler_produces_distinct_minimal_triangulations() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let results: Vec<_> = LbTriangSampler::new(&g, 42, 50).collect();
        assert!(!results.is_empty());
        let mut keys = HashSet::new();
        for r in &results {
            assert!(is_minimal_triangulation(&g, &r.triangulation));
            let mut f = g.fill_edges_of(&r.triangulation);
            f.sort_unstable();
            assert!(keys.insert(f), "sampler emitted a duplicate");
        }
        // C6 has 14 minimal triangulations; with patience 50 the sampler
        // should find a decent fraction of them.
        assert!(results.len() >= 3);
    }

    #[test]
    fn sampler_on_chordal_graph_stops_after_one() {
        let path = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let results: Vec<_> = LbTriangSampler::new(&path, 7, 10).collect();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].fill_in, 0);
    }
}
