//! Diversity-aware enumeration.
//!
//! The paper's concluding remarks raise the question of *diversifying* the
//! enumeration: an application that inspects the top-k results would often
//! rather see k structurally different decompositions than k near-identical
//! ones of almost equal cost. This module provides a post-processing filter
//! over any triangulation stream: results that are too similar (by Jaccard
//! similarity of their fill sets, or by sharing all of their minimal
//! separators) to an already-kept result are skipped.
//!
//! The filter preserves the cost order of the underlying ranked enumeration,
//! so the output is a *diverse, ranked* subset: every kept result is at
//! least `1 − threshold` different from every earlier kept result.

use crate::ranked::RankedTriangulation;
use mtr_graph::Graph;
use std::collections::BTreeSet;

/// How similarity between two triangulations is measured.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SimilarityMeasure {
    /// Jaccard similarity of the fill-edge sets (1.0 = identical fill).
    /// Two triangulations with no fill edges are considered identical.
    FillJaccard,
    /// Jaccard similarity of the minimal-separator sets.
    SeparatorJaccard,
}

/// A filter keeping only results sufficiently dissimilar from those kept
/// before it.
pub struct DiversityFilter {
    graph: Graph,
    measure: SimilarityMeasure,
    /// Maximum allowed similarity to any previously kept result.
    threshold: f64,
    kept_fills: Vec<BTreeSet<(u32, u32)>>,
    kept_separators: Vec<BTreeSet<Vec<u32>>>,
}

impl DiversityFilter {
    /// Creates a filter for triangulations of `graph`. `threshold` is the
    /// maximum allowed similarity in `[0, 1]`: 1.0 only rejects exact
    /// duplicates, 0.0 demands completely disjoint structure.
    pub fn new(graph: &Graph, measure: SimilarityMeasure, threshold: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be in [0, 1]"
        );
        DiversityFilter {
            graph: graph.clone(),
            measure,
            threshold,
            kept_fills: Vec::new(),
            kept_separators: Vec::new(),
        }
    }

    /// Decides whether `candidate` is diverse enough; if so, records it and
    /// returns `true`.
    pub fn admit(&mut self, candidate: &RankedTriangulation) -> bool {
        match self.measure {
            SimilarityMeasure::FillJaccard => {
                let fill: BTreeSet<(u32, u32)> = self
                    .graph
                    .fill_edges_of(&candidate.triangulation)
                    .into_iter()
                    .collect();
                let too_similar = self
                    .kept_fills
                    .iter()
                    .any(|kept| jaccard(kept, &fill) > self.threshold);
                if too_similar {
                    return false;
                }
                self.kept_fills.push(fill);
                true
            }
            SimilarityMeasure::SeparatorJaccard => {
                let seps: BTreeSet<Vec<u32>> = candidate
                    .minimal_separators
                    .iter()
                    .map(|s| s.to_vec())
                    .collect();
                let too_similar = self
                    .kept_separators
                    .iter()
                    .any(|kept| jaccard(kept, &seps) > self.threshold);
                if too_similar {
                    return false;
                }
                self.kept_separators.push(seps);
                true
            }
        }
    }

    /// Number of results admitted so far.
    pub fn kept(&self) -> usize {
        self.kept_fills.len() + self.kept_separators.len()
    }
}

fn jaccard<T: Ord>(a: &BTreeSet<T>, b: &BTreeSet<T>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let intersection = a.intersection(b).count() as f64;
    let union = a.union(b).count() as f64;
    intersection / union
}

/// Adapts any iterator of ranked triangulations into a diverse one.
pub struct Diversified<I> {
    inner: I,
    filter: DiversityFilter,
}

impl<I> Diversified<I> {
    /// Wraps `inner` with a [`DiversityFilter`].
    pub fn new(inner: I, filter: DiversityFilter) -> Self {
        Diversified { inner, filter }
    }
}

impl<I: Iterator<Item = RankedTriangulation>> Iterator for Diversified<I> {
    type Item = RankedTriangulation;

    fn next(&mut self) -> Option<RankedTriangulation> {
        let filter = &mut self.filter;
        self.inner
            .by_ref()
            .find(|candidate| filter.admit(candidate))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::FillIn;
    use crate::mintriang::Preprocessed;
    use crate::ranked::RankedEnumerator;
    use mtr_graph::Graph;

    fn c6() -> Graph {
        Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)])
    }

    #[test]
    fn threshold_one_keeps_everything() {
        let g = c6();
        let pre = Preprocessed::new(&g);
        let filter = DiversityFilter::new(&g, SimilarityMeasure::FillJaccard, 1.0);
        let diverse: Vec<_> =
            Diversified::new(RankedEnumerator::new(&pre, &FillIn), filter).collect();
        assert_eq!(diverse.len(), 14, "C6 has 14 minimal triangulations");
    }

    #[test]
    fn low_threshold_prunes_similar_results() {
        let g = c6();
        let pre = Preprocessed::new(&g);
        let all: Vec<_> = RankedEnumerator::new(&pre, &FillIn).collect();
        let filter = DiversityFilter::new(&g, SimilarityMeasure::FillJaccard, 0.3);
        let diverse: Vec<_> =
            Diversified::new(RankedEnumerator::new(&pre, &FillIn), filter).collect();
        assert!(!diverse.is_empty());
        assert!(diverse.len() < all.len());
        // The first (optimal) result always survives and order is preserved.
        assert_eq!(diverse[0].cost, all[0].cost);
        for w in diverse.windows(2) {
            assert!(w[0].cost <= w[1].cost);
        }
        // Any two kept results share at most 30% of their fill edges.
        for i in 0..diverse.len() {
            for j in (i + 1)..diverse.len() {
                let a: BTreeSet<(u32, u32)> = g
                    .fill_edges_of(&diverse[i].triangulation)
                    .into_iter()
                    .collect();
                let b: BTreeSet<(u32, u32)> = g
                    .fill_edges_of(&diverse[j].triangulation)
                    .into_iter()
                    .collect();
                assert!(jaccard(&a, &b) <= 0.3 + 1e-9);
            }
        }
    }

    #[test]
    fn separator_similarity_measure() {
        let g = c6();
        let pre = Preprocessed::new(&g);
        let filter = DiversityFilter::new(&g, SimilarityMeasure::SeparatorJaccard, 0.5);
        let diverse: Vec<_> =
            Diversified::new(RankedEnumerator::new(&pre, &FillIn), filter).collect();
        assert!(!diverse.is_empty());
        assert!(diverse.len() <= 14);
    }

    #[test]
    fn chordal_graph_single_result_is_kept() {
        let path = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let pre = Preprocessed::new(&path);
        let filter = DiversityFilter::new(&path, SimilarityMeasure::FillJaccard, 0.0);
        let diverse: Vec<_> =
            Diversified::new(RankedEnumerator::new(&pre, &FillIn), filter).collect();
        assert_eq!(diverse.len(), 1);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn invalid_threshold_rejected() {
        let g = c6();
        DiversityFilter::new(&g, SimilarityMeasure::FillJaccard, 1.5);
    }
}
