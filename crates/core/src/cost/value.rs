//! Totally ordered cost values.
//!
//! Every bag cost in this crate evaluates to a [`CostValue`]: a finite
//! `f64` or the distinguished `infinite` value used to encode violated
//! constraints and exceeded width bounds (Sections 5.3 and 6.1 of the
//! paper). The ordering is total (via `f64::total_cmp`), which is what the
//! priority queue of the ranked enumeration requires.

use std::cmp::Ordering;
use std::fmt;

/// A cost: a finite number or `+∞`.
///
/// `NaN` is rejected at construction so the ordering is a genuine total
/// order on the values that can exist.
#[derive(Clone, Copy, PartialEq)]
pub struct CostValue(f64);

impl CostValue {
    /// The infinite cost, used for constraint violations and width-bound
    /// violations.
    pub const INFINITE: CostValue = CostValue(f64::INFINITY);

    /// The zero cost.
    pub const ZERO: CostValue = CostValue(0.0);

    /// Creates a finite cost value.
    ///
    /// # Panics
    /// Panics if `v` is NaN.
    pub fn finite(v: f64) -> Self {
        assert!(!v.is_nan(), "cost values must not be NaN");
        CostValue(v)
    }

    /// Creates a cost from an unsigned integer quantity (width, fill count…).
    pub fn from_usize(v: usize) -> Self {
        CostValue(v as f64)
    }

    /// The raw numeric value (`f64::INFINITY` when infinite).
    pub fn value(self) -> f64 {
        self.0
    }

    /// `true` when the value is finite.
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// `true` when the value is the infinite sentinel.
    pub fn is_infinite(self) -> bool {
        self.0.is_infinite()
    }

    /// Addition, saturating at infinity.
    pub fn plus(self, other: CostValue) -> CostValue {
        CostValue(self.0 + other.0)
    }

    /// The maximum of two costs.
    pub fn max(self, other: CostValue) -> CostValue {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Eq for CostValue {}

impl PartialOrd for CostValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for CostValue {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Debug for CostValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            write!(f, "∞")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

impl fmt::Display for CostValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<usize> for CostValue {
    fn from(v: usize) -> Self {
        CostValue::from_usize(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_infinity() {
        let a = CostValue::finite(1.0);
        let b = CostValue::finite(2.0);
        assert!(a < b);
        assert!(b < CostValue::INFINITE);
        assert!(CostValue::INFINITE <= CostValue::INFINITE);
        assert_eq!(a.max(b), b);
        assert_eq!(a.plus(b), CostValue::finite(3.0));
        assert_eq!(a.plus(CostValue::INFINITE), CostValue::INFINITE);
    }

    #[test]
    fn conversions() {
        assert_eq!(CostValue::from_usize(7).value(), 7.0);
        assert_eq!(CostValue::from(3usize), CostValue::finite(3.0));
        assert!(CostValue::ZERO.is_finite());
        assert!(CostValue::INFINITE.is_infinite());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        CostValue::finite(f64::NAN);
    }

    #[test]
    fn sorting_is_stable_and_total() {
        let mut v = vec![
            CostValue::INFINITE,
            CostValue::finite(3.0),
            CostValue::ZERO,
            CostValue::finite(-1.0),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                CostValue::finite(-1.0),
                CostValue::ZERO,
                CostValue::finite(3.0),
                CostValue::INFINITE
            ]
        );
    }
}
