//! Split-monotone bag costs (Section 3 of the paper).
//!
//! A *bag cost* assigns a numeric cost to a tree decomposition that depends
//! only on its set of bags; it is *split monotone* when replacing a subtree
//! of the decomposition with a cheaper subtree never increases the total
//! cost. The paper shows that the Bouchitté–Todinca dynamic program
//! optimizes any such cost, and that the inclusion/exclusion constraints
//! needed by Lawler–Murty can be compiled into any such cost (Lemma 6.2).
//!
//! The [`BagCost`] trait captures this interface:
//!
//! * [`BagCost::cost_of_bags`] evaluates the cost of a triangulation
//!   presented as its bag list (the maximal cliques of the triangulation);
//! * [`BagCost::combine`] is the compositional hook the dynamic program
//!   uses to price "children blocks + one new bag Ω"; the default
//!   implementation simply assembles the bag list and calls
//!   `cost_of_bags`, which is correct for every bag cost, while the classic
//!   costs override it with O(#children) arithmetic.
//!
//! The provided implementations are the costs discussed in the paper:
//! width, fill-in, the weighted variants of Furuse and Yamazaki, the
//! lexicographic `|E|·width + fill`, the state-space cost `Σ 2^|bag|`,
//! hyperedge-cover width (hypertree-width-like), linear combinations, and
//! the constraint wrapper `κ[I, X]`.

mod classic;
mod constrained;
mod value;

pub use classic::{
    CoverWidth, ExpBagSum, FillIn, LinearCombination, WeightedFillIn, WeightedWidth, Width,
    WidthThenFill,
};
pub use constrained::{Constrained, Constraints};
pub use value::CostValue;

#[cfg(test)]
mod atom_combine_tests {
    use super::*;

    #[test]
    fn shipped_costs_declare_their_factorization() {
        assert_eq!(Width.atom_combine(), Some(AtomCombine::Max));
        assert_eq!(FillIn.atom_combine(), Some(AtomCombine::Additive));
        // Vertex-identity-dependent and non-factorizing costs stay opted out.
        assert_eq!(WeightedWidth::new(vec![1.0]).atom_combine(), None);
        assert_eq!(WidthThenFill.atom_combine(), None);
        assert_eq!(ExpBagSum.atom_combine(), None);
        // The CLI-facing boxed costs carry the declaration through.
        assert_eq!(
            named_cost("width").unwrap().atom_combine(),
            Some(AtomCombine::Max)
        );
        assert_eq!(
            named_cost("fill").unwrap().atom_combine(),
            Some(AtomCombine::Additive)
        );
        assert_eq!(named_cost("expbags").unwrap().atom_combine(), None);
    }
}

use mtr_graph::{Graph, VertexSet};

/// How a bag cost combines across the *atoms* of a clique-separator
/// decomposition (and across connected components, the special case of an
/// empty clique separator).
///
/// When a graph is decomposed by clique minimal separators into atoms
/// `A_1, …, A_k`, its minimal triangulations are exactly the unions of one
/// minimal triangulation per atom, with pairwise-disjoint fill sets, and
/// every maximal clique of the combined triangulation lies inside a single
/// atom. A cost declares here — via [`BagCost::atom_combine`] — how its
/// value on the combined triangulation follows from the per-atom values,
/// which is what lets `mtr-reduce` rank the product space of per-atom
/// streams without ever materializing a non-optimal combination.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AtomCombine {
    /// `cost(H) = Σ_i cost(H_i)` — fill-like costs, whose value is a sum
    /// over fill edges (per-atom fill sets are disjoint).
    Additive,
    /// `cost(H) = max_i cost(H_i)` — width-like costs, whose value is a
    /// maximum of a ⊆-monotone bag price (every bag lives inside an atom).
    Max,
}

/// The stored solution of one child block, as seen by [`BagCost::combine`].
#[derive(Clone, Copy, Debug)]
pub struct ChildSolution<'a> {
    /// The minimal separator of the child block (`S_i`).
    pub separator: &'a VertexSet,
    /// The vertex set of the child block (`S_i ∪ C_i`).
    pub vertices: &'a VertexSet,
    /// The stored cost of the child's optimal triangulation
    /// (of the realization `R(S_i, C_i)` relative to `G[S_i ∪ C_i]`).
    pub cost: CostValue,
    /// The bags of the child's stored triangulation.
    pub bags: &'a [VertexSet],
}

/// A thread-safe boxed bag cost, as produced by [`named_cost`] and consumed
/// by configuration-driven callers (the `mtr` CLI, experiment harnesses).
pub type DynBagCost = dyn BagCost + Send + Sync;

/// Looks up one of the parameter-free shipped costs by its CLI/config name.
///
/// Recognized names (with aliases): `width`, `fill` / `fill-in`,
/// `width-fill` / `width-then-fill`, `expbags` / `exp-bag-sum`. Costs that
/// need parameters (weighted variants, cover width, linear combinations)
/// must be constructed programmatically.
pub fn named_cost(name: &str) -> Option<Box<DynBagCost>> {
    match name {
        "width" => Some(Box::new(Width)),
        "fill" | "fill-in" => Some(Box::new(FillIn)),
        "width-fill" | "width-then-fill" => Some(Box::new(WidthThenFill)),
        "expbags" | "exp-bag-sum" => Some(Box::new(ExpBagSum)),
        _ => None,
    }
}

/// A bag cost over tree decompositions / triangulations.
///
/// Implementations must be *split monotone* for the optimizer to be exact;
/// all the costs shipped in this module are (see Section 3 of the paper).
pub trait BagCost {
    /// A short human-readable name used in reports.
    fn name(&self) -> String;

    /// The cost of the triangulation of `g[scope]` whose maximal cliques are
    /// `bags`.
    ///
    /// `g` is always the full host graph; `scope` is the vertex set of the
    /// (sub)graph being decomposed — the full vertex set at the top level,
    /// or `S ∪ C` when the dynamic program prices a block.
    fn cost_of_bags(&self, g: &Graph, scope: &VertexSet, bags: &[VertexSet]) -> CostValue;

    /// The cost of the triangulation of `g[scope]` assembled from the child
    /// block solutions plus the new bag `omega` (Equation (1) of the paper).
    ///
    /// The default implementation concatenates the bag lists and calls
    /// [`BagCost::cost_of_bags`]; override it when the cost can be combined
    /// arithmetically from the child costs.
    fn combine(
        &self,
        g: &Graph,
        scope: &VertexSet,
        omega: &VertexSet,
        children: &[ChildSolution<'_>],
    ) -> CostValue {
        let mut bags: Vec<VertexSet> =
            Vec::with_capacity(1 + children.iter().map(|c| c.bags.len()).sum::<usize>());
        for c in children {
            bags.extend(c.bags.iter().cloned());
        }
        bags.push(omega.clone());
        self.cost_of_bags(g, scope, &bags)
    }

    /// How (and whether) this cost factorizes over the atoms of a
    /// clique-separator decomposition; see [`AtomCombine`].
    ///
    /// Return `Some` only when **both** hold:
    ///
    /// * the cost is invariant under vertex relabeling (atoms are evaluated
    ///   as remapped induced subgraphs), and
    /// * the combined value follows the declared rule exactly.
    ///
    /// The default is `None`, which makes reduction-enabled sessions fall
    /// back to direct enumeration — always sound, never faster.
    fn atom_combine(&self) -> Option<AtomCombine> {
        None
    }

    /// An *admissible* lower bound on the cost of every triangulation of `g`
    /// that saturates all separators in `include` — the committed prefix of a
    /// Lawler–Murty partition. Used by incumbent-bounded pruning to defer
    /// partitions that cannot beat the incumbent; an inadmissible bound here
    /// would break the ranked order, so implementations must only count cost
    /// that is *forced* by the include set.
    ///
    /// The default `None` means "no prefix bound"; pruning then falls back on
    /// the (always admissible) cost of the parent partition.
    fn include_lower_bound(&self, _g: &Graph, _include: &[VertexSet]) -> Option<CostValue> {
        None
    }

    /// Whether the cost is invariant under vertex relabeling: for every
    /// permutation `σ` of the vertices and every triangulation `H`,
    /// `cost(σ(H)) = cost(H)`. Equivalently, [`BagCost::cost_of_bags`]
    /// depends only on the isomorphism type of `(g[scope], bags)`.
    ///
    /// Symmetry-aware machinery (orbit-canonical subproblem sharing,
    /// `--modulo-symmetry`) is only sound for label-invariant costs — an
    /// automorphism of the graph must map optimal solutions to equally
    /// optimal solutions. The default is `false`, which simply disables
    /// those optimizations; declaring `true` for a cost that does depend
    /// on vertex identities (e.g. per-vertex weights) would corrupt the
    /// ranked order.
    fn label_invariant(&self) -> bool {
        false
    }
}

/// Number of edges of the subgraph of `g` induced by `scope`.
pub(crate) fn induced_edge_count(g: &Graph, scope: &VertexSet) -> usize {
    let mut twice = 0usize;
    for v in scope.iter() {
        twice += g.neighbors(v).intersection_len(scope);
    }
    twice / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtr_graph::paper_example_graph;

    /// A deliberately non-incremental cost used to exercise the default
    /// `combine` implementation: the number of bags.
    struct BagCount;
    impl BagCost for BagCount {
        fn name(&self) -> String {
            "bag-count".into()
        }
        fn cost_of_bags(&self, _g: &Graph, _scope: &VertexSet, bags: &[VertexSet]) -> CostValue {
            CostValue::from_usize(bags.len())
        }
    }

    #[test]
    fn default_combine_assembles_bags() {
        let g = paper_example_graph();
        let child_bags = vec![VertexSet::from_slice(6, &[1, 2])];
        let sep = VertexSet::singleton(6, 1);
        let verts = VertexSet::from_slice(6, &[1, 2]);
        let child = ChildSolution {
            separator: &sep,
            vertices: &verts,
            cost: CostValue::finite(1.0),
            bags: &child_bags,
        };
        let omega = VertexSet::from_slice(6, &[0, 1, 3]);
        let cost = BagCount.combine(&g, &g.vertex_set(), &omega, &[child]);
        assert_eq!(cost, CostValue::from_usize(2));
    }

    #[test]
    fn named_costs_resolve_with_aliases() {
        assert_eq!(named_cost("width").unwrap().name(), "width");
        assert_eq!(named_cost("fill").unwrap().name(), "fill-in");
        assert_eq!(named_cost("fill-in").unwrap().name(), "fill-in");
        assert_eq!(named_cost("width-fill").unwrap().name(), "width-then-fill");
        assert_eq!(named_cost("expbags").unwrap().name(), "exp-bag-sum");
        assert!(named_cost("no-such-cost").is_none());
    }

    #[test]
    fn induced_edge_count_matches_subgraph() {
        let g = paper_example_graph();
        assert_eq!(induced_edge_count(&g, &g.vertex_set()), g.m());
        let sub = VertexSet::from_slice(6, &[0, 1, 3]);
        assert_eq!(induced_edge_count(&g, &sub), 2);
        assert_eq!(induced_edge_count(&g, &VertexSet::empty(6)), 0);
    }
}
