//! The classic split-monotone bag costs of Section 3.

use super::{induced_edge_count, AtomCombine, BagCost, ChildSolution, CostValue};
use mtr_graph::{Graph, Hypergraph, Vertex, VertexSet};
use std::collections::{HashMap, VecDeque};

/// Width: the cardinality of the largest bag minus one.
#[derive(Clone, Copy, Debug, Default)]
pub struct Width;

impl BagCost for Width {
    fn name(&self) -> String {
        "width".into()
    }

    fn cost_of_bags(&self, _g: &Graph, _scope: &VertexSet, bags: &[VertexSet]) -> CostValue {
        let w = bags.iter().map(|b| b.len()).max().unwrap_or(1);
        CostValue::from_usize(w.saturating_sub(1))
    }

    fn combine(
        &self,
        _g: &Graph,
        _scope: &VertexSet,
        omega: &VertexSet,
        children: &[ChildSolution<'_>],
    ) -> CostValue {
        let mut cost = CostValue::from_usize(omega.len().saturating_sub(1));
        for c in children {
            cost = cost.max(c.cost);
        }
        cost
    }

    fn atom_combine(&self) -> Option<AtomCombine> {
        // Width is the maximum of a ⊆-monotone bag price and ignores vertex
        // identities, so it max-combines exactly across atoms.
        Some(AtomCombine::Max)
    }

    fn include_lower_bound(&self, _g: &Graph, include: &[VertexSet]) -> Option<CostValue> {
        // Each include separator is a clique of every member H, so it lies
        // inside a bag. Bags of minimal triangulations are potential maximal
        // cliques of G, and a minimal separator never is one (it has full
        // components), so the containment is strict: width(H) ≥ |S|.
        include
            .iter()
            .map(|s| s.len())
            .max()
            .map(CostValue::from_usize)
    }

    fn label_invariant(&self) -> bool {
        true
    }
}

/// Fill-in: the number of distinct non-edges of the graph that saturating
/// every bag adds.
#[derive(Clone, Copy, Debug, Default)]
pub struct FillIn;

impl BagCost for FillIn {
    fn name(&self) -> String {
        "fill-in".into()
    }

    fn cost_of_bags(&self, g: &Graph, _scope: &VertexSet, bags: &[VertexSet]) -> CostValue {
        // Count each added edge once even if several bags cover it.
        let mut h = g.clone();
        let mut added = 0usize;
        for b in bags {
            added += h.saturate(b);
        }
        CostValue::from_usize(added)
    }

    fn combine(
        &self,
        g: &Graph,
        _scope: &VertexSet,
        omega: &VertexSet,
        children: &[ChildSolution<'_>],
    ) -> CostValue {
        // fill(assembled) = fill(Ω) + Σ_i (fill_i − fill(S_i)): the fill
        // edges of child i inside S_i ⊆ Ω are exactly the ones counted twice.
        let mut cost = CostValue::from_usize(g.missing_edges_in(omega));
        for c in children {
            let overlap = CostValue::from_usize(g.missing_edges_in(c.separator));
            cost = cost.plus(c.cost).plus(CostValue::finite(-overlap.value()));
        }
        cost
    }

    fn atom_combine(&self) -> Option<AtomCombine> {
        // Fill sets of the per-atom triangulations are pairwise disjoint
        // (clique separators have no missing edges), so fill adds up.
        Some(AtomCombine::Additive)
    }

    fn include_lower_bound(&self, g: &Graph, include: &[VertexSet]) -> Option<CostValue> {
        if include.is_empty() {
            return None;
        }
        // Saturating each include separator forces its missing edges into
        // every member of the partition (each counted once). On top of the
        // *include-saturated* graph G′ = G + forced, every member is still a
        // chordal supergraph of G′, so each chordless cycle of G′ on ℓ ≥ 4
        // vertices needs at least ℓ − 3 further chords — all of them
        // non-edges of G′ (hence fill beyond `forced`), all of them inside
        // the cycle's own vertex set. A vertex-disjoint packing of such
        // cycles therefore adds its deficiencies admissibly.
        let mut saturated = g.clone();
        let mut forced = 0usize;
        for s in include {
            forced += saturated.saturate(s);
        }
        Some(CostValue::from_usize(
            forced + chordless_cycle_packing(&saturated),
        ))
    }

    fn label_invariant(&self) -> bool {
        true
    }
}

/// Greedy vertex-disjoint chordless-cycle packing: repeatedly finds a
/// chordless cycle (length ≥ 4) among the still-unused vertices, charges
/// its triangulation deficiency `ℓ − 3`, and retires its vertices. Each
/// cycle is located by picking a vertex `v` with two non-adjacent alive
/// neighbors `x, y` and closing a shortest `x`–`y` path that avoids the
/// rest of `N[v]` — shortest paths are induced, so the closed cycle has no
/// chord.
fn chordless_cycle_packing(g: &Graph) -> usize {
    let mut alive = g.vertex_set();
    let mut total = 0usize;
    'outer: loop {
        for v in alive.iter() {
            let nbrs: Vec<Vertex> = g.neighbors(v).intersection(&alive).iter().collect();
            for (i, &x) in nbrs.iter().enumerate() {
                for &y in &nbrs[i + 1..] {
                    if g.has_edge(x, y) {
                        continue;
                    }
                    let mut allowed = alive.clone();
                    allowed.difference_with(g.neighbors(v));
                    allowed.remove(v);
                    allowed.insert(x);
                    allowed.insert(y);
                    if let Some(path) = shortest_path_within(g, &allowed, x, y) {
                        // Cycle = path plus v; x, y non-adjacent forces an
                        // internal path vertex, so the length is ≥ 4.
                        total += (path.len() + 1) - 3;
                        for &u in &path {
                            alive.remove(u);
                        }
                        alive.remove(v);
                        continue 'outer;
                    }
                }
            }
        }
        break;
    }
    total
}

/// BFS shortest path from `x` to `y` inside `g[allowed]`, as the vertex
/// sequence `x..=y`; `None` when disconnected there.
fn shortest_path_within(
    g: &Graph,
    allowed: &VertexSet,
    x: Vertex,
    y: Vertex,
) -> Option<Vec<Vertex>> {
    let mut prev = vec![u32::MAX; allowed.universe() as usize];
    prev[x as usize] = x;
    let mut queue = VecDeque::from([x]);
    while let Some(u) = queue.pop_front() {
        if u == y {
            let mut path = vec![y];
            let mut cur = y;
            while cur != x {
                cur = prev[cur as usize];
                path.push(cur);
            }
            path.reverse();
            return Some(path);
        }
        for w in g.neighbors(u).intersection(allowed).iter() {
            if prev[w as usize] == u32::MAX {
                prev[w as usize] = u;
                queue.push_back(w);
            }
        }
    }
    None
}

/// Weighted width (Furuse–Yamazaki): each bag is priced by the sum of its
/// vertex weights, and the cost of a decomposition is the maximum bag price.
#[derive(Clone, Debug)]
pub struct WeightedWidth {
    weights: Vec<f64>,
}

impl WeightedWidth {
    /// Creates the cost from per-vertex weights (one entry per vertex).
    ///
    /// # Panics
    /// Panics if any weight is NaN or negative.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "vertex weights must be finite and non-negative"
        );
        WeightedWidth { weights }
    }

    fn bag_weight(&self, bag: &VertexSet) -> f64 {
        bag.iter().map(|v| self.weights[v as usize]).sum()
    }
}

impl BagCost for WeightedWidth {
    fn name(&self) -> String {
        "weighted-width".into()
    }

    fn cost_of_bags(&self, _g: &Graph, _scope: &VertexSet, bags: &[VertexSet]) -> CostValue {
        let w = bags
            .iter()
            .map(|b| self.bag_weight(b))
            .fold(0.0f64, f64::max);
        CostValue::finite(w)
    }

    fn combine(
        &self,
        _g: &Graph,
        _scope: &VertexSet,
        omega: &VertexSet,
        children: &[ChildSolution<'_>],
    ) -> CostValue {
        let mut cost = CostValue::finite(self.bag_weight(omega));
        for c in children {
            cost = cost.max(c.cost);
        }
        cost
    }
}

/// Weighted fill-in (Furuse–Yamazaki): every added edge `{u, v}` costs
/// `w(u, v)`, and the cost of a decomposition is the total cost of the
/// edges saturating every bag adds.
#[derive(Clone, Debug)]
pub struct WeightedFillIn {
    costs: HashMap<(Vertex, Vertex), f64>,
    default: f64,
}

impl WeightedFillIn {
    /// Creates the cost with a default per-edge cost and explicit overrides.
    ///
    /// # Panics
    /// Panics if any cost is NaN or negative.
    pub fn new(default: f64, overrides: impl IntoIterator<Item = ((Vertex, Vertex), f64)>) -> Self {
        assert!(default.is_finite() && default >= 0.0);
        let mut costs = HashMap::new();
        for ((u, v), c) in overrides {
            assert!(
                c.is_finite() && c >= 0.0,
                "edge costs must be finite and non-negative"
            );
            costs.insert((u.min(v), u.max(v)), c);
        }
        WeightedFillIn { costs, default }
    }

    fn edge_cost(&self, u: Vertex, v: Vertex) -> f64 {
        *self
            .costs
            .get(&(u.min(v), u.max(v)))
            .unwrap_or(&self.default)
    }
}

impl BagCost for WeightedFillIn {
    fn name(&self) -> String {
        "weighted-fill-in".into()
    }

    fn cost_of_bags(&self, g: &Graph, _scope: &VertexSet, bags: &[VertexSet]) -> CostValue {
        let mut h = g.clone();
        let mut total = 0.0;
        for b in bags {
            let vs = b.to_vec();
            for (i, &u) in vs.iter().enumerate() {
                for &v in &vs[i + 1..] {
                    if h.add_edge(u, v) {
                        total += self.edge_cost(u, v);
                    }
                }
            }
        }
        CostValue::finite(total)
    }
}

/// The paper's lexicographic combination `|E(G)| · width + fill-in`, which
/// orders primarily by width and breaks ties by fill-in.
#[derive(Clone, Copy, Debug, Default)]
pub struct WidthThenFill;

impl BagCost for WidthThenFill {
    fn name(&self) -> String {
        "width-then-fill".into()
    }

    fn cost_of_bags(&self, g: &Graph, scope: &VertexSet, bags: &[VertexSet]) -> CostValue {
        let m = induced_edge_count(g, scope);
        let width = Width.cost_of_bags(g, scope, bags);
        let fill = FillIn.cost_of_bags(g, scope, bags);
        CostValue::finite(m as f64 * width.value() + fill.value())
    }

    fn label_invariant(&self) -> bool {
        true
    }
}

/// The junction-tree state-space cost `Σ_bags 2^|bag|` (capped to stay
/// finite), a natural cost for probabilistic inference where the work per
/// bag is exponential in the bag size.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExpBagSum;

impl BagCost for ExpBagSum {
    fn name(&self) -> String {
        "exp-bag-sum".into()
    }

    fn cost_of_bags(&self, _g: &Graph, _scope: &VertexSet, bags: &[VertexSet]) -> CostValue {
        let total: f64 = bags
            .iter()
            .map(|b| 2f64.powi(b.len().min(1000) as i32))
            .sum();
        CostValue::finite(total)
    }

    fn combine(
        &self,
        _g: &Graph,
        _scope: &VertexSet,
        omega: &VertexSet,
        children: &[ChildSolution<'_>],
    ) -> CostValue {
        let mut cost = CostValue::finite(2f64.powi(omega.len().min(1000) as i32));
        for c in children {
            cost = cost.plus(c.cost);
        }
        cost
    }

    fn label_invariant(&self) -> bool {
        true
    }
}

/// Hyperedge-cover width: each bag is priced by the minimum number of
/// hyperedges of a fixed hypergraph needed to cover it, and the cost is the
/// maximum bag price — the (generalized) hypertree-width-style cost for
/// decompositions of primal graphs of join queries.
///
/// Bags that cannot be covered at all get an infinite price.
#[derive(Clone, Debug)]
pub struct CoverWidth {
    hypergraph: Hypergraph,
}

impl CoverWidth {
    /// Creates the cost for the given hypergraph (whose primal graph is the
    /// graph being decomposed).
    pub fn new(hypergraph: Hypergraph) -> Self {
        CoverWidth { hypergraph }
    }

    fn bag_price(&self, bag: &VertexSet) -> CostValue {
        match self.hypergraph.cover_number(bag) {
            Some(k) => CostValue::from_usize(k),
            None => CostValue::INFINITE,
        }
    }
}

impl BagCost for CoverWidth {
    fn name(&self) -> String {
        "cover-width".into()
    }

    fn cost_of_bags(&self, _g: &Graph, _scope: &VertexSet, bags: &[VertexSet]) -> CostValue {
        bags.iter()
            .map(|b| self.bag_price(b))
            .fold(CostValue::ZERO, CostValue::max)
    }

    fn combine(
        &self,
        _g: &Graph,
        _scope: &VertexSet,
        omega: &VertexSet,
        children: &[ChildSolution<'_>],
    ) -> CostValue {
        let mut cost = self.bag_price(omega);
        for c in children {
            cost = cost.max(c.cost);
        }
        cost
    }
}

/// A non-negative linear combination of other bag costs.
///
/// Sums and non-negative scalings of split-monotone bag costs are split
/// monotone, so any such combination remains exact under the optimizer.
pub struct LinearCombination {
    terms: Vec<(f64, Box<dyn BagCost>)>,
}

impl LinearCombination {
    /// Creates a combination `Σ coefficient · cost`.
    ///
    /// # Panics
    /// Panics if a coefficient is negative or NaN.
    pub fn new(terms: Vec<(f64, Box<dyn BagCost>)>) -> Self {
        assert!(
            terms.iter().all(|(c, _)| c.is_finite() && *c >= 0.0),
            "coefficients must be finite and non-negative"
        );
        LinearCombination { terms }
    }
}

impl BagCost for LinearCombination {
    fn name(&self) -> String {
        let parts: Vec<String> = self
            .terms
            .iter()
            .map(|(c, k)| format!("{c}*{}", k.name()))
            .collect();
        parts.join(" + ")
    }

    fn cost_of_bags(&self, g: &Graph, scope: &VertexSet, bags: &[VertexSet]) -> CostValue {
        let mut total = 0.0;
        for (c, k) in &self.terms {
            let v = k.cost_of_bags(g, scope, bags);
            if v.is_infinite() {
                return CostValue::INFINITE;
            }
            total += c * v.value();
        }
        CostValue::finite(total)
    }

    fn label_invariant(&self) -> bool {
        self.terms.iter().all(|(_, k)| k.label_invariant())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtr_graph::paper_example_graph;

    /// Bags of the clique tree T1 of the paper: {u,w1,w2,w3}, {v,w1,w2,w3}, {v,v'}.
    fn t1_bags() -> Vec<VertexSet> {
        vec![
            VertexSet::from_slice(6, &[0, 3, 4, 5]),
            VertexSet::from_slice(6, &[1, 3, 4, 5]),
            VertexSet::from_slice(6, &[1, 2]),
        ]
    }

    /// Bags of the clique tree T2: {u,v,w1}, {u,v,w2}, {u,v,w3}, {v,v'}.
    fn t2_bags() -> Vec<VertexSet> {
        vec![
            VertexSet::from_slice(6, &[0, 1, 3]),
            VertexSet::from_slice(6, &[0, 1, 4]),
            VertexSet::from_slice(6, &[0, 1, 5]),
            VertexSet::from_slice(6, &[1, 2]),
        ]
    }

    #[test]
    fn width_of_paper_decompositions() {
        let g = paper_example_graph();
        let scope = g.vertex_set();
        assert_eq!(
            Width.cost_of_bags(&g, &scope, &t1_bags()),
            CostValue::from_usize(3)
        );
        assert_eq!(
            Width.cost_of_bags(&g, &scope, &t2_bags()),
            CostValue::from_usize(2)
        );
    }

    #[test]
    fn fill_of_paper_decompositions() {
        let g = paper_example_graph();
        let scope = g.vertex_set();
        assert_eq!(
            FillIn.cost_of_bags(&g, &scope, &t1_bags()),
            CostValue::from_usize(3)
        );
        assert_eq!(
            FillIn.cost_of_bags(&g, &scope, &t2_bags()),
            CostValue::from_usize(1)
        );
    }

    #[test]
    fn width_then_fill_orders_lexicographically() {
        let g = paper_example_graph();
        let scope = g.vertex_set();
        let c1 = WidthThenFill.cost_of_bags(&g, &scope, &t1_bags());
        let c2 = WidthThenFill.cost_of_bags(&g, &scope, &t2_bags());
        // T2 has smaller width, so it must win despite having nonzero fill.
        assert!(c2 < c1);
        assert_eq!(c1, CostValue::finite(7.0 * 3.0 + 3.0));
        assert_eq!(c2, CostValue::finite(7.0 * 2.0 + 1.0));
    }

    #[test]
    fn weighted_width_uses_vertex_weights() {
        let g = paper_example_graph();
        let scope = g.vertex_set();
        // Make w1, w2, w3 heavy so T1 (which groups them with u or v) is
        // penalized.
        let w = WeightedWidth::new(vec![1.0, 1.0, 1.0, 10.0, 10.0, 10.0]);
        let c1 = w.cost_of_bags(&g, &scope, &t1_bags());
        let c2 = w.cost_of_bags(&g, &scope, &t2_bags());
        assert_eq!(c1, CostValue::finite(31.0));
        assert_eq!(c2, CostValue::finite(12.0));
        assert!(c2 < c1);
    }

    #[test]
    fn weighted_fill_in_respects_edge_costs() {
        let g = paper_example_graph();
        let scope = g.vertex_set();
        // Make the edge {u, v} = (0, 1) very expensive: T2 becomes costly.
        let k = WeightedFillIn::new(1.0, vec![((0, 1), 100.0)]);
        let c1 = k.cost_of_bags(&g, &scope, &t1_bags());
        let c2 = k.cost_of_bags(&g, &scope, &t2_bags());
        assert_eq!(c1, CostValue::finite(3.0));
        assert_eq!(c2, CostValue::finite(100.0));
        assert!(c1 < c2);
    }

    #[test]
    fn exp_bag_sum() {
        let g = paper_example_graph();
        let scope = g.vertex_set();
        let c1 = ExpBagSum.cost_of_bags(&g, &scope, &t1_bags());
        let c2 = ExpBagSum.cost_of_bags(&g, &scope, &t2_bags());
        assert_eq!(c1, CostValue::finite(16.0 + 16.0 + 4.0));
        assert_eq!(c2, CostValue::finite(8.0 * 3.0 + 4.0));
        assert!(c2 < c1);
    }

    #[test]
    fn cover_width_on_primal_graph() {
        // Query R(u,w1), S(u,w2), T(u,w3), U(v,w1), V(v,w2), W(v,w3), X(v,v').
        let h = Hypergraph::from_edges(
            6,
            &[
                &[0, 3],
                &[0, 4],
                &[0, 5],
                &[1, 3],
                &[1, 4],
                &[1, 5],
                &[1, 2],
            ],
        );
        let g = h.primal_graph();
        assert_eq!(g, paper_example_graph());
        let k = CoverWidth::new(h);
        let scope = g.vertex_set();
        // T1's big bags need 3 binary hyperedges each; T2's bags need 2.
        assert_eq!(
            k.cost_of_bags(&g, &scope, &t1_bags()),
            CostValue::from_usize(3)
        );
        assert_eq!(
            k.cost_of_bags(&g, &scope, &t2_bags()),
            CostValue::from_usize(2)
        );
    }

    #[test]
    fn cover_width_uncoverable_bag_is_infinite() {
        let h = Hypergraph::from_edges(3, &[&[0, 1]]);
        let k = CoverWidth::new(h);
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let bags = vec![VertexSet::from_slice(3, &[1, 2])];
        assert!(k.cost_of_bags(&g, &g.vertex_set(), &bags).is_infinite());
    }

    #[test]
    fn linear_combination() {
        let g = paper_example_graph();
        let scope = g.vertex_set();
        let combo = LinearCombination::new(vec![
            (10.0, Box::new(Width) as Box<dyn BagCost>),
            (1.0, Box::new(FillIn)),
        ]);
        assert_eq!(
            combo.cost_of_bags(&g, &scope, &t1_bags()),
            CostValue::finite(33.0)
        );
        assert_eq!(
            combo.cost_of_bags(&g, &scope, &t2_bags()),
            CostValue::finite(21.0)
        );
        assert!(combo.name().contains("width"));
    }

    #[test]
    fn combine_matches_cost_of_bags_for_width_and_fill() {
        // Combining the block ({v}, {v'}) solution with Ω = {u,v,w1} must give
        // the same value as evaluating the assembled bag list directly.
        let g = paper_example_graph();
        let scope = g.vertex_set();
        let child_bags = vec![VertexSet::from_slice(6, &[1, 2])];
        let sep = VertexSet::singleton(6, 1);
        let verts = VertexSet::from_slice(6, &[1, 2]);
        let omega = VertexSet::from_slice(6, &[0, 1, 3]);
        for cost in [&Width as &dyn BagCost, &FillIn] {
            let child = ChildSolution {
                separator: &sep,
                vertices: &verts,
                cost: cost.cost_of_bags(&g, &verts, &child_bags),
                bags: &child_bags,
            };
            let combined = cost.combine(&g, &scope, &omega, &[child]);
            let mut bags = child_bags.clone();
            bags.push(omega.clone());
            assert_eq!(
                combined,
                cost.cost_of_bags(&g, &scope, &bags),
                "{}",
                cost.name()
            );
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weights_rejected() {
        WeightedWidth::new(vec![-1.0]);
    }

    #[test]
    fn label_invariance_declarations() {
        assert!(Width.label_invariant());
        assert!(FillIn.label_invariant());
        assert!(WidthThenFill.label_invariant());
        assert!(ExpBagSum.label_invariant());
        // Vertex-identity-dependent costs must stay opted out.
        assert!(!WeightedWidth::new(vec![1.0]).label_invariant());
        assert!(!WeightedFillIn::new(1.0, vec![]).label_invariant());
        let clean = LinearCombination::new(vec![
            (10.0, Box::new(Width) as Box<dyn BagCost>),
            (1.0, Box::new(FillIn)),
        ]);
        assert!(clean.label_invariant());
        let tainted = LinearCombination::new(vec![
            (1.0, Box::new(Width) as Box<dyn BagCost>),
            (1.0, Box::new(WeightedWidth::new(vec![1.0]))),
        ]);
        assert!(!tainted.label_invariant());
    }

    #[test]
    fn saturated_fill_bound_packs_chordless_cycles() {
        // C5 with a singleton include: no forced edges, but the cycle
        // itself needs 5 − 3 = 2 chords — exactly C5's minimum fill.
        let c5 = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let include = vec![VertexSet::singleton(5, 0)];
        assert_eq!(
            FillIn.include_lower_bound(&c5, &include),
            Some(CostValue::from_usize(2))
        );
        // C6 with include {0,3}: one forced chord splits the hexagon into
        // two 4-cycles sharing {0,3}; the vertex-disjoint packing keeps
        // one of them, so the bound is 1 + 1 = 2 (true minimum is 3 — the
        // bound must never exceed it).
        let c6 = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let include = vec![VertexSet::from_slice(6, &[0, 3])];
        assert_eq!(
            FillIn.include_lower_bound(&c6, &include),
            Some(CostValue::from_usize(2))
        );
        // Chordal after saturation: the packing finds nothing beyond the
        // forced edges.
        let p4 = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let include = vec![VertexSet::from_slice(4, &[0, 2])];
        assert_eq!(
            FillIn.include_lower_bound(&p4, &include),
            Some(CostValue::from_usize(1))
        );
        assert_eq!(FillIn.include_lower_bound(&p4, &[]), None);
    }
}
