//! The constrained cost `κ[I, X]` (Section 6.1, Lemma 6.2).
//!
//! The Lawler–Murty procedure reduces ranked enumeration to optimization
//! under *inclusion* and *exclusion* constraints over minimal separators.
//! The paper compiles the constraints into the cost function: a
//! triangulation that violates them gets cost `∞`, and the resulting cost is
//! still a split-monotone bag cost, so the same dynamic program optimizes
//! it.
//!
//! The satisfaction relation follows the paper's block-aware definition:
//! a (partial) triangulation `H` satisfies `[I, X]` iff for every constraint
//! separator `U ⊆ V(H)`, `U` is a clique of `H` exactly when `U ∈ I`.
//! Constraints that are not yet fully inside `V(H)` are ignored at that
//! level and re-checked higher up, which is what keeps the compiled cost
//! split monotone.

use super::{BagCost, ChildSolution, CostValue};
use mtr_graph::{Graph, VertexSet};

/// A set of inclusion/exclusion constraints over minimal separators.
#[derive(Clone, Debug, Default)]
pub struct Constraints {
    /// Separators that must be cliques of (i.e. minimal separators of) the
    /// triangulation.
    pub include: Vec<VertexSet>,
    /// Separators that must *not* be cliques of the triangulation.
    pub exclude: Vec<VertexSet>,
}

impl Constraints {
    /// The empty constraint set (satisfied by every triangulation).
    pub fn none() -> Self {
        Constraints::default()
    }

    /// Creates a constraint set from inclusion and exclusion lists.
    pub fn new(include: Vec<VertexSet>, exclude: Vec<VertexSet>) -> Self {
        Constraints { include, exclude }
    }

    /// `true` when there are no constraints at all.
    pub fn is_empty(&self) -> bool {
        self.include.is_empty() && self.exclude.is_empty()
    }

    /// Checks whether the triangulation given by `bags` over `g[scope]`
    /// satisfies the constraints (only constraints fully inside `scope` are
    /// checked).
    pub fn satisfied_by_bags(&self, g: &Graph, scope: &VertexSet, bags: &[VertexSet]) -> bool {
        let clique_in = |u: &VertexSet| is_clique_in_triangulation(g, bags, u);
        for u in &self.include {
            if u.is_subset_of(scope) && !clique_in(u) {
                return false;
            }
        }
        for u in &self.exclude {
            if u.is_subset_of(scope) && clique_in(u) {
                return false;
            }
        }
        true
    }

    /// Checks whether a *complete* triangulation `h` of `g` satisfies the
    /// constraints, in the sense of line 12 of the enumeration algorithm:
    /// every inclusion separator is a clique of `h` and every exclusion
    /// separator is not.
    pub fn satisfied_by_graph(&self, h: &Graph) -> bool {
        self.include.iter().all(|u| h.is_clique(u)) && self.exclude.iter().all(|u| !h.is_clique(u))
    }
}

/// `true` iff `u` is a clique of the triangulation `g ∪ ⋃ K_bag`: every pair
/// of `u` is either a `g`-edge or contained together in some bag.
fn is_clique_in_triangulation(g: &Graph, bags: &[VertexSet], u: &VertexSet) -> bool {
    // Fast path: a set inside a single bag is certainly a clique.
    if bags.iter().any(|b| u.is_subset_of(b)) {
        return true;
    }
    let members = u.to_vec();
    for (i, &x) in members.iter().enumerate() {
        for &y in &members[i + 1..] {
            if g.has_edge(x, y) {
                continue;
            }
            if !bags.iter().any(|b| b.contains(x) && b.contains(y)) {
                return false;
            }
        }
    }
    true
}

/// The compiled cost `κ[I, X]`: the wrapped cost when the constraints are
/// satisfied, `∞` otherwise.
pub struct Constrained<'a, K: BagCost + ?Sized> {
    inner: &'a K,
    constraints: &'a Constraints,
}

impl<'a, K: BagCost + ?Sized> Constrained<'a, K> {
    /// Wraps `inner` with the given constraints.
    pub fn new(inner: &'a K, constraints: &'a Constraints) -> Self {
        Constrained { inner, constraints }
    }
}

impl<K: BagCost + ?Sized> BagCost for Constrained<'_, K> {
    fn name(&self) -> String {
        format!(
            "{}[{} include, {} exclude]",
            self.inner.name(),
            self.constraints.include.len(),
            self.constraints.exclude.len()
        )
    }

    fn cost_of_bags(&self, g: &Graph, scope: &VertexSet, bags: &[VertexSet]) -> CostValue {
        if !self.constraints.satisfied_by_bags(g, scope, bags) {
            return CostValue::INFINITE;
        }
        self.inner.cost_of_bags(g, scope, bags)
    }

    fn combine(
        &self,
        g: &Graph,
        scope: &VertexSet,
        omega: &VertexSet,
        children: &[ChildSolution<'_>],
    ) -> CostValue {
        // Constraint check over the assembled solution: a constraint
        // separator is a clique iff it lies inside Ω, inside some child's
        // bag, or all its missing pairs are covered by those bags.
        let mut violated = false;
        'outer: for (want_clique, list) in [
            (true, &self.constraints.include),
            (false, &self.constraints.exclude),
        ] {
            for u in list {
                if !u.is_subset_of(scope) {
                    continue;
                }
                let clique = u.is_subset_of(omega)
                    || children
                        .iter()
                        .any(|c| c.bags.iter().any(|b| u.is_subset_of(b)))
                    || is_clique_in_assembled(g, omega, children, u);
                if clique != want_clique {
                    violated = true;
                    break 'outer;
                }
            }
        }
        if violated {
            return CostValue::INFINITE;
        }
        self.inner.combine(g, scope, omega, children)
    }
}

/// Clique test against `g ∪ K_Ω ∪ ⋃ child bags` without materializing the
/// assembled bag list.
fn is_clique_in_assembled(
    g: &Graph,
    omega: &VertexSet,
    children: &[ChildSolution<'_>],
    u: &VertexSet,
) -> bool {
    let members = u.to_vec();
    for (i, &x) in members.iter().enumerate() {
        for &y in &members[i + 1..] {
            if g.has_edge(x, y) {
                continue;
            }
            if omega.contains(x) && omega.contains(y) {
                continue;
            }
            let covered = children
                .iter()
                .any(|c| c.bags.iter().any(|b| b.contains(x) && b.contains(y)));
            if !covered {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{FillIn, Width};
    use mtr_graph::paper_example_graph;

    fn t1_bags() -> Vec<VertexSet> {
        vec![
            VertexSet::from_slice(6, &[0, 3, 4, 5]),
            VertexSet::from_slice(6, &[1, 3, 4, 5]),
            VertexSet::from_slice(6, &[1, 2]),
        ]
    }

    fn t2_bags() -> Vec<VertexSet> {
        vec![
            VertexSet::from_slice(6, &[0, 1, 3]),
            VertexSet::from_slice(6, &[0, 1, 4]),
            VertexSet::from_slice(6, &[0, 1, 5]),
            VertexSet::from_slice(6, &[1, 2]),
        ]
    }

    #[test]
    fn unconstrained_wrapper_is_transparent() {
        let g = paper_example_graph();
        let scope = g.vertex_set();
        let none = Constraints::none();
        let wrapped = Constrained::new(&Width, &none);
        assert_eq!(
            wrapped.cost_of_bags(&g, &scope, &t1_bags()),
            Width.cost_of_bags(&g, &scope, &t1_bags())
        );
        assert!(none.is_empty());
    }

    #[test]
    fn include_constraint_forces_separator() {
        let g = paper_example_graph();
        let scope = g.vertex_set();
        // Require S1 = {w1,w2,w3} to be a clique: T1 satisfies, T2 does not.
        let cons = Constraints::new(vec![VertexSet::from_slice(6, &[3, 4, 5])], vec![]);
        let wrapped = Constrained::new(&FillIn, &cons);
        assert_eq!(
            wrapped.cost_of_bags(&g, &scope, &t1_bags()),
            CostValue::from_usize(3)
        );
        assert!(wrapped.cost_of_bags(&g, &scope, &t2_bags()).is_infinite());
    }

    #[test]
    fn exclude_constraint_bans_separator() {
        let g = paper_example_graph();
        let scope = g.vertex_set();
        // Forbid S2 = {u,v} from being a clique: T2 violates, T1 satisfies.
        let cons = Constraints::new(vec![], vec![VertexSet::from_slice(6, &[0, 1])]);
        let wrapped = Constrained::new(&FillIn, &cons);
        assert!(wrapped.cost_of_bags(&g, &scope, &t1_bags()).is_finite());
        assert!(wrapped.cost_of_bags(&g, &scope, &t2_bags()).is_infinite());
    }

    #[test]
    fn constraints_outside_scope_are_ignored() {
        let g = paper_example_graph();
        // Scope = the block {v, v'}: the constraint on {w1,w2,w3} is not
        // inside it, so the block-level cost stays finite.
        let scope = VertexSet::from_slice(6, &[1, 2]);
        let bags = vec![VertexSet::from_slice(6, &[1, 2])];
        let cons = Constraints::new(vec![VertexSet::from_slice(6, &[3, 4, 5])], vec![]);
        let wrapped = Constrained::new(&Width, &cons);
        assert!(wrapped.cost_of_bags(&g, &scope, &bags).is_finite());
    }

    #[test]
    fn satisfied_by_graph_matches_definition() {
        let g = paper_example_graph();
        let mut h1 = g.clone();
        h1.add_edge(3, 4);
        h1.add_edge(3, 5);
        h1.add_edge(4, 5);
        let mut h2 = g.clone();
        h2.add_edge(0, 1);
        let s1 = VertexSet::from_slice(6, &[3, 4, 5]);
        let s2 = VertexSet::from_slice(6, &[0, 1]);
        let require_s1 = Constraints::new(vec![s1.clone()], vec![]);
        assert!(require_s1.satisfied_by_graph(&h1));
        assert!(!require_s1.satisfied_by_graph(&h2));
        let forbid_s2 = Constraints::new(vec![], vec![s2]);
        assert!(forbid_s2.satisfied_by_graph(&h1));
        assert!(!forbid_s2.satisfied_by_graph(&h2));
        let both = Constraints::new(vec![s1], vec![VertexSet::from_slice(6, &[0, 1])]);
        assert!(both.satisfied_by_graph(&h1));
        assert!(!both.satisfied_by_graph(&h2));
    }

    #[test]
    fn combine_agrees_with_cost_of_bags() {
        let g = paper_example_graph();
        let scope = g.vertex_set();
        let child_bags = vec![VertexSet::from_slice(6, &[1, 2])];
        let sep = VertexSet::singleton(6, 1);
        let verts = VertexSet::from_slice(6, &[1, 2]);
        let cons = Constraints::new(
            vec![VertexSet::from_slice(6, &[0, 1])],
            vec![VertexSet::from_slice(6, &[3, 4, 5])],
        );
        let wrapped = Constrained::new(&Width, &cons);
        let child = ChildSolution {
            separator: &sep,
            vertices: &verts,
            cost: CostValue::from_usize(1),
            bags: &child_bags,
        };
        // Ω = {u, v, w1} contains {u, v} (include satisfied) and the scope
        // includes {w1,w2,w3}? It does (scope = everything), and the
        // assembled bags do not make it a clique, so exclusion holds too.
        let omega = VertexSet::from_slice(6, &[0, 1, 3]);
        let combined = wrapped.combine(&g, &scope, &omega, &[child]);
        let mut bags = child_bags.clone();
        bags.push(omega);
        assert_eq!(combined, wrapped.cost_of_bags(&g, &scope, &bags));
        assert!(combined.is_finite());
    }
}
